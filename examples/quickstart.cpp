// Quickstart: generate a small synthetic corridor, train the plain F
// predictor and the full APOTS F configuration (adversarial training +
// adjacent-speed and non-speed context), and print both next to two
// statistical baselines.
//
// Run time: well under a minute on one CPU core. For the paper-scale
// comparisons (every table and figure), run the binaries in build/bench/.

#include <cstdio>

#include "core/apots_model.h"
#include "data/windowing.h"
#include "eval/experiment.h"
#include "eval/profile.h"
#include "metrics/metrics.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  // 1. A small deterministic dataset: 3 road segments, 14 days of
  //    5-minute speeds with rush hours, rain, and accidents.
  eval::EvalProfile profile =
      eval::EvalProfile::ForLevel(eval::ProfileLevel::kSmoke);
  profile.width_divisor = 8;
  profile.epochs = 6;
  profile.max_train_anchors = 2000;
  eval::Experiment experiment(profile);

  std::printf("dataset: %d roads x %ld intervals (%d days)\n",
              experiment.dataset().num_roads(),
              experiment.dataset().num_intervals(),
              experiment.dataset().num_days());
  std::printf("train/test anchors: %zu / %zu\n\n",
              experiment.train_anchors().size(),
              experiment.test_anchors().size());

  // 2. Plain F: speed-only input, MSE training — the paper's weakest
  //    configuration.
  eval::ModelSpec plain;
  plain.predictor = core::PredictorType::kFc;
  plain.features = data::FeatureConfig::SpeedOnly();
  const eval::EvalRow plain_row = experiment.RunModel(plain);

  // 3. APOTS F: adversarial training + both additional-data blocks. On a
  //    corpus this small the adversarial term is applied gently.
  eval::ModelSpec apots_spec;
  apots_spec.predictor = core::PredictorType::kFc;
  apots_spec.adversarial = true;
  apots_spec.features = data::FeatureConfig::Both();
  core::ApotsConfig config = experiment.MakeConfig(apots_spec);
  config.training.adv_weight = 0.02f;
  config.training.adv_period = 8;
  core::ApotsModel apots_model(&experiment.dataset(), config);
  Stopwatch watch;
  apots_model.Train(experiment.train_anchors());
  const eval::EvalRow apots_row = experiment.MakeRow(
      "APOTS F", apots_model.PredictKmh(experiment.test_anchors()),
      apots_model.TrueKmh(experiment.test_anchors()),
      watch.ElapsedSeconds(), apots_model.NumWeights());

  // 4. Statistical baselines for contrast.
  const eval::EvalRow ar_row = experiment.RunArModel();
  const eval::EvalRow hist_row = experiment.RunHistoricalAverage();

  // 5. Report whole-period and abrupt-deceleration error side by side:
  //    the abrupt segments are where the contextual data pays off.
  TablePrinter table({"model", "MAE", "RMSE", "MAPE[%]", "abrupt-dec MAPE",
                      "train[s]"});
  for (const eval::EvalRow* row :
       {&plain_row, &apots_row, &ar_row, &hist_row}) {
    table.AddRow({row->label, FormatMetric(row->whole.mae),
                  FormatMetric(row->whole.rmse),
                  FormatMetric(row->whole.mape),
                  row->abrupt_dec.count > 0
                      ? FormatMetric(row->abrupt_dec.mape)
                      : "n/a",
                  FormatMetric(row->train_seconds)});
  }
  table.Print();

  std::printf(
      "\nAbrupt-dec gain of APOTS F over plain F: %.1f%% "
      "(whole-period: %.1f%%).\n"
      "This 14-day toy corridor is strongly clock-driven, so the "
      "historical average is hard to\nbeat on the whole period; the full "
      "122-day comparisons are in build/bench/ and EXPERIMENTS.md.\n",
      metrics::GainPercent(apots_row.abrupt_dec.mape,
                           plain_row.abrupt_dec.mape),
      metrics::GainPercent(apots_row.whole.mape, plain_row.whole.mape));
  return 0;
}
