// Model comparison: train all four predictor families (F, L, C, H) with
// and without APOTS (adversarial + additional data) on one dataset and
// print a leaderboard next to the statistical baselines — a miniature of
// the paper's Table III.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "eval/experiment.h"
#include "eval/profile.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  eval::EvalProfile profile =
      eval::EvalProfile::ForLevel(eval::ProfileLevel::kSmoke);
  profile.epochs = 3;
  eval::Experiment experiment(profile);

  std::vector<eval::EvalRow> rows;
  for (core::PredictorType type :
       {core::PredictorType::kFc, core::PredictorType::kLstm,
        core::PredictorType::kCnn, core::PredictorType::kHybrid}) {
    eval::ModelSpec plain;
    plain.predictor = type;
    plain.features = data::FeatureConfig::SpeedOnly();
    rows.push_back(experiment.RunModel(plain));

    eval::ModelSpec apots_spec;
    apots_spec.predictor = type;
    apots_spec.adversarial = true;
    apots_spec.features = data::FeatureConfig::Both();
    rows.push_back(experiment.RunModel(apots_spec));
  }
  rows.push_back(experiment.RunProphet());
  rows.push_back(experiment.RunHistoricalAverage());
  rows.push_back(experiment.RunArModel());

  std::sort(rows.begin(), rows.end(),
            [](const eval::EvalRow& a, const eval::EvalRow& b) {
              return a.whole.mape < b.whole.mape;
            });

  TablePrinter table(
      {"rank", "model", "MAE", "RMSE", "MAPE[%]", "weights", "train[s]"});
  int rank = 1;
  for (const auto& row : rows) {
    table.AddRow({StrFormat("%d", rank++), row.label,
                  FormatMetric(row.whole.mae), FormatMetric(row.whole.rmse),
                  FormatMetric(row.whole.mape),
                  StrFormat("%zu", row.num_weights),
                  FormatMetric(row.train_seconds)});
  }
  table.Print();
  return 0;
}
