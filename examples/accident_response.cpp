// Accident-response scenario: pick the most severe accident in the
// dataset, run rolling online prediction through the crash and the
// recovery with plain F vs APOTS F, and report the abrupt-segment errors —
// the Fig. 6c story.

#include <cmath>
#include <cstdio>
#include <vector>

#include "eval/experiment.h"
#include "eval/profile.h"
#include "metrics/metrics.h"
#include "metrics/segmentation.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  eval::EvalProfile profile =
      eval::EvalProfile::ForLevel(eval::ProfileLevel::kSmoke);
  profile.epochs = 4;
  eval::Experiment experiment(profile);
  const auto& dataset = experiment.dataset();
  const int road = experiment.target_road();

  // Locate the most severe accident on the target road with room around
  // it for the rolling evaluation.
  const traffic::Incident* chosen = nullptr;
  for (const auto& inc : dataset.incident_log()) {
    if (inc.road != road) continue;
    if (inc.kind != traffic::IncidentKind::kAccident) continue;
    const long start = inc.start_interval;
    if (start < 3L * profile.alpha ||
        start + inc.duration + inc.recovery + 12 >= dataset.num_intervals()) {
      continue;
    }
    if (chosen == nullptr || inc.severity > chosen->severity) chosen = &inc;
  }
  if (chosen == nullptr) {
    std::printf("no suitable accident on the target road; re-run with "
                "another seed\n");
    return 0;
  }
  std::printf("accident at interval %ld: severity %.2f, %ld intervals + "
              "%ld recovery\n\n",
              chosen->start_interval, chosen->severity, chosen->duration,
              chosen->recovery);

  // Train plain F (speed only, no adversarial) and APOTS F.
  eval::ModelSpec plain;
  plain.predictor = core::PredictorType::kFc;
  plain.features = data::FeatureConfig::SpeedOnly();

  eval::ModelSpec apots_spec;
  apots_spec.predictor = core::PredictorType::kFc;
  apots_spec.adversarial = true;
  apots_spec.features = data::FeatureConfig::Both();

  core::ApotsModel plain_model(&dataset, experiment.MakeConfig(plain));
  plain_model.Train(experiment.train_anchors());
  core::ApotsModel apots_model(&dataset, experiment.MakeConfig(apots_spec));
  apots_model.Train(experiment.train_anchors());

  // Rolling window: from 30 minutes before the crash to past recovery.
  std::vector<long> anchors;
  const long from = chosen->start_interval - 6;
  const long to =
      chosen->start_interval + chosen->duration + chosen->recovery + 6;
  for (long t = from; t <= to; ++t) anchors.push_back(t);
  const auto plain_pred = plain_model.PredictKmh(anchors);
  const auto apots_pred = apots_model.PredictKmh(anchors);

  std::vector<double> truths(anchors.size());
  TablePrinter table({"t", "event", "real", "F", "APOTS F"});
  for (size_t i = 0; i < anchors.size(); ++i) {
    const long t = anchors[i] + profile.beta;
    truths[i] = dataset.Speed(road, t);
    table.AddRow({StrFormat("%+ld", t - chosen->start_interval),
                  dataset.EventFlag(road, t) > 0 ? "*" : "",
                  FormatMetric(truths[i]), FormatMetric(plain_pred[i]),
                  FormatMetric(apots_pred[i])});
  }
  table.Print();

  const auto plain_metrics = metrics::Compute(plain_pred, truths);
  const auto apots_metrics = metrics::Compute(apots_pred, truths);
  std::printf("\nthrough the incident: F %s | APOTS F %s\n",
              plain_metrics.ToString().c_str(),
              apots_metrics.ToString().c_str());
  return 0;
}
