// Rush-hour scenario: train plain H (Hybrid CNN+LSTM) and APOTS H, then
// walk through a weekday morning-rush window and print the real speed next
// to both models' predictions — the Fig. 6a experience in the terminal.
// The abrupt congestion onset is where the two models differ most.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "util/string_util.h"

#include "eval/experiment.h"
#include "eval/profile.h"
#include "metrics/segmentation.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  eval::EvalProfile profile =
      eval::EvalProfile::ForLevel(eval::ProfileLevel::kSmoke);
  profile.epochs = 4;
  eval::Experiment experiment(profile);
  const auto& dataset = experiment.dataset();
  const int road = experiment.target_road();
  const int beta = profile.beta;

  // Find a weekday morning with a deep rush-hour drop: scan 06:30-09:30
  // windows for the largest speed range.
  const int ipd = dataset.intervals_per_day();
  long best_start = -1;
  double best_range = 0.0;
  for (int day = 1; day < dataset.num_days(); ++day) {
    const auto info = dataset.calendar().Day(day);
    if (info.is_weekend || info.is_holiday) continue;
    const long start = static_cast<long>(day) * ipd + (65 * ipd) / 288;
    const long end = start + (36 * ipd) / 288;  // ~3 hours
    if (end + beta >= dataset.num_intervals()) continue;
    double lo = 1e9, hi = 0.0;
    for (long t = start; t < end; ++t) {
      lo = std::min(lo, static_cast<double>(dataset.Speed(road, t)));
      hi = std::max(hi, static_cast<double>(dataset.Speed(road, t)));
    }
    if (hi - lo > best_range) {
      best_range = hi - lo;
      best_start = start;
    }
  }
  std::printf("selected rush window starting at interval %ld "
              "(speed range %.0f km/h)\n\n", best_start, best_range);

  // Train plain H and APOTS H.
  eval::ModelSpec plain;
  plain.predictor = core::PredictorType::kHybrid;
  plain.adversarial = false;
  plain.features = data::FeatureConfig::SpeedOnly();

  eval::ModelSpec apots_spec;
  apots_spec.predictor = core::PredictorType::kHybrid;
  apots_spec.adversarial = true;
  apots_spec.features = data::FeatureConfig::Both();

  core::ApotsModel plain_model(&dataset, experiment.MakeConfig(plain));
  plain_model.Train(experiment.train_anchors());
  core::ApotsModel apots_model(&dataset, experiment.MakeConfig(apots_spec));
  apots_model.Train(experiment.train_anchors());

  // Rolling prediction through the window.
  std::vector<long> anchors;
  for (long t = best_start; t < best_start + 24; ++t) anchors.push_back(t);
  const auto plain_pred = plain_model.PredictKmh(anchors);
  const auto apots_pred = apots_model.PredictKmh(anchors);

  TablePrinter table({"time", "real", "H", "APOTS H", "segment"});
  double plain_abs = 0.0, apots_abs = 0.0;
  for (size_t i = 0; i < anchors.size(); ++i) {
    const long t = anchors[i] + beta;
    const double real = dataset.Speed(road, t);
    const auto segment = metrics::ClassifyInstant(dataset, road, t);
    const char* seg_name =
        segment == metrics::Segment::kNormal
            ? ""
            : (segment == metrics::Segment::kAbruptDeceleration
                   ? "ABRUPT DEC"
                   : "ABRUPT ACC");
    const double hour = dataset.FractionalHour(t);
    table.AddRow({apots::StrFormat("%02d:%02d", static_cast<int>(hour),
                            static_cast<int>(hour * 60) % 60),
                  FormatMetric(real), FormatMetric(plain_pred[i]),
                  FormatMetric(apots_pred[i]), seg_name});
    plain_abs += std::fabs(plain_pred[i] - real);
    apots_abs += std::fabs(apots_pred[i] - real);
  }
  table.Print();
  std::printf("\nwindow MAE: H=%.2f km/h, APOTS H=%.2f km/h\n",
              plain_abs / anchors.size(), apots_abs / anchors.size());
  return 0;
}
