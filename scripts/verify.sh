#!/usr/bin/env bash
# Three-lane verification:
#   lane 1 — tier-1: full Release build + the `tier1`-labeled ctest suite.
#            Test tiers (tests/CMakeLists.txt + bench/CMakeLists.txt):
#              tier1  every gtest suite + the perf-comparator self-test;
#                     the PR lane, run here and in ci.yml via `ctest -L tier1`
#              soak   quick arms of serve_soak / attack_robustness /
#                     chaos_soak
#              bench  quick arm of frontend_qps
#            The non-tier1 labels are nightly material; pass --all-tests to
#            run the whole label set locally (what ci-nightly.yml does).
#   lane 2 — sanitized: ASan+UBSan build of the robustness-critical suites
#            (fault injection / imputation, the training guard, the
#            checkpoint/serialization layer, the serving stack + front door,
#            the parallel execution layer, and the SIMD/quantized kernel
#            layer), which exercise the code paths that write through masks,
#            restore checkpointed tensors, parse untrusted checkpoint bytes,
#            share work across pool threads, and write packed panels at
#            ragged tile edges.
#   lane 3 — TSan: -DAPOTS_SANITIZE=thread build of the thread-pool,
#            parallel-determinism, serving-watchdog, MPSC-queue, and
#            frontend suites (the code that runs more than one thread), plus
#            one --quick serving soak and one --quick frontend load run so
#            the concurrent producers race the serving thread under the race
#            detector.
# Usage: scripts/verify.sh [--tier1-only | --asan-only | --tsan-only]
#                          [--all-tests] [--ci]
#   --all-tests  lane 1 runs every ctest label (tier1 + soak + bench)
#                instead of just tier1.
#   --ci  non-interactive CI profile: pins APOTS_NUM_THREADS=2 so pool-backed
#         code runs multi-threaded even on small runners, and echoes every
#         command for the job log.
set -euo pipefail
cd "$(dirname "$0")/.."

lane_tier1=1
lane_asan=1
lane_tsan=1
all_tests=0
ci_mode=0
for arg in "$@"; do
  case "${arg}" in
    --tier1-only) lane_asan=0; lane_tsan=0 ;;
    --asan-only) lane_tier1=0; lane_tsan=0 ;;
    --tsan-only) lane_tier1=0; lane_asan=0 ;;
    --all-tests) all_tests=1 ;;
    --ci) ci_mode=1 ;;
    *)
      echo "usage: $0 [--tier1-only | --asan-only | --tsan-only] [--all-tests] [--ci]" >&2
      exit 2
      ;;
  esac
done

if [[ ${ci_mode} -eq 1 ]]; then
  export APOTS_NUM_THREADS=2
  export CLICOLOR=0
  set -x
fi

# The thread-pool and data-parallel trainer suites, shared by the sanitizer
# lanes.
parallel_regex='ThreadPool|GlobalPool|PoolSizeSweep'
# The SIMD/quantized kernel layer: packed-panel writes at ragged tile
# edges, the int8/fp16 pack+compute scratch arenas, and the forced-ISA
# dispatch ladder — the code most likely to read or write one lane past a
# panel boundary.
kernel_regex='KernelEquivalence|QuantKernel'
# The observability layer's concurrent suites: counters/histograms written
# from many threads, trace buffers racing snapshot/emit.
obs_regex='CounterTest|GaugeTest|HistogramTest|RegistryTest|MetricsEnabled|TraceSpan|TraceRecorder'
# The front-door request path: the lock-free MPSC ring and the frontend's
# producers racing the background serving thread.
frontdoor_regex='MpscQueue|Frontend'
# The sharded serving plane: road-graph partitions, the replicated
# shard/router/boundary-exchange stack (whose replicas each run a watchdog
# sampler thread against the shared VirtualClock), and the chaos
# scheduler/driver that tears replicas down mid-serve.
sharded_regex='RoadGraph|PartitionTest|ShardedService|ParseChaosKinds|ChaosScheduler|ChaosDriver'

if [[ ${lane_tier1} -eq 1 ]]; then
  echo "=== lane 1: tier-1 (Release build + labeled ctest) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j
  if [[ ${all_tests} -eq 1 ]]; then
    ctest --test-dir build --output-on-failure -j "$(nproc)"
  else
    ctest --test-dir build --output-on-failure -j "$(nproc)" -L tier1
  fi
fi

if [[ ${lane_asan} -eq 1 ]]; then
  echo "=== lane 2: ASan+UBSan (fault injector, train guard, parallel suites) ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAPOTS_SANITIZE=address
  cmake --build build-asan -j --target fault_injector_test train_guard_test \
    thread_pool_test parallel_determinism_test checkpoint_test \
    feature_cache_stream_test serve_test obs_metrics_test obs_trace_test \
    mpsc_queue_test frontend_test kernel_equivalence_test quant_kernel_test \
    road_graph_test sharded_service_test chaos_test
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
    -R "FaultInjector|FaultKinds|ValidityMask|Imputation|FeatureAssemblerMask|TrafficDatasetBounds|TrainGuard|GuardedTraining|SerializeV2|CheckpointStore|KillRestore|FeatureCacheKey|FeatureCacheStream|FaultyFeed|StreamIngestor|ServeWatchdog|Supervisor|Harness|${parallel_regex}|${obs_regex}|${frontdoor_regex}|${kernel_regex}|${sharded_regex}"
fi

if [[ ${lane_tsan} -eq 1 ]]; then
  echo "=== lane 3: TSan (thread pool + parallel determinism suites) ==="
  cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAPOTS_SANITIZE=thread
  cmake --build build-tsan -j --target thread_pool_test parallel_determinism_test \
    serve_test serve_soak obs_metrics_test obs_trace_test \
    mpsc_queue_test frontend_test frontend_qps kernel_equivalence_test \
    quant_kernel_test sharded_service_test chaos_test chaos_soak whatif_fanout
  # The kernel suites ride along under TSan because the blocked/SIMD panel
  # loops and the int8 pack+compute path all fan out across the global pool.
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R "${parallel_regex}|ServeWatchdog|Supervisor|${obs_regex}|${frontdoor_regex}|${kernel_regex}|ShardedService|ChaosDriver"
  # One quick soak under TSan: the watchdog sampler thread races the
  # serving thread's arm/disarm window on every neural batch.
  ./build-tsan/bench/serve_soak --quick --perf_json=build-tsan/perf_pr4_tsan.json
  # One quick frontend load run under TSan: closed-loop producers, the
  # open-loop dispatcher, and overload shedding all race the consumer.
  ./build-tsan/bench/frontend_qps --quick --perf_json=build-tsan/perf_frontend_tsan.json
  # One quick chaos soak under TSan: 2x2 replicas' watchdog samplers read
  # the shared VirtualClock while the chaos driver kills, stalls, and
  # clock-skews replicas mid-serve.
  ./build-tsan/bench/chaos_soak --quick --perf_json=build-tsan/perf_chaos_tsan.json
  # One quick what-if fan-out under TSan: heterogeneous (anchor, context)
  # batches shard across the pool while context specs are shared through
  # the table's shared_ptr handoff.
  ./build-tsan/bench/whatif_fanout --quick --perf_json=build-tsan/perf_whatif_tsan.json
fi

echo "verify: all requested lanes passed"
