#!/usr/bin/env bash
# Two-lane verification:
#   lane 1 — tier-1: full Release build + complete ctest suite
#   lane 2 — sanitized: ASan+UBSan build of the robustness-critical suites
#            (fault injection / imputation and the training guard), which
#            exercise the code paths that write through masks and restore
#            checkpointed tensors.
# Usage: scripts/verify.sh [--tier1-only | --asan-only]
set -euo pipefail
cd "$(dirname "$0")/.."

lane_tier1=1
lane_asan=1
case "${1:-}" in
  --tier1-only) lane_asan=0 ;;
  --asan-only) lane_tier1=0 ;;
  "") ;;
  *) echo "usage: $0 [--tier1-only | --asan-only]" >&2; exit 2 ;;
esac

if [[ ${lane_tier1} -eq 1 ]]; then
  echo "=== lane 1: tier-1 (Release build + full ctest) ==="
  cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build -j
  ctest --test-dir build --output-on-failure -j "$(nproc)"
fi

if [[ ${lane_asan} -eq 1 ]]; then
  echo "=== lane 2: ASan+UBSan (fault injector + train guard suites) ==="
  cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DAPOTS_SANITIZE=ON
  cmake --build build-asan -j --target fault_injector_test train_guard_test
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
    -R 'FaultInjector|FaultKinds|ValidityMask|Imputation|FeatureAssemblerMask|TrafficDatasetBounds|TrainGuard|GuardedTraining'
fi

echo "verify: all requested lanes passed"
