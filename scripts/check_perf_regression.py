#!/usr/bin/env python3
"""Gate fresh bench reports against committed baselines.

Usage:
    check_perf_regression.py [--fresh DIR] [--baselines DIR]
                             [--threshold FRACTION] [--require-baselines]
                             [--self-test]

Every ``perf_*.json`` in the baselines directory is matched by filename
against the fresh directory, both files are flattened to ``path -> value``
maps (array elements are keyed by their ``name``/``arm`` entry so
reordering arms never breaks the diff), and each numeric metric whose name
declares a direction (see PERF_METRICS) is compared:

* higher-is-better ("up") metrics fail when fresh < baseline*(1-threshold)
* lower-is-better ("down") metrics fail when fresh > baseline*(1+threshold)
* two-sided ("band") metrics fail when fresh deviates from baseline by
  more than the threshold in either direction — for quantities like
  attacked-MAE inflation where drift either way means the experiment
  changed, not just got slower

A baseline file may carry a top-level ``"_directions"`` object mapping a
full flattened path or a bare leaf name to a direction; annotations win
over the global PERF_METRICS table and let one report gate a metric whose
suffix is too generic to gate everywhere. The ``_directions`` block is
metadata: it is never flattened or compared itself. Every annotation must
resolve against the baseline's own metrics — a key that matches no
flattened path and no leaf name fails the gate loudly instead of silently
gating nothing (the typo/renamed-arm failure mode), as does a direction
outside {up, down, band}.

A baseline may also carry a top-level ``"_epsilons"`` object mapping a
full flattened path or a bare leaf name to a positive absolute cap: the
FRESH value's magnitude must satisfy ``|fresh| <= eps``. This is for
metrics whose healthy value hovers around zero — e.g. ``mae_delta_kmh``,
the accuracy cost of a quantized kernel — where a relative comparison
against a near-zero baseline is meaningless but an absolute band is
exactly the contract ("int8 may move MAE by at most 0.5 km/h"). The same
loud validation applies: unresolvable keys and non-positive caps fail the
gate, the block itself is never compared, and a gated metric vanishing
from the fresh report fails.

Everything else — configuration echoes, counters, booleans — is reported
only when it disappears, because a vanished metric usually means a bench
arm silently stopped running. The default threshold is 15%: wide enough
for shared-runner noise on the --quick workloads, narrow enough to catch a
real pessimization (the obs:: layer's own budget is 2%, enforced by
bench/obs_overhead, not here).

``--self-test`` exercises the comparator itself: it builds a synthetic
baseline, verifies an identical report passes, then injects a 20%
throughput regression and a 20% latency regression and asserts both are
caught — plus band deviations in both directions and a ``_directions``
annotation override. CI runs it via ctest so a broken comparator cannot
silently turn the perf gate green.

Exit codes: 0 clean, 1 regression or missing metric, 2 usage/IO error.
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

# Suffix -> direction. A metric participates in gating iff its final path
# component (or that component's prefix before a numeric suffix) appears
# here. "up" = higher is better, "down" = lower is better, "band" = any
# deviation beyond the threshold fails (two-sided).
PERF_METRICS = {
    "anchors_per_sec": "up",
    "samples_per_sec": "up",
    "availability": "up",
    "qps": "up",
    "max_sustainable_qps": "up",
    "speedup_batched_vs_per_anchor": "up",
    "speedup_batched_parallel_vs_per_anchor": "up",
    "recovery_ratio": "up",
    "seconds": "down",
    "seconds_per_call": "down",
    "p50_ms": "down",
    "p99_ms": "down",
    "p50_tick_ms": "down",
    "p99_tick_ms": "down",
    "deadline_miss_rate": "down",
    "clean_mae": "down",
    "mae_inflation": "band",
}

# Latency metrics additionally need the absolute delta to clear this floor
# (in the metric's own unit, ms for *_ms) before a relative regression
# counts: a 0.02ms -> 0.03ms tick is +50% but pure scheduler noise.
ABS_SLACK = {
    "p50_ms": 1.0,
    "p99_ms": 1.0,
    "p50_tick_ms": 1.0,
    "p99_tick_ms": 1.0,
}

# NOTE: obs_overhead's metrics_overhead / metrics_trace_overhead are
# deliberately absent — they are signed ratios hovering around zero, where
# relative comparison is meaningless; bench/obs_overhead gates them in
# absolute terms (<2%) itself.


def flatten(node, prefix=""):
    """JSON tree -> {path: leaf}. List elements with a 'name' or 'arm'
    field are keyed by it; bare lists fall back to the index. The
    ``_directions``/``_epsilons`` annotation blocks are metadata, not
    metrics."""
    out = {}
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            if key in ("_directions", "_epsilons"):
                continue
            out.update(flatten(value, f"{prefix}{key}."))
    elif isinstance(node, list):
        for idx, value in enumerate(node):
            key = str(idx)
            if isinstance(value, dict):
                for tag in ("name", "arm"):
                    if isinstance(value.get(tag), str):
                        key = value[tag]
                        break
            out.update(flatten(value, f"{prefix}{key}."))
    else:
        out[prefix[:-1]] = node
    return out


def direction_for(path, overrides=None):
    """Resolution order: full-path annotation, leaf annotation, global
    suffix table."""
    leaf = path.rsplit(".", 1)[-1]
    if overrides:
        direction = overrides.get(path, overrides.get(leaf))
        if direction is not None:
            return direction if direction in ("up", "down", "band") else None
    return PERF_METRICS.get(leaf)


def directions_of(report):
    """The report's ``_directions`` annotation block, if well-formed."""
    if isinstance(report, dict) and isinstance(
            report.get("_directions"), dict):
        return report["_directions"]
    return None


def epsilons_of(report):
    """The report's ``_epsilons`` annotation block, if well-formed."""
    if isinstance(report, dict) and isinstance(
            report.get("_epsilons"), dict):
        return report["_epsilons"]
    return None


def epsilon_for(path, epsilons):
    """Absolute cap for a metric: full-path annotation wins over leaf."""
    if not epsilons:
        return None
    leaf = path.rsplit(".", 1)[-1]
    return epsilons.get(path, epsilons.get(leaf))


def compare_report(name, baseline, fresh, threshold, epsilons_only=False):
    """Returns a list of failure strings for one report pair. With
    ``epsilons_only`` the relative (direction) gates are skipped and only
    the ``_epsilons`` absolute caps apply — the mode the baseline-ISA CI
    job runs in, where the build is portable and the committed timings
    from another machine are meaningless but the accuracy bands are not."""
    failures = []
    overrides = None if epsilons_only else directions_of(baseline)
    epsilons = epsilons_of(baseline)
    base_flat = flatten(baseline)
    fresh_flat = flatten(fresh)
    if epsilons:
        leaves = {p.rsplit(".", 1)[-1] for p in base_flat}
        for key, eps in sorted(epsilons.items()):
            if not isinstance(eps, (int, float)) or \
                    isinstance(eps, bool) or eps <= 0:
                failures.append(
                    f"{name}: _epsilons[{key!r}] has invalid cap {eps!r} "
                    "(want a positive number)")
            elif key not in base_flat and key not in leaves:
                failures.append(
                    f"{name}: _epsilons[{key!r}] matches no metric in the "
                    "baseline (typo, or the bench arm stopped emitting "
                    "it?) — the annotation would silently gate nothing")
    if overrides:
        # An annotation that resolves to nothing gates nothing: a typo'd
        # key or a renamed bench arm would silently drop the metric from
        # the gate forever. Fail loudly instead.
        leaves = {p.rsplit(".", 1)[-1] for p in base_flat}
        for key, direction in sorted(overrides.items()):
            if direction not in ("up", "down", "band"):
                failures.append(
                    f"{name}: _directions[{key!r}] has unknown direction "
                    f"{direction!r} (want up/down/band)")
            elif key not in base_flat and key not in leaves:
                failures.append(
                    f"{name}: _directions[{key!r}] matches no metric in "
                    "the baseline (typo, or the bench arm stopped emitting "
                    "it?) — the annotation would silently gate nothing")
    for path, base_value in sorted(base_flat.items()):
        direction = None if epsilons_only else direction_for(path, overrides)
        eps = epsilon_for(path, epsilons)
        if not isinstance(eps, (int, float)) or isinstance(eps, bool) or \
                eps <= 0:
            eps = None  # invalid caps were already reported above
        if direction is None and eps is None:
            continue
        if path not in fresh_flat:
            failures.append(f"{name}: metric {path} vanished from the "
                            "fresh report (bench arm not running?)")
            continue
        fresh_value = fresh_flat[path]
        if not isinstance(base_value, (int, float)) or \
                not isinstance(fresh_value, (int, float)):
            continue
        # Absolute cap: |fresh| <= eps regardless of the baseline value
        # (the baseline of a delta metric is itself near zero).
        if eps is not None and abs(fresh_value) > eps:
            failures.append(
                f"{name}: {path} = {fresh_value:.6g} exceeds the absolute "
                f"cap |x| <= {eps:.6g}")
        if direction is None:
            continue
        if base_value == 0:
            continue  # ratio undefined; overhead metrics near 0 are noise
        if direction == "up" and fresh_value < base_value * (1 - threshold):
            failures.append(
                f"{name}: {path} regressed {base_value:.6g} -> "
                f"{fresh_value:.6g} "
                f"({100 * (fresh_value / base_value - 1):+.1f}%, "
                f"allowed -{threshold:.0%})")
        elif direction == "down" and \
                fresh_value > base_value * (1 + threshold) and \
                fresh_value - base_value > \
                ABS_SLACK.get(path.rsplit(".", 1)[-1], 0.0):
            failures.append(
                f"{name}: {path} regressed {base_value:.6g} -> "
                f"{fresh_value:.6g} "
                f"({100 * (fresh_value / base_value - 1):+.1f}%, "
                f"allowed +{threshold:.0%})")
        elif direction == "band" and \
                abs(fresh_value - base_value) > abs(base_value) * threshold:
            failures.append(
                f"{name}: {path} drifted {base_value:.6g} -> "
                f"{fresh_value:.6g} "
                f"({100 * (fresh_value / base_value - 1):+.1f}%, "
                f"allowed ±{threshold:.0%})")
    return failures


def run(fresh_dir, baseline_dir, threshold, require_baselines=False,
        epsilons_only=False):
    baseline_paths = sorted(Path(baseline_dir).glob("perf_*.json"))
    if not baseline_paths:
        # In CI the baselines are committed, so an empty directory means
        # the checkout (or the gate's wiring) is broken — a silent pass
        # here would disable the whole perf gate without anyone noticing.
        if require_baselines:
            print(f"FAIL no baselines under {baseline_dir}; the perf gate "
                  "requires committed baselines (git add -f "
                  "bench_out/baselines/*.json)", file=sys.stderr)
            return 1
        print(f"no baselines under {baseline_dir}; nothing to gate",
              file=sys.stderr)
        return 0
    rc = 0
    compared = 0
    for baseline_path in baseline_paths:
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"FAIL {baseline_path.name}: {err}", file=sys.stderr)
            return 2
        if epsilons_only and not epsilons_of(baseline):
            # Only reports with absolute caps participate; a portable-build
            # run has no business producing the others.
            continue
        fresh_path = Path(fresh_dir) / baseline_path.name
        if not fresh_path.exists():
            print(f"FAIL {baseline_path.name}: no fresh report at "
                  f"{fresh_path}", file=sys.stderr)
            rc = 1
            continue
        try:
            fresh = json.loads(fresh_path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"FAIL {baseline_path.name}: {err}", file=sys.stderr)
            return 2
        failures = compare_report(baseline_path.name, baseline, fresh,
                                  threshold, epsilons_only)
        gated = sum(1 for p in flatten(baseline)
                    if (not epsilons_only and
                        direction_for(p, directions_of(baseline))) or
                    epsilon_for(p, epsilons_of(baseline)) is not None)
        compared += gated
        if failures:
            rc = 1
            for failure in failures:
                print(f"FAIL {failure}", file=sys.stderr)
        else:
            print(f"OK   {baseline_path.name}: {gated} metrics within "
                  f"{threshold:.0%}")
    print(f"checked {compared} gated metrics across "
          f"{len(baseline_paths)} reports -> "
          f"{'FAIL' if rc else 'PASS'}")
    return rc


def self_test(threshold):
    """The comparator must pass an identical report and fail a 20%
    regression in either direction."""
    baseline = {
        "bench": "self_test",
        "arms": [
            {"name": "batched", "anchors_per_sec": 1000.0, "p99_ms": 10.0},
            {"name": "per_anchor", "anchors_per_sec": 100.0,
             "p99_ms": 80.0},
        ],
        "storm": {"availability": 0.9995, "deadline_miss_rate": 0.01},
        "attack": {"mae_inflation": 2.4, "recovery_ratio": 0.55},
    }
    identical = json.loads(json.dumps(baseline))
    if compare_report("identical", baseline, identical, threshold):
        print("self-test FAIL: identical report flagged", file=sys.stderr)
        return 1

    throughput_hit = json.loads(json.dumps(baseline))
    throughput_hit["arms"][0]["anchors_per_sec"] = 800.0  # -20%
    failures = compare_report("throughput", baseline, throughput_hit,
                              threshold)
    if not any("arms.batched.anchors_per_sec" in f for f in failures):
        print("self-test FAIL: -20% throughput not caught",
              file=sys.stderr)
        return 1

    latency_hit = json.loads(json.dumps(baseline))
    latency_hit["arms"][1]["p99_ms"] = 96.0  # +20%
    failures = compare_report("latency", baseline, latency_hit, threshold)
    if not any("arms.per_anchor.p99_ms" in f for f in failures):
        print("self-test FAIL: +20% latency not caught", file=sys.stderr)
        return 1

    # A band metric must fail on a 20% drift in EITHER direction and
    # tolerate drift inside the threshold.
    for factor, tag in ((1.2, "upward"), (0.8, "downward")):
        drifted = json.loads(json.dumps(baseline))
        drifted["attack"]["mae_inflation"] = 2.4 * factor
        failures = compare_report("band", baseline, drifted, threshold)
        if not any("attack.mae_inflation" in f for f in failures):
            print(f"self-test FAIL: {tag} band drift not caught",
                  file=sys.stderr)
            return 1
    within = json.loads(json.dumps(baseline))
    within["attack"]["mae_inflation"] = 2.4 * 1.05
    if compare_report("band-ok", baseline, within, threshold):
        print("self-test FAIL: in-band drift flagged", file=sys.stderr)
        return 1

    # A _directions annotation must gate an otherwise-ungated leaf, win
    # over the global table (up -> band here), and never be compared as a
    # metric itself.
    annotated = json.loads(json.dumps(baseline))
    annotated["_directions"] = {"queries_per_plan": "down",
                                "storm.availability": "band"}
    annotated["attack"]["queries_per_plan"] = 128.0
    worse = json.loads(json.dumps(annotated))
    worse["attack"]["queries_per_plan"] = 200.0
    worse["storm"]["availability"] = 0.9995 * 1.3
    failures = compare_report("annotated", annotated, worse, threshold)
    if not any("attack.queries_per_plan" in f for f in failures):
        print("self-test FAIL: _directions leaf annotation not applied",
              file=sys.stderr)
        return 1
    if not any("storm.availability" in f and "drifted" in f
               for f in failures):
        print("self-test FAIL: _directions path override did not beat the "
              "global table", file=sys.stderr)
        return 1
    if any("_directions" in f for f in failures):
        print("self-test FAIL: _directions block compared as a metric",
              file=sys.stderr)
        return 1

    # An annotation whose key matches nothing in the baseline must fail
    # loudly — both when the metric never existed and when the bench arm
    # that emitted it was dropped — instead of silently gating nothing.
    ghost = json.loads(json.dumps(baseline))
    ghost["_directions"] = {"open_loop.max_sustainable_qps": "up"}
    failures = compare_report("ghost", ghost,
                              json.loads(json.dumps(ghost)), threshold)
    if not any("matches no metric" in f and "max_sustainable_qps" in f
               for f in failures):
        print("self-test FAIL: _directions key absent from the baseline "
              "not caught", file=sys.stderr)
        return 1
    orphaned = json.loads(json.dumps(baseline))
    orphaned["_directions"] = {"storm.availability": "band"}
    del orphaned["storm"]
    failures = compare_report("orphaned", orphaned,
                              json.loads(json.dumps(orphaned)), threshold)
    if not any("matches no metric" in f for f in failures):
        print("self-test FAIL: annotation orphaned by a dropped arm not "
              "caught", file=sys.stderr)
        return 1
    bad_direction = json.loads(json.dumps(baseline))
    bad_direction["_directions"] = {"storm.availability": "sideways"}
    failures = compare_report("bad-direction", bad_direction,
                              json.loads(json.dumps(bad_direction)),
                              threshold)
    if not any("unknown direction" in f for f in failures):
        print("self-test FAIL: unknown _directions value not caught",
              file=sys.stderr)
        return 1

    # _epsilons: an absolute cap must pass in-band fresh values (either
    # sign), fail out-of-band ones (either sign), never compare the block
    # itself, and validate its keys/caps loudly.
    capped = json.loads(json.dumps(baseline))
    capped["arms"][0]["mae_delta_kmh"] = 0.02
    capped["_epsilons"] = {"mae_delta_kmh": 0.5}
    for fresh_delta in (0.3, -0.3):
        ok = json.loads(json.dumps(capped))
        ok["arms"][0]["mae_delta_kmh"] = fresh_delta
        if compare_report("eps-ok", capped, ok, threshold):
            print(f"self-test FAIL: in-cap delta {fresh_delta} flagged",
                  file=sys.stderr)
            return 1
    for fresh_delta in (0.8, -0.8):
        bad = json.loads(json.dumps(capped))
        bad["arms"][0]["mae_delta_kmh"] = fresh_delta
        failures = compare_report("eps-bad", capped, bad, threshold)
        if not any("absolute cap" in f and "mae_delta_kmh" in f
                   for f in failures):
            print(f"self-test FAIL: out-of-cap delta {fresh_delta} not "
                  "caught", file=sys.stderr)
            return 1
        if any("_epsilons" in f and "absolute cap" in f for f in failures):
            print("self-test FAIL: _epsilons block compared as a metric",
                  file=sys.stderr)
            return 1
    ghost_eps = json.loads(json.dumps(baseline))
    ghost_eps["_epsilons"] = {"no_such_metric": 0.5}
    failures = compare_report("eps-ghost", ghost_eps,
                              json.loads(json.dumps(ghost_eps)), threshold)
    if not any("matches no metric" in f and "no_such_metric" in f
               for f in failures):
        print("self-test FAIL: _epsilons ghost key not caught",
              file=sys.stderr)
        return 1
    for bad_cap in (0, -0.5, "0.5", True):
        invalid = json.loads(json.dumps(capped))
        invalid["_epsilons"] = {"mae_delta_kmh": bad_cap}
        failures = compare_report("eps-invalid", invalid,
                                  json.loads(json.dumps(invalid)),
                                  threshold)
        if not any("invalid cap" in f for f in failures):
            print(f"self-test FAIL: invalid epsilon cap {bad_cap!r} not "
                  "caught", file=sys.stderr)
            return 1
    vanished_eps = json.loads(json.dumps(capped))
    del vanished_eps["arms"][0]["mae_delta_kmh"]
    failures = compare_report("eps-vanished", capped, vanished_eps,
                              threshold)
    if not any("vanished" in f and "mae_delta_kmh" in f for f in failures):
        print("self-test FAIL: epsilon-gated metric vanishing not caught",
              file=sys.stderr)
        return 1

    # --epsilons-only: a huge relative regression must pass (the portable
    # build's timings are not comparable) while a blown accuracy cap must
    # still fail.
    slow_but_accurate = json.loads(json.dumps(capped))
    slow_but_accurate["arms"][0]["anchors_per_sec"] = 1.0  # -99.9%
    if compare_report("eps-only-slow", capped, slow_but_accurate, threshold,
                      epsilons_only=True):
        print("self-test FAIL: --epsilons-only still gated a relative "
              "regression", file=sys.stderr)
        return 1
    slow_and_wrong = json.loads(json.dumps(slow_but_accurate))
    slow_and_wrong["arms"][0]["mae_delta_kmh"] = 0.8
    failures = compare_report("eps-only-wrong", capped, slow_and_wrong,
                              threshold, epsilons_only=True)
    if not any("absolute cap" in f for f in failures):
        print("self-test FAIL: --epsilons-only missed a blown cap",
              file=sys.stderr)
        return 1

    # Arm order must not matter, and a vanished arm must fail.
    reordered = json.loads(json.dumps(baseline))
    reordered["arms"].reverse()
    if compare_report("reordered", baseline, reordered, threshold):
        print("self-test FAIL: reordered arms flagged", file=sys.stderr)
        return 1
    dropped = json.loads(json.dumps(baseline))
    dropped["arms"] = dropped["arms"][:1]
    if not compare_report("dropped", baseline, dropped, threshold):
        print("self-test FAIL: vanished arm not caught", file=sys.stderr)
        return 1

    # --require-baselines must turn "no baselines" from a silent pass
    # into a failure (the CI gate relies on this to detect a broken
    # checkout), while the default stays permissive for local runs.
    with tempfile.TemporaryDirectory() as tmp:
        missing = Path(tmp) / "baselines"
        if run(tmp, missing, threshold) != 0:
            print("self-test FAIL: missing baselines dir failed without "
                  "--require-baselines", file=sys.stderr)
            return 1
        if run(tmp, missing, threshold, require_baselines=True) != 1:
            print("self-test FAIL: --require-baselines passed with no "
                  "baselines dir", file=sys.stderr)
            return 1

    # A malformed (unparseable) baseline must fail loudly with the
    # distinct exit code 2 — never be skipped as "nothing to gate" —
    # whether the rot is in the committed baseline or the fresh report.
    with tempfile.TemporaryDirectory() as tmp:
        fresh_dir = Path(tmp) / "fresh"
        baseline_dir = Path(tmp) / "baselines"
        fresh_dir.mkdir()
        baseline_dir.mkdir()
        (baseline_dir / "perf_broken.json").write_text("{not json",
                                                       encoding="utf-8")
        (fresh_dir / "perf_broken.json").write_text(
            json.dumps(baseline), encoding="utf-8")
        if run(fresh_dir, baseline_dir, threshold) != 2:
            print("self-test FAIL: malformed baseline JSON did not exit 2",
                  file=sys.stderr)
            return 1
        (baseline_dir / "perf_broken.json").write_text(
            json.dumps(baseline), encoding="utf-8")
        (fresh_dir / "perf_broken.json").write_text("[truncated",
                                                    encoding="utf-8")
        if run(fresh_dir, baseline_dir, threshold) != 2:
            print("self-test FAIL: malformed fresh JSON did not exit 2",
                  file=sys.stderr)
            return 1

    print("self-test PASS: identical ok, -20% throughput and +20% latency "
          "caught, band drift caught both ways, _directions annotations "
          "honored and validated (ghost keys and unknown directions fail "
          "loudly), _epsilons absolute caps enforced both ways and "
          "validated, --epsilons-only skips relative gates but keeps caps, "
          "arm order ignored, vanished arm caught, missing baselines fail "
          "under --require-baselines, malformed baseline/fresh JSON exits 2")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", default="bench_out",
                        help="directory with freshly produced perf_*.json")
    parser.add_argument("--baselines", default="bench_out/baselines",
                        help="directory with committed baseline perf_*.json")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative regression (default 0.15)")
    parser.add_argument("--require-baselines", action="store_true",
                        help="fail (exit 1) when the baselines directory "
                             "is empty or missing instead of passing; CI "
                             "uses this so a bad checkout cannot silently "
                             "disable the gate")
    parser.add_argument("--epsilons-only", action="store_true",
                        help="gate only the _epsilons absolute caps and "
                             "skip the relative (direction) comparisons; "
                             "for portable-ISA CI builds whose timings are "
                             "not comparable to the committed baselines")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the comparator catches a synthetic "
                             "20%% regression, then exit")
    args = parser.parse_args()
    if not 0 < args.threshold < 1:
        parser.error("--threshold must be in (0, 1)")
    if args.self_test:
        return self_test(args.threshold)
    return run(args.fresh, args.baselines, args.threshold,
               args.require_baselines, args.epsilons_only)


if __name__ == "__main__":
    sys.exit(main())
