#!/usr/bin/env bash
# clang-format gate for the files held to canonical formatting. The list
# grows as files are touched; legacy files join once they have been
# reformatted in a dedicated change, so the gate never churns history it
# does not own.
set -euo pipefail
cd "$(dirname "$0")/.."

FILES=(
  src/util/thread_pool.h
  src/util/thread_pool.cc
  tests/thread_pool_test.cc
)

fmt=""
for candidate in clang-format clang-format-18 clang-format-16 clang-format-15 \
    clang-format-14; do
  if command -v "${candidate}" >/dev/null 2>&1; then
    fmt="${candidate}"
    break
  fi
done
if [[ -z "${fmt}" ]]; then
  echo "check_format: clang-format not found; install it or run in CI" >&2
  exit 2
fi

"${fmt}" --version
"${fmt}" --dry-run --Werror "${FILES[@]}"
echo "check_format: ${#FILES[@]} files clean"
