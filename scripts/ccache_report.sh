#!/usr/bin/env bash
# Prints ccache statistics plus a single computed hit-rate line that is
# easy to eyeball in CI logs. Pair with `ccache -z` right after the cache
# restore so the rate covers exactly this workflow run.
set -euo pipefail

if ! command -v ccache > /dev/null 2>&1; then
  echo "ccache not installed; skipping stats"
  exit 0
fi

ccache --show-stats

# --print-stats emits machine-readable "key\tvalue" lines on ccache >= 4.
stats=$(ccache --print-stats 2> /dev/null || true)
if [[ -z "${stats}" ]]; then
  echo "ccache hit rate: unavailable (ccache too old for --print-stats)"
  exit 0
fi
hits=$(awk -F'\t' '$1 == "direct_cache_hit" || $1 == "preprocessed_cache_hit" { s += $2 } END { print s + 0 }' <<< "${stats}")
misses=$(awk -F'\t' '$1 == "cache_miss" { s += $2 } END { print s + 0 }' <<< "${stats}")
total=$((hits + misses))
if [[ "${total}" -eq 0 ]]; then
  echo "ccache hit rate: n/a (no compilations recorded)"
else
  echo "ccache hit rate: $((100 * hits / total))% (${hits}/${total} compilations)"
fi
