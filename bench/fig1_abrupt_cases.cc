// Fig. 1 reproduction: locate and print the dataset's abrupt-change case
// studies — morning/evening rush hour, a rainy day, and an accident
// recovery — on the target road, marking every interval that crosses the
// paper's |ds/s| >= 0.3 threshold. Emits one CSV per scenario under
// ./bench_out/ for re-plotting.

#include <cstdio>
#include <filesystem>
#include <string>

#include "eval/profile.h"
#include "eval/scenarios.h"
#include "metrics/segmentation.h"
#include "traffic/dataset_generator.h"
#include "util/csv.h"
#include "util/string_util.h"

int main() {
  using namespace apots;

  std::filesystem::create_directories("bench_out");
  eval::EvalProfile profile = eval::EvalProfile::FromEnv();
  std::printf("=== Fig. 1: abrupt changes in traffic speed (profile: %s)"
              " ===\n\n",
              profile.LevelName().c_str());
  const traffic::TrafficDataset dataset =
      traffic::GenerateDataset(profile.dataset);
  const int road = dataset.num_roads() / 2;

  int total_abrupt = 0;
  for (long t = 1; t < dataset.num_intervals(); ++t) {
    if (metrics::ClassifyInstant(dataset, road, t, profile.abrupt_theta) !=
        metrics::Segment::kNormal) {
      ++total_abrupt;
    }
  }
  std::printf("dataset: %d roads x %ld intervals (%d days); %d abrupt "
              "instants on the target road (theta=%.2f)\n\n",
              dataset.num_roads(), dataset.num_intervals(),
              dataset.num_days(), total_abrupt, profile.abrupt_theta);

  for (const eval::ScenarioWindow& window :
       eval::FindScenarioWindows(dataset, road)) {
    if (!window.found) {
      std::printf("--- %s: not present in this dataset seed ---\n\n",
                  window.name.c_str());
      continue;
    }
    std::printf("--- %s (intervals %ld..%ld, day %ld) ---\n",
                window.name.c_str(), window.start,
                window.start + window.length - 1,
                window.start / dataset.intervals_per_day());
    // Console sparkline: one line per 15 minutes.
    std::string csv_path = "bench_out/fig1_" + window.name + ".csv";
    auto writer = CsvWriter::Open(
        csv_path, {"interval", "hour", "speed_kmh", "precip_mm", "event",
                   "abrupt"});
    for (long t = window.start; t < window.start + window.length; ++t) {
      const auto segment =
          metrics::ClassifyInstant(dataset, road, t, profile.abrupt_theta);
      const char* mark = segment == metrics::Segment::kNormal
                             ? ""
                             : (segment ==
                                        metrics::Segment::kAbruptDeceleration
                                    ? "  << ABRUPT DEC"
                                    : "  << ABRUPT ACC");
      if ((t - window.start) % 3 == 0 || segment != metrics::Segment::kNormal) {
        const double hour = dataset.FractionalHour(t);
        const int bar = static_cast<int>(dataset.Speed(road, t) / 2.5);
        std::printf("%02d:%02d %6.1f km/h |%s%s\n", static_cast<int>(hour),
                    static_cast<int>(hour * 60) % 60,
                    static_cast<double>(dataset.Speed(road, t)),
                    std::string(static_cast<size_t>(bar), '#').c_str(),
                    mark);
      }
      if (writer.ok()) {
        (void)writer.value().WriteRow(std::vector<std::string>{
            StrFormat("%ld", t),
            StrFormat("%.3f", dataset.FractionalHour(t)),
            StrFormat("%.2f", static_cast<double>(dataset.Speed(road, t))),
            StrFormat("%.2f", static_cast<double>(
                                  dataset.Weather(t).precipitation_mm)),
            StrFormat("%.0f", static_cast<double>(dataset.EventFlag(road, t))),
            segment == metrics::Segment::kNormal ? "0" : "1"});
      }
    }
    if (writer.ok()) {
      (void)writer.value().Close();
      std::printf("(series written to %s)\n", csv_path.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
