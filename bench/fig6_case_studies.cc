// Fig. 6 reproduction: prediction traces of the eight models (F, C, L, H
// and APOTS F, APOTS C, APOTS L, APOTS H) on the four real-situation
// windows — morning rush, evening rush, rainy day, accident recovery.
// Prints the per-window MAE leaderboard and writes the full predicted
// series per scenario to bench_out/fig6_<scenario>.csv.

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/apots_model.h"
#include "eval/experiment.h"
#include "eval/profile.h"
#include "eval/scenarios.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  std::filesystem::create_directories("bench_out");
  eval::EvalProfile profile = eval::EvalProfile::FromEnv();
  std::printf("=== Fig. 6: case-study predictions (profile: %s) ===\n\n",
              profile.LevelName().c_str());
  eval::Experiment experiment(profile);
  const auto& dataset = experiment.dataset();
  const int road = experiment.target_road();

  // Train the eight models: plain X (speed only, no adversarial) and
  // APOTS X (both additional-data blocks + adversarial).
  struct Entry {
    std::string label;
    std::unique_ptr<core::ApotsModel> model;
  };
  std::vector<Entry> entries;
  for (core::PredictorType type :
       {core::PredictorType::kFc, core::PredictorType::kCnn,
        core::PredictorType::kLstm, core::PredictorType::kHybrid}) {
    for (bool apots_mode : {false, true}) {
      eval::ModelSpec spec;
      spec.predictor = type;
      spec.adversarial = apots_mode;
      spec.features = apots_mode ? data::FeatureConfig::Both()
                                 : data::FeatureConfig::SpeedOnly();
      Entry entry;
      entry.label = (apots_mode ? std::string("APOTS ") : std::string()) +
                    core::PredictorTypeName(type);
      entry.model = std::make_unique<core::ApotsModel>(
          &dataset, experiment.MakeConfig(spec));
      entry.model->Train(experiment.train_anchors());
      std::printf("trained %s\n", entry.label.c_str());
      entries.push_back(std::move(entry));
    }
  }
  std::printf("\n");

  for (const eval::ScenarioWindow& window :
       eval::FindScenarioWindows(dataset, road)) {
    if (!window.found) {
      std::printf("--- %s: not present in this dataset seed ---\n\n",
                  window.name.c_str());
      continue;
    }
    std::vector<long> anchors;
    for (long t = window.start; t < window.start + window.length; ++t) {
      if (t - profile.alpha >= 0 &&
          t + profile.beta < dataset.num_intervals()) {
        anchors.push_back(t);
      }
    }
    std::vector<double> truths(anchors.size());
    for (size_t i = 0; i < anchors.size(); ++i) {
      truths[i] = dataset.Speed(road, anchors[i] + profile.beta);
    }

    std::vector<std::string> header = {"interval", "hour", "real"};
    for (const Entry& entry : entries) header.push_back(entry.label);
    auto writer =
        CsvWriter::Open("bench_out/fig6_" + window.name + ".csv", header);

    std::vector<std::vector<double>> all_predictions;
    TablePrinter table({"model", "window MAE", "window MAPE[%]"});
    for (Entry& entry : entries) {
      std::vector<double> predictions = entry.model->PredictKmh(anchors);
      double abs_sum = 0.0, pct_sum = 0.0;
      for (size_t i = 0; i < anchors.size(); ++i) {
        abs_sum += std::fabs(predictions[i] - truths[i]);
        pct_sum += std::fabs(predictions[i] - truths[i]) /
                   std::max(1.0, truths[i]) * 100.0;
      }
      table.AddRow({entry.label,
                    FormatMetric(abs_sum / anchors.size()),
                    FormatMetric(pct_sum / anchors.size())});
      all_predictions.push_back(std::move(predictions));
    }
    std::printf("--- %s (%zu instants) ---\n", window.name.c_str(),
                anchors.size());
    table.Print();
    if (writer.ok()) {
      for (size_t i = 0; i < anchors.size(); ++i) {
        std::vector<std::string> fields = {
            StrFormat("%ld", anchors[i]),
            StrFormat("%.3f",
                      dataset.FractionalHour(anchors[i] + profile.beta)),
            StrFormat("%.2f", truths[i])};
        for (const auto& predictions : all_predictions) {
          fields.push_back(StrFormat("%.2f", predictions[i]));
        }
        (void)writer.value().WriteRow(fields);
      }
      (void)writer.value().Close();
      std::printf("(series written to bench_out/fig6_%s.csv)\n\n",
                  window.name.c_str());
    }
  }
  std::printf("Paper reference: the APOTS variants track the abrupt drops "
              "and recoveries closely in\nall four situations while the "
              "plain predictors lag or overshoot.\n");
  return 0;
}
