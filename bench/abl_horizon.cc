// Horizon ablation: the paper never states its prediction horizon beta.
// This bench sweeps beta in {1, 3, 6, 12} (5 min .. 1 h) for the F
// predictor with and without additional data, showing (a) why we default
// to beta = 3 for the scaled profiles — at beta = 1 the task is
// near-trivial and every contrast collapses — and (b) that the value of
// contextual data GROWS with the horizon, since the recent speed window
// alone carries less and less information about the prediction instant.

#include <cstdio>
#include <filesystem>

#include "eval/experiment.h"
#include "eval/profile.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  std::filesystem::create_directories("bench_out");
  eval::EvalProfile base = eval::EvalProfile::FromEnv();
  std::printf("=== Ablation: prediction horizon beta (profile: %s) ===\n\n",
              base.LevelName().c_str());

  TablePrinter table({"beta", "minutes", "F speed-only", "F both",
                      "gain from context", "AR"});
  auto writer = CsvWriter::Open(
      "bench_out/abl_horizon.csv",
      {"beta", "f_speed_mape", "f_both_mape", "gain_pct", "ar_mape"});

  for (int beta : {1, 3, 6, 12}) {
    eval::EvalProfile profile = base;
    profile.beta = beta;
    // One experiment per horizon: the split and segment labels depend on
    // the target instant.
    eval::Experiment experiment(profile);

    eval::ModelSpec speed_only;
    speed_only.predictor = core::PredictorType::kFc;
    speed_only.features = data::FeatureConfig::SpeedOnly();
    const eval::EvalRow base_row = experiment.RunModel(speed_only);

    eval::ModelSpec both = speed_only;
    both.features = data::FeatureConfig::Both();
    const eval::EvalRow rich_row = experiment.RunModel(both);

    const eval::EvalRow ar_row = experiment.RunArModel();
    const double gain =
        metrics::GainPercent(rich_row.whole.mape, base_row.whole.mape);
    table.AddRow({StrFormat("%d", beta), StrFormat("%d", beta * 5),
                  FormatMetric(base_row.whole.mape),
                  FormatMetric(rich_row.whole.mape), FormatGain(gain),
                  FormatMetric(ar_row.whole.mape)});
    if (writer.ok()) {
      (void)writer.value().WriteRow(std::vector<std::string>{
          StrFormat("%d", beta), StrFormat("%.4f", base_row.whole.mape),
          StrFormat("%.4f", rich_row.whole.mape), StrFormat("%.4f", gain),
          StrFormat("%.4f", ar_row.whole.mape)});
    }
  }
  table.Print();
  if (writer.ok()) (void)writer.value().Close();
  std::printf("\nExpected shape: MAPE grows with the horizon for every "
              "model; the relative value of\nadditional data grows with "
              "it (context substitutes for the fading recent window).\n");
  return 0;
}
