// Robustness bench: accuracy vs. injected sensor-fault rate. Trains one
// Hybrid model on clean data, then evaluates the same weights against
// datasets corrupted at 0/5/15/30% with two arms per rate:
//   raw      — corrupted speeds fed straight to the predictor
//   repaired — LOCF+profile imputation plus historical-average fallback
// Scoring always skips fault-fabricated targets. Emits an ASCII table and
// bench_out/robustness_faults.json alongside the other BENCH_* artifacts.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/apots_model.h"
#include "data/imputation.h"
#include "eval/experiment.h"
#include "eval/profile.h"
#include "metrics/metrics.h"
#include "traffic/fault_injector.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct BenchRow {
  double rate = 0.0;
  std::string arm;
  double valid_ratio = 1.0;
  apots::metrics::MetricSet metrics;
  size_t fallbacks = 0;
};

}  // namespace

int main() {
  using namespace apots;

  std::filesystem::create_directories("bench_out");
  eval::EvalProfile profile = eval::EvalProfile::FromEnv();
  std::printf("=== Robustness: Hybrid accuracy vs. sensor-fault rate "
              "(profile: %s) ===\n\n",
              profile.LevelName().c_str());
  eval::Experiment experiment(profile);

  eval::ModelSpec spec;
  spec.predictor = core::PredictorType::kHybrid;
  spec.features = data::FeatureConfig::Both();
  core::ApotsConfig config = experiment.MakeConfig(spec);
  config.training.guard.enabled = true;

  const traffic::TrafficDataset clean = experiment.dataset();
  traffic::TrafficDataset train_view = clean;
  core::ApotsModel model(&train_view, config);
  std::printf("training %s on %zu anchors (%zu weights)...\n",
              config.Tag().c_str(), experiment.train_anchors().size(),
              model.NumWeights());
  auto trained = model.TrainGuarded(experiment.train_anchors());
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  if (trained.value().rollbacks > 0) {
    std::printf("guard: %d rollback(s) during training\n",
                trained.value().rollbacks);
  }

  const int target = model.assembler().target_road();
  const int beta = model.assembler().beta();
  const std::vector<long>& test = experiment.test_anchors();
  std::vector<double> truths(test.size());
  for (size_t i = 0; i < test.size(); ++i) {
    truths[i] = clean.Speed(target, test[i] + beta);
  }

  std::vector<BenchRow> rows;
  for (double rate : {0.0, 0.05, 0.15, 0.30}) {
    traffic::TrafficDataset faulted = clean;
    traffic::FaultSpec fault_spec;
    fault_spec.rate = rate;
    fault_spec.seed = 777;
    auto mask_result = traffic::FaultInjector(fault_spec).Inject(&faulted);
    if (!mask_result.ok()) {
      std::fprintf(stderr, "injection failed: %s\n",
                   mask_result.status().ToString().c_str());
      return 1;
    }
    const traffic::ValidityMask mask = std::move(mask_result).value();
    const std::vector<bool> observed =
        metrics::ObservedTargetMask(mask, test, target, beta);

    traffic::TrafficDataset repaired = faulted;
    if (rate > 0.0) {
      auto repair = data::ImputeSpeeds(&repaired, mask);
      if (!repair.ok()) {
        std::fprintf(stderr, "imputation failed: %s\n",
                     repair.status().ToString().c_str());
        return 1;
      }
    }

    for (const bool use_repair : {false, true}) {
      core::ApotsConfig eval_config = config;
      eval_config.fallback.enabled = use_repair;
      traffic::TrafficDataset& bound = use_repair ? repaired : faulted;
      core::ApotsModel eval_model(&bound, eval_config);
      if (const Status st = eval_model.CopyWeightsFrom(model); !st.ok()) {
        std::fprintf(stderr, "weight transfer failed: %s\n",
                     st.ToString().c_str());
        return 1;
      }
      if (use_repair) {
        eval_model.SetValidityMask(&mask);
        eval_model.FitFallback(experiment.train_anchors());
      }
      BenchRow row;
      row.rate = rate;
      row.arm = use_repair ? "repaired" : "raw";
      row.valid_ratio = mask.ValidRatio();
      row.metrics =
          metrics::ComputeMasked(eval_model.PredictKmh(test), truths,
                                 observed);
      row.fallbacks = eval_model.last_fallback_count();
      rows.push_back(row);
    }
  }

  TablePrinter table({"fault rate", "arm", "valid", "MAE", "RMSE", "MAPE",
                      "fallback", "scored"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    table.AddRow({StrFormat("%.0f%%", row.rate * 100.0), row.arm,
                  StrFormat("%.1f%%", row.valid_ratio * 100.0),
                  FormatMetric(row.metrics.mae),
                  FormatMetric(row.metrics.rmse),
                  StrFormat("%.2f%%", row.metrics.mape),
                  StrFormat("%zu", row.fallbacks),
                  StrFormat("%zu", row.metrics.count)});
    if (i % 2 == 1 && i + 1 < rows.size()) table.AddSeparator();
  }
  table.Print();

  // Acceptance check: imputation+fallback holds MAE within 25% of the
  // clean-data MAE at a 15% fault rate.
  double clean_mae = 0.0, repaired_mae_15 = 0.0;
  for (const BenchRow& row : rows) {
    if (row.rate == 0.0 && row.arm == "repaired") clean_mae = row.metrics.mae;
    if (row.rate == 0.15 && row.arm == "repaired") {
      repaired_mae_15 = row.metrics.mae;
    }
  }
  const double degradation =
      clean_mae > 0.0 ? (repaired_mae_15 - clean_mae) / clean_mae * 100.0
                      : 0.0;
  std::printf("\nrepaired MAE at 15%% faults: %.2f vs clean %.2f "
              "(%+.1f%%; target <= +25%%) — %s\n",
              repaired_mae_15, clean_mae, degradation,
              degradation <= 25.0 ? "OK" : "FAIL");

  std::FILE* json = std::fopen("bench_out/robustness_faults.json", "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write bench_out/robustness_faults.json\n");
    return 1;
  }
  std::fprintf(json,
               "{\n  \"bench\": \"robustness_faults\",\n"
               "  \"profile\": \"%s\",\n  \"predictor\": \"H\",\n"
               "  \"clean_mae\": %.4f,\n"
               "  \"repaired_mae_15\": %.4f,\n"
               "  \"degradation_pct_15\": %.2f,\n  \"rows\": [\n",
               profile.LevelName().c_str(), clean_mae, repaired_mae_15,
               degradation);
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    std::fprintf(
        json,
        "    {\"fault_rate\": %.2f, \"arm\": \"%s\", \"valid_ratio\": "
        "%.4f, \"mae\": %.4f, \"rmse\": %.4f, \"mape\": %.4f, "
        "\"fallback_count\": %zu, \"scored\": %zu}%s\n",
        row.rate, row.arm.c_str(), row.valid_ratio, row.metrics.mae,
        row.metrics.rmse, row.metrics.mape, row.fallbacks,
        row.metrics.count, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("wrote bench_out/robustness_faults.json\n");
  return degradation <= 25.0 ? 0 : 1;
}
