// Inference latency/throughput benchmark for the batched zero-allocation
// runtime (PR 3). Times repeated PredictKmh rounds over a fixed anchor set
// under three arms and writes a machine-readable report (default
// bench_out/perf_pr3.json) that CI archives and gates on:
//   per_anchor        batch 1, allocating forward, no feature cache — the
//                     seed's one-anchor-at-a-time deployment path
//   batched           batch 64, workspace arenas + feature cache, 1 thread
//   batched_parallel  batch 64, workspace arenas + feature cache, batches
//                     sharded across min(4, hardware_concurrency) threads
//                     (APOTS_NUM_THREADS overrides when > 1)
// Every arm must produce bitwise identical predictions — the report
// records the comparison (cold and warm cache) next to the timings.
//
// Flags: --perf_json[=path] selects the output file; --quick shrinks the
// anchor set and round counts for CI smoke runs.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/apots_model.h"
#include "data/windowing.h"
#include "obs/metrics.h"
#include "traffic/dataset_generator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace apots;

size_t ParallelThreads() {
  if (const char* env = std::getenv("APOTS_NUM_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 1) return static_cast<size_t>(parsed);
  }
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  return std::min<size_t>(4, hw);
}

core::ApotsConfig ModelConfig() {
  core::ApotsConfig config;
  // LSTM at half paper width: the most GEMM- and dispatch-heavy predictor,
  // so batching effects dominate the measurement. Weights keep their
  // deterministic random initialization — latency does not depend on the
  // weight values, and bitwise identity must hold for any weights.
  config.predictor =
      core::PredictorHparams::Scaled(core::PredictorType::kLstm, 2);
  config.features = data::FeatureConfig::Both();
  config.features.num_adjacent = 1;  // the Small dataset has 3 roads
  config.features.beta = 3;
  config.seed = 99;
  return config;
}

struct ArmSpec {
  const char* name;
  core::InferenceConfig cfg;
  size_t threads;
  size_t rounds;
};

struct ArmResult {
  ArmSpec spec;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double anchors_per_sec = 0.0;
  bool bitwise_cold = false;
  bool bitwise_warm = false;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
};

ArmResult RunArm(core::ApotsModel* model, const std::vector<long>& anchors,
                 const ArmSpec& spec,
                 const std::vector<double>& baseline) {
  ArmResult result;
  result.spec = spec;
  ResetGlobalPool(spec.threads);
  model->SetInferenceConfig(spec.cfg);  // fresh runtime: cold cache + arenas

  // Per-arm latency histogram from the shared registry: percentiles come
  // from one definition (obs::Histogram) instead of a local sort-and-index,
  // and land in any --metrics-json dump alongside the runtime's own
  // instruments.
  obs::Histogram& latency_ms = obs::MetricsRegistry::Default().GetHistogram(
      std::string("bench.infer_latency.") + spec.name + ".call_ms");
  latency_ms.Reset();
  double total_seconds = 0.0;
  for (size_t round = 0; round < spec.rounds; ++round) {
    Stopwatch watch;
    const std::vector<double> pred = model->PredictKmh(anchors);
    const double seconds = watch.ElapsedSeconds();
    latency_ms.Record(seconds * 1e3);
    total_seconds += seconds;
    const bool match = !baseline.empty() && pred == baseline;
    if (round == 0) result.bitwise_cold = match;
    result.bitwise_warm = match;
  }
  result.p50_ms = latency_ms.Percentile(0.50);
  result.p99_ms = latency_ms.Percentile(0.99);
  result.anchors_per_sec =
      static_cast<double>(anchors.size() * spec.rounds) / total_seconds;
  if (auto* cache = model->inference_runtime().feature_cache()) {
    const auto stats = cache->stats();
    result.cache_hits = stats.hits;
    result.cache_misses = stats.misses;
  }
  ResetGlobalPool(1);
  return result;
}

int Run(const std::string& path, bool quick) {
  traffic::TrafficDataset dataset =
      traffic::GenerateDataset(traffic::DatasetSpec::Small(3));
  auto split = data::MakeSplit(dataset, 12, 3, 0.2,
                               data::SplitStrategy::kBlockedByDay, 11);
  const size_t cap = quick ? 96 : 384;
  std::vector<long> anchors(split.test.begin(),
                            split.test.begin() +
                                std::min<size_t>(cap, split.test.size()));

  core::ApotsModel model(&dataset, ModelConfig());
  const size_t threads = ParallelThreads();

  core::InferenceConfig per_anchor;
  per_anchor.batch_size = 1;
  per_anchor.parallel = false;
  per_anchor.use_workspace = false;
  per_anchor.use_feature_cache = false;

  core::InferenceConfig batched;  // defaults: B=64, workspace + cache
  batched.parallel = false;

  core::InferenceConfig batched_parallel;
  batched_parallel.parallel = true;

  const size_t slow_rounds = quick ? 2 : 8;
  const size_t fast_rounds = quick ? 4 : 24;
  const ArmSpec arms[] = {
      {"per_anchor", per_anchor, 1, slow_rounds},
      {"batched", batched, 1, fast_rounds},
      {"batched_parallel", batched_parallel, threads, fast_rounds},
  };

  // Ground truth for the bitwise comparison: the seed-semantics arm.
  model.SetInferenceConfig(per_anchor);
  const std::vector<double> baseline = model.PredictKmh(anchors);

  std::vector<ArmResult> results;
  for (const ArmSpec& spec : arms) {
    results.push_back(RunArm(&model, anchors, spec, baseline));
    const ArmResult& r = results.back();
    std::fprintf(stderr,
                 "%-17s p50 %8.2fms  p99 %8.2fms  %9.1f anchors/s  "
                 "bitwise cold=%d warm=%d\n",
                 r.spec.name, r.p50_ms, r.p99_ms, r.anchors_per_sec,
                 r.bitwise_cold ? 1 : 0, r.bitwise_warm ? 1 : 0);
  }

  const auto arm = [&results](const char* name) -> const ArmResult& {
    for (const ArmResult& r : results) {
      if (std::strcmp(r.spec.name, name) == 0) return r;
    }
    std::fprintf(stderr, "missing arm %s\n", name);
    std::exit(1);
  };
  bool bitwise_all = true;
  for (const ArmResult& r : results) {
    bitwise_all = bitwise_all && r.bitwise_cold && r.bitwise_warm;
  }

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"infer_latency\",\n"
      << "  \"config\": {\n"
      << "    \"predictor\": \"lstm_scaled_2\",\n"
      << "    \"anchors\": " << anchors.size() << ",\n"
      << "    \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "    \"parallel_threads\": " << threads << "\n"
      << "  },\n"
      << "  \"arms\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    out << "    {\"name\": \"" << r.spec.name
        << "\", \"batch_size\": " << r.spec.cfg.batch_size
        << ", \"threads\": " << r.spec.threads
        << ", \"workspace\": " << (r.spec.cfg.use_workspace ? "true" : "false")
        << ", \"feature_cache\": "
        << (r.spec.cfg.use_feature_cache ? "true" : "false")
        << ", \"rounds\": " << r.spec.rounds << ", \"p50_ms\": " << r.p50_ms
        << ", \"p99_ms\": " << r.p99_ms
        << ", \"anchors_per_sec\": " << r.anchors_per_sec
        << ", \"cache_hits\": " << r.cache_hits
        << ", \"cache_misses\": " << r.cache_misses
        << ", \"bitwise_match_cold\": " << (r.bitwise_cold ? "true" : "false")
        << ", \"bitwise_match_warm\": " << (r.bitwise_warm ? "true" : "false")
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  const double base_rate = arm("per_anchor").anchors_per_sec;
  out << "  ],\n"
      << "  \"speedup_batched_vs_per_anchor\": "
      << arm("batched").anchors_per_sec / base_rate << ",\n"
      << "  \"speedup_batched_parallel_vs_per_anchor\": "
      << arm("batched_parallel").anchors_per_sec / base_rate << ",\n"
      << "  \"bitwise_match_all\": " << (bitwise_all ? "true" : "false")
      << "\n"
      << "}\n";
  out.close();
  std::fprintf(stderr, "wrote %s (batched+parallel vs per-anchor: %.2fx)\n",
               path.c_str(),
               arm("batched_parallel").anchors_per_sec / base_rate);
  return bitwise_all ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_out/perf_pr3.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      if (argv[i][11] == '=') path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  return Run(path, quick);
}
