// Inference latency/throughput benchmark for the batched zero-allocation
// runtime (PR 3). Times repeated PredictKmh rounds over a fixed anchor set
// under three arms and writes a machine-readable report (default
// bench_out/perf_pr3.json) that CI archives and gates on:
//   per_anchor        batch 1, allocating forward, no feature cache — the
//                     seed's one-anchor-at-a-time deployment path
//   batched           batch 64, workspace arenas + feature cache, 1 thread
//   batched_parallel  batch 64, workspace arenas + feature cache, batches
//                     sharded across min(4, hardware_concurrency) threads
//                     (APOTS_NUM_THREADS overrides when > 1)
//   simd              batched config on the packed-panel SIMD microkernels
//                     (runtime ISA dispatch; fp32, epsilon-exact)
//   int8 / fp16       batched config with quantized inference weights on
//                     the SIMD kernels
// Every fp32 blocked arm must produce bitwise identical predictions — the
// report records the comparison (cold and warm cache) next to the timings.
// The simd/int8/fp16 arms trade bitwise equality for an accuracy band:
// each reports mae_delta_kmh, its true-MAE (vs ground-truth speeds) minus
// the fp32 arm's, and the bench fails if any |delta| exceeds 0.5 km/h —
// quantization noise is near-zero-mean, so a healthy kernel moves accuracy
// by far less while a broken one blows the bound immediately.
//
// Flags: --perf_json[=path] selects the output file; --quick shrinks the
// anchor set and round counts for CI smoke runs.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/apots_model.h"
#include "data/windowing.h"
#include "obs/metrics.h"
#include "tensor/cpu_features.h"
#include "tensor/quant.h"
#include "tensor/tensor_ops.h"
#include "traffic/dataset_generator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace apots;

size_t ParallelThreads() {
  if (const char* env = std::getenv("APOTS_NUM_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 1) return static_cast<size_t>(parsed);
  }
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  return std::min<size_t>(4, hw);
}

core::ApotsConfig ModelConfig() {
  core::ApotsConfig config;
  // LSTM at half paper width: the most GEMM- and dispatch-heavy predictor,
  // so batching effects dominate the measurement. Weights keep their
  // deterministic random initialization — latency does not depend on the
  // weight values, and bitwise identity must hold for any weights.
  config.predictor =
      core::PredictorHparams::Scaled(core::PredictorType::kLstm, 2);
  config.features = data::FeatureConfig::Both();
  config.features.num_adjacent = 1;  // the Small dataset has 3 roads
  config.features.beta = 3;
  config.seed = 99;
  return config;
}

struct ArmSpec {
  const char* name;
  core::InferenceConfig cfg;
  tensor::KernelMode mode;
  size_t threads;
  size_t rounds;
  /// Bitwise-identity arms (blocked fp32). SIMD/quantized arms are gated
  /// on mae_delta_kmh instead.
  bool exact;
};

struct ArmResult {
  ArmSpec spec;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double anchors_per_sec = 0.0;
  bool bitwise_cold = false;
  bool bitwise_warm = false;
  size_t cache_hits = 0;
  size_t cache_misses = 0;
  double mae_kmh = 0.0;
  double mae_delta_kmh = 0.0;
  std::vector<double> predictions;  // last round, for the accuracy band
};

double MeanAbsError(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return a.empty() ? 0.0 : sum / static_cast<double>(a.size());
}

ArmResult RunArm(core::ApotsModel* model, const std::vector<long>& anchors,
                 const ArmSpec& spec,
                 const std::vector<double>& baseline) {
  ArmResult result;
  result.spec = spec;
  tensor::SetKernelMode(spec.mode);
  ResetGlobalPool(spec.threads);
  model->SetInferenceConfig(spec.cfg);  // fresh runtime: cold cache + arenas

  // Per-arm latency histogram from the shared registry: percentiles come
  // from one definition (obs::Histogram) instead of a local sort-and-index,
  // and land in any --metrics-json dump alongside the runtime's own
  // instruments.
  obs::Histogram& latency_ms = obs::MetricsRegistry::Default().GetHistogram(
      std::string("bench.infer_latency.") + spec.name + ".call_ms");
  latency_ms.Reset();
  double total_seconds = 0.0;
  for (size_t round = 0; round < spec.rounds; ++round) {
    Stopwatch watch;
    std::vector<double> pred = model->PredictKmh(anchors);
    const double seconds = watch.ElapsedSeconds();
    latency_ms.Record(seconds * 1e3);
    total_seconds += seconds;
    const bool match = !baseline.empty() && pred == baseline;
    if (round == 0) result.bitwise_cold = match;
    result.bitwise_warm = match;
    if (round + 1 == spec.rounds) result.predictions = std::move(pred);
  }
  result.p50_ms = latency_ms.Percentile(0.50);
  result.p99_ms = latency_ms.Percentile(0.99);
  result.anchors_per_sec =
      static_cast<double>(anchors.size() * spec.rounds) / total_seconds;
  if (auto* cache = model->inference_runtime().feature_cache()) {
    const auto stats = cache->stats();
    result.cache_hits = stats.hits;
    result.cache_misses = stats.misses;
  }
  tensor::SetKernelMode(tensor::KernelMode::kBlocked);
  ResetGlobalPool(1);
  return result;
}

int Run(const std::string& path, bool quick) {
  traffic::TrafficDataset dataset =
      traffic::GenerateDataset(traffic::DatasetSpec::Small(3));
  auto split = data::MakeSplit(dataset, 12, 3, 0.2,
                               data::SplitStrategy::kBlockedByDay, 11);
  const size_t cap = quick ? 96 : 384;
  std::vector<long> anchors(split.test.begin(),
                            split.test.begin() +
                                std::min<size_t>(cap, split.test.size()));

  core::ApotsModel model(&dataset, ModelConfig());
  const size_t threads = ParallelThreads();

  core::InferenceConfig per_anchor;
  per_anchor.batch_size = 1;
  per_anchor.parallel = false;
  per_anchor.use_workspace = false;
  per_anchor.use_feature_cache = false;

  core::InferenceConfig batched;  // defaults: B=64, workspace + cache
  batched.parallel = false;

  core::InferenceConfig batched_parallel;
  batched_parallel.parallel = true;

  core::InferenceConfig int8_cfg = batched;
  int8_cfg.quantize = tensor::QuantMode::kInt8;
  core::InferenceConfig fp16_cfg = batched;
  fp16_cfg.quantize = tensor::QuantMode::kFp16;

  const size_t slow_rounds = quick ? 2 : 8;
  const size_t fast_rounds = quick ? 4 : 24;
  using tensor::KernelMode;
  const ArmSpec arms[] = {
      {"per_anchor", per_anchor, KernelMode::kBlocked, 1, slow_rounds, true},
      {"batched", batched, KernelMode::kBlocked, 1, fast_rounds, true},
      {"batched_parallel", batched_parallel, KernelMode::kBlocked, threads,
       fast_rounds, true},
      {"simd", batched, KernelMode::kSimd, 1, fast_rounds, false},
      {"int8", int8_cfg, KernelMode::kSimd, 1, fast_rounds, false},
      {"fp16", fp16_cfg, KernelMode::kSimd, 1, fast_rounds, false},
  };

  // Ground truth for the bitwise comparison: the seed-semantics arm.
  model.SetInferenceConfig(per_anchor);
  const std::vector<double> baseline = model.PredictKmh(anchors);
  // Ground truth for the accuracy band: the actual future speeds. The
  // accuracy cost of a reduced-precision arm is how much it moves the
  // model's error against reality, not how far its raw outputs drift.
  const std::vector<double> truth = model.TrueKmh(anchors);
  const double fp32_mae = MeanAbsError(baseline, truth);

  std::vector<ArmResult> results;
  for (const ArmSpec& spec : arms) {
    results.push_back(RunArm(&model, anchors, spec, baseline));
    ArmResult& r = results.back();
    r.mae_kmh = MeanAbsError(r.predictions, truth);
    r.mae_delta_kmh = r.mae_kmh - fp32_mae;
    std::fprintf(stderr,
                 "%-17s p50 %8.2fms  p99 %8.2fms  %9.1f anchors/s  "
                 "bitwise cold=%d warm=%d  mae_delta %+.4f km/h\n",
                 r.spec.name, r.p50_ms, r.p99_ms, r.anchors_per_sec,
                 r.bitwise_cold ? 1 : 0, r.bitwise_warm ? 1 : 0,
                 r.mae_delta_kmh);
  }

  const auto arm = [&results](const char* name) -> const ArmResult& {
    for (const ArmResult& r : results) {
      if (std::strcmp(r.spec.name, name) == 0) return r;
    }
    std::fprintf(stderr, "missing arm %s\n", name);
    std::exit(1);
  };
  bool bitwise_all = true;  // over the exact (blocked fp32) arms only
  bool accuracy_ok = true;  // |mae_delta| <= 0.5 km/h on the inexact arms
  for (const ArmResult& r : results) {
    if (r.spec.exact) {
      bitwise_all = bitwise_all && r.bitwise_cold && r.bitwise_warm;
    } else {
      accuracy_ok = accuracy_ok && std::fabs(r.mae_delta_kmh) <= 0.5;
    }
  }

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"infer_latency\",\n"
      << "  \"config\": {\n"
      << "    \"predictor\": \"lstm_scaled_2\",\n"
      << "    \"anchors\": " << anchors.size() << ",\n"
      << "    \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "    \"parallel_threads\": " << threads << ",\n"
      << "    \"isa\": \"" << tensor::ActiveIsaLabel() << "\",\n"
      << "    \"vnni\": " << (tensor::HasVnni() ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"arms\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    out << "    {\"name\": \"" << r.spec.name
        << "\", \"batch_size\": " << r.spec.cfg.batch_size
        << ", \"threads\": " << r.spec.threads
        << ", \"workspace\": " << (r.spec.cfg.use_workspace ? "true" : "false")
        << ", \"feature_cache\": "
        << (r.spec.cfg.use_feature_cache ? "true" : "false")
        << ", \"kernel\": \"" << tensor::KernelModeName(r.spec.mode)
        << "\", \"quantize\": \""
        << tensor::QuantModeName(r.spec.cfg.quantize)
        << "\", \"exact\": " << (r.spec.exact ? "true" : "false")
        << ", \"rounds\": " << r.spec.rounds << ", \"p50_ms\": " << r.p50_ms
        << ", \"p99_ms\": " << r.p99_ms
        << ", \"anchors_per_sec\": " << r.anchors_per_sec
        << ", \"cache_hits\": " << r.cache_hits
        << ", \"cache_misses\": " << r.cache_misses
        << ", \"mae_kmh\": " << r.mae_kmh
        << ", \"mae_delta_kmh\": " << r.mae_delta_kmh
        << ", \"bitwise_match_cold\": " << (r.bitwise_cold ? "true" : "false")
        << ", \"bitwise_match_warm\": " << (r.bitwise_warm ? "true" : "false")
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  const double base_rate = arm("per_anchor").anchors_per_sec;
  out << "  ],\n"
      << "  \"speedup_batched_vs_per_anchor\": "
      << arm("batched").anchors_per_sec / base_rate << ",\n"
      << "  \"speedup_batched_parallel_vs_per_anchor\": "
      << arm("batched_parallel").anchors_per_sec / base_rate << ",\n"
      << "  \"speedup_simd_vs_batched\": "
      << arm("simd").anchors_per_sec / arm("batched").anchors_per_sec
      << ",\n"
      << "  \"speedup_int8_vs_batched\": "
      << arm("int8").anchors_per_sec / arm("batched").anchors_per_sec
      << ",\n"
      << "  \"bitwise_match_all\": " << (bitwise_all ? "true" : "false")
      << ",\n"
      << "  \"accuracy_band_ok\": " << (accuracy_ok ? "true" : "false")
      << "\n"
      << "}\n";
  out.close();
  std::fprintf(stderr,
               "wrote %s (batched+parallel vs per-anchor: %.2fx, "
               "accuracy band %s)\n",
               path.c_str(),
               arm("batched_parallel").anchors_per_sec / base_rate,
               accuracy_ok ? "ok" : "EXCEEDED");
  return bitwise_all && accuracy_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_out/perf_pr3.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      if (argv[i][11] == '=') path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  return Run(path, quick);
}
