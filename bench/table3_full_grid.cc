// Table III reproduction: the full grid — {Prophet, F, L, C, H} x
// {w/o Adv, w/ Adv} x {speed only, speed + additional data} x
// {MAE, RMSE, MAPE}, with the paper's row/column/diagonal gains (Eq. 9)
// and the paired t-tests over the 8 predictor configurations.
//
// Pass --print-hparams to dump the Table I hyper-parameter grid at both
// paper scale and the active profile's scale.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "eval/experiment.h"
#include "eval/profile.h"
#include "metrics/stats.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace apots;

void PrintHparams(const eval::EvalProfile& profile) {
  TablePrinter table({"model", "scale", "fc hidden", "lstm hidden",
                      "cnn channels", "filters", "lr"});
  for (core::PredictorType type :
       {core::PredictorType::kFc, core::PredictorType::kLstm,
        core::PredictorType::kCnn, core::PredictorType::kHybrid}) {
    for (size_t divisor : {size_t{1}, profile.width_divisor}) {
      const auto h = divisor <= 1
                         ? core::PredictorHparams::Paper(type)
                         : core::PredictorHparams::Scaled(type, divisor);
      auto join = [](const std::vector<size_t>& v) {
        std::string out;
        for (size_t i = 0; i < v.size(); ++i) {
          if (i > 0) out += ",";
          out += StrFormat("%zu", v[i]);
        }
        return out;
      };
      std::string filters;
      for (size_t i = 0; i < h.cnn_kernels.size(); ++i) {
        if (i > 0) filters += ",";
        filters += StrFormat("%zux%zu", h.cnn_kernels[i], h.cnn_kernels[i]);
      }
      table.AddRow({core::PredictorTypeLabel(type),
                    divisor <= 1 ? "paper" : StrFormat("1/%zu", divisor),
                    type == core::PredictorType::kFc ? join(h.fc_hidden)
                                                     : "-",
                    type == core::PredictorType::kLstm ||
                            type == core::PredictorType::kHybrid
                        ? join(h.lstm_hidden)
                        : "-",
                    type == core::PredictorType::kCnn ||
                            type == core::PredictorType::kHybrid
                        ? join(h.cnn_channels)
                        : "-",
                    type == core::PredictorType::kCnn ||
                            type == core::PredictorType::kHybrid
                        ? filters
                        : "-",
                    StrFormat("%.3f", static_cast<double>(h.learning_rate))});
    }
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::create_directories("bench_out");
  eval::EvalProfile profile = eval::EvalProfile::FromEnv();

  if (argc > 1 && std::strcmp(argv[1], "--print-hparams") == 0) {
    std::printf("=== Table I: hyper-parameters ===\n\n");
    PrintHparams(profile);
    return 0;
  }

  std::printf("=== Table III: full grid (profile: %s) ===\n\n",
              profile.LevelName().c_str());
  eval::Experiment experiment(profile);

  // rows[family][cfg] with cfg: 0 = speed w/o adv, 1 = speed w/ adv,
  // 2 = speed+add w/o adv, 3 = speed+add w/ adv.
  const core::PredictorType families[] = {
      core::PredictorType::kFc, core::PredictorType::kLstm,
      core::PredictorType::kCnn, core::PredictorType::kHybrid};
  std::vector<std::vector<eval::EvalRow>> rows;
  for (core::PredictorType type : families) {
    std::vector<eval::EvalRow> family_rows;
    for (int cfg = 0; cfg < 4; ++cfg) {
      eval::ModelSpec spec;
      spec.predictor = type;
      spec.adversarial = (cfg % 2) == 1;
      spec.features = cfg < 2 ? data::FeatureConfig::SpeedOnly()
                              : data::FeatureConfig::Both();
      family_rows.push_back(experiment.RunModel(spec));
    }
    rows.push_back(std::move(family_rows));
  }
  const eval::EvalRow prophet = experiment.RunProphet();

  auto writer = CsvWriter::Open(
      "bench_out/table3.csv",
      {"model", "features", "adversarial", "mae", "rmse", "mape"});
  if (writer.ok()) {
    (void)writer.value().WriteRow(std::vector<std::string>{
        "Prophet", "calendar", "no", StrFormat("%.4f", prophet.whole.mae),
        StrFormat("%.4f", prophet.whole.rmse),
        StrFormat("%.4f", prophet.whole.mape)});
  }

  for (const char* metric : {"MAE", "RMSE", "MAPE"}) {
    auto pick = [&](const eval::EvalRow& row) {
      if (std::strcmp(metric, "MAE") == 0) return row.whole.mae;
      if (std::strcmp(metric, "RMSE") == 0) return row.whole.rmse;
      return row.whole.mape;
    };
    std::printf("--- %s ---\n", metric);
    TablePrinter table({"features", "Prophet", "F w/o", "F w/", "gain",
                        "L w/o", "L w/", "gain", "C w/o", "C w/", "gain",
                        "H w/o", "H w/", "gain"});
    for (int feature_mode = 0; feature_mode < 2; ++feature_mode) {
      std::vector<std::string> line;
      line.push_back(feature_mode == 0 ? "speed only" : "speed+add");
      line.push_back(FormatMetric(pick(prophet)));
      for (size_t f = 0; f < 4; ++f) {
        const double without = pick(rows[f][feature_mode * 2]);
        const double with_adv = pick(rows[f][feature_mode * 2 + 1]);
        line.push_back(FormatMetric(without));
        line.push_back(FormatMetric(with_adv));
        line.push_back(FormatGain(metrics::GainPercent(with_adv, without)));
      }
      table.AddRow(line);
    }
    // Row gain: additional-data improvement for the w/o-adv column.
    std::vector<std::string> gain_line = {"gain (add. data)", "-"};
    for (size_t f = 0; f < 4; ++f) {
      gain_line.push_back(
          FormatGain(metrics::GainPercent(pick(rows[f][2]),
                                          pick(rows[f][0]))));
      gain_line.push_back(
          FormatGain(metrics::GainPercent(pick(rows[f][3]),
                                          pick(rows[f][1]))));
      gain_line.push_back(
          FormatGain(metrics::GainPercent(pick(rows[f][3]),
                                          pick(rows[f][0]))));
    }
    table.AddRow(gain_line);
    table.Print();
    std::printf("\n");
  }

  // Paired t-tests across the 8 configurations, as in the paper's text.
  {
    std::vector<double> without_adv, with_adv, speed_only, with_add;
    for (size_t f = 0; f < 4; ++f) {
      for (int fm = 0; fm < 2; ++fm) {
        without_adv.push_back(rows[f][fm * 2].whole.mape);
        with_adv.push_back(rows[f][fm * 2 + 1].whole.mape);
      }
      for (int adv = 0; adv < 2; ++adv) {
        speed_only.push_back(rows[f][adv].whole.mape);
        with_add.push_back(rows[f][2 + adv].whole.mape);
      }
    }
    const auto t_adv = metrics::PairedTTest(without_adv, with_adv);
    const auto t_add = metrics::PairedTTest(speed_only, with_add);
    std::printf("paired t-test, adversarial vs not (MAPE over 8 configs): "
                "t(%zu)=%.2f, p=%.3f\n",
                t_adv.df, t_adv.t, t_adv.p_two_sided);
    std::printf("paired t-test, additional data vs not: t(%zu)=%.2f, "
                "p=%.4f\n\n",
                t_add.df, t_add.t, t_add.p_two_sided);
  }

  // Winner summary (the paper's bold cell).
  double best = 1e18;
  std::string best_label;
  for (size_t f = 0; f < 4; ++f) {
    for (int cfg = 0; cfg < 4; ++cfg) {
      if (rows[f][cfg].whole.mape < best) {
        best = rows[f][cfg].whole.mape;
        best_label = rows[f][cfg].label;
      }
    }
  }
  std::printf("best configuration: %s (MAPE %.2f); Prophet %.2f "
              "(gain %.1f%%)\n",
              best_label.c_str(), best, prophet.whole.mape,
              metrics::GainPercent(best, prophet.whole.mape));

  if (writer.ok()) {
    const char* feature_names[2] = {"speed_only", "speed_add"};
    for (size_t f = 0; f < 4; ++f) {
      for (int cfg = 0; cfg < 4; ++cfg) {
        (void)writer.value().WriteRow(std::vector<std::string>{
            core::PredictorTypeName(families[f]), feature_names[cfg / 2],
            (cfg % 2) ? "yes" : "no",
            StrFormat("%.4f", rows[f][cfg].whole.mae),
            StrFormat("%.4f", rows[f][cfg].whole.rmse),
            StrFormat("%.4f", rows[f][cfg].whole.mape)});
      }
    }
    (void)writer.value().Close();
  }
  std::printf("\nPaper reference: every model improves with adversarial "
              "training and with additional data;\nAPOTS H "
              "(Speed+Add, w/ Adv) is best at 12.80 MAPE vs Prophet's "
              "102.42.\n");
  return 0;
}
