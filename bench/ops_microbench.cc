// Engineering microbenchmarks for the tensor/nn substrate (google-
// benchmark): matmul variants, im2col, and forward/backward of each layer
// family at the quick-profile sizes used by the experiment benches.

#include <benchmark/benchmark.h>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/loss.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace {

using apots::Rng;
using apots::tensor::Tensor;
namespace ops = apots::tensor;

Tensor RandomTensor(std::vector<size_t> shape, uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  ops::FillUniform(&t, &rng, -1.0f, 1.0f);
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTransposeA(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatmulTransposeA(a, b));
  }
}
BENCHMARK(BM_MatmulTransposeA)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  const Tensor image = RandomTensor({8, 13, 12}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Im2Col(image, 3, 3, 1));
  }
}
BENCHMARK(BM_Im2Col);

void BM_DenseForwardBackward(benchmark::State& state) {
  const size_t batch = 64;
  const size_t in = 156, out = static_cast<size_t>(state.range(0));
  Rng rng(4);
  apots::nn::Dense layer(in, out, &rng);
  const Tensor input = RandomTensor({batch, in}, 5);
  const Tensor grad = RandomTensor({batch, out}, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(input, true));
    benchmark::DoNotOptimize(layer.Backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DenseForwardBackward)->Arg(64)->Arg(512);

void BM_Conv2dForwardBackward(benchmark::State& state) {
  const size_t batch = 16;
  const size_t channels = static_cast<size_t>(state.range(0));
  Rng rng(7);
  apots::nn::Conv2d layer(1, channels, 3, 3, 1, &rng);
  const Tensor input = RandomTensor({batch, 1, 13, 12}, 8);
  const Tensor grad = RandomTensor({batch, channels, 13, 12}, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(input, true));
    benchmark::DoNotOptimize(layer.Backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2dForwardBackward)->Arg(16)->Arg(64);

void BM_LstmForwardBackward(benchmark::State& state) {
  const size_t batch = 16;
  const size_t hidden = static_cast<size_t>(state.range(0));
  Rng rng(10);
  apots::nn::Lstm layer(13, hidden, /*return_sequences=*/false, &rng);
  const Tensor input = RandomTensor({batch, 12, 13}, 11);
  const Tensor grad = RandomTensor({batch, hidden}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(input, true));
    benchmark::DoNotOptimize(layer.Backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmForwardBackward)->Arg(64)->Arg(128);

void BM_MseLoss(benchmark::State& state) {
  const Tensor pred = RandomTensor({512, 1}, 13);
  const Tensor target = RandomTensor({512, 1}, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apots::nn::MseLoss(pred, target));
  }
}
BENCHMARK(BM_MseLoss);

void BM_BceLoss(benchmark::State& state) {
  const Tensor logits = RandomTensor({512, 1}, 15);
  Tensor target({512, 1});
  for (size_t i = 0; i < 512; ++i) target[i] = (i % 2) ? 1.0f : 0.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apots::nn::BceWithLogitsLoss(logits, target));
  }
}
BENCHMARK(BM_BceLoss);

}  // namespace

BENCHMARK_MAIN();
