// Engineering microbenchmarks for the tensor/nn substrate (google-
// benchmark): matmul variants, im2col, and forward/backward of each layer
// family at the quick-profile sizes used by the experiment benches.
//
// `--perf_json[=path]` skips google-benchmark and writes a machine-readable
// Matmul report (default bench_out/perf_pr2_ops.json) with one arm per
// (kernel family, thread count): reference (seed kernel, 1 thread),
// blocked_1t/blocked_4t (cache-blocked), simd_1t/simd_4t (packed-panel
// microkernels, runtime ISA dispatch), and int8_1t/int8_4t (quantized
// weights + VNNI/scalar dot products). The report carries the dispatched
// ISA and derived speedups at the 512x512 gate shape; CI gates that simd
// is not slower than blocked and that int8 clears 2x over blocked_1t when
// the host has VNNI.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/lstm.h"
#include "nn/loss.h"
#include "tensor/cpu_features.h"
#include "tensor/quant.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using apots::Rng;
using apots::tensor::Tensor;
namespace ops = apots::tensor;

Tensor RandomTensor(std::vector<size_t> shape, uint64_t seed) {
  Tensor t(std::move(shape));
  Rng rng(seed);
  ops::FillUniform(&t, &rng, -1.0f, 1.0f);
  return t;
}

void BM_Matmul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulTransposeA(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatmulTransposeA(a, b));
  }
}
BENCHMARK(BM_MatmulTransposeA)->Arg(64)->Arg(128);

void BM_Im2Col(benchmark::State& state) {
  const Tensor image = RandomTensor({8, 13, 12}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::Im2Col(image, 3, 3, 1));
  }
}
BENCHMARK(BM_Im2Col);

void BM_DenseForwardBackward(benchmark::State& state) {
  const size_t batch = 64;
  const size_t in = 156, out = static_cast<size_t>(state.range(0));
  Rng rng(4);
  apots::nn::Dense layer(in, out, &rng);
  const Tensor input = RandomTensor({batch, in}, 5);
  const Tensor grad = RandomTensor({batch, out}, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(input, true));
    benchmark::DoNotOptimize(layer.Backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_DenseForwardBackward)->Arg(64)->Arg(512);

void BM_Conv2dForwardBackward(benchmark::State& state) {
  const size_t batch = 16;
  const size_t channels = static_cast<size_t>(state.range(0));
  Rng rng(7);
  apots::nn::Conv2d layer(1, channels, 3, 3, 1, &rng);
  const Tensor input = RandomTensor({batch, 1, 13, 12}, 8);
  const Tensor grad = RandomTensor({batch, channels, 13, 12}, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(input, true));
    benchmark::DoNotOptimize(layer.Backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_Conv2dForwardBackward)->Arg(16)->Arg(64);

void BM_LstmForwardBackward(benchmark::State& state) {
  const size_t batch = 16;
  const size_t hidden = static_cast<size_t>(state.range(0));
  Rng rng(10);
  apots::nn::Lstm layer(13, hidden, /*return_sequences=*/false, &rng);
  const Tensor input = RandomTensor({batch, 12, 13}, 11);
  const Tensor grad = RandomTensor({batch, hidden}, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(layer.Forward(input, true));
    benchmark::DoNotOptimize(layer.Backward(grad));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LstmForwardBackward)->Arg(64)->Arg(128);

void BM_MseLoss(benchmark::State& state) {
  const Tensor pred = RandomTensor({512, 1}, 13);
  const Tensor target = RandomTensor({512, 1}, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(apots::nn::MseLoss(pred, target));
  }
}
BENCHMARK(BM_MseLoss);

void BM_BceLoss(benchmark::State& state) {
  const Tensor logits = RandomTensor({512, 1}, 15);
  Tensor target({512, 1});
  for (size_t i = 0; i < 512; ++i) target[i] = (i % 2) ? 1.0f : 0.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(apots::nn::BceWithLogitsLoss(logits, target));
  }
}
BENCHMARK(BM_BceLoss);

// ---------------------------------------------------------------------------
// --perf_json harness
// ---------------------------------------------------------------------------

namespace perf {

struct MatmulArm {
  const char* name;
  ops::KernelMode mode;
  size_t threads;
  /// Quantized-inference path: weights packed to int8 panels ahead of
  /// time (as the inference runtime does), activations quantized per call.
  bool int8 = false;
};

// Times n x n Matmul for the given arm: repeats until ~80ms of work has
// accumulated (min 5 iterations), reporting seconds per call.
double TimeMatmul(const MatmulArm& arm, size_t n) {
  ops::SetKernelMode(arm.mode);
  apots::ResetGlobalPool(arm.threads);
  const Tensor a = RandomTensor({n, n}, 1);
  const Tensor b = RandomTensor({n, n}, 2);
  if (arm.int8) {
    const ops::Int8Matrix packed = ops::PackInt8Weights(b);
    Tensor out({n, n});
    ops::Int8MatmulInto(a, packed, &out, nullptr);  // warm-up
    size_t iters = 0;
    apots::Stopwatch watch;
    double elapsed = 0.0;
    while (iters < 5 || elapsed < 0.08) {
      ops::Int8MatmulInto(a, packed, &out, nullptr);
      benchmark::DoNotOptimize(out.data());
      ++iters;
      elapsed = watch.ElapsedSeconds();
    }
    return elapsed / static_cast<double>(iters);
  }
  benchmark::DoNotOptimize(ops::Matmul(a, b));  // warm-up
  size_t iters = 0;
  apots::Stopwatch watch;
  double elapsed = 0.0;
  while (iters < 5 || elapsed < 0.08) {
    benchmark::DoNotOptimize(ops::Matmul(a, b));
    ++iters;
    elapsed = watch.ElapsedSeconds();
  }
  return elapsed / static_cast<double>(iters);
}

size_t ParallelThreads() {
  if (const char* env = std::getenv("APOTS_NUM_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 1) return static_cast<size_t>(parsed);
  }
  return 4;
}

int RunPerfJson(const std::string& path) {
  const size_t threads = ParallelThreads();
  const MatmulArm arms[] = {
      {"reference", ops::KernelMode::kReference, 1},
      {"blocked_1t", ops::KernelMode::kBlocked, 1},
      {"blocked_4t", ops::KernelMode::kBlocked, threads},
      {"simd_1t", ops::KernelMode::kSimd, 1},
      {"simd_4t", ops::KernelMode::kSimd, threads},
      {"int8_1t", ops::KernelMode::kSimd, 1, /*int8=*/true},
      {"int8_4t", ops::KernelMode::kSimd, threads, /*int8=*/true},
  };
  const size_t sizes[] = {32, 64, 128, 256, 512};

  struct Row {
    const char* arm;
    size_t threads;
    size_t n;
    double seconds_per_call;
    double gflops;
  };
  std::vector<Row> rows;
  for (const MatmulArm& arm : arms) {
    for (size_t n : sizes) {
      const double sec = TimeMatmul(arm, n);
      const double gflops =
          2.0 * static_cast<double>(n) * n * n / sec / 1e9;
      rows.push_back({arm.name, arm.threads, n, sec, gflops});
      std::fprintf(stderr, "matmul %-10s n=%-4zu %10.1f us  %6.2f GFLOP/s\n",
                   arm.name, n, sec * 1e6, gflops);
    }
  }
  ops::SetKernelMode(ops::KernelMode::kBlocked);
  apots::ResetGlobalPool(1);

  // Derived speedups at the gate shape (the largest size, where the
  // packed-panel and quantized kernels amortize their setup). Name-based
  // lookup, never positional.
  const auto seconds_of = [&rows](const char* arm, size_t n) {
    for (const Row& r : rows) {
      if (std::strcmp(r.arm, arm) == 0 && r.n == n) return r.seconds_per_call;
    }
    std::fprintf(stderr, "missing row %s n=%zu\n", arm, n);
    std::exit(1);
  };
  const size_t gate_n = 512;
  const double blocked_1t = seconds_of("blocked_1t", gate_n);

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"ops_microbench\",\n"
      << "  \"op\": \"matmul\",\n"
      << "  \"parallel_threads\": " << threads << ",\n"
      << "  \"isa\": \"" << apots::tensor::ActiveIsaLabel() << "\",\n"
      << "  \"vnni\": " << (apots::tensor::HasVnni() ? "true" : "false")
      << ",\n"
      << "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"arm\": \"" << r.arm << "\", \"threads\": " << r.threads
        << ", \"n\": " << r.n << ", \"seconds_per_call\": "
        << r.seconds_per_call << ", \"gflops\": " << r.gflops << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"speedup_simd_1t_vs_blocked_1t_n512\": "
      << blocked_1t / seconds_of("simd_1t", gate_n) << ",\n"
      << "  \"speedup_int8_1t_vs_blocked_1t_n512\": "
      << blocked_1t / seconds_of("int8_1t", gate_n) << ",\n"
      << "  \"speedup_blocked_4t_vs_blocked_1t_n512\": "
      << blocked_1t / seconds_of("blocked_4t", gate_n) << ",\n"
      << "  \"speedup_simd_4t_vs_simd_1t_n512\": "
      << seconds_of("simd_1t", gate_n) / seconds_of("simd_4t", gate_n)
      << "\n}\n";
  return 0;
}

}  // namespace perf

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      std::string path = "bench_out/perf_pr2_ops.json";
      if (argv[i][11] == '=') path = argv[i] + 12;
      return perf::RunPerfJson(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
