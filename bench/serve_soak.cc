// Fault-storm soak of the online serving stack (PR 4). Four arms, one
// machine-readable report (default bench_out/perf_pr4.json) that CI
// archives and gates on:
//   storm           full delivery-fault storm (delays, duplicates, drops,
//                   outages, torn ticks) end to end; gates: availability
//                   >= 0.999, zero crashes (reaching the report at all),
//                   bounded deadline-miss rate
//   clean_bitwise   faults disabled; every supervisor response must be
//                   bitwise identical to InferenceRuntime::Predict via
//                   the model facade
//   kill_recover    checkpoint mid-storm, kill the stack, cold-restart
//                   with different init weights, recover; parameters must
//                   match the pre-kill snapshot bit for bit and the
//                   watermark must be consistent
//   corrupt_fallback flip one byte in the newest checkpoint generation;
//                   recovery must fall back to the previous generation,
//                   not crash
//
// Flags: --perf_json[=path] selects the output file; --quick shrinks the
// simulated stream for CI smoke runs.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "serve/harness.h"
#include "util/stopwatch.h"

namespace {

using namespace apots;

serve::HarnessConfig BaseConfig(bool quick) {
  serve::HarnessConfig config;
  traffic::DatasetSpec spec;
  spec.num_roads = 5;
  spec.num_days = quick ? 4 : 10;
  spec.intervals_per_day = quick ? 96 : 288;
  spec.seed = 4242;
  spec.hyundai_calendar = false;
  config.spec = spec;
  config.warmup_fraction = 0.5;
  config.predictor = core::PredictorType::kFc;
  config.width_divisor = 16;
  config.train_epochs = 0;  // serving mechanics do not need a trained model
  config.model_seed = 7;
  config.anchors_per_tick = 4;
  return config;
}

struct SoakResult {
  serve::ServeReport report;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  long ticks = 0;
};

SoakResult RunStream(serve::SimulationHarness* harness) {
  SoakResult result;
  // Shared percentile definition (obs::Histogram) instead of a local
  // sort-and-index; the histogram also shows up in --metrics-json dumps.
  obs::Histogram& tick_ms = obs::MetricsRegistry::Default().GetHistogram(
      "bench.serve_soak.tick_ms");
  tick_ms.Reset();
  bool more = true;
  while (more) {
    Stopwatch watch;
    more = harness->RunTick();
    tick_ms.Record(watch.ElapsedMillis());
    ++result.ticks;
  }
  result.report = harness->report();
  result.p50_ms = tick_ms.Percentile(0.50);
  result.p99_ms = tick_ms.Percentile(0.99);
  return result;
}

// Arm 2: with faults disabled every anchor must stay on the full tier and
// match the direct runtime path bit for bit, warm or cold cache.
bool RunCleanBitwise(bool quick, uint64_t* compared) {
  serve::HarnessConfig config = BaseConfig(quick);
  config.feed = serve::FeedFaultSpec::Clean();
  serve::SimulationHarness harness(std::move(config));
  bool all_match = true;
  bool more = true;
  while (more) {
    more = harness.RunTick();
    const auto& anchors = harness.last_anchors();
    const auto& responses = harness.last_responses();
    const std::vector<double> direct = harness.DirectPredictKmh(anchors);
    for (size_t i = 0; i < anchors.size(); ++i) {
      ++*compared;
      if (responses[i].tier != serve::ServeTier::kFull ||
          responses[i].kmh != direct[i]) {
        all_match = false;
      }
    }
  }
  return all_match;
}

struct RecoverResult {
  bool params_bitwise = false;
  bool watermark_consistent = false;
  bool recovered_ok = false;
  uint64_t generation = 0;
};

// Arm 3: checkpoint under storm, kill, cold-restart with different init
// weights, recover, compare.
RecoverResult RunKillRecover(bool quick, const std::string& dir) {
  std::filesystem::remove_all(dir);
  serve::HarnessConfig config = BaseConfig(quick);
  config.feed = serve::FeedFaultSpec::Storm(17);
  config.serve.checkpoint_dir = dir;
  config.serve.checkpoint_every = quick ? 16 : 64;
  config.serve.checkpoint_keep = 3;
  serve::SimulationHarness harness(std::move(config));

  const long kill_after = quick ? 40 : 160;
  for (long tick = 0; tick < kill_after; ++tick) {
    if (!harness.RunTick()) break;
  }
  // Align the durable state with the in-memory state we snapshot: no
  // training happens while serving, so weights cannot drift afterwards.
  const Status ckpt = harness.supervisor().CheckpointNow();
  if (!ckpt.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", ckpt.ToString().c_str());
    return {};
  }
  const auto before_params = harness.ParamSnapshot();
  const long before_watermark = harness.ingestor().watermark();

  RecoverResult result;
  auto recovered = harness.KillAndRecover(/*new_seed=*/999);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return {};
  }
  result.recovered_ok = true;
  result.generation = recovered.value().generation;
  result.params_bitwise = harness.ParamSnapshot() == before_params;
  result.watermark_consistent =
      harness.ingestor().watermark() == before_watermark;

  // The recovered stack must keep serving.
  for (int tick = 0; tick < 8; ++tick) {
    if (!harness.RunTick()) break;
  }
  return result;
}

// Arm 4: corrupt the newest generation; recovery must fall back.
bool RunCorruptFallback(bool quick, const std::string& dir,
                        uint64_t* fell_back_to) {
  std::filesystem::remove_all(dir);
  serve::HarnessConfig config = BaseConfig(quick);
  config.feed = serve::FeedFaultSpec::Storm(23);
  config.serve.checkpoint_dir = dir;
  serve::SimulationHarness harness(std::move(config));

  const long ticks = quick ? 24 : 96;
  for (long tick = 0; tick < ticks / 2; ++tick) harness.RunTick();
  if (!harness.supervisor().CheckpointNow().ok()) return false;
  for (long tick = 0; tick < ticks / 2; ++tick) harness.RunTick();
  if (!harness.supervisor().CheckpointNow().ok()) return false;

  auto* store = harness.supervisor().checkpoint_store();
  const uint64_t newest = store->LatestGeneration();
  const std::string victim = store->GenerationPath(newest);
  {
    // Flip one byte in the middle of the newest generation.
    std::fstream file(victim,
                      std::ios::in | std::ios::out | std::ios::binary);
    if (!file) return false;
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  auto recovered = harness.KillAndRecover(/*new_seed=*/1234);
  if (!recovered.ok()) {
    std::fprintf(stderr, "corrupt-fallback recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return false;
  }
  *fell_back_to = recovered.value().generation;
  return recovered.value().fell_back() &&
         recovered.value().generation < newest;
}

int Run(const std::string& path, bool quick) {
  // Arm 1: the storm.
  serve::HarnessConfig storm_config = BaseConfig(quick);
  storm_config.feed = serve::FeedFaultSpec::Storm(99);
  storm_config.serve.deadline_ms = 250.0;
  serve::SimulationHarness storm_harness(std::move(storm_config));
  const SoakResult storm = RunStream(&storm_harness);
  const serve::ServeReport& report = storm.report;
  const double deadline_miss_rate =
      storm.ticks == 0 ? 0.0
                       : static_cast<double>(report.deadline_misses) /
                             static_cast<double>(storm.ticks);
  std::fprintf(
      stderr,
      "storm: %llu requests over %ld ticks, availability %.5f, tiers "
      "[%llu %llu %llu %llu], p99 %.2fms\n",
      static_cast<unsigned long long>(report.requests), storm.ticks,
      report.availability(),
      static_cast<unsigned long long>(report.tier_counts[0]),
      static_cast<unsigned long long>(report.tier_counts[1]),
      static_cast<unsigned long long>(report.tier_counts[2]),
      static_cast<unsigned long long>(report.tier_counts[3]), storm.p99_ms);

  // Arm 2.
  uint64_t compared = 0;
  const bool bitwise_clean = RunCleanBitwise(quick, &compared);
  std::fprintf(stderr, "clean_bitwise: %llu anchors compared, match=%d\n",
               static_cast<unsigned long long>(compared),
               bitwise_clean ? 1 : 0);

  // Arms 3 + 4.
  const RecoverResult recover =
      RunKillRecover(quick, "bench_out/soak_ckpt");
  std::fprintf(stderr,
               "kill_recover: ok=%d params_bitwise=%d watermark=%d "
               "(generation %llu)\n",
               recover.recovered_ok ? 1 : 0, recover.params_bitwise ? 1 : 0,
               recover.watermark_consistent ? 1 : 0,
               static_cast<unsigned long long>(recover.generation));
  uint64_t fell_back_to = 0;
  const bool corrupt_ok =
      RunCorruptFallback(quick, "bench_out/soak_ckpt_corrupt",
                         &fell_back_to);
  std::fprintf(stderr, "corrupt_fallback: ok=%d (restored generation %llu)\n",
               corrupt_ok ? 1 : 0,
               static_cast<unsigned long long>(fell_back_to));

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"serve_soak\",\n"
      << "  \"config\": {\"quick\": " << (quick ? "true" : "false")
      << ", \"ticks\": " << storm.ticks << "},\n"
      << "  \"storm\": {\n"
      << "    \"requests\": " << report.requests << ",\n"
      << "    \"availability\": " << report.availability() << ",\n"
      << "    \"tier_full\": " << report.tier_counts[0] << ",\n"
      << "    \"tier_imputed\": " << report.tier_counts[1] << ",\n"
      << "    \"tier_historical\": " << report.tier_counts[2] << ",\n"
      << "    \"tier_last_known_good\": " << report.tier_counts[3] << ",\n"
      << "    \"failures\": " << report.failures << ",\n"
      << "    \"deadline_miss_rate\": " << deadline_miss_rate << ",\n"
      << "    \"max_staleness\": " << report.max_staleness << ",\n"
      << "    \"p50_tick_ms\": " << storm.p50_ms << ",\n"
      << "    \"p99_tick_ms\": " << storm.p99_ms << "\n"
      << "  },\n"
      << "  \"bitwise_match_clean\": " << (bitwise_clean ? "true" : "false")
      << ",\n"
      << "  \"recover_ok\": " << (recover.recovered_ok ? "true" : "false")
      << ",\n"
      << "  \"recover_params_bitwise\": "
      << (recover.params_bitwise ? "true" : "false") << ",\n"
      << "  \"recover_watermark_match\": "
      << (recover.watermark_consistent ? "true" : "false") << ",\n"
      << "  \"corrupt_fallback_ok\": " << (corrupt_ok ? "true" : "false")
      << ",\n"
      << "  \"crashes\": 0\n"
      << "}\n";
  out.close();

  const bool healthy = report.availability() >= 0.999 && bitwise_clean &&
                       recover.recovered_ok && recover.params_bitwise &&
                       recover.watermark_consistent && corrupt_ok;
  std::fprintf(stderr, "wrote %s (availability %.5f, healthy=%d)\n",
               path.c_str(), report.availability(), healthy ? 1 : 0);
  return healthy ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_out/perf_pr4.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      if (argv[i][11] == '=') path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  return Run(path, quick);
}
