// Adversarial robustness bench (PR 6). Offline attack arms plus two
// serving arms, one machine-readable report (default
// bench_out/perf_attack.json) that CI archives and gates on:
//   clean             MAE of the trained model on the honest test split
//   attacked          MAE under a white-box PGD plan at the default
//                     sensor-plausibility budget; gate: mae_inflation
//                     (attacked / clean) >= 2.0
//   attacked_spsa     same budget, black-box SPSA attacker (query-only)
//   defended          RDAT fine-tuning, then re-measure: the transferred
//                     plan (fixed against the undefended weights — the
//                     poisoned-feed scenario) and an adaptive re-attack
//                     against the defended weights; gate: recovery_ratio
//                     (transfer) >= 0.5
//   serve_poisoned    full harness with the PGD plan wired into the feed
//                     (FeedFaultSpec::poison); the residual detector must
//                     flag attacked roads
//   clean_bitwise     attack wiring enabled but feed poisoning off: every
//                     supervisor response must stay bitwise identical to
//                     InferenceRuntime::Predict via the model facade
//
// Flags: --perf_json[=path] selects the output file; --quick shrinks the
// dataset and training for CI smoke runs (gates hold in both sizes).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "attack/attacker.h"
#include "attack/defense.h"
#include "core/apots_model.h"
#include "data/windowing.h"
#include "metrics/metrics.h"
#include "serve/harness.h"
#include "util/stopwatch.h"

namespace {

using namespace apots;

traffic::DatasetSpec BenchSpec(bool quick) {
  traffic::DatasetSpec spec;
  spec.num_roads = 5;
  spec.num_days = quick ? 6 : 10;
  spec.hyundai_calendar = false;
  spec.seed = 2022;
  return spec;
}

struct OfflineResult {
  double clean_mae = 0.0;
  double attacked_mae = 0.0;
  double spsa_mae = 0.0;
  double defended_clean_mae = 0.0;
  double defended_transfer_mae = 0.0;
  double defended_adaptive_mae = 0.0;
  double max_abs_delta = 0.0;
  double max_temporal_step = 0.0;
  long nonzero_cells = 0;
  uint64_t pgd_queries = 0;
  uint64_t pgd_grad_passes = 0;
  uint64_t spsa_queries = 0;
  bool ok = false;

  double inflation() const {
    return clean_mae > 0.0 ? attacked_mae / clean_mae : 0.0;
  }
  double spsa_inflation() const {
    return clean_mae > 0.0 ? spsa_mae / clean_mae : 0.0;
  }
  /// Share of the attack-induced MAE gap recovered by the defense
  /// against the transferred (fixed) plan.
  double recovery_ratio() const {
    const double gap = attacked_mae - clean_mae;
    return gap > 0.0 ? (attacked_mae - defended_transfer_mae) / gap : 0.0;
  }
  double adaptive_recovery() const {
    const double gap = attacked_mae - clean_mae;
    return gap > 0.0 ? (attacked_mae - defended_adaptive_mae) / gap : 0.0;
  }
};

OfflineResult RunOffline() {
  // The offline pipeline costs well under a second at full size, so the
  // attack/defense arms run identically in --quick and nightly: the CI
  // gates always measure the same experiment.
  OfflineResult result;
  traffic::TrafficDataset dataset = traffic::GenerateDataset(
      BenchSpec(/*quick=*/false));

  core::ApotsConfig config;
  config.predictor = core::PredictorHparams::Scaled(
      core::PredictorType::kFc, 16);
  config.features = data::FeatureConfig::Both(12, 3);
  config.features.num_adjacent = (dataset.num_roads() - 1) / 2;
  config.training.adversarial = false;
  config.training.epochs = 3;
  config.training.verbose = false;
  config.training.guard.enabled = true;
  const data::SampleSplit split = data::MakeSplit(
      dataset, 12, 3, 0.2, data::SplitStrategy::kBlockedByDay, 42);

  core::ApotsModel model(&dataset, config);
  auto trained = model.TrainGuarded(split.train);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return result;
  }

  const auto truths = model.TrueKmh(split.test);
  result.clean_mae =
      metrics::Compute(model.PredictKmh(split.test), truths).mae;

  // MAE of `weights` over the test split with inputs from `inputs`
  // (targets stay clean truth — the attacker corrupts what the model
  // sees, not what the world does).
  const auto mae_on = [&](const traffic::TrafficDataset& inputs,
                          double* out) -> bool {
    core::ApotsModel eval(&inputs, config);
    if (const Status st = eval.CopyWeightsFrom(model); !st.ok()) {
      std::fprintf(stderr, "weight transfer failed: %s\n",
                   st.ToString().c_str());
      return false;
    }
    *out = metrics::Compute(eval.PredictKmh(split.test), truths).mae;
    return true;
  };

  attack::AttackConfig attack_config;  // default plausibility budget
  attack::Attacker attacker(attack_config);

  attack::AttackStats pgd_stats;
  auto pgd = attacker.BuildPgdPlan(&model, split.test, 0, &pgd_stats);
  if (!pgd.ok()) {
    std::fprintf(stderr, "pgd attack failed: %s\n",
                 pgd.status().ToString().c_str());
    return result;
  }
  result.max_abs_delta = pgd.value().MaxAbsDelta();
  result.max_temporal_step = pgd.value().MaxTemporalStep();
  result.nonzero_cells = pgd.value().NonzeroCells();
  result.pgd_queries = pgd_stats.queries;
  result.pgd_grad_passes = pgd_stats.grad_passes;
  traffic::TrafficDataset attacked = dataset;
  pgd.value().ApplyTo(&attacked, attack_config.budget);
  if (!mae_on(attacked, &result.attacked_mae)) return result;

  attack::AttackStats spsa_stats;
  auto spsa = attacker.BuildSpsaPlan(&model, split.test, 0, &spsa_stats);
  if (!spsa.ok()) {
    std::fprintf(stderr, "spsa attack failed: %s\n",
                 spsa.status().ToString().c_str());
    return result;
  }
  result.spsa_queries = spsa_stats.queries;
  traffic::TrafficDataset spsa_attacked = dataset;
  spsa.value().ApplyTo(&spsa_attacked, attack_config.budget);
  if (!mae_on(spsa_attacked, &result.spsa_mae)) return result;

  attack::DefenseConfig defense_config;
  defense_config.attack = attack_config;
  defense_config.rounds = 4;
  defense_config.finetune_epochs = 4;
  attack::RdatDefense defense(defense_config);
  auto defended = defense.Run(&model, split.train);
  if (!defended.ok()) {
    std::fprintf(stderr, "defense failed: %s\n",
                 defended.status().ToString().c_str());
    return result;
  }
  result.defended_clean_mae =
      metrics::Compute(model.PredictKmh(split.test), truths).mae;
  if (!mae_on(attacked, &result.defended_transfer_mae)) return result;

  // Adaptive re-attack: a fresh plan against the defended weights.
  auto adaptive = attacker.BuildPgdPlan(&model, split.test, 0);
  if (!adaptive.ok()) {
    std::fprintf(stderr, "re-attack failed: %s\n",
                 adaptive.status().ToString().c_str());
    return result;
  }
  traffic::TrafficDataset reattacked = dataset;
  adaptive.value().ApplyTo(&reattacked, attack_config.budget);
  if (!mae_on(reattacked, &result.defended_adaptive_mae)) return result;

  result.ok = true;
  return result;
}

struct ServeResult {
  uint64_t poisoned = 0;
  uint64_t detector_observed = 0;
  uint64_t detector_anomalous = 0;
  int detector_flagged_roads = 0;
  double availability = 0.0;
  long ticks = 0;
  bool ok = false;
};

// Serving arm: the PGD plan rides the feed as a poison fault while the
// residual detector watches every applied record.
ServeResult RunServePoisoned(bool quick) {
  ServeResult result;
  serve::HarnessConfig config;
  config.spec = BenchSpec(quick);
  config.spec.num_days = quick ? 4 : 6;
  config.warmup_fraction = 0.5;
  config.predictor = core::PredictorType::kFc;
  config.width_divisor = 16;
  config.train_epochs = 2;
  config.anchors_per_tick = 4;
  config.feed = serve::FeedFaultSpec::Clean();
  config.feed.poison = true;
  config.attack.enabled = true;
  serve::SimulationHarness harness(std::move(config));
  while (harness.RunTick()) ++result.ticks;
  result.poisoned = harness.feed().stats().poisoned;
  if (harness.detector() != nullptr) {
    const auto& stats = harness.detector()->stats();
    result.detector_observed = stats.observed;
    result.detector_anomalous = stats.anomalous;
    result.detector_flagged_roads = stats.flagged_roads;
  }
  result.availability = harness.report().availability();
  result.ok = true;
  return result;
}

// Clean-feed control: attack wiring on, poisoning off — the attack
// subsystem must be inert on the serving path unless the feed injects.
bool RunCleanBitwise(bool quick, uint64_t* compared) {
  serve::HarnessConfig config;
  config.spec = BenchSpec(quick);
  config.spec.num_days = quick ? 4 : 6;
  config.warmup_fraction = 0.5;
  config.predictor = core::PredictorType::kFc;
  config.width_divisor = 16;
  config.train_epochs = 2;
  config.anchors_per_tick = 4;
  config.feed = serve::FeedFaultSpec::Clean();
  config.attack.enabled = true;  // plan + detector built, never injected
  serve::SimulationHarness harness(std::move(config));
  bool all_match = true;
  bool more = true;
  while (more) {
    more = harness.RunTick();
    const auto& anchors = harness.last_anchors();
    const auto& responses = harness.last_responses();
    const std::vector<double> direct = harness.DirectPredictKmh(anchors);
    for (size_t i = 0; i < anchors.size(); ++i) {
      ++*compared;
      if (responses[i].tier != serve::ServeTier::kFull ||
          responses[i].kmh != direct[i]) {
        all_match = false;
      }
    }
  }
  return all_match;
}

int Run(const std::string& path, bool quick) {
  Stopwatch total;
  const OfflineResult offline = RunOffline();
  if (!offline.ok) return 1;
  std::fprintf(stderr,
               "attack: clean %.2f, pgd %.2f (%.2fx), spsa %.2f (%.2fx); "
               "budget max|delta| %.2f, max step %.2f\n",
               offline.clean_mae, offline.attacked_mae, offline.inflation(),
               offline.spsa_mae, offline.spsa_inflation(),
               offline.max_abs_delta, offline.max_temporal_step);
  std::fprintf(stderr,
               "defense: clean %.2f, transfer %.2f (recovery %.0f%%), "
               "adaptive %.2f (recovery %.0f%%)\n",
               offline.defended_clean_mae, offline.defended_transfer_mae,
               100.0 * offline.recovery_ratio(),
               offline.defended_adaptive_mae,
               100.0 * offline.adaptive_recovery());

  const ServeResult serve = RunServePoisoned(quick);
  if (!serve.ok) return 1;
  std::fprintf(stderr,
               "serve_poisoned: %llu readings poisoned over %ld ticks, "
               "detector %llu/%llu anomalous, %d roads flagged\n",
               static_cast<unsigned long long>(serve.poisoned), serve.ticks,
               static_cast<unsigned long long>(serve.detector_anomalous),
               static_cast<unsigned long long>(serve.detector_observed),
               serve.detector_flagged_roads);

  uint64_t compared = 0;
  const bool bitwise_clean = RunCleanBitwise(quick, &compared);
  std::fprintf(stderr, "clean_bitwise: %llu anchors compared, match=%d\n",
               static_cast<unsigned long long>(compared),
               bitwise_clean ? 1 : 0);

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"attack_robustness\",\n"
      << "  \"config\": {\"quick\": " << (quick ? "true" : "false")
      << "},\n"
      << "  \"attack\": {\n"
      << "    \"clean_mae\": " << offline.clean_mae << ",\n"
      << "    \"attacked_mae\": " << offline.attacked_mae << ",\n"
      << "    \"mae_inflation\": " << offline.inflation() << ",\n"
      << "    \"spsa_mae\": " << offline.spsa_mae << ",\n"
      << "    \"spsa_inflation\": " << offline.spsa_inflation() << ",\n"
      << "    \"max_abs_delta\": " << offline.max_abs_delta << ",\n"
      << "    \"max_temporal_step\": " << offline.max_temporal_step << ",\n"
      << "    \"nonzero_cells\": " << offline.nonzero_cells << ",\n"
      << "    \"pgd_queries\": " << offline.pgd_queries << ",\n"
      << "    \"pgd_grad_passes\": " << offline.pgd_grad_passes << ",\n"
      << "    \"spsa_queries\": " << offline.spsa_queries << "\n"
      << "  },\n"
      << "  \"defense\": {\n"
      << "    \"defended_clean_mae\": " << offline.defended_clean_mae
      << ",\n"
      << "    \"defended_transfer_mae\": " << offline.defended_transfer_mae
      << ",\n"
      << "    \"defended_adaptive_mae\": " << offline.defended_adaptive_mae
      << ",\n"
      << "    \"recovery_ratio\": " << offline.recovery_ratio() << ",\n"
      << "    \"adaptive_recovery\": " << offline.adaptive_recovery() << "\n"
      << "  },\n"
      << "  \"serve_poisoned\": {\n"
      << "    \"poisoned\": " << serve.poisoned << ",\n"
      << "    \"detector_observed\": " << serve.detector_observed << ",\n"
      << "    \"detector_anomalous\": " << serve.detector_anomalous << ",\n"
      << "    \"detector_flagged_roads\": " << serve.detector_flagged_roads
      << ",\n"
      << "    \"availability\": " << serve.availability << "\n"
      << "  },\n"
      << "  \"clean_bitwise_match\": " << (bitwise_clean ? "true" : "false")
      << ",\n"
      << "  \"wall_seconds\": " << total.ElapsedMillis() / 1000.0 << "\n"
      << "}\n";
  out.close();

  const bool healthy = offline.inflation() >= 2.0 &&
                       offline.recovery_ratio() >= 0.5 && bitwise_clean &&
                       serve.poisoned > 0 &&
                       serve.detector_flagged_roads >= 1;
  std::fprintf(stderr,
               "wrote %s (inflation %.2fx, recovery %.0f%%, healthy=%d)\n",
               path.c_str(), offline.inflation(),
               100.0 * offline.recovery_ratio(), healthy ? 1 : 0);
  return healthy ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_out/perf_attack.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      if (argv[i][11] == '=') path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  return Run(path, quick);
}
