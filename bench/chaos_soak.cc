// Chaos soak of the sharded serving plane (PR 9). Four arms, one
// machine-readable report (default bench_out/perf_chaos.json) that CI
// archives and gates on:
//   clean    2 shards x 2 replicas, clean feed, no chaos: every routed
//            response must ride the full tier and match the direct
//            InferenceRuntime::Predict path bit for bit (the router
//            round-robins replicas, so a sustained match also proves the
//            sibling replicas are bitwise interchangeable); both epoch
//            counters must stay zero
//   chaos    delivery-fault storm + seeded chaos scheduler (kills,
//            stalls, partitions, clock skews, checkpoint corruption)
//            with spare-last-healthy on; gates: availability AND
//            replica availability >= 0.999 (failover must reach a live
//            replica, not the ladder), zero stale-epoch full-tier
//            serves, at least one kill actually landed; reports the
//            failover latency percentiles (virtual time -> bit-stable)
//   outage   scripted whole-shard outage: every replica of shard 0
//            killed at once; the router ladder must answer (availability
//            stays 1.0), the neighbor shard must *detect* the lagging
//            boundary epoch, and serving must return to the full tier on
//            a live replica after the restarts
//   corrupt  scripted corrupt-newest-checkpoint + kill + restart drill
//            mid-serve; recovery must fall back a generation and resume
//            full-tier serving
//
// Flags: --perf_json[=path] selects the output file; --quick shrinks the
// simulated stream for CI smoke runs.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "serve/sharded_service.h"

namespace {

using namespace apots;

serve::ShardedConfig BaseConfig(bool quick) {
  serve::ShardedConfig config;
  traffic::DatasetSpec spec;
  spec.num_roads = 8;  // 2 shards x 4 roads; targets hug the cut
  spec.num_days = quick ? 4 : 10;
  spec.intervals_per_day = quick ? 96 : 288;
  spec.seed = 4242;
  spec.hyundai_calendar = false;
  config.spec = spec;
  config.warmup_fraction = 0.5;
  config.predictor = core::PredictorType::kFc;
  config.width_divisor = 16;
  config.train_epochs = 0;  // serving mechanics do not need a trained model
  config.model_seed = 7;
  config.num_shards = 2;
  config.replicas_per_shard = 2;
  config.anchors_per_tick = 2;
  return config;
}

struct CleanResult {
  serve::ShardedReport report;
  uint64_t compared = 0;
  bool bitwise = true;
  bool all_full_tier = true;
  long ticks = 0;
};

// Arm 1: with faults and chaos off, every routed answer must be the full
// tier and bitwise identical to the direct model path of the shard's
// first live replica, no matter which replica the round-robin picked.
CleanResult RunClean(bool quick) {
  serve::ShardedService service(BaseConfig(quick));
  CleanResult result;
  while (service.RunTick()) {
    ++result.ticks;
    const std::vector<long>& anchors = service.last_anchors();
    for (int s = 0; s < service.num_shards(); ++s) {
      const std::vector<double> direct = service.PredictDirect(s, anchors);
      const auto& responses = service.last_responses(s);
      for (size_t i = 0; i < anchors.size(); ++i) {
        ++result.compared;
        if (responses[i].serve.tier != serve::ServeTier::kFull ||
            responses[i].replica < 0) {
          result.all_full_tier = false;
        }
        if (responses[i].serve.kmh != direct[i]) result.bitwise = false;
      }
    }
  }
  result.report = service.report();
  return result;
}

struct ChaosResult {
  serve::ShardedReport report;
  chaos::ChaosScheduler::Stats sched;
  chaos::ChaosDriver::Stats driver;
  long ticks = 0;
};

// Arm 2: delivery-fault storm plus the seeded chaos scheduler, with
// checkpoints on so corrupt events exercise the full fall-back drill.
ChaosResult RunChaosStorm(bool quick, const std::string& ckpt_root) {
  std::filesystem::remove_all(ckpt_root);
  serve::ShardedConfig config = BaseConfig(quick);
  config.feed = serve::FeedFaultSpec::Storm(99);
  config.serve.deadline_ms = 0.0;  // chaos clock jumps poison latency EMAs
  config.checkpoint_root = ckpt_root;
  config.serve.checkpoint_every = quick ? 16 : 64;
  config.serve.checkpoint_keep = 3;
  serve::ShardedService service(std::move(config));

  chaos::ChaosScheduler scheduler(chaos::ChaosSpec::Storm(2024),
                                  service.num_shards(),
                                  service.replicas_per_shard());
  chaos::ChaosDriver driver(&service, &scheduler);

  ChaosResult result;
  bool more = true;
  while (more) {
    driver.Step(service.next_tick());
    more = service.RunTick();
    ++result.ticks;
  }
  result.report = service.report();
  result.sched = scheduler.stats();
  result.driver = driver.stats();
  return result;
}

struct OutageResult {
  uint64_t ladder_answers = 0;
  uint64_t epoch_lag_serves = 0;
  double availability = 0.0;
  bool ladder_during_outage = false;
  bool recovered_full_tier = false;
  bool neighbor_stayed_replica = true;
};

// Arm 3: kill every replica of shard 0 at once. The ladder must answer
// for shard 0, shard 1 must keep serving from replicas while *detecting*
// the lagging boundary epoch, and a full-tier replica answer must come
// back after the restarts.
OutageResult RunOutage(bool quick) {
  serve::ShardedService service(BaseConfig(quick));
  const long before = quick ? 20 : 60;
  const long down = quick ? 10 : 30;
  const long after = quick ? 20 : 60;

  OutageResult result;
  for (long t = 0; t < before; ++t) {
    if (!service.RunTick()) return result;
  }
  for (int r = 0; r < service.replicas_per_shard(); ++r) {
    if (!service.KillReplica(0, r).ok()) return result;
  }
  result.ladder_during_outage = true;
  for (long t = 0; t < down; ++t) {
    if (!service.RunTick()) return result;
    for (const auto& resp : service.last_responses(0)) {
      if (resp.replica >= 0) result.ladder_during_outage = false;
    }
    for (const auto& resp : service.last_responses(1)) {
      if (resp.replica < 0) result.neighbor_stayed_replica = false;
    }
  }
  for (int r = 0; r < service.replicas_per_shard(); ++r) {
    if (!service.RestartReplica(0, r).ok()) return result;
  }
  for (long t = 0; t < after; ++t) {
    if (!service.RunTick()) break;
  }
  result.recovered_full_tier = true;
  for (const auto& resp : service.last_responses(0)) {
    if (resp.replica < 0 || resp.serve.tier != serve::ServeTier::kFull) {
      result.recovered_full_tier = false;
    }
  }
  const serve::ShardedReport report = service.report();
  result.ladder_answers = report.router.ladder_answers;
  result.epoch_lag_serves = report.exchange.epoch_lag_serves;
  result.availability = report.availability();
  return result;
}

struct CorruptResult {
  bool corruption_applied = false;
  bool restart_ok = false;
  bool resumed_full_tier = false;
};

// Arm 4: corrupt the newest checkpoint of one replica, kill it, restart
// it mid-serve. Recovery must fall back past the corrupt generation
// (RestartReplica would otherwise replay from the warmup boundary, which
// also must not crash) and the shard must return to full-tier serving.
CorruptResult RunCorruptDrill(bool quick, const std::string& ckpt_root) {
  std::filesystem::remove_all(ckpt_root);
  serve::ShardedConfig config = BaseConfig(quick);
  config.checkpoint_root = ckpt_root;
  config.serve.checkpoint_every = 8;
  config.serve.checkpoint_keep = 3;
  serve::ShardedService service(std::move(config));

  CorruptResult result;
  const long before = quick ? 24 : 80;
  for (long t = 0; t < before; ++t) {
    if (!service.RunTick()) return result;
  }
  const Status corrupted = service.CorruptNewestCheckpoint(0, 0);
  if (!corrupted.ok()) {
    std::fprintf(stderr, "corrupt drill: %s\n",
                 corrupted.ToString().c_str());
    return result;
  }
  result.corruption_applied = true;
  if (!service.KillReplica(0, 0).ok()) return result;
  if (!service.RestartReplica(0, 0).ok()) return result;
  result.restart_ok = service.ReplicaAlive(0, 0);
  result.resumed_full_tier = true;
  for (long t = 0; t < (quick ? 8 : 16); ++t) {
    if (!service.RunTick()) break;
    for (const auto& resp : service.last_responses(0)) {
      if (resp.replica < 0 || resp.serve.tier != serve::ServeTier::kFull) {
        result.resumed_full_tier = false;
      }
    }
  }
  return result;
}

int Run(const std::string& path, bool quick) {
  const CleanResult clean = RunClean(quick);
  std::fprintf(stderr,
               "clean: %llu anchors compared over %ld ticks, bitwise=%d "
               "full_tier=%d epoch_lag=%llu\n",
               static_cast<unsigned long long>(clean.compared), clean.ticks,
               clean.bitwise ? 1 : 0, clean.all_full_tier ? 1 : 0,
               static_cast<unsigned long long>(
                   clean.report.exchange.epoch_lag_serves));

  const ChaosResult chaos_arm =
      RunChaosStorm(quick, "bench_out/chaos_ckpt");
  const serve::ShardedReport& cr = chaos_arm.report;
  std::fprintf(
      stderr,
      "chaos: %llu requests over %ld ticks, availability %.5f "
      "(replica %.5f), kills=%llu restarts=%llu stalls=%llu "
      "partitions=%llu skews=%llu corruptions=%llu spared=%llu, "
      "failovers=%llu p99=%.2fms, stale_epoch=%llu epoch_lag=%llu\n",
      static_cast<unsigned long long>(cr.router.requests), chaos_arm.ticks,
      cr.availability(), cr.replica_availability(),
      static_cast<unsigned long long>(cr.kills),
      static_cast<unsigned long long>(cr.restarts),
      static_cast<unsigned long long>(cr.stalls),
      static_cast<unsigned long long>(cr.partitions),
      static_cast<unsigned long long>(cr.clock_skews),
      static_cast<unsigned long long>(cr.checkpoint_corruptions),
      static_cast<unsigned long long>(chaos_arm.sched.spared),
      static_cast<unsigned long long>(cr.router.failovers),
      cr.failover_p99_ms,
      static_cast<unsigned long long>(cr.exchange.stale_epoch_serves),
      static_cast<unsigned long long>(cr.exchange.epoch_lag_serves));

  const OutageResult outage = RunOutage(quick);
  std::fprintf(stderr,
               "outage: ladder_answers=%llu availability=%.5f "
               "epoch_lag=%llu ladder_during=%d neighbor_replica=%d "
               "recovered=%d\n",
               static_cast<unsigned long long>(outage.ladder_answers),
               outage.availability,
               static_cast<unsigned long long>(outage.epoch_lag_serves),
               outage.ladder_during_outage ? 1 : 0,
               outage.neighbor_stayed_replica ? 1 : 0,
               outage.recovered_full_tier ? 1 : 0);

  const CorruptResult corrupt =
      RunCorruptDrill(quick, "bench_out/chaos_ckpt_corrupt");
  std::fprintf(stderr, "corrupt: applied=%d restart_ok=%d resumed=%d\n",
               corrupt.corruption_applied ? 1 : 0,
               corrupt.restart_ok ? 1 : 0,
               corrupt.resumed_full_tier ? 1 : 0);

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"chaos_soak\",\n"
      << "  \"config\": {\"quick\": " << (quick ? "true" : "false")
      << ", \"ticks\": " << chaos_arm.ticks
      << ", \"shards\": 2, \"replicas\": 2},\n"
      << "  \"clean\": {\n"
      << "    \"anchors_compared\": " << clean.compared << ",\n"
      << "    \"bitwise_match\": " << (clean.bitwise ? "true" : "false")
      << ",\n"
      << "    \"all_full_tier\": "
      << (clean.all_full_tier ? "true" : "false") << ",\n"
      << "    \"availability\": " << clean.report.availability() << ",\n"
      << "    \"epoch_lag_serves\": "
      << clean.report.exchange.epoch_lag_serves << ",\n"
      << "    \"stale_epoch_serves\": "
      << clean.report.exchange.stale_epoch_serves << "\n"
      << "  },\n"
      << "  \"chaos\": {\n"
      << "    \"requests\": " << cr.router.requests << ",\n"
      << "    \"availability\": " << cr.availability() << ",\n"
      << "    \"replica_availability\": " << cr.replica_availability()
      << ",\n"
      << "    \"failover_p50_ms\": " << cr.failover_p50_ms << ",\n"
      << "    \"failover_p99_ms\": " << cr.failover_p99_ms << ",\n"
      << "    \"failovers\": " << cr.router.failovers << ",\n"
      << "    \"retries\": " << cr.router.retries << ",\n"
      << "    \"ladder_answers\": " << cr.router.ladder_answers << ",\n"
      << "    \"kills\": " << cr.kills << ",\n"
      << "    \"restarts\": " << cr.restarts << ",\n"
      << "    \"stalls\": " << cr.stalls << ",\n"
      << "    \"partitions\": " << cr.partitions << ",\n"
      << "    \"clock_skews\": " << cr.clock_skews << ",\n"
      << "    \"checkpoint_corruptions\": " << cr.checkpoint_corruptions
      << ",\n"
      << "    \"spared\": " << chaos_arm.sched.spared << ",\n"
      << "    \"rejected_events\": " << chaos_arm.driver.rejected << ",\n"
      << "    \"stale_epoch_serves\": " << cr.exchange.stale_epoch_serves
      << ",\n"
      << "    \"epoch_lag_serves\": " << cr.exchange.epoch_lag_serves
      << ",\n"
      << "    \"tier_full\": " << cr.serve.tier_counts[0] << ",\n"
      << "    \"tier_imputed\": " << cr.serve.tier_counts[1] << ",\n"
      << "    \"tier_historical\": " << cr.serve.tier_counts[2] << ",\n"
      << "    \"tier_last_known_good\": " << cr.serve.tier_counts[3] << "\n"
      << "  },\n"
      << "  \"outage\": {\n"
      << "    \"ladder_answers\": " << outage.ladder_answers << ",\n"
      << "    \"availability\": " << outage.availability << ",\n"
      << "    \"epoch_lag_serves\": " << outage.epoch_lag_serves << ",\n"
      << "    \"ladder_during_outage\": "
      << (outage.ladder_during_outage ? "true" : "false") << ",\n"
      << "    \"neighbor_stayed_replica\": "
      << (outage.neighbor_stayed_replica ? "true" : "false") << ",\n"
      << "    \"recovered_full_tier\": "
      << (outage.recovered_full_tier ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"corrupt\": {\n"
      << "    \"corruption_applied\": "
      << (corrupt.corruption_applied ? "true" : "false") << ",\n"
      << "    \"restart_ok\": " << (corrupt.restart_ok ? "true" : "false")
      << ",\n"
      << "    \"resumed_full_tier\": "
      << (corrupt.resumed_full_tier ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"crashes\": 0\n"
      << "}\n";
  out.close();

  const bool healthy =
      clean.bitwise && clean.all_full_tier &&
      clean.report.exchange.epoch_lag_serves == 0 &&
      clean.report.exchange.stale_epoch_serves == 0 &&
      cr.availability() >= 0.999 && cr.replica_availability() >= 0.999 &&
      cr.exchange.stale_epoch_serves == 0 && cr.kills >= 1 &&
      outage.ladder_answers > 0 && outage.availability >= 1.0 &&
      outage.epoch_lag_serves > 0 && outage.ladder_during_outage &&
      outage.neighbor_stayed_replica && outage.recovered_full_tier &&
      corrupt.corruption_applied && corrupt.restart_ok &&
      corrupt.resumed_full_tier;
  std::fprintf(stderr,
               "wrote %s (availability %.5f, replica %.5f, healthy=%d)\n",
               path.c_str(), cr.availability(), cr.replica_availability(),
               healthy ? 1 : 0);
  return healthy ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_out/perf_chaos.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      if (argv[i][11] == '=') path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  return Run(path, quick);
}
