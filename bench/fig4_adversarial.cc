// Fig. 4 reproduction: effect of adversarial training without additional
// data. Trains F, C, L, H and their Adv counterparts (speed-only input)
// and prints MAPE over {whole period, normal, abrupt acceleration, abrupt
// deceleration} — the four bars of each Fig. 4 panel.

#include <cstdio>
#include <filesystem>
#include <vector>

#include "eval/experiment.h"
#include "eval/profile.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  std::filesystem::create_directories("bench_out");
  eval::EvalProfile profile = eval::EvalProfile::FromEnv();
  std::printf("=== Fig. 4: effect of adversarial training (profile: %s) "
              "===\n\n",
              profile.LevelName().c_str());
  eval::Experiment experiment(profile);

  TablePrinter table({"model", "whole", "normal", "abrupt acc",
                      "abrupt dec", "train[s]"});
  auto writer = CsvWriter::Open(
      "bench_out/fig4.csv",
      {"model", "whole_mape", "normal_mape", "acc_mape", "dec_mape"});

  for (core::PredictorType type :
       {core::PredictorType::kFc, core::PredictorType::kCnn,
        core::PredictorType::kLstm, core::PredictorType::kHybrid}) {
    for (bool adversarial : {false, true}) {
      eval::ModelSpec spec;
      spec.predictor = type;
      spec.adversarial = adversarial;
      spec.features = data::FeatureConfig::SpeedOnly();
      const eval::EvalRow row = experiment.RunModel(spec);
      table.AddRow({row.label, FormatMetric(row.whole.mape),
                    FormatMetric(row.normal.mape),
                    FormatMetric(row.abrupt_acc.mape),
                    FormatMetric(row.abrupt_dec.mape),
                    FormatMetric(row.train_seconds)});
      if (writer.ok()) {
        (void)writer.value().WriteRow(std::vector<std::string>{
            row.label, StrFormat("%.4f", row.whole.mape),
            StrFormat("%.4f", row.normal.mape),
            StrFormat("%.4f", row.abrupt_acc.mape),
            StrFormat("%.4f", row.abrupt_dec.mape)});
      }
    }
    table.AddSeparator();
  }
  table.Print();
  if (writer.ok()) (void)writer.value().Close();
  std::printf("\nPaper reference (their data): adversarial training lowers "
              "MAPE for every predictor,\nwith the largest gains for F "
              "(21.43 -> 18.82 whole; 44.37 -> 7.94 abrupt acc;\n79.84 -> "
              "26.83 abrupt dec). Expect the same direction here, with "
              "smaller margins\nat reduced CPU scale (see EXPERIMENTS.md).\n");
  return 0;
}
