// End-to-end training-throughput benchmark: samples/second of one MSE
// minibatch step per predictor family at the quick-profile scale, plus the
// cost of one full adversarial round. Useful for sizing the experiment
// profiles.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/adversarial_trainer.h"
#include "core/apots_model.h"
#include "data/windowing.h"
#include "traffic/dataset_generator.h"

namespace {

using namespace apots;

struct Env {
  traffic::TrafficDataset dataset;
  std::vector<long> anchors;

  Env() : dataset(traffic::GenerateDataset(traffic::DatasetSpec::Small(3))) {
    auto split = data::MakeSplit(dataset, 12, 3, 0.2,
                                 data::SplitStrategy::kBlockedByDay, 11);
    anchors.assign(split.train.begin(),
                   split.train.begin() +
                       std::min<size_t>(512, split.train.size()));
  }
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

core::ApotsConfig ConfigFor(core::PredictorType type, bool adversarial) {
  core::ApotsConfig config;
  config.predictor = core::PredictorHparams::Scaled(type, 8);
  config.discriminator = core::DiscriminatorHparams::Scaled(2);
  config.features = data::FeatureConfig::Both();
  config.features.num_adjacent = 1;  // the Small dataset has 3 roads
  config.features.beta = 3;
  config.training.adversarial = adversarial;
  config.training.epochs = 1;
  config.training.batch_size = 64;
  config.training.adv_period = 4;
  config.training.adv_warmup_rounds = 0;
  config.seed = 99;
  return config;
}

void BM_TrainEpoch(benchmark::State& state, core::PredictorType type,
                   bool adversarial) {
  Env& env = GetEnv();
  core::ApotsModel model(&env.dataset, ConfigFor(type, adversarial));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Train(env.anchors));
  }
  state.SetItemsProcessed(state.iterations() * env.anchors.size());
}

void BM_TrainFc(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kFc, false);
}
void BM_TrainFcAdv(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kFc, true);
}
void BM_TrainCnn(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kCnn, false);
}
void BM_TrainLstm(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kLstm, false);
}
void BM_TrainHybrid(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kHybrid, false);
}
void BM_TrainHybridAdv(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kHybrid, true);
}

BENCHMARK(BM_TrainFc)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainFcAdv)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainCnn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainLstm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainHybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainHybridAdv)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
