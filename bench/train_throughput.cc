// End-to-end training-throughput benchmark: samples/second of one MSE
// minibatch step per predictor family at the quick-profile scale, plus the
// cost of one full adversarial round. Useful for sizing the experiment
// profiles.
//
// `--perf_json[=path]` skips google-benchmark and instead times one guarded
// adversarial FC training run under three execution arms, writing a
// machine-readable report (default bench_out/perf_pr2.json) that CI archives
// and gates on:
//   serial          reference kernels, 1 thread, full-batch step (the seed's
//                   exact execution path)
//   serial_blocked  blocked kernels, 1 thread, full-batch step (isolates the
//                   single-core kernel rewrite)
//   blocked_4t      blocked kernels, multiple threads, full-batch step
//                   (kernel-level parallelism only — no data-parallel
//                   sharding, no replica syncing)
//   simd_1t         packed-panel SIMD microkernels (runtime ISA dispatch),
//                   1 thread, full-batch step
//   simd_4t         SIMD microkernels, multiple threads, full-batch step
//   parallel        blocked kernels, multiple threads, data-parallel
//                   micro-batches
// The thread count is APOTS_NUM_THREADS when set (>1), else
// min(4, hardware_concurrency) — oversubscribing a small machine makes the
// multi-threaded arms slower than serial and tells us nothing.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/adversarial_trainer.h"
#include "core/apots_model.h"
#include "data/windowing.h"
#include "tensor/tensor_ops.h"
#include "traffic/dataset_generator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace apots;

struct Env {
  traffic::TrafficDataset dataset;
  std::vector<long> anchors;

  Env() : dataset(traffic::GenerateDataset(traffic::DatasetSpec::Small(3))) {
    auto split = data::MakeSplit(dataset, 12, 3, 0.2,
                                 data::SplitStrategy::kBlockedByDay, 11);
    anchors.assign(split.train.begin(),
                   split.train.begin() +
                       std::min<size_t>(512, split.train.size()));
  }
};

Env& GetEnv() {
  static Env* env = new Env();
  return *env;
}

core::ApotsConfig ConfigFor(core::PredictorType type, bool adversarial) {
  core::ApotsConfig config;
  config.predictor = core::PredictorHparams::Scaled(type, 8);
  config.discriminator = core::DiscriminatorHparams::Scaled(2);
  config.features = data::FeatureConfig::Both();
  config.features.num_adjacent = 1;  // the Small dataset has 3 roads
  config.features.beta = 3;
  config.training.adversarial = adversarial;
  config.training.epochs = 1;
  config.training.batch_size = 64;
  config.training.adv_period = 4;
  config.training.adv_warmup_rounds = 0;
  config.seed = 99;
  return config;
}

void BM_TrainEpoch(benchmark::State& state, core::PredictorType type,
                   bool adversarial) {
  Env& env = GetEnv();
  core::ApotsModel model(&env.dataset, ConfigFor(type, adversarial));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Train(env.anchors));
  }
  state.SetItemsProcessed(state.iterations() * env.anchors.size());
}

void BM_TrainFc(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kFc, false);
}
void BM_TrainFcAdv(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kFc, true);
}
void BM_TrainCnn(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kCnn, false);
}
void BM_TrainLstm(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kLstm, false);
}
void BM_TrainHybrid(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kHybrid, false);
}
void BM_TrainHybridAdv(benchmark::State& state) {
  BM_TrainEpoch(state, core::PredictorType::kHybrid, true);
}

BENCHMARK(BM_TrainFc)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainFcAdv)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainCnn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainLstm)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainHybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainHybridAdv)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --perf_json harness
// ---------------------------------------------------------------------------

namespace perf {

namespace ops = apots::tensor;

constexpr size_t kEpochs = 2;
constexpr size_t kMicroBatch = 32;
constexpr size_t kRepeats = 2;  // best-of, to shave scheduler noise

// The perf config is deliberately GEMM-dominated (LSTM at half paper width,
// adversarial on) so the report reflects the kernels the training loop
// actually spends its time in: per-timestep gate matmuls forward and the
// transpose-B matmuls in backpropagation-through-time.
core::ApotsConfig PerfConfig(size_t micro_batch) {
  core::ApotsConfig config;
  config.predictor =
      core::PredictorHparams::Scaled(core::PredictorType::kLstm, 2);
  config.discriminator = core::DiscriminatorHparams::Scaled(2);
  config.features = data::FeatureConfig::Both();
  config.features.num_adjacent = 1;
  config.features.beta = 3;
  config.training.adversarial = true;
  config.training.epochs = kEpochs;
  config.training.batch_size = 64;
  config.training.micro_batch = micro_batch;
  config.training.adv_period = 4;
  config.training.adv_warmup_rounds = 0;
  config.training.guard.enabled = true;
  config.seed = 99;
  return config;
}

struct ArmSpec {
  const char* name;
  const char* kernels;  // "reference" | "blocked"
  ops::KernelMode mode;
  size_t threads;
  size_t micro_batch;  // 0 = full-batch step
};

struct ArmResult {
  ArmSpec spec;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
};

ArmResult RunArm(const ArmSpec& spec) {
  Env& env = GetEnv();
  ArmResult result;
  result.spec = spec;
  result.seconds = 1e100;
  for (size_t rep = 0; rep < kRepeats; ++rep) {
    ops::SetKernelMode(spec.mode);
    ResetGlobalPool(spec.threads);
    core::ApotsModel model(&env.dataset, PerfConfig(spec.micro_batch));
    Stopwatch watch;
    auto report = model.TrainGuarded(env.anchors);
    const double seconds = watch.ElapsedSeconds();
    if (!report.ok()) {
      std::fprintf(stderr, "perf arm %s failed: %s\n", spec.name,
                   report.status().ToString().c_str());
      std::exit(1);
    }
    result.seconds = std::min(result.seconds, seconds);
  }
  result.samples_per_sec =
      static_cast<double>(env.anchors.size() * kEpochs) / result.seconds;
  return result;
}

size_t ParallelThreads() {
  if (const char* env = std::getenv("APOTS_NUM_THREADS")) {
    const long parsed = std::atol(env);
    if (parsed > 1) return static_cast<size_t>(parsed);
  }
  const size_t hw = std::max<size_t>(1, std::thread::hardware_concurrency());
  return std::min<size_t>(4, hw);
}

int RunPerfJson(const std::string& path) {
  Env& env = GetEnv();
  const size_t threads = ParallelThreads();
  const ArmSpec arms[] = {
      {"serial", "reference", ops::KernelMode::kReference, 1, 0},
      {"serial_blocked", "blocked", ops::KernelMode::kBlocked, 1, 0},
      {"blocked_4t", "blocked", ops::KernelMode::kBlocked, threads, 0},
      {"simd_1t", "simd", ops::KernelMode::kSimd, 1, 0},
      {"simd_4t", "simd", ops::KernelMode::kSimd, threads, 0},
      {"parallel", "blocked", ops::KernelMode::kBlocked, threads, kMicroBatch},
  };
  std::vector<ArmResult> results;
  for (const ArmSpec& spec : arms) {
    results.push_back(RunArm(spec));
    std::fprintf(stderr, "%-15s %7.3fs  %8.1f samples/s\n",
                 results.back().spec.name, results.back().seconds,
                 results.back().samples_per_sec);
  }
  ops::SetKernelMode(ops::KernelMode::kBlocked);
  ResetGlobalPool(1);
  // Name-based lookup — never positional, so adding arms cannot silently
  // skew the derived speedups.
  const auto arm_seconds = [&results](const char* name) {
    for (const ArmResult& r : results) {
      if (std::strcmp(r.spec.name, name) == 0) return r.seconds;
    }
    std::fprintf(stderr, "missing arm %s\n", name);
    std::exit(1);
  };

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"train_throughput\",\n"
      << "  \"config\": {\n"
      << "    \"predictor\": \"lstm_scaled_2\",\n"
      << "    \"adversarial\": true,\n"
      << "    \"train_guard\": true,\n"
      << "    \"anchors\": " << env.anchors.size() << ",\n"
      << "    \"epochs\": " << kEpochs << ",\n"
      << "    \"batch_size\": 64,\n"
      << "    \"micro_batch\": " << kMicroBatch << ",\n"
      << "    \"parallel_threads\": " << threads << "\n"
      << "  },\n"
      << "  \"arms\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    out << "    {\"name\": \"" << r.spec.name << "\", \"kernels\": \""
        << r.spec.kernels << "\", \"threads\": " << r.spec.threads
        << ", \"micro_batch\": " << r.spec.micro_batch << ", \"seconds\": "
        << r.seconds << ", \"samples_per_sec\": " << r.samples_per_sec << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  const double serial = arm_seconds("serial");
  out << "  ],\n"
      << "  \"speedup_parallel_vs_serial\": "
      << serial / arm_seconds("parallel") << ",\n"
      << "  \"speedup_blocked_1t_vs_serial\": "
      << serial / arm_seconds("serial_blocked") << ",\n"
      << "  \"speedup_blocked_4t_vs_serial\": "
      << serial / arm_seconds("blocked_4t") << ",\n"
      << "  \"speedup_simd_1t_vs_serial\": "
      << serial / arm_seconds("simd_1t") << ",\n"
      << "  \"speedup_simd_4t_vs_serial\": "
      << serial / arm_seconds("simd_4t") << "\n"
      << "}\n";
  out.close();
  std::fprintf(stderr, "wrote %s (parallel vs serial: %.2fx)\n", path.c_str(),
               serial / arm_seconds("parallel"));
  return 0;
}

}  // namespace perf

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      std::string path = "bench_out/perf_pr2.json";
      if (argv[i][11] == '=') path = argv[i] + 12;
      return perf::RunPerfJson(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
