// Table II reproduction: ablation of the non-speed factors (Event,
// Weather, Time) for APOTS H. Each arm adds a subset of factors on top of
// the target+adjacent speed input under adversarial training; gains are
// relative to the S (no non-speed data) arm, as in the paper.

#include <cstdio>
#include <filesystem>

#include "eval/experiment.h"
#include "eval/profile.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  std::filesystem::create_directories("bench_out");
  eval::EvalProfile profile = eval::EvalProfile::FromEnv();
  std::printf("=== Table II: non-speed factors for APOTS H (profile: %s) "
              "===\n\n",
              profile.LevelName().c_str());
  eval::Experiment experiment(profile);

  struct Arm {
    const char* name;
    bool event;
    bool weather;
    bool time;
  };
  const Arm arms[] = {
      {"S", false, false, false},   {"SE", true, false, false},
      {"SW", false, true, false},   {"ST", false, false, true},
      {"SEW", true, true, false},   {"SET", true, false, true},
      {"SWT", false, true, true},   {"SEWT", true, true, true},
  };

  auto writer = CsvWriter::Open("bench_out/table2.csv",
                                {"variant", "arm", "mape", "gain_pct"});
  // Two passes: the paper-faithful one (APOTS H, adversarial on) and a
  // variance-reduced one (same predictor, no adversarial term) — at
  // scaled widths the adversarial-H seed noise is of the same order as
  // the factor effects, so the second pass is where the factor ordering
  // is readable.
  for (const bool adversarial : {true, false}) {
    std::printf("--- %s ---\n",
                adversarial ? "APOTS H (adversarial, as in the paper)"
                            : "H only (no adversarial, variance-reduced)");
    TablePrinter table({"arm", "MAPE", "gain vs S", "train[s]"});
    double s_mape = 0.0;
    for (const Arm& arm : arms) {
      eval::ModelSpec spec;
      spec.predictor = core::PredictorType::kHybrid;
      spec.adversarial = adversarial;
      spec.features = data::FeatureConfig::AdjacentOnly();
      spec.features.use_event = arm.event;
      spec.features.use_weather = arm.weather;
      spec.features.use_time = arm.time;
      const eval::EvalRow row = experiment.RunModel(spec);
      if (std::string(arm.name) == "S") s_mape = row.whole.mape;
      const double gain = metrics::GainPercent(row.whole.mape, s_mape);
      table.AddRow({arm.name, FormatMetric(row.whole.mape),
                    std::string(arm.name) == "S" ? "-" : FormatGain(gain),
                    FormatMetric(row.train_seconds)});
      if (writer.ok()) {
        (void)writer.value().WriteRow(std::vector<std::string>{
            adversarial ? "apots_h" : "h_plain", arm.name,
            StrFormat("%.4f", row.whole.mape), StrFormat("%.4f", gain)});
      }
    }
    table.Print();
    std::printf("\n");
  }
  if (writer.ok()) (void)writer.value().Close();
  std::printf("\nPaper reference: Time has the greatest impact (20.12%% "
              "gain), then Weather (3.73%%),\nwhile Event alone shows "
              "little effect; SEWT is best (16.60 -> 12.80 MAPE).\n"
              "Note: the paper's S row includes the adjacent-speed matrix "
              "(the H predictor consumes\nEq. 6), so ours does too.\n");
  return 0;
}
