// Load bench for the front-door request path (serve::Frontend, PR 7).
// Drives a fully-ingested serving stack through the concurrent MPSC
// front door and reports one machine-readable JSON (default
// bench_out/perf_frontend.json) that CI archives and gates on:
//   clean      closed-loop producers, ample queue: zero sheds by
//              construction, and every answer must be bitwise identical
//              to InferenceRuntime::Predict via the model facade
//   coalesce   manual-pump, K duplicates of M keys in one drain cycle:
//              exactly one inference per key, fan-out bitwise identical,
//              deterministic hit counts
//   closed_loop  T producers submitting back-to-back: throughput under
//              natural backpressure, p99 latency
//   open_loop  paced arrival ladder: max sustainable QPS whose p99
//              latency meets the SLO with shed rate <= 1%
//   overload   burst 4x the ring capacity with the consumer stalled:
//              sheds are structural, availability must stay 1.0, queue
//              depth must stay bounded by the ring
//   quantized  closed loop against a second stack serving int8 inference
//              weights (run last, own harness — the fp32 arms above are
//              untouched): throughput plus mae_delta_kmh, the true-MAE
//              shift vs the fp32 clean arm, which must stay within
//              0.5 km/h
//
// Flags: --perf_json[=path] selects the output file; --quick shrinks the
// stream and the rate ladder for CI smoke runs.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/frontend.h"
#include "serve/harness.h"
#include "tensor/quant.h"
#include "util/stopwatch.h"

namespace {

using namespace apots;

serve::HarnessConfig BaseConfig(bool quick) {
  serve::HarnessConfig config;
  traffic::DatasetSpec spec;
  spec.num_roads = 5;
  spec.num_days = quick ? 4 : 10;
  spec.intervals_per_day = quick ? 96 : 288;
  spec.seed = 4242;
  spec.hyundai_calendar = false;
  config.spec = spec;
  config.warmup_fraction = 0.5;
  config.predictor = core::PredictorType::kFc;
  config.width_divisor = 16;
  config.train_epochs = 0;  // load mechanics do not need a trained model
  config.model_seed = 7;
  return config;
}

/// Builds a harness with the whole stream already ingested, so the
/// frontend serves against a quiescent, fully-fresh live dataset and the
/// bench measures the request path, not the ingest path.
std::unique_ptr<serve::SimulationHarness> BuildIngestedHarness(
    serve::HarnessConfig config) {
  auto harness =
      std::make_unique<serve::SimulationHarness>(std::move(config));
  while (harness->IngestTick()) {
  }
  return harness;
}

/// Servable anchor window [lo, lo + span): streamed region only, so every
/// clean answer is the full tier.
void AnchorWindow(const serve::SimulationHarness& harness, long* lo,
                  long* span) {
  *lo = harness.warmup_end();
  *span = harness.last_servable_tick() - *lo + 1;
}

struct ObservedAnswer {
  long anchor = 0;
  double kmh = 0.0;
  serve::ServeTier tier = serve::ServeTier::kFull;
  serve::RequestOutcome outcome = serve::RequestOutcome::kServed;
};

/// Closed-loop arm: each producer submits and waits, back to back.
struct ClosedLoopResult {
  serve::FrontendStats stats;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<ObservedAnswer> answers;
};

ClosedLoopResult RunClosedLoop(serve::SimulationHarness* harness,
                               int threads, int requests_per_thread,
                               long lo, long span) {
  serve::FrontendConfig fc;
  fc.queue_capacity = 4096;
  fc.max_batch = 64;
  serve::Frontend frontend(&harness->supervisor(), fc);

  obs::Histogram& latency_ms = obs::MetricsRegistry::Default().GetHistogram(
      "bench.frontend_qps.latency_ms");
  latency_ms.Reset();

  std::vector<std::vector<ObservedAnswer>> per_thread(
      static_cast<size_t>(threads));
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      auto& out = per_thread[static_cast<size_t>(t)];
      out.reserve(static_cast<size_t>(requests_per_thread));
      for (int i = 0; i < requests_per_thread; ++i) {
        serve::FrontendRequest request;
        // Per-thread stride so the window is covered and duplicates
        // across threads exercise coalescing.
        request.anchor = lo + (static_cast<long>(i) * threads + t) % span;
        const serve::FrontendResponse response = frontend.Submit(request);
        latency_ms.Record(response.total_ms);
        out.push_back({request.anchor, response.serve.kmh,
                       response.serve.tier, response.outcome});
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const double elapsed_ms = watch.ElapsedMillis();
  frontend.Stop();

  ClosedLoopResult result;
  result.stats = frontend.stats();
  const double total =
      static_cast<double>(threads) * requests_per_thread;
  result.qps = elapsed_ms <= 0.0 ? 0.0 : total / (elapsed_ms / 1e3);
  result.p50_ms = latency_ms.Percentile(0.50);
  result.p99_ms = latency_ms.Percentile(0.99);
  for (auto& observed : per_thread) {
    result.answers.insert(result.answers.end(), observed.begin(),
                          observed.end());
  }
  return result;
}

/// Checks every closed-loop answer against the direct
/// InferenceRuntime::Predict path (the model facade with fallback
/// disabled). Bitwise: `!=` on the doubles, no tolerance.
bool CheckBitwise(serve::SimulationHarness* harness,
                  const std::vector<ObservedAnswer>& answers,
                  uint64_t* compared) {
  std::vector<long> distinct;
  for (const ObservedAnswer& answer : answers) {
    distinct.push_back(answer.anchor);
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  const std::vector<double> direct = harness->DirectPredictKmh(distinct);
  std::map<long, double> expected;
  for (size_t i = 0; i < distinct.size(); ++i) {
    expected[distinct[i]] = direct[i];
  }
  bool all_match = true;
  for (const ObservedAnswer& answer : answers) {
    ++*compared;
    if (answer.tier != serve::ServeTier::kFull ||
        answer.kmh != expected[answer.anchor]) {
      all_match = false;
    }
  }
  return all_match;
}

/// Deterministic coalescing arm: manual pump, K duplicates of each of M
/// keys submitted before a single drain cycle. Expected counts are exact,
/// not statistical.
struct CoalesceResult {
  serve::FrontendStats stats;
  uint64_t expected_hits = 0;
  uint64_t keys = 0;
  bool counts_exact = false;
  bool fanout_bitwise = false;
};

CoalesceResult RunCoalesce(serve::SimulationHarness* harness, long lo) {
  constexpr int kKeys = 16;
  constexpr int kDuplicates = 8;
  serve::FrontendConfig fc;
  fc.queue_capacity = 256;
  fc.max_batch = 256;
  fc.background = false;  // the bench thread is the consumer
  serve::Frontend frontend(&harness->supervisor(), fc);

  std::vector<std::shared_ptr<serve::PendingResponse>> handles;
  for (int dup = 0; dup < kDuplicates; ++dup) {
    for (int key = 0; key < kKeys; ++key) {
      serve::FrontendRequest request;
      request.anchor = lo + key;
      handles.push_back(frontend.SubmitAsync(request));
    }
  }
  while (frontend.RunCycle() > 0) {
  }

  CoalesceResult result;
  result.stats = frontend.stats();
  result.keys = kKeys;
  result.expected_hits =
      static_cast<uint64_t>(kKeys) * (kDuplicates - 1);
  result.counts_exact =
      result.stats.inference_calls == 1 &&
      result.stats.inferred_keys == kKeys &&
      result.stats.served == kKeys &&
      result.stats.coalesce_hits == result.expected_hits &&
      result.stats.sheds() == 0;

  // Every duplicate must carry bits identical to its key's slot owner.
  result.fanout_bitwise = true;
  std::map<long, double> first_bits;
  for (const auto& handle : handles) {
    const serve::FrontendResponse& response = handle->Wait();
    const long anchor = handle->request().anchor;
    auto [it, inserted] = first_bits.try_emplace(anchor, response.serve.kmh);
    if (!inserted &&
        std::memcmp(&it->second, &response.serve.kmh, sizeof(double)) != 0) {
      result.fanout_bitwise = false;
    }
  }
  return result;
}

/// One open-loop step: paced arrivals at `offered_qps` for `duration_s`.
struct OpenLoopStep {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;
  uint64_t requests = 0;
  bool sustainable = false;
};

OpenLoopStep RunOpenLoopStep(serve::SimulationHarness* harness,
                             double offered_qps, double duration_s,
                             double slo_ms, long lo, long span) {
  serve::FrontendConfig fc;
  fc.queue_capacity = 1024;
  fc.max_batch = 64;
  serve::Frontend frontend(&harness->supervisor(), fc);

  obs::Histogram& latency_ms = obs::MetricsRegistry::Default().GetHistogram(
      "bench.frontend_qps.open_latency_ms");
  latency_ms.Reset();

  const int64_t total =
      std::max<int64_t>(1, static_cast<int64_t>(offered_qps * duration_s));
  const auto period = std::chrono::nanoseconds(
      static_cast<int64_t>(1e9 / offered_qps));
  std::vector<std::shared_ptr<serve::PendingResponse>> handles;
  handles.reserve(static_cast<size_t>(total));

  const auto start = std::chrono::steady_clock::now();
  for (int64_t i = 0; i < total; ++i) {
    // Open loop: arrivals follow the schedule, not the service rate. A
    // late dispatcher catches up in a burst instead of silently lowering
    // the offered rate.
    const auto due = start + period * i;
    if (std::chrono::steady_clock::now() < due) {
      std::this_thread::sleep_until(due);
    }
    serve::FrontendRequest request;
    request.anchor = lo + static_cast<long>(i) % span;
    handles.push_back(frontend.SubmitAsync(request));
  }
  for (const auto& handle : handles) {
    const serve::FrontendResponse& response = handle->Wait();
    if (response.outcome == serve::RequestOutcome::kServed ||
        response.outcome == serve::RequestOutcome::kCoalesced) {
      latency_ms.Record(response.total_ms);
    }
  }
  const auto end = std::chrono::steady_clock::now();
  frontend.Stop();

  OpenLoopStep step;
  step.offered_qps = offered_qps;
  step.requests = static_cast<uint64_t>(total);
  const double elapsed_s =
      std::chrono::duration<double>(end - start).count();
  step.achieved_qps =
      elapsed_s <= 0.0 ? 0.0 : static_cast<double>(total) / elapsed_s;
  step.p50_ms = latency_ms.Percentile(0.50);
  step.p99_ms = latency_ms.Percentile(0.99);
  step.shed_rate = frontend.stats().shed_rate();
  step.sustainable = step.p99_ms <= slo_ms && step.shed_rate <= 0.01;
  return step;
}

/// Overload arm: manual pump, a burst 4x the ring with the consumer
/// stalled. Admission control must shed exactly the overflow, answer
/// everything, and never let the queue outgrow the ring.
struct OverloadResult {
  serve::FrontendStats stats;
  uint64_t burst = 0;
  uint64_t capacity = 0;
  double availability = 0.0;
  bool sheds_structural = false;
  bool depth_bounded = false;
};

OverloadResult RunOverload(serve::SimulationHarness* harness, long lo,
                           long span) {
  constexpr size_t kCapacity = 64;
  serve::FrontendConfig fc;
  fc.queue_capacity = kCapacity;
  fc.max_batch = 64;
  fc.background = false;  // consumer stalled: admission is on its own
  serve::Frontend frontend(&harness->supervisor(), fc);

  const size_t burst = kCapacity * 4;
  std::vector<std::shared_ptr<serve::PendingResponse>> handles;
  handles.reserve(burst);
  for (size_t i = 0; i < burst; ++i) {
    serve::FrontendRequest request;
    request.anchor = lo + static_cast<long>(i) % span;
    handles.push_back(frontend.SubmitAsync(request));
  }
  // The overflow is already answered from the ladder; drain the rest.
  while (frontend.RunCycle() > 0) {
  }
  uint64_t answered = 0;
  for (const auto& handle : handles) {
    if (handle->ready()) ++answered;
  }

  OverloadResult result;
  result.stats = frontend.stats();
  result.burst = burst;
  result.capacity = kCapacity;
  result.availability =
      static_cast<double>(answered) / static_cast<double>(burst);
  result.sheds_structural =
      result.stats.shed_overload == burst - kCapacity &&
      result.stats.answered() == burst;
  result.depth_bounded = result.stats.max_queue_depth <= kCapacity;
  return result;
}

/// Mean |served km/h - true km/h| over a closed-loop answer set.
double AnswersMae(serve::SimulationHarness* harness,
                  const std::vector<ObservedAnswer>& answers) {
  const int target = harness->target_road();
  const int beta = harness->model().assembler().beta();
  double sum = 0.0;
  for (const ObservedAnswer& answer : answers) {
    sum += std::fabs(answer.kmh -
                     harness->truth().Speed(target, answer.anchor + beta));
  }
  return answers.empty() ? 0.0
                         : sum / static_cast<double>(answers.size());
}

int Run(const std::string& path, bool quick) {
  auto harness = BuildIngestedHarness(BaseConfig(quick));
  long lo = 0;
  long span = 0;
  AnchorWindow(*harness, &lo, &span);
  std::fprintf(stderr, "anchor window: [%ld, %ld)\n", lo, lo + span);

  const double slo_ms = quick ? 50.0 : 100.0;

  // Arm 1: clean closed loop + bitwise identity.
  const int threads = 4;
  const int per_thread = quick ? 400 : 4000;
  ClosedLoopResult clean =
      RunClosedLoop(harness.get(), threads, per_thread, lo, span);
  uint64_t compared = 0;
  const bool bitwise_clean =
      CheckBitwise(harness.get(), clean.answers, &compared);
  std::fprintf(stderr,
               "clean: %.0f qps, p50 %.3fms p99 %.3fms, sheds %llu, "
               "coalesce_rate %.3f, %llu compared, bitwise=%d\n",
               clean.qps, clean.p50_ms, clean.p99_ms,
               static_cast<unsigned long long>(clean.stats.sheds()),
               clean.stats.coalesce_rate(),
               static_cast<unsigned long long>(compared),
               bitwise_clean ? 1 : 0);

  // Arm 2: deterministic coalescing.
  const CoalesceResult coalesce = RunCoalesce(harness.get(), lo);
  std::fprintf(
      stderr,
      "coalesce: %llu keys, %llu hits (expected %llu), %llu inference "
      "calls, exact=%d fanout_bitwise=%d\n",
      static_cast<unsigned long long>(coalesce.keys),
      static_cast<unsigned long long>(coalesce.stats.coalesce_hits),
      static_cast<unsigned long long>(coalesce.expected_hits),
      static_cast<unsigned long long>(coalesce.stats.inference_calls),
      coalesce.counts_exact ? 1 : 0, coalesce.fanout_bitwise ? 1 : 0);

  // Arm 3: open-loop rate ladder -> max sustainable QPS at the p99 SLO.
  std::vector<double> ladder;
  if (quick) {
    ladder = {500.0, 2000.0, 8000.0, 32000.0};
  } else {
    ladder = {1000.0, 4000.0, 16000.0, 64000.0, 128000.0};
  }
  const double duration_s = quick ? 0.5 : 2.0;
  double max_sustainable_qps = 0.0;
  double sustainable_p99 = 0.0;
  std::vector<OpenLoopStep> steps;
  for (const double rate : ladder) {
    const OpenLoopStep step = RunOpenLoopStep(harness.get(), rate,
                                              duration_s, slo_ms, lo, span);
    std::fprintf(stderr,
                 "open_loop: offered %.0f achieved %.0f qps, p99 %.3fms, "
                 "shed_rate %.4f, sustainable=%d\n",
                 step.offered_qps, step.achieved_qps, step.p99_ms,
                 step.shed_rate, step.sustainable ? 1 : 0);
    if (step.sustainable && step.achieved_qps > max_sustainable_qps) {
      max_sustainable_qps = step.achieved_qps;
      sustainable_p99 = step.p99_ms;
    }
    steps.push_back(step);
  }

  // Arm 4: overload shedding.
  const OverloadResult overload = RunOverload(harness.get(), lo, span);
  std::fprintf(
      stderr,
      "overload: burst %llu over capacity %llu, availability %.4f, "
      "sheds %llu, max depth %llu, structural=%d bounded=%d\n",
      static_cast<unsigned long long>(overload.burst),
      static_cast<unsigned long long>(overload.capacity),
      overload.availability,
      static_cast<unsigned long long>(overload.stats.sheds()),
      static_cast<unsigned long long>(overload.stats.max_queue_depth),
      overload.sheds_structural ? 1 : 0, overload.depth_bounded ? 1 : 0);

  // Arm 5 (run last, own harness — the fp32 stack above stays untouched):
  // closed loop against a stack serving int8 inference weights. Gated on
  // mae_delta_kmh, the true-MAE shift vs the fp32 clean arm: quantization
  // noise is near-zero-mean, so a healthy kernel moves accuracy by far
  // less than the 0.5 km/h band while a broken one blows it immediately.
  serve::HarnessConfig quant_config = BaseConfig(quick);
  quant_config.inference.quantize = tensor::QuantMode::kInt8;
  auto quant_harness = BuildIngestedHarness(std::move(quant_config));
  ClosedLoopResult quant = RunClosedLoop(quant_harness.get(), threads,
                                         per_thread, lo, span);
  const double clean_mae = AnswersMae(harness.get(), clean.answers);
  const double quant_mae = AnswersMae(quant_harness.get(), quant.answers);
  const double mae_delta = quant_mae - clean_mae;
  const bool quant_accuracy_ok = std::fabs(mae_delta) <= 0.5;
  std::fprintf(stderr,
               "quantized: %.0f qps, p50 %.3fms p99 %.3fms, sheds %llu, "
               "mae %.3f (fp32 %.3f, delta %+.4f km/h, ok=%d)\n",
               quant.qps, quant.p50_ms, quant.p99_ms,
               static_cast<unsigned long long>(quant.stats.sheds()),
               quant_mae, clean_mae, mae_delta, quant_accuracy_ok ? 1 : 0);

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"frontend_qps\",\n"
      << "  \"config\": {\"quick\": " << (quick ? "true" : "false")
      << ", \"slo_ms\": " << slo_ms << ", \"threads\": " << threads
      << "},\n"
      << "  \"clean\": {\n"
      << "    \"requests\": " << clean.stats.submitted << ",\n"
      << "    \"qps\": " << clean.qps << ",\n"
      << "    \"p50_ms\": " << clean.p50_ms << ",\n"
      << "    \"p99_ms\": " << clean.p99_ms << ",\n"
      << "    \"sheds\": " << clean.stats.sheds() << ",\n"
      << "    \"coalesce_rate\": " << clean.stats.coalesce_rate() << ",\n"
      << "    \"bitwise_match\": " << (bitwise_clean ? "true" : "false")
      << "\n  },\n"
      << "  \"coalesce\": {\n"
      << "    \"keys\": " << coalesce.keys << ",\n"
      << "    \"hits\": " << coalesce.stats.coalesce_hits << ",\n"
      << "    \"expected_hits\": " << coalesce.expected_hits << ",\n"
      << "    \"inference_calls\": " << coalesce.stats.inference_calls
      << ",\n"
      << "    \"counts_exact\": "
      << (coalesce.counts_exact ? "true" : "false") << ",\n"
      << "    \"fanout_bitwise\": "
      << (coalesce.fanout_bitwise ? "true" : "false") << "\n  },\n"
      << "  \"open_loop\": {\n"
      << "    \"slo_ms\": " << slo_ms << ",\n"
      << "    \"max_sustainable_qps\": " << max_sustainable_qps << ",\n"
      << "    \"sustainable_p99_ms\": " << sustainable_p99 << "\n  },\n"
      << "  \"overload\": {\n"
      << "    \"submitted\": " << overload.stats.submitted << ",\n"
      << "    \"answered\": " << overload.stats.answered() << ",\n"
      << "    \"availability\": " << overload.availability << ",\n"
      << "    \"sheds\": " << overload.stats.sheds() << ",\n"
      << "    \"shed_rate\": " << overload.stats.shed_rate() << ",\n"
      << "    \"max_queue_depth\": " << overload.stats.max_queue_depth
      << ",\n"
      << "    \"queue_capacity\": " << overload.capacity << ",\n"
      << "    \"sheds_structural\": "
      << (overload.sheds_structural ? "true" : "false") << ",\n"
      << "    \"depth_bounded\": "
      << (overload.depth_bounded ? "true" : "false") << "\n  },\n"
      << "  \"quantized\": {\n"
      << "    \"quantize\": \""
      << tensor::QuantModeName(tensor::QuantMode::kInt8) << "\",\n"
      << "    \"requests\": " << quant.stats.submitted << ",\n"
      << "    \"qps\": " << quant.qps << ",\n"
      << "    \"p50_ms\": " << quant.p50_ms << ",\n"
      << "    \"p99_ms\": " << quant.p99_ms << ",\n"
      << "    \"sheds\": " << quant.stats.sheds() << ",\n"
      << "    \"mae_kmh\": " << quant_mae << ",\n"
      << "    \"mae_delta_kmh\": " << mae_delta << ",\n"
      << "    \"accuracy_band_ok\": "
      << (quant_accuracy_ok ? "true" : "false") << "\n  }\n"
      << "}\n";
  out.close();

  const bool healthy = bitwise_clean && clean.stats.sheds() == 0 &&
                       coalesce.counts_exact && coalesce.fanout_bitwise &&
                       max_sustainable_qps > 0.0 &&
                       overload.sheds_structural && overload.depth_bounded &&
                       quant.qps > 0.0 && quant_accuracy_ok;
  std::fprintf(stderr,
               "wrote %s (max sustainable %.0f qps @ p99<=%.0fms, "
               "healthy=%d)\n",
               path.c_str(), max_sustainable_qps, slo_ms, healthy ? 1 : 0);
  return healthy ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_out/perf_frontend.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      if (argv[i][11] == '=') path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  return Run(path, quick);
}
