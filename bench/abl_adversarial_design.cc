// Ablation bench for the adversarial-training design choices DESIGN.md
// calls out (not a paper table — engineering evidence for this repo):
//   1. D conditioning WITHOUT the target road's speed history (our
//      default) vs the degenerate trivially-separable alternative is
//      structural and covered by tests; here we ablate the runtime knobs:
//   2. warm-up rounds before the generator step starts,
//   3. restricting the generator gradient to the future positions,
//   4. the adversarial gradient weight.
// Each arm trains C (the family most responsive to the adversarial term
// at scaled widths) on the same split and reports segmented MAPE.

#include <cstdio>
#include <filesystem>

#include "core/apots_model.h"
#include "eval/experiment.h"
#include "eval/profile.h"
#include "util/csv.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  std::filesystem::create_directories("bench_out");
  eval::EvalProfile profile = eval::EvalProfile::FromEnv();
  std::printf("=== Ablation: adversarial-training design knobs (profile: "
              "%s) ===\n\n",
              profile.LevelName().c_str());
  eval::Experiment experiment(profile);

  struct Arm {
    const char* name;
    bool adversarial;
    float weight;
    int warmup;
    bool future_only;
  };
  const Arm arms[] = {
      {"no adversarial (reference)", false, 0.0f, 0, false},
      {"default (w=0.05, warmup 20)", true, 0.05f, 20, false},
      {"no warmup", true, 0.05f, 0, false},
      {"future-only gradient", true, 0.05f, 20, true},
      {"weight 0.2", true, 0.2f, 20, false},
      {"weight 0.01", true, 0.01f, 20, false},
  };

  TablePrinter table({"arm", "whole", "normal", "abrupt acc", "abrupt dec",
                      "train[s]"});
  auto writer = CsvWriter::Open(
      "bench_out/abl_adversarial.csv",
      {"arm", "whole_mape", "normal_mape", "acc_mape", "dec_mape"});
  for (const Arm& arm : arms) {
    eval::ModelSpec spec;
    spec.predictor = core::PredictorType::kCnn;
    spec.adversarial = arm.adversarial;
    spec.features = data::FeatureConfig::SpeedOnly();
    core::ApotsConfig config = experiment.MakeConfig(spec);
    config.training.adv_weight = arm.weight;
    config.training.adv_warmup_rounds = arm.warmup;
    config.training.adv_future_only = arm.future_only;
    core::ApotsModel model(&experiment.dataset(), config);
    Stopwatch watch;
    model.Train(experiment.train_anchors());
    const double seconds = watch.ElapsedSeconds();
    const eval::EvalRow row = experiment.MakeRow(
        arm.name, model.PredictKmh(experiment.test_anchors()),
        model.TrueKmh(experiment.test_anchors()), seconds,
        model.NumWeights());
    table.AddRow({arm.name, FormatMetric(row.whole.mape),
                  FormatMetric(row.normal.mape),
                  FormatMetric(row.abrupt_acc.mape),
                  FormatMetric(row.abrupt_dec.mape), FormatMetric(seconds)});
    if (writer.ok()) {
      (void)writer.value().WriteRow(std::vector<std::string>{
          arm.name, StrFormat("%.4f", row.whole.mape),
          StrFormat("%.4f", row.normal.mape),
          StrFormat("%.4f", row.abrupt_acc.mape),
          StrFormat("%.4f", row.abrupt_dec.mape)});
    }
  }
  table.Print();
  if (writer.ok()) (void)writer.value().Close();
  std::printf("\nNotes: at scaled widths the adversarial term behaves as a "
              "mild regularizer; run-to-run\nseed variance on the abrupt "
              "segments is large because those test sets are small\n(see "
              "EXPERIMENTS.md for the honest discussion).\n");
  return 0;
}
