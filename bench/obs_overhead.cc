// Observability overhead benchmark. The obs:: layer promises that
// instrumenting the hot paths costs nothing measurable: counters are one
// relaxed atomic add, histograms one clock read plus one atomic add, and a
// disabled TraceSpan is a single relaxed load. This bench proves it on the
// most instrumented path we have — the PR 3 batched inference runtime —
// by timing identical PredictKmh workloads under three arms:
//   baseline      SetMetricsEnabled(false), trace disabled — instruments
//                 compile in but take the cheap early-out branch
//   metrics_on    metrics enabled (the production default), trace disabled
//   metrics_trace metrics AND the trace ring enabled
// and writes bench_out/perf_obs.json with the relative overheads. The
// gate: metrics_on must be within 2% of baseline (min-of-repeats timing,
// so scheduler noise cannot manufacture a pass or a fail on its own).
//
// Flags: --perf_json[=path] selects the output file; --quick shrinks the
// workload for CI smoke runs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/apots_model.h"
#include "data/windowing.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "traffic/dataset_generator.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace {

using namespace apots;

core::ApotsConfig ModelConfig() {
  // Same model as infer_latency: LSTM at half paper width, the arm whose
  // per-batch instrument density is highest.
  core::ApotsConfig config;
  config.predictor =
      core::PredictorHparams::Scaled(core::PredictorType::kLstm, 2);
  config.features = data::FeatureConfig::Both();
  config.features.num_adjacent = 1;
  config.features.beta = 3;
  config.seed = 99;
  return config;
}

struct ArmResult {
  const char* name;
  double seconds = 0.0;  // min over repeats
  double anchors_per_sec = 0.0;
};

// One timed pass: `rounds` PredictKmh calls over the anchor set. Returns
// wall seconds for the whole pass.
double TimedPass(core::ApotsModel* model, const std::vector<long>& anchors,
                 size_t rounds) {
  Stopwatch watch;
  for (size_t round = 0; round < rounds; ++round) {
    const std::vector<double> pred = model->PredictKmh(anchors);
    if (pred.empty()) std::abort();  // keep the call observable
  }
  return watch.ElapsedSeconds();
}

ArmResult RunArm(const char* name, core::ApotsModel* model,
                 const std::vector<long>& anchors, size_t rounds,
                 size_t repeats, bool metrics, bool trace) {
  obs::SetMetricsEnabled(metrics);
  if (trace) {
    obs::TraceRecorder::Default().Enable({});
  } else {
    obs::TraceRecorder::Default().Disable();
  }
  // Fresh runtime per arm so cache warmth is identical across arms; one
  // untimed warm-up pass fills the feature cache and the arenas.
  core::InferenceConfig batched;
  batched.parallel = false;
  model->SetInferenceConfig(batched);
  TimedPass(model, anchors, 1);

  ArmResult result;
  result.name = name;
  result.seconds = TimedPass(model, anchors, rounds);
  for (size_t rep = 1; rep < repeats; ++rep) {
    result.seconds = std::min(result.seconds,
                              TimedPass(model, anchors, rounds));
  }
  result.anchors_per_sec =
      static_cast<double>(anchors.size() * rounds) / result.seconds;
  obs::SetMetricsEnabled(true);
  obs::TraceRecorder::Default().Disable();
  return result;
}

int Run(const std::string& path, bool quick) {
  traffic::TrafficDataset dataset =
      traffic::GenerateDataset(traffic::DatasetSpec::Small(3));
  auto split = data::MakeSplit(dataset, 12, 3, 0.2,
                               data::SplitStrategy::kBlockedByDay, 11);
  const size_t cap = quick ? 96 : 384;
  std::vector<long> anchors(split.test.begin(),
                            split.test.begin() +
                                std::min<size_t>(cap, split.test.size()));
  core::ApotsModel model(&dataset, ModelConfig());
  ResetGlobalPool(1);  // single-threaded: no scheduler noise in the gate

  const size_t rounds = quick ? 3 : 10;
  const size_t repeats = quick ? 3 : 5;
  const ArmResult arms[] = {
      RunArm("baseline", &model, anchors, rounds, repeats,
             /*metrics=*/false, /*trace=*/false),
      RunArm("metrics_on", &model, anchors, rounds, repeats,
             /*metrics=*/true, /*trace=*/false),
      RunArm("metrics_trace", &model, anchors, rounds, repeats,
             /*metrics=*/true, /*trace=*/true),
  };
  const double base = arms[0].seconds;
  const double metrics_overhead = arms[1].seconds / base - 1.0;
  const double trace_overhead = arms[2].seconds / base - 1.0;
  for (const ArmResult& arm : arms) {
    std::fprintf(stderr, "%-14s %8.4fs  %10.1f anchors/s  (%+.2f%%)\n",
                 arm.name, arm.seconds, arm.anchors_per_sec,
                 (arm.seconds / base - 1.0) * 100.0);
  }

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"obs_overhead\",\n"
      << "  \"config\": {\"quick\": " << (quick ? "true" : "false")
      << ", \"anchors\": " << anchors.size() << ", \"rounds\": " << rounds
      << ", \"repeats\": " << repeats << "},\n"
      << "  \"arms\": [\n";
  for (size_t i = 0; i < 3; ++i) {
    out << "    {\"name\": \"" << arms[i].name
        << "\", \"seconds\": " << arms[i].seconds
        << ", \"anchors_per_sec\": " << arms[i].anchors_per_sec << "}"
        << (i + 1 < 3 ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"metrics_overhead\": " << metrics_overhead << ",\n"
      << "  \"metrics_trace_overhead\": " << trace_overhead << "\n"
      << "}\n";
  out.close();

  // The acceptance gate: metrics-on within 2% of instruments-disabled.
  const bool ok = metrics_overhead < 0.02;
  std::fprintf(stderr,
               "wrote %s (metrics overhead %+.2f%%, +trace %+.2f%%, "
               "gate <2%%: %s)\n",
               path.c_str(), metrics_overhead * 100.0,
               trace_overhead * 100.0, ok ? "pass" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_out/perf_obs.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      if (argv[i][11] == '=') path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  return Run(path, quick);
}
