// Bench for the counterfactual what-if query engine (PR 10). Drives a
// fully-ingested serving stack with registered counterfactual contexts
// and reports one machine-readable JSON (default
// bench_out/perf_whatif.json) that CI archives and gates on:
//   base_context  mixed context-0 / counterfactual traffic through the
//                 front door, manual pump so batches deterministically
//                 interleave contexts: every context-0 answer must be
//                 bitwise identical to InferenceRuntime::Predict even
//                 while counterfactual items share its batches — the
//                 what-if wiring must cost live serving nothing
//   fanout        one heterogeneous batched PredictKmhItems call over
//                 anchors x contexts vs the same items as naive
//                 one-query-at-a-time calls: fan-out speedup (gated
//                 >= 1.5x) and bitwise equality of the two paths
//   cache         cold-cache sweep with interleaved contexts: hit rate
//                 of the context-keyed FeatureCache (gated by floor).
//                 Columns untouched by a context's perturbations are
//                 keyed context 0 and shared with base, so the rate
//                 stays high even with counterfactuals in every batch
//
// Flags: --perf_json[=path] selects the output file; --quick shrinks the
// workload for CI smoke runs.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "data/context.h"
#include "serve/frontend.h"
#include "serve/harness.h"
#include "util/stopwatch.h"

namespace {

using namespace apots;

serve::HarnessConfig BaseConfig(bool quick) {
  serve::HarnessConfig config;
  traffic::DatasetSpec spec;
  spec.num_roads = 5;
  spec.num_days = quick ? 4 : 10;
  spec.intervals_per_day = quick ? 96 : 288;
  spec.seed = 4242;
  spec.hyundai_calendar = false;
  config.spec = spec;
  config.warmup_fraction = 0.5;
  config.predictor = core::PredictorType::kFc;
  config.width_divisor = 16;
  config.train_epochs = 0;  // fan-out mechanics do not need a trained model
  config.model_seed = 7;
  return config;
}

std::unique_ptr<serve::SimulationHarness> BuildIngestedHarness(
    serve::HarnessConfig config) {
  auto harness =
      std::make_unique<serve::SimulationHarness>(std::move(config));
  while (harness->IngestTick()) {
  }
  return harness;
}

void AnchorWindow(const serve::SimulationHarness& harness, long* lo,
                  long* span) {
  *lo = harness.warmup_end();
  *span = harness.last_servable_tick() - *lo + 1;
}

/// The bench's counterfactual registry: one context that touches every
/// feature column, one that touches a narrow interval window, and one
/// that touches none (day-type overrides edit only the anchor-keyed
/// broadcast rows) — the three cache-sharing regimes.
constexpr uint64_t kCtxSetEvent = 1;
constexpr uint64_t kCtxRainWindow = 2;
constexpr uint64_t kCtxHoliday = 3;
constexpr int kNumContexts = 4;  // base + the three above

bool RegisterContexts(serve::ServingSupervisor* supervisor, long lo) {
  const Status s1 = supervisor->RegisterContext(
      kCtxSetEvent, data::ContextSpec().SetEvent());
  const Status s2 = supervisor->RegisterContext(
      kCtxRainWindow, data::ContextSpec().RainDelta(10.0f, lo, lo + 8));
  const Status s3 = supervisor->RegisterContext(
      kCtxHoliday, data::ContextSpec().DayType(1));
  if (!s1.ok() || !s2.ok() || !s3.ok()) {
    std::fprintf(stderr, "context registration failed: %s / %s / %s\n",
                 s1.ToString().c_str(), s2.ToString().c_str(),
                 s3.ToString().c_str());
    return false;
  }
  return true;
}

/// Arm 1: mixed-context traffic through the front door, manual pump so
/// every drain cycle's supervisor batch deterministically interleaves
/// base and counterfactual items. Context-0 answers must be bitwise
/// identical to the direct runtime path — `!=` on doubles, no tolerance.
struct BaseContextResult {
  uint64_t compared = 0;
  uint64_t counterfactual = 0;
  bool bitwise_match = false;
  bool counterfactual_served = false;
};

BaseContextResult RunBaseContext(serve::SimulationHarness* harness,
                                 long lo, long span) {
  serve::FrontendConfig fc;
  fc.queue_capacity = 1024;
  fc.max_batch = 256;
  fc.background = false;  // the bench thread is the consumer
  serve::Frontend frontend(&harness->supervisor(), fc);

  const long anchors = std::min<long>(span, 48);
  std::vector<std::shared_ptr<serve::PendingResponse>> handles;
  for (long i = 0; i < anchors; ++i) {
    for (uint64_t context = 0; context < kNumContexts; ++context) {
      serve::FrontendRequest request;
      request.anchor = lo + i;
      request.context = context;
      handles.push_back(frontend.SubmitAsync(request));
      // Pump mid-stream so cycles drain genuinely mixed batches rather
      // than one tidy context-sorted burst.
      if (handles.size() % 192 == 0) {
        while (frontend.RunCycle() > 0) {
        }
      }
    }
  }
  while (frontend.RunCycle() > 0) {
  }

  std::vector<long> distinct;
  for (long i = 0; i < anchors; ++i) distinct.push_back(lo + i);
  const std::vector<double> direct = harness->DirectPredictKmh(distinct);
  std::map<long, double> expected;
  for (size_t i = 0; i < distinct.size(); ++i) {
    expected[distinct[i]] = direct[i];
  }

  BaseContextResult result;
  result.bitwise_match = true;
  result.counterfactual_served = true;
  for (const auto& handle : handles) {
    const serve::FrontendResponse& response = handle->Wait();
    if (handle->request().context == 0) {
      ++result.compared;
      if (response.serve.tier != serve::ServeTier::kFull ||
          response.serve.kmh != expected[handle->request().anchor]) {
        result.bitwise_match = false;
      }
    } else {
      ++result.counterfactual;
      if (response.serve.tier != serve::ServeTier::kFull) {
        result.counterfactual_served = false;
      }
    }
  }
  return result;
}

/// Arm 2: one heterogeneous batched call vs the same (anchor, context)
/// items issued as K naive single-item queries — the API the fan-out
/// replaces. Both run against a warm cache, so the speedup isolates
/// batch-grid utilization, not cache temperature.
struct FanoutResult {
  uint64_t items = 0;
  double batched_ms = 0.0;
  double naive_ms = 0.0;
  double batched_items_per_sec = 0.0;
  double speedup = 0.0;
  bool bitwise_match = false;
};

FanoutResult RunFanout(serve::SimulationHarness* harness, long lo,
                       long span, bool quick) {
  const long anchors = std::min<long>(span, quick ? 16 : 64);
  std::vector<core::WorkItem> items;
  for (long i = 0; i < anchors; ++i) {
    for (uint64_t context = 0; context < kNumContexts; ++context) {
      items.push_back({lo + i, context});
    }
  }
  core::ApotsModel& model = harness->model();

  // Warm the feature cache and the allocator so neither path pays
  // first-touch costs inside the timed region.
  (void)model.PredictKmhItems(items);

  const int iters = quick ? 3 : 10;
  Stopwatch batched_watch;
  std::vector<double> batched;
  for (int it = 0; it < iters; ++it) {
    batched = model.PredictKmhItems(items);
  }
  const double batched_ms = batched_watch.ElapsedMillis();

  Stopwatch naive_watch;
  std::vector<double> naive(items.size());
  for (int it = 0; it < iters; ++it) {
    for (size_t i = 0; i < items.size(); ++i) {
      naive[i] = model.PredictKmhItems({items[i]})[0];
    }
  }
  const double naive_ms = naive_watch.ElapsedMillis();

  FanoutResult result;
  result.items = items.size();
  result.batched_ms = batched_ms / iters;
  result.naive_ms = naive_ms / iters;
  result.speedup =
      result.batched_ms <= 0.0 ? 0.0 : result.naive_ms / result.batched_ms;
  result.batched_items_per_sec =
      result.batched_ms <= 0.0
          ? 0.0
          : static_cast<double>(items.size()) / (result.batched_ms / 1e3);
  // A context's prediction must not depend on what shared its batch:
  // the batched fan-out and the one-at-a-time path agree bitwise.
  result.bitwise_match =
      std::memcmp(batched.data(), naive.data(),
                  batched.size() * sizeof(double)) == 0;
  return result;
}

/// Arm 3: cold-cache sweep with every batch interleaving all contexts.
/// Deterministic counting, not timing: the hit rate measures how much of
/// the counterfactual working set the context-keyed cache shares with
/// base assembly (untouched columns are keyed context 0).
struct CacheResult {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  double hit_rate = 0.0;
};

CacheResult RunCache(serve::SimulationHarness* harness, long lo,
                     long span, bool quick) {
  core::ApotsModel& model = harness->model();
  data::FeatureCache* cache = model.inference_runtime().feature_cache();
  cache->Invalidate();
  const data::FeatureCache::Stats before = cache->stats();

  const long anchors = std::min<long>(span, quick ? 32 : 128);
  for (long i = 0; i < anchors; ++i) {
    std::vector<core::WorkItem> batch;
    for (uint64_t context = 0; context < kNumContexts; ++context) {
      batch.push_back({lo + i, context});
    }
    (void)model.PredictKmhItems(batch);
  }

  const data::FeatureCache::Stats after = cache->stats();
  CacheResult result;
  result.hits = after.hits - before.hits;
  result.misses = after.misses - before.misses;
  result.lookups = result.hits + result.misses;
  result.hit_rate =
      result.lookups == 0
          ? 0.0
          : static_cast<double>(result.hits) /
                static_cast<double>(result.lookups);
  return result;
}

int Run(const std::string& path, bool quick) {
  auto harness = BuildIngestedHarness(BaseConfig(quick));
  long lo = 0;
  long span = 0;
  AnchorWindow(*harness, &lo, &span);
  std::fprintf(stderr, "anchor window: [%ld, %ld)\n", lo, lo + span);
  if (!RegisterContexts(&harness->supervisor(), lo)) return 1;

  const BaseContextResult base = RunBaseContext(harness.get(), lo, span);
  std::fprintf(stderr,
               "base_context: %llu base answers compared, %llu "
               "counterfactual, bitwise=%d counterfactual_served=%d\n",
               static_cast<unsigned long long>(base.compared),
               static_cast<unsigned long long>(base.counterfactual),
               base.bitwise_match ? 1 : 0,
               base.counterfactual_served ? 1 : 0);

  const FanoutResult fanout = RunFanout(harness.get(), lo, span, quick);
  std::fprintf(stderr,
               "fanout: %llu items, batched %.3fms vs naive %.3fms -> "
               "%.2fx speedup (%.0f items/s), bitwise=%d\n",
               static_cast<unsigned long long>(fanout.items),
               fanout.batched_ms, fanout.naive_ms, fanout.speedup,
               fanout.batched_items_per_sec, fanout.bitwise_match ? 1 : 0);

  const CacheResult cache = RunCache(harness.get(), lo, span, quick);
  std::fprintf(stderr,
               "cache: %llu lookups, %llu hits / %llu misses -> "
               "%.3f hit rate\n",
               static_cast<unsigned long long>(cache.lookups),
               static_cast<unsigned long long>(cache.hits),
               static_cast<unsigned long long>(cache.misses),
               cache.hit_rate);

  const uint64_t unknown =
      harness->model().inference_runtime().unknown_context_items();

  const std::filesystem::path out_path(path);
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path());
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"bench\": \"whatif_fanout\",\n"
      << "  \"config\": {\"quick\": " << (quick ? "true" : "false")
      << ", \"contexts\": " << kNumContexts << "},\n"
      << "  \"base_context\": {\n"
      << "    \"compared\": " << base.compared << ",\n"
      << "    \"counterfactual\": " << base.counterfactual << ",\n"
      << "    \"bitwise_match\": "
      << (base.bitwise_match ? "true" : "false") << ",\n"
      << "    \"counterfactual_served\": "
      << (base.counterfactual_served ? "true" : "false") << "\n  },\n"
      << "  \"fanout\": {\n"
      << "    \"items\": " << fanout.items << ",\n"
      << "    \"batched_ms\": " << fanout.batched_ms << ",\n"
      << "    \"naive_ms\": " << fanout.naive_ms << ",\n"
      << "    \"batched_items_per_sec\": " << fanout.batched_items_per_sec
      << ",\n"
      << "    \"speedup\": " << fanout.speedup << ",\n"
      << "    \"bitwise_match\": "
      << (fanout.bitwise_match ? "true" : "false") << "\n  },\n"
      << "  \"cache\": {\n"
      << "    \"lookups\": " << cache.lookups << ",\n"
      << "    \"hits\": " << cache.hits << ",\n"
      << "    \"misses\": " << cache.misses << ",\n"
      << "    \"hit_rate\": " << cache.hit_rate << "\n  },\n"
      << "  \"unknown_context_items\": " << unknown << "\n"
      << "}\n";
  out.close();

  const bool healthy = base.bitwise_match && base.counterfactual_served &&
                       fanout.bitwise_match && fanout.speedup >= 1.5 &&
                       cache.hit_rate >= 0.85 && unknown == 0;
  std::fprintf(stderr,
               "wrote %s (speedup %.2fx, hit rate %.3f, healthy=%d)\n",
               path.c_str(), fanout.speedup, cache.hit_rate,
               healthy ? 1 : 0);
  return healthy ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = "bench_out/perf_whatif.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--perf_json", 11) == 0) {
      if (argv[i][11] == '=') path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  return Run(path, quick);
}
