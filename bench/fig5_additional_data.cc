// Fig. 5 reproduction: effect of additional data (predictors only, no
// adversarial training). For each predictor family the input is one of
// {speed only, adjacent-speed, non-speed, both}; per the paper's protocol
// the input tensor keeps a fixed size and inactive blocks are zero-filled.

#include <cstdio>
#include <filesystem>

#include "eval/experiment.h"
#include "eval/profile.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace apots;

  std::filesystem::create_directories("bench_out");
  eval::EvalProfile profile = eval::EvalProfile::FromEnv();
  std::printf("=== Fig. 5: effect of additional data (profile: %s) ===\n\n",
              profile.LevelName().c_str());
  eval::Experiment experiment(profile);

  struct Arm {
    const char* name;
    data::FeatureConfig config;
  };
  const Arm arms[] = {
      {"speed only", data::FeatureConfig::SpeedOnly()},
      {"adjacent speed", data::FeatureConfig::AdjacentOnly()},
      {"non-speed", data::FeatureConfig::NonSpeedOnly()},
      {"both", data::FeatureConfig::Both()},
  };

  TablePrinter table({"predictor", "arm", "MAPE", "gain vs speed-only",
                      "train[s]"});
  auto writer = CsvWriter::Open("bench_out/fig5.csv",
                                {"predictor", "arm", "mape", "gain_pct"});
  for (core::PredictorType type :
       {core::PredictorType::kFc, core::PredictorType::kCnn,
        core::PredictorType::kLstm, core::PredictorType::kHybrid}) {
    double speed_only_mape = 0.0;
    for (const Arm& arm : arms) {
      eval::ModelSpec spec;
      spec.predictor = type;
      spec.adversarial = false;
      spec.features = arm.config;
      const eval::EvalRow row = experiment.RunModel(spec);
      if (std::string(arm.name) == "speed only") {
        speed_only_mape = row.whole.mape;
      }
      const double gain =
          metrics::GainPercent(row.whole.mape, speed_only_mape);
      table.AddRow({core::PredictorTypeName(type), arm.name,
                    FormatMetric(row.whole.mape),
                    speed_only_mape == row.whole.mape ? "-"
                                                      : FormatGain(gain),
                    FormatMetric(row.train_seconds)});
      if (writer.ok()) {
        (void)writer.value().WriteRow(std::vector<std::string>{
            core::PredictorTypeName(type), arm.name,
            StrFormat("%.4f", row.whole.mape), StrFormat("%.4f", gain)});
      }
    }
    table.AddSeparator();
  }
  table.Print();
  if (writer.ok()) (void)writer.value().Close();
  std::printf("\nPaper reference: every predictor improves with additional "
              "data; using both adjacent-speed\nand non-speed data is best "
              "(F: 21.4 -> 17.9, C: 18.6 -> 16.9, L: 18.8 -> 13.56,\n"
              "H: 16.7 -> 13.49 MAPE).\n");
  return 0;
}
