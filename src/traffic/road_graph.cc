#include "traffic/road_graph.h"

#include <algorithm>
#include <queue>
#include <set>

#include "util/logging.h"
#include "util/string_util.h"

namespace apots::traffic {

RoadGraph RoadGraph::Corridor(int num_roads) {
  APOTS_CHECK_GE(num_roads, 0);
  RoadGraph graph;
  graph.num_roads_ = num_roads;
  graph.adjacency_.resize(static_cast<size_t>(num_roads));
  for (int i = 0; i + 1 < num_roads; ++i) {
    graph.adjacency_[static_cast<size_t>(i)].push_back(i + 1);
    graph.adjacency_[static_cast<size_t>(i + 1)].push_back(i);
    ++graph.num_edges_;
  }
  for (auto& neighbors : graph.adjacency_) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  return graph;
}

RoadGraph RoadGraph::Grid(int rows, int cols) {
  APOTS_CHECK_GE(rows, 0);
  APOTS_CHECK_GE(cols, 0);
  std::vector<std::pair<int, int>> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int id = r * cols + c;
      if (c + 1 < cols) edges.emplace_back(id, id + 1);
      if (r + 1 < rows) edges.emplace_back(id, id + cols);
    }
  }
  auto graph = FromEdges(rows * cols, edges);
  APOTS_CHECK(graph.ok());
  return std::move(graph).value();
}

Result<RoadGraph> RoadGraph::FromEdges(
    int num_roads, const std::vector<std::pair<int, int>>& edges) {
  if (num_roads < 0) {
    return Status::InvalidArgument("num_roads must be >= 0");
  }
  std::vector<std::set<int>> adjacency(static_cast<size_t>(num_roads));
  for (const auto& [a, b] : edges) {
    if (a < 0 || a >= num_roads || b < 0 || b >= num_roads) {
      return Status::InvalidArgument(apots::StrFormat(
          "edge (%d, %d) out of range for %d roads", a, b, num_roads));
    }
    if (a == b) {
      return Status::InvalidArgument(
          apots::StrFormat("self-loop on road %d", a));
    }
    adjacency[static_cast<size_t>(a)].insert(b);
    adjacency[static_cast<size_t>(b)].insert(a);
  }
  RoadGraph graph;
  graph.num_roads_ = num_roads;
  graph.adjacency_.reserve(adjacency.size());
  for (const auto& neighbors : adjacency) {
    graph.adjacency_.emplace_back(neighbors.begin(), neighbors.end());
    graph.num_edges_ += static_cast<long>(neighbors.size());
  }
  graph.num_edges_ /= 2;  // each undirected edge counted from both ends
  return graph;
}

const std::vector<int>& RoadGraph::Neighbors(int road) const {
  APOTS_CHECK_GE(road, 0);
  APOTS_CHECK_LT(road, num_roads_);
  return adjacency_[static_cast<size_t>(road)];
}

bool RoadGraph::AreAdjacent(int a, int b) const {
  const std::vector<int>& neighbors = Neighbors(a);
  APOTS_CHECK_GE(b, 0);
  APOTS_CHECK_LT(b, num_roads_);
  return std::binary_search(neighbors.begin(), neighbors.end(), b);
}

std::vector<int> RoadGraph::WithinHops(int road, int hops) const {
  APOTS_CHECK_GE(road, 0);
  APOTS_CHECK_LT(road, num_roads_);
  APOTS_CHECK_GE(hops, 0);
  std::vector<int> depth(static_cast<size_t>(num_roads_), -1);
  std::queue<int> frontier;
  depth[static_cast<size_t>(road)] = 0;
  frontier.push(road);
  std::vector<int> reached;
  while (!frontier.empty()) {
    const int current = frontier.front();
    frontier.pop();
    reached.push_back(current);
    if (depth[static_cast<size_t>(current)] == hops) continue;
    for (int next : Neighbors(current)) {
      if (depth[static_cast<size_t>(next)] >= 0) continue;
      depth[static_cast<size_t>(next)] = depth[static_cast<size_t>(current)] + 1;
      frontier.push(next);
    }
  }
  std::sort(reached.begin(), reached.end());
  return reached;
}

Result<Partition> Partition::Contiguous(const RoadGraph& graph,
                                        int num_shards) {
  const int roads = graph.num_roads();
  if (num_shards < 1 || num_shards > roads) {
    return Status::InvalidArgument(apots::StrFormat(
        "num_shards %d out of range for %d roads", num_shards, roads));
  }
  std::vector<int> shard_of(static_cast<size_t>(roads));
  // Near-equal ranges; the first (roads % num_shards) shards get the
  // extra road so sizes differ by at most one.
  const int base = roads / num_shards;
  const int extra = roads % num_shards;
  int next = 0;
  for (int s = 0; s < num_shards; ++s) {
    const int size = base + (s < extra ? 1 : 0);
    for (int i = 0; i < size; ++i) {
      shard_of[static_cast<size_t>(next++)] = s;
    }
  }
  return FromAssignment(graph, num_shards, shard_of);
}

Result<Partition> Partition::FromAssignment(const RoadGraph& graph,
                                            int num_shards,
                                            const std::vector<int>& shard_of) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (static_cast<int>(shard_of.size()) != graph.num_roads()) {
    return Status::InvalidArgument(apots::StrFormat(
        "assignment covers %zu roads, graph has %d", shard_of.size(),
        graph.num_roads()));
  }
  for (size_t road = 0; road < shard_of.size(); ++road) {
    if (shard_of[road] < 0 || shard_of[road] >= num_shards) {
      return Status::InvalidArgument(
          apots::StrFormat("road %zu assigned to shard %d, valid range "
                           "[0, %d)",
                           road, shard_of[road], num_shards));
    }
  }
  Partition partition;
  partition.num_shards_ = num_shards;
  partition.shard_of_ = shard_of;
  partition.BuildDerivedSets(graph);
  Status valid = partition.Validate(graph);
  if (!valid.ok()) return valid;
  return partition;
}

int Partition::shard_of(int road) const {
  APOTS_CHECK_GE(road, 0);
  APOTS_CHECK_LT(road, num_roads());
  return shard_of_[static_cast<size_t>(road)];
}

const std::vector<int>& Partition::roads(int shard) const {
  APOTS_CHECK_GE(shard, 0);
  APOTS_CHECK_LT(shard, num_shards_);
  return roads_[static_cast<size_t>(shard)];
}

const std::vector<int>& Partition::boundary(int shard) const {
  APOTS_CHECK_GE(shard, 0);
  APOTS_CHECK_LT(shard, num_shards_);
  return boundary_[static_cast<size_t>(shard)];
}

const std::vector<int>& Partition::frontier(int shard) const {
  APOTS_CHECK_GE(shard, 0);
  APOTS_CHECK_LT(shard, num_shards_);
  return frontier_[static_cast<size_t>(shard)];
}

void Partition::BuildDerivedSets(const RoadGraph& graph) {
  roads_.assign(static_cast<size_t>(num_shards_), {});
  boundary_.assign(static_cast<size_t>(num_shards_), {});
  frontier_.assign(static_cast<size_t>(num_shards_), {});
  std::vector<std::set<int>> frontier_sets(static_cast<size_t>(num_shards_));
  for (int road = 0; road < num_roads(); ++road) {
    const int owner = shard_of_[static_cast<size_t>(road)];
    roads_[static_cast<size_t>(owner)].push_back(road);
    bool on_boundary = false;
    for (int neighbor : graph.Neighbors(road)) {
      const int other = shard_of_[static_cast<size_t>(neighbor)];
      if (other == owner) continue;
      on_boundary = true;
      frontier_sets[static_cast<size_t>(other)].insert(road);
    }
    if (on_boundary) {
      boundary_[static_cast<size_t>(owner)].push_back(road);
    }
  }
  for (int s = 0; s < num_shards_; ++s) {
    frontier_[static_cast<size_t>(s)].assign(
        frontier_sets[static_cast<size_t>(s)].begin(),
        frontier_sets[static_cast<size_t>(s)].end());
  }
}

Status Partition::Validate(const RoadGraph& graph) const {
  if (static_cast<int>(shard_of_.size()) != graph.num_roads()) {
    return Status::FailedPrecondition("partition/graph road count mismatch");
  }
  // Every road in exactly one shard: shard_of_ is total by construction,
  // so the check is that the per-shard road lists tile [0, num_roads)
  // without overlap or omission.
  std::vector<int> seen(shard_of_.size(), 0);
  for (int s = 0; s < num_shards_; ++s) {
    for (int road : roads_[static_cast<size_t>(s)]) {
      if (road < 0 || road >= num_roads()) {
        return Status::FailedPrecondition(
            apots::StrFormat("shard %d lists out-of-range road %d", s, road));
      }
      if (shard_of_[static_cast<size_t>(road)] != s) {
        return Status::FailedPrecondition(apots::StrFormat(
            "road %d listed by shard %d but assigned to shard %d", road, s,
            shard_of_[static_cast<size_t>(road)]));
      }
      if (++seen[static_cast<size_t>(road)] > 1) {
        return Status::FailedPrecondition(
            apots::StrFormat("road %d owned by more than one shard", road));
      }
    }
  }
  for (size_t road = 0; road < seen.size(); ++road) {
    if (seen[road] != 1) {
      return Status::FailedPrecondition(
          apots::StrFormat("road %zu owned by no shard", road));
    }
  }
  // No empty shards: a shard with no roads could never ingest, publish a
  // boundary snapshot, or serve a target.
  for (int s = 0; s < num_shards_; ++s) {
    if (roads_[static_cast<size_t>(s)].empty()) {
      return Status::FailedPrecondition(
          apots::StrFormat("shard %d owns no roads", s));
    }
  }
  // Boundary/frontier symmetry: walk every cut edge in both directions.
  for (int road = 0; road < num_roads(); ++road) {
    const int owner = shard_of_[static_cast<size_t>(road)];
    for (int neighbor : graph.Neighbors(road)) {
      const int other = shard_of_[static_cast<size_t>(neighbor)];
      if (other == owner) continue;
      const auto& own_boundary = boundary_[static_cast<size_t>(owner)];
      if (!std::binary_search(own_boundary.begin(), own_boundary.end(),
                              road)) {
        return Status::FailedPrecondition(apots::StrFormat(
            "cut road %d missing from boundary(%d)", road, owner));
      }
      const auto& their_frontier = frontier_[static_cast<size_t>(other)];
      if (!std::binary_search(their_frontier.begin(), their_frontier.end(),
                              road)) {
        return Status::FailedPrecondition(apots::StrFormat(
            "cut road %d missing from frontier(%d)", road, other));
      }
    }
  }
  // No stale extras: every boundary road must have a cut edge, every
  // frontier road must touch the importing shard.
  for (int s = 0; s < num_shards_; ++s) {
    for (int road : boundary_[static_cast<size_t>(s)]) {
      bool has_cut = false;
      for (int neighbor : graph.Neighbors(road)) {
        if (shard_of_[static_cast<size_t>(neighbor)] != s) has_cut = true;
      }
      if (!has_cut) {
        return Status::FailedPrecondition(apots::StrFormat(
            "boundary(%d) road %d has no cross-shard edge", s, road));
      }
    }
    for (int road : frontier_[static_cast<size_t>(s)]) {
      if (shard_of_[static_cast<size_t>(road)] == s) {
        return Status::FailedPrecondition(apots::StrFormat(
            "frontier(%d) contains own road %d", s, road));
      }
      bool touches = false;
      for (int neighbor : graph.Neighbors(road)) {
        if (shard_of_[static_cast<size_t>(neighbor)] == s) touches = true;
      }
      if (!touches) {
        return Status::FailedPrecondition(apots::StrFormat(
            "frontier(%d) road %d not adjacent to the shard", s, road));
      }
    }
  }
  return Status::Ok();
}

}  // namespace apots::traffic
