#include "traffic/incident.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace apots::traffic {

IncidentGenerator::IncidentGenerator(IncidentParams params, uint64_t seed)
    : params_(params), seed_(seed) {}

std::vector<Incident> IncidentGenerator::Generate(
    int num_roads, int num_days, int intervals_per_day) const {
  APOTS_CHECK_GT(num_roads, 0);
  APOTS_CHECK_GT(num_days, 0);
  apots::Rng rng(seed_);
  const double intervals_per_hour = intervals_per_day / 24.0;
  std::vector<Incident> log;

  for (int road = 0; road < num_roads; ++road) {
    for (int day = 0; day < num_days; ++day) {
      // Accidents: more likely during busy daytime hours.
      if (rng.Bernoulli(params_.accidents_per_road_per_day)) {
        Incident inc;
        inc.kind = IncidentKind::kAccident;
        inc.road = road;
        const double hour = std::clamp(rng.Normal(13.0, 5.0), 0.0, 23.5);
        inc.start_interval = static_cast<long>(
            day * intervals_per_day + hour * intervals_per_hour);
        const double duration_hours =
            rng.Uniform(params_.accident_min_duration_hours,
                        params_.accident_max_duration_hours);
        inc.duration = std::max<long>(
            1, static_cast<long>(duration_hours * intervals_per_hour));
        // Recovery is brisk: queue discharge over roughly half the
        // blockage time, producing the abrupt-acceleration signature of
        // Fig. 1c.
        inc.recovery = std::max<long>(2, inc.duration / 2);
        inc.severity = rng.Uniform(params_.accident_min_severity,
                                   params_.accident_max_severity);
        log.push_back(inc);
      }
      // Constructions: overnight, mild, long.
      if (rng.Bernoulli(params_.constructions_per_road_per_day)) {
        Incident inc;
        inc.kind = IncidentKind::kConstruction;
        inc.road = road;
        const double hour = rng.Uniform(21.0, 23.5);
        inc.start_interval = static_cast<long>(
            day * intervals_per_day + hour * intervals_per_hour);
        const double duration_hours =
            rng.Uniform(params_.construction_min_duration_hours,
                        params_.construction_max_duration_hours);
        inc.duration = std::max<long>(
            1, static_cast<long>(duration_hours * intervals_per_hour));
        inc.recovery = 2;
        inc.severity = params_.construction_severity;
        log.push_back(inc);
      }
    }
  }
  std::sort(log.begin(), log.end(),
            [](const Incident& a, const Incident& b) {
              return a.start_interval < b.start_interval;
            });
  return log;
}

std::vector<float> IncidentGenerator::ActiveFlags(
    const std::vector<Incident>& log, int num_roads, long total_intervals) {
  std::vector<float> flags(
      static_cast<size_t>(num_roads) * static_cast<size_t>(total_intervals),
      0.0f);
  for (const Incident& inc : log) {
    const long end = inc.start_interval + inc.duration + inc.recovery;
    for (long t = inc.start_interval; t < end; ++t) {
      if (t < 0 || t >= total_intervals) continue;
      flags[static_cast<size_t>(inc.road) * total_intervals + t] = 1.0f;
    }
  }
  return flags;
}

}  // namespace apots::traffic
