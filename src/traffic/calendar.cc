#include "traffic/calendar.h"

#include <algorithm>

#include "util/logging.h"

namespace apots::traffic {

std::array<float, 4> DayInfo::TypeVector() const {
  const bool weekday_flag = !is_weekend && !is_holiday;
  return {weekday_flag ? 1.0f : 0.0f, is_holiday ? 1.0f : 0.0f,
          is_before_holiday ? 1.0f : 0.0f, is_after_holiday ? 1.0f : 0.0f};
}

const char* DayInfo::WeekdayName() const {
  static const char* kNames[7] = {"Mon", "Tue", "Wed", "Thu",
                                  "Fri", "Sat", "Sun"};
  return kNames[static_cast<int>(weekday)];
}

Calendar::Calendar(int num_days, Weekday first_weekday,
                   std::vector<int> holidays)
    : num_days_(num_days),
      first_weekday_(first_weekday),
      holidays_(std::move(holidays)) {
  APOTS_CHECK_GT(num_days, 0);
  std::sort(holidays_.begin(), holidays_.end());
  for (int h : holidays_) {
    APOTS_CHECK_GE(h, 0);
    APOTS_CHECK_LT(h, num_days);
  }
}

Calendar Calendar::HyundaiPeriod2018() {
  // Day 0 = 2018-07-01 (Sunday). Holiday day indices within the window:
  //   Aug 15 (Liberation Day)            = 45
  //   Sep 23-26 (Chuseok + substitute)   = 84, 85, 86, 87
  //   Oct  3 (National Foundation Day)   = 94
  //   Oct  9 (Hangul Day)                = 100
  // Seven holiday days, matching the paper's note that the dataset
  // contains only 7 holidays.
  return Calendar(122, Weekday::kSunday, {45, 84, 85, 86, 87, 94, 100});
}

DayInfo Calendar::Day(int day_index) const {
  APOTS_CHECK_GE(day_index, 0);
  APOTS_CHECK_LT(day_index, num_days_);
  DayInfo info;
  info.day_index = day_index;
  info.weekday = static_cast<Weekday>(
      (static_cast<int>(first_weekday_) + day_index) % 7);
  info.is_weekend = info.weekday == Weekday::kSaturday ||
                    info.weekday == Weekday::kSunday;
  auto is_holiday = [this](int day) {
    return std::binary_search(holidays_.begin(), holidays_.end(), day);
  };
  info.is_holiday = is_holiday(day_index);
  info.is_before_holiday =
      day_index + 1 < num_days_ && is_holiday(day_index + 1);
  info.is_after_holiday = day_index - 1 >= 0 && is_holiday(day_index - 1);
  return info;
}

}  // namespace apots::traffic
