#ifndef APOTS_TRAFFIC_DATASET_GENERATOR_H_
#define APOTS_TRAFFIC_DATASET_GENERATOR_H_

#include <cstdint>

#include "traffic/corridor_simulator.h"
#include "traffic/traffic_dataset.h"

namespace apots::traffic {

/// End-to-end dataset recipe: calendar + weather + incidents + corridor
/// physics, all derived deterministically from one seed.
struct DatasetSpec {
  int num_roads = 5;          ///< 2m+1 with m = 2 (paper: target +- m roads)
  int num_days = 122;         ///< the paper's July-October window
  int intervals_per_day = 288;  ///< 5-minute resolution
  uint64_t seed = 2022;
  bool hyundai_calendar = true;  ///< use the 2018 Jul-Oct holiday layout
  CorridorParams corridor;
  WeatherParams weather;
  IncidentParams incidents;

  /// A smaller spec for fast tests/examples (14 days, 3 roads).
  static DatasetSpec Small(uint64_t seed = 7);
};

/// Builds the full synthetic corridor dataset from a spec.
TrafficDataset GenerateDataset(const DatasetSpec& spec);

}  // namespace apots::traffic

#endif  // APOTS_TRAFFIC_DATASET_GENERATOR_H_
