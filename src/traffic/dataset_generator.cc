#include "traffic/dataset_generator.h"

#include "util/logging.h"
#include "util/rng.h"

namespace apots::traffic {

DatasetSpec DatasetSpec::Small(uint64_t seed) {
  DatasetSpec spec;
  spec.num_roads = 3;
  spec.num_days = 14;
  spec.intervals_per_day = 288;
  spec.seed = seed;
  spec.hyundai_calendar = false;
  return spec;
}

TrafficDataset GenerateDataset(const DatasetSpec& spec) {
  Calendar calendar =
      spec.hyundai_calendar && spec.num_days == 122
          ? Calendar::HyundaiPeriod2018()
          : Calendar(spec.num_days, Weekday::kSunday,
                     // A generic mid-window holiday pair so day-type
                     // features stay exercised on small specs.
                     spec.num_days >= 10
                         ? std::vector<int>{spec.num_days / 2,
                                            spec.num_days / 2 + 1}
                         : std::vector<int>{});

  apots::Rng seeder(spec.seed);
  const uint64_t weather_seed = seeder.NextUint64();
  const uint64_t incident_seed = seeder.NextUint64();
  const uint64_t corridor_seed = seeder.NextUint64();

  WeatherGenerator weather_gen(spec.weather, weather_seed);
  const std::vector<WeatherSample> weather =
      weather_gen.Generate(spec.num_days, spec.intervals_per_day);

  IncidentGenerator incident_gen(spec.incidents, incident_seed);
  const std::vector<Incident> incidents = incident_gen.Generate(
      spec.num_roads, spec.num_days, spec.intervals_per_day);

  TrafficDataset dataset(spec.num_roads, spec.num_days,
                         spec.intervals_per_day, calendar);
  CorridorSimulator simulator(spec.corridor, corridor_seed);
  simulator.Simulate(weather, incidents, &dataset);
  return dataset;
}

}  // namespace apots::traffic
