#include "traffic/weather.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace apots::traffic {

WeatherGenerator::WeatherGenerator(WeatherParams params, uint64_t seed)
    : params_(params), seed_(seed) {}

std::vector<WeatherSample> WeatherGenerator::Generate(
    int num_days, int intervals_per_day) const {
  APOTS_CHECK_GT(num_days, 0);
  APOTS_CHECK_GT(intervals_per_day, 0);
  apots::Rng rng(seed_);
  const size_t total =
      static_cast<size_t>(num_days) * static_cast<size_t>(intervals_per_day);
  std::vector<WeatherSample> samples(total);

  // Temperature: seasonal linear trend + diurnal sinusoid + AR(1) noise.
  double noise = 0.0;
  for (size_t t = 0; t < total; ++t) {
    const double day_frac =
        static_cast<double>(t) / static_cast<double>(total);
    const double seasonal =
        params_.mean_temperature_start_c +
        (params_.mean_temperature_end_c - params_.mean_temperature_start_c) *
            day_frac;
    const double hour = static_cast<double>(t % intervals_per_day) /
                        intervals_per_day * 24.0;
    // Diurnal minimum around 05:00, maximum around 15:00.
    const double diurnal =
        params_.diurnal_amplitude_c *
        std::sin((hour - 9.0) / 24.0 * 2.0 * M_PI);
    noise = 0.98 * noise + rng.Normal(0.0, params_.temperature_noise_c * 0.2);
    samples[t].temperature_c =
        static_cast<float>(seasonal + diurnal + noise);
  }

  // Rain: episode arrivals thinned over the window, triangular envelope.
  for (int day = 0; day < num_days; ++day) {
    const double day_frac = static_cast<double>(day) / num_days;
    const double rate =
        params_.rain_episodes_per_day_start +
        (params_.rain_episodes_per_day_end -
         params_.rain_episodes_per_day_start) *
            day_frac;
    if (!rng.Bernoulli(std::min(1.0, rate))) continue;
    const double start_hour = rng.Uniform(0.0, 24.0);
    const double duration_hours = rng.Uniform(
        params_.rain_min_duration_hours, params_.rain_max_duration_hours);
    const double peak =
        rng.Uniform(0.3, 1.0) * params_.rain_peak_intensity_mm;
    const double intervals_per_hour = intervals_per_day / 24.0;
    const long start = static_cast<long>(
        day * intervals_per_day + start_hour * intervals_per_hour);
    const long length =
        std::max<long>(1, static_cast<long>(duration_hours * intervals_per_hour));
    for (long i = 0; i < length; ++i) {
      const long t = start + i;
      if (t < 0 || t >= static_cast<long>(total)) continue;
      // Triangular envelope peaking mid-episode.
      const double phase = static_cast<double>(i) / length;
      const double envelope = 1.0 - std::fabs(2.0 * phase - 1.0);
      const double jitter = std::max(0.0, rng.Normal(1.0, 0.15));
      samples[t].precipitation_mm +=
          static_cast<float>(peak * envelope * jitter);
    }
  }
  return samples;
}

}  // namespace apots::traffic
