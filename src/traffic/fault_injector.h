#ifndef APOTS_TRAFFIC_FAULT_INJECTOR_H_
#define APOTS_TRAFFIC_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/traffic_dataset.h"
#include "util/status.h"

namespace apots::traffic {

/// Sensor failure modes observed on real loop-detector feeds (the paper's
/// data source is 5-minute loop detectors on the Gyeongbu Expressway).
/// Values are bit flags so a FaultSpec can enable any subset.
enum FaultKind : unsigned {
  kFaultDrop = 1u << 0,    ///< isolated missing readings (detector emits 0)
  kFaultStuck = 1u << 1,   ///< sensor repeats its last value for a stretch
  kFaultNoise = 1u << 2,   ///< burst of heavy-tailed measurement noise
  kFaultOutage = 1u << 3,  ///< whole-road blackout lasting hours
  /// Adversarial poisoning (attack::PerturbationPlan through the serving
  /// feed). A recognized kind name, but NOT part of kFaultAll and not
  /// injectable by FaultInjector: poison is crafted against a model, not
  /// drawn from a random process — route it through `apots_cli attack` or
  /// the serving harness's attack setup.
  kFaultPoison = 1u << 4,
  kFaultAll = kFaultDrop | kFaultStuck | kFaultNoise | kFaultOutage,
};

/// Parses a comma-separated kind list ("drop,stuck,noise,outage,poison"
/// or "all") into a FaultKind bitmask. Unknown names are an
/// InvalidArgument listing the valid kinds.
Result<unsigned> ParseFaultKinds(const std::string& spec);

/// Human-readable "drop|stuck" style rendering of a kind bitmask.
std::string FaultKindsToString(unsigned kinds);

/// Per-(road, interval) observation validity. A cell is invalid when the
/// stored speed no longer reflects ground truth (dropped, stuck, noisy or
/// blacked out) — downstream consumers impute over invalid cells and skip
/// them as evaluation targets.
class ValidityMask {
 public:
  ValidityMask() = default;

  /// All cells start valid.
  ValidityMask(int num_roads, long num_intervals);

  int num_roads() const { return num_roads_; }
  long num_intervals() const { return num_intervals_; }
  bool empty() const { return valid_.empty(); }

  bool Valid(int road, long t) const;
  void Set(int road, long t, bool valid);

  /// Sets every cell at once. Streaming consumers repurpose the mask as an
  /// "observed" bitmap: start all-false, flip cells true as records land.
  void SetAll(bool valid);

  /// Fraction of valid cells over the whole mask (1.0 when empty).
  double ValidRatio() const;

  /// Fraction of valid cells of `road` over [first, last] inclusive.
  double WindowRatio(int road, long first, long last) const;

  long CountInvalid() const;

  bool operator==(const ValidityMask& other) const {
    return num_roads_ == other.num_roads_ &&
           num_intervals_ == other.num_intervals_ && valid_ == other.valid_;
  }

 private:
  int num_roads_ = 0;
  long num_intervals_ = 0;
  std::vector<uint8_t> valid_;  ///< road-major [roads x intervals]
};

/// What to corrupt and how hard. All stretches are in 5-minute intervals.
struct FaultSpec {
  /// Target fraction of (road, interval) cells corrupted, in [0, 1].
  double rate = 0.05;
  unsigned kinds = kFaultAll;
  uint64_t seed = 1;

  int stuck_min = 6;     ///< 30 min
  int stuck_max = 36;    ///< 3 h
  int noise_min = 3;
  int noise_max = 12;
  int outage_min = 24;   ///< 2 h
  int outage_max = 96;   ///< 8 h
  float noise_sigma_kmh = 25.0f;
  /// What a dropped reading is stored as (loop detectors report 0).
  float drop_value = 0.0f;
};

/// Deterministic, seedable corruption of a TrafficDataset. Two injectors
/// built from equal specs produce bit-identical corruption and masks on
/// equal datasets, so fault scenarios are reproducible experiment axes.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

  const FaultSpec& spec() const { return spec_; }

  /// Corrupts `dataset` speeds in place and returns the validity mask
  /// (false where a cell was corrupted). Fails with InvalidArgument on a
  /// malformed spec rather than aborting.
  Result<ValidityMask> Inject(TrafficDataset* dataset) const;

 private:
  FaultSpec spec_;
};

}  // namespace apots::traffic

#endif  // APOTS_TRAFFIC_FAULT_INJECTOR_H_
