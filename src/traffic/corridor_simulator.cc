#include "traffic/corridor_simulator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace apots::traffic {

namespace {

// Smooth step centred at `center` with logistic width `width` (hours).
double LogisticStep(double hour, double center, double width) {
  return 1.0 / (1.0 + std::exp(-(hour - center) / width));
}

// A bump that rises at `start` and falls at `end` (hours), sharpness from
// `width`.
double Bump(double hour, double start, double end, double width) {
  return LogisticStep(hour, start, width) *
         (1.0 - LogisticStep(hour, end, width));
}

}  // namespace

CorridorSimulator::CorridorSimulator(CorridorParams params, uint64_t seed)
    : params_(params), seed_(seed) {}

double CorridorSimulator::DemandRatio(const DayInfo& day, double hour) const {
  const double w = params_.rush_transition_hours;
  double ratio = params_.demand_base;
  // Overnight lull.
  ratio *= 0.55 + 0.45 * Bump(hour, 5.5, 23.8, 1.2);

  const bool workday = !day.is_weekend && !day.is_holiday;
  if (workday) {
    // Morning rush 06:45-09:30 and evening rush 17:15-20:30.
    double morning = params_.morning_peak_ratio - params_.demand_base;
    double evening = params_.evening_peak_ratio - params_.demand_base;
    // The day after a holiday has a lighter morning commute; the day
    // before a holiday has a heavier, earlier evening exodus.
    if (day.is_after_holiday) morning *= 0.7;
    if (day.is_before_holiday) evening *= 1.2;
    ratio += morning * Bump(hour, 6.75, 9.5, w);
    ratio += evening * Bump(hour, day.is_before_holiday ? 16.5 : 17.25,
                            20.5, w);
  } else {
    // Weekend/holiday: broad midday leisure bump plus a return wave in the
    // evening (stronger on the last day of a holiday run).
    double midday = params_.weekend_midday_ratio - params_.demand_base;
    ratio += midday * Bump(hour, 10.0, 19.0, 0.8);
    if (day.is_holiday) {
      ratio += 0.25 * Bump(hour, 18.5, 21.5, w);
    }
  }
  return std::max(0.05, ratio);
}

void CorridorSimulator::Simulate(const std::vector<WeatherSample>& weather,
                                 const std::vector<Incident>& incidents,
                                 TrafficDataset* dataset) const {
  APOTS_CHECK(dataset != nullptr);
  const int num_roads = dataset->num_roads();
  const long total = dataset->num_intervals();
  APOTS_CHECK_EQ(weather.size(), static_cast<size_t>(total));
  *dataset->mutable_weather() = weather;
  *dataset->mutable_incident_log() = incidents;
  *dataset->mutable_event_flags() =
      IncidentGenerator::ActiveFlags(incidents, num_roads, total);

  apots::Rng rng(seed_);

  // Per-road free-flow speeds and demand jitter.
  std::vector<double> free_flow(num_roads);
  std::vector<double> demand_scale(num_roads);
  for (int r = 0; r < num_roads; ++r) {
    free_flow[r] = params_.free_flow_kmh +
                   rng.Uniform(-params_.free_flow_road_jitter,
                               params_.free_flow_road_jitter);
    demand_scale[r] = rng.Uniform(0.92, 1.08);
  }

  // Incident capacity envelope: ramp in over onset intervals, hold at
  // `severity` for the duration, ramp out over the recovery.
  std::vector<double> incident_cut(
      static_cast<size_t>(num_roads) * static_cast<size_t>(total), 0.0);
  for (const Incident& inc : incidents) {
    const long onset = std::max<long>(1, params_.incident_onset_intervals);
    for (long i = -onset; i < inc.duration + inc.recovery; ++i) {
      const long t = inc.start_interval + i;
      if (t < 0 || t >= total) continue;
      double envelope = 1.0;
      if (i < 0) {
        envelope = static_cast<double>(i + onset) / onset;
      } else if (i >= inc.duration) {
        envelope = 1.0 - static_cast<double>(i - inc.duration) / inc.recovery;
      }
      double& cell =
          incident_cut[static_cast<size_t>(inc.road) * total + t];
      cell = std::max(cell, inc.severity * envelope);
    }
  }

  // Pass 1: local (pre-propagation) speeds from demand, weather, incidents.
  std::vector<double> raw(
      static_cast<size_t>(num_roads) * static_cast<size_t>(total), 0.0);
  std::vector<double> noise(num_roads, 0.0);
  for (long t = 0; t < total; ++t) {
    const DayInfo day = dataset->Day(t);
    const double hour = dataset->FractionalHour(t);
    const double rain = weather[static_cast<size_t>(t)].precipitation_mm;
    // Rain cuts capacity smoothly toward the floor.
    const double rain_intensity =
        std::min(1.0, rain / params_.rain_reference_mm);
    const double rain_capacity =
        1.0 - (1.0 - params_.rain_capacity_floor) * rain_intensity;
    for (int r = 0; r < num_roads; ++r) {
      // Downstream roads (higher index) hit the rush breakdown earlier:
      // shift this road's effective clock forward by its distance from
      // the downstream end of the corridor.
      const double lead_hours =
          params_.bottleneck_lead_minutes / 60.0 * (num_roads - 1 - r);
      const double base_ratio = DemandRatio(day, hour - lead_hours);
      const double capacity =
          rain_capacity *
          (1.0 - incident_cut[static_cast<size_t>(r) * total + t]);
      const double ratio =
          base_ratio * demand_scale[r] / std::max(0.12, capacity);
      double speed =
          free_flow[r] / (1.0 + std::pow(ratio, params_.bpr_gamma));
      // Multiplicative AR(1) noise.
      noise[r] = params_.noise_rho * noise[r] +
                 rng.Normal(0.0, params_.noise_sigma);
      speed *= 1.0 + noise[r];
      raw[static_cast<size_t>(r) * total + t] = speed;
    }
  }

  // Pass 2: queue spillback. Congestion at segment r pulls the speed of
  // segment r-1 toward it with a lag, hop by hop (traffic flows toward
  // higher indices, so queues grow backward).
  const long lag = params_.propagation_lag_intervals;
  for (int r = num_roads - 2; r >= 0; --r) {
    for (long t = 0; t < total; ++t) {
      const long td = t - lag;
      if (td < 0) continue;
      const double downstream = raw[static_cast<size_t>(r + 1) * total + td];
      double& own = raw[static_cast<size_t>(r) * total + t];
      if (downstream < params_.congestion_threshold_kmh &&
          downstream < own) {
        own = own + params_.propagation_strength * (downstream - own);
      }
    }
  }

  // Clamp and store.
  for (int r = 0; r < num_roads; ++r) {
    for (long t = 0; t < total; ++t) {
      const double speed =
          std::clamp(raw[static_cast<size_t>(r) * total + t],
                     params_.min_speed_kmh, params_.max_speed_kmh);
      dataset->SetSpeed(r, t, static_cast<float>(speed));
    }
  }
}

}  // namespace apots::traffic
