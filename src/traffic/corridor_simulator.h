#ifndef APOTS_TRAFFIC_CORRIDOR_SIMULATOR_H_
#define APOTS_TRAFFIC_CORRIDOR_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "traffic/calendar.h"
#include "traffic/incident.h"
#include "traffic/traffic_dataset.h"
#include "traffic/weather.h"

namespace apots::traffic {

/// Tunable physics of the corridor. Defaults are calibrated so that
/// (a) free-flow speeds sit in the 90-105 km/h band of the Gyeongbu
/// expressway plots (Fig. 1), (b) rush-hour congestion drops speeds to
/// 20-40 km/h with onset/offset sharp enough that a few transitions per
/// day exceed the paper's abrupt-change threshold |ds/s| >= 0.3, and
/// (c) accidents produce the crash-then-fast-recovery signature of
/// Fig. 1c.
struct CorridorParams {
  double free_flow_kmh = 98.0;       ///< corridor-average free-flow speed
  double free_flow_road_jitter = 4.0;  ///< per-road offset amplitude
  double min_speed_kmh = 5.0;
  double max_speed_kmh = 110.0;

  /// Demand-to-speed mapping: v = free_flow / (1 + ratio^gamma) where
  /// ratio = demand / capacity. Larger gamma = sharper breakdown.
  double bpr_gamma = 6.0;

  /// Peak demand/capacity ratios for the weekday rush periods (>1 means
  /// breakdown). Off-peak base is `demand_base`.
  double demand_base = 0.45;
  double morning_peak_ratio = 1.35;
  double evening_peak_ratio = 1.25;
  double weekend_midday_ratio = 0.95;
  /// Logistic transition steepness for rush onset, in hours; smaller is
  /// sharper. 0.1 makes congestion breakdown cross the paper's
  /// |ds/s| >= 0.3 threshold within one 5-minute interval on most
  /// weekdays — the predictable class of abrupt change in Fig. 1a.
  double rush_transition_hours = 0.1;

  /// Rain effect: capacity multiplier floor under heavy rain, and the
  /// precipitation (mm / 5 min) treated as "heavy".
  double rain_capacity_floor = 0.62;
  double rain_reference_mm = 3.0;

  /// Incident effect ramps in/out over this many intervals so single-step
  /// speed changes stay near the paper's observed +-30% extremes.
  int incident_onset_intervals = 3;

  /// Queue spillback: how strongly upstream speed is pulled toward the
  /// (lagged) downstream speed when downstream is congested, and the lag
  /// in intervals per hop.
  double propagation_strength = 0.55;
  int propagation_lag_intervals = 2;
  double congestion_threshold_kmh = 55.0;

  /// Multiplicative AR(1) measurement noise.
  double noise_sigma = 0.02;
  double noise_rho = 0.6;

  /// Bottleneck stagger: each hop downstream enters (and leaves) the rush
  /// breakdown this many minutes earlier than the next road upstream, so
  /// the congestion wave is visible on downstream segments before it
  /// reaches the target — the spatio-temporal correlation the paper's
  /// adjacent-speed feature exploits (Section IV-A, Fig. 3).
  double bottleneck_lead_minutes = 7.0;
};

/// Generates per-road speed series for a corridor of consecutive segments
/// (road 0 is the most upstream; traffic flows toward higher indices, so
/// congestion at segment r spills back to r-1, r-2, ...).
class CorridorSimulator {
 public:
  CorridorSimulator(CorridorParams params, uint64_t seed);

  /// Fills `dataset`'s speed matrix (and event flags) from the demand
  /// model, the supplied weather series and the incident log. The dataset
  /// must already be sized; weather.size() must equal num_intervals.
  void Simulate(const std::vector<WeatherSample>& weather,
                const std::vector<Incident>& incidents,
                TrafficDataset* dataset) const;

  /// The deterministic demand/capacity ratio for a day profile at a given
  /// fractional hour (exposed for tests).
  double DemandRatio(const DayInfo& day, double hour) const;

 private:
  CorridorParams params_;
  uint64_t seed_;
};

}  // namespace apots::traffic

#endif  // APOTS_TRAFFIC_CORRIDOR_SIMULATOR_H_
