#include "traffic/traffic_dataset.h"

#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace apots::traffic {

TrafficDataset::TrafficDataset(int num_roads, int num_days,
                               int intervals_per_day, Calendar calendar)
    : num_roads_(num_roads),
      num_days_(num_days),
      intervals_per_day_(intervals_per_day),
      calendar_(std::move(calendar)) {
  APOTS_CHECK_GT(num_roads, 0);
  APOTS_CHECK_GT(num_days, 0);
  APOTS_CHECK_GT(intervals_per_day, 0);
  APOTS_CHECK_EQ(calendar_.num_days(), num_days);
  const size_t cells = static_cast<size_t>(num_roads) *
                       static_cast<size_t>(num_intervals());
  speeds_.assign(cells, 0.0f);
  event_flags_.assign(cells, 0.0f);
  weather_.assign(static_cast<size_t>(num_intervals()), WeatherSample{});
}

void TrafficDataset::CheckIndex(int road, long t) const {
  // Hard check in every build type: a silently-clamped or wild read here
  // poisons features/metrics far from the root cause. Release builds used
  // to compile these to no-ops while SpeedRow checked — one consistent
  // policy now.
  APOTS_CHECK(road >= 0 && road < num_roads_)
      << "road " << road << " outside [0, " << num_roads_ << ")";
  APOTS_CHECK(t >= 0 && t < num_intervals())
      << "interval " << t << " outside [0, " << num_intervals() << ")";
}

Status TrafficDataset::CheckBounds(int road, long t) const {
  if (road < 0 || road >= num_roads_) {
    return Status::OutOfRange(
        StrFormat("road %d outside [0, %d)", road, num_roads_));
  }
  if (t < 0 || t >= num_intervals()) {
    return Status::OutOfRange(
        StrFormat("interval %ld outside [0, %ld)", t, num_intervals()));
  }
  return Status::Ok();
}

float TrafficDataset::Speed(int road, long t) const {
  CheckIndex(road, t);
  return speeds_[static_cast<size_t>(road) * num_intervals() + t];
}

void TrafficDataset::SetSpeed(int road, long t, float value) {
  CheckIndex(road, t);
  speeds_[static_cast<size_t>(road) * num_intervals() + t] = value;
}

const float* TrafficDataset::SpeedRow(int road) const {
  APOTS_CHECK(road >= 0 && road < num_roads_);
  return speeds_.data() + static_cast<size_t>(road) * num_intervals();
}

float TrafficDataset::EventFlag(int road, long t) const {
  CheckIndex(road, t);
  return event_flags_[static_cast<size_t>(road) * num_intervals() + t];
}

const WeatherSample& TrafficDataset::Weather(long t) const {
  APOTS_CHECK(t >= 0 && t < num_intervals());
  return weather_[static_cast<size_t>(t)];
}

int TrafficDataset::HourOfDay(long t) const {
  return static_cast<int>(FractionalHour(t));
}

double TrafficDataset::FractionalHour(long t) const {
  APOTS_CHECK(t >= 0 && t < num_intervals());
  const long within_day = t % intervals_per_day_;
  return static_cast<double>(within_day) / intervals_per_day_ * 24.0;
}

DayInfo TrafficDataset::Day(long t) const {
  APOTS_CHECK(t >= 0 && t < num_intervals());
  return calendar_.Day(static_cast<int>(t / intervals_per_day_));
}

Status TrafficDataset::WriteCsv(const std::string& path) const {
  std::vector<std::string> header = {"interval", "day", "hour",
                                     "temperature_c", "precipitation_mm"};
  for (int r = 0; r < num_roads_; ++r) {
    header.push_back(StrFormat("speed_%d", r));
  }
  for (int r = 0; r < num_roads_; ++r) {
    header.push_back(StrFormat("event_%d", r));
  }
  auto writer_result = CsvWriter::Open(path, header);
  if (!writer_result.ok()) return writer_result.status();
  CsvWriter writer = std::move(writer_result).value();
  for (long t = 0; t < num_intervals(); ++t) {
    std::vector<std::string> row;
    row.reserve(header.size());
    row.push_back(StrFormat("%ld", t));
    row.push_back(StrFormat("%ld", t / intervals_per_day_));
    row.push_back(StrFormat("%.4f", FractionalHour(t)));
    row.push_back(StrFormat("%.2f", static_cast<double>(
                                        weather_[t].temperature_c)));
    row.push_back(StrFormat("%.3f", static_cast<double>(
                                        weather_[t].precipitation_mm)));
    for (int r = 0; r < num_roads_; ++r) {
      row.push_back(StrFormat("%.3f", static_cast<double>(Speed(r, t))));
    }
    for (int r = 0; r < num_roads_; ++r) {
      row.push_back(StrFormat("%.0f", static_cast<double>(EventFlag(r, t))));
    }
    APOTS_RETURN_IF_ERROR(writer.WriteRow(row));
  }
  return writer.Close();
}

Result<TrafficDataset> TrafficDataset::ReadCsv(const std::string& path,
                                               const Calendar& calendar) {
  auto table_res = apots::ReadCsv(path);
  if (!table_res.ok()) return table_res.status();
  const CsvTable& table = table_res.value();
  // Count road columns.
  int num_roads = 0;
  while (table.ColumnIndex(StrFormat("speed_%d", num_roads)) >= 0) {
    ++num_roads;
  }
  if (num_roads == 0) {
    return Status::InvalidArgument("no speed_<i> columns in " + path);
  }
  const long total = static_cast<long>(table.rows.size());
  if (total == 0) return Status::InvalidArgument("empty dataset: " + path);
  if (total % calendar.num_days() != 0) {
    return Status::InvalidArgument(
        StrFormat("%ld intervals not divisible by %d days", total,
                  calendar.num_days()));
  }
  const int intervals_per_day =
      static_cast<int>(total / calendar.num_days());
  TrafficDataset dataset(num_roads, calendar.num_days(), intervals_per_day,
                         calendar);
  const int temp_col = table.ColumnIndex("temperature_c");
  const int rain_col = table.ColumnIndex("precipitation_mm");
  std::vector<int> speed_cols(num_roads), event_cols(num_roads);
  for (int r = 0; r < num_roads; ++r) {
    speed_cols[r] = table.ColumnIndex(StrFormat("speed_%d", r));
    event_cols[r] = table.ColumnIndex(StrFormat("event_%d", r));
  }
  for (long t = 0; t < total; ++t) {
    const auto& row = table.rows[static_cast<size_t>(t)];
    double value = 0.0;
    if (temp_col >= 0 && ParseDouble(row[temp_col], &value)) {
      (*dataset.mutable_weather())[t].temperature_c =
          static_cast<float>(value);
    }
    if (rain_col >= 0 && ParseDouble(row[rain_col], &value)) {
      (*dataset.mutable_weather())[t].precipitation_mm =
          static_cast<float>(value);
    }
    for (int r = 0; r < num_roads; ++r) {
      if (speed_cols[r] >= 0 && ParseDouble(row[speed_cols[r]], &value)) {
        dataset.SetSpeed(r, t, static_cast<float>(value));
      }
      if (event_cols[r] >= 0 && ParseDouble(row[event_cols[r]], &value)) {
        (*dataset.mutable_event_flags())[static_cast<size_t>(r) * total + t] =
            static_cast<float>(value);
      }
    }
  }
  return dataset;
}

}  // namespace apots::traffic
