#ifndef APOTS_TRAFFIC_WEATHER_H_
#define APOTS_TRAFFIC_WEATHER_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace apots::traffic {

/// One 5-minute weather observation.
struct WeatherSample {
  float temperature_c = 20.0f;     ///< air temperature in degrees Celsius
  float precipitation_mm = 0.0f;   ///< rainfall in the interval, millimetres
};

/// Parameters of the synthetic weather process. Defaults approximate a
/// Korean July-October window (monsoon rain concentrated early in the
/// period, cooling trend toward autumn).
struct WeatherParams {
  double mean_temperature_start_c = 27.0;  ///< seasonal mean at day 0
  double mean_temperature_end_c = 13.0;    ///< seasonal mean at the last day
  double diurnal_amplitude_c = 4.5;        ///< day/night temperature swing
  double temperature_noise_c = 0.8;

  /// Expected number of rain episodes per day at the start/end of the
  /// window (linearly interpolated; monsoon tapers off).
  double rain_episodes_per_day_start = 0.55;
  double rain_episodes_per_day_end = 0.15;
  double rain_min_duration_hours = 1.0;
  double rain_max_duration_hours = 8.0;
  double rain_peak_intensity_mm = 4.0;  ///< per 5-min interval at episode peak
};

/// Generates a deterministic per-interval weather series. Rain arrives in
/// episodes with a triangular intensity envelope so onsets/endings are
/// gradual but clearly localized — the property the model's weather feature
/// exploits (Fig. 1b: rainy-day speed depression).
class WeatherGenerator {
 public:
  WeatherGenerator(WeatherParams params, uint64_t seed);

  /// Produces `num_days * intervals_per_day` samples.
  std::vector<WeatherSample> Generate(int num_days,
                                      int intervals_per_day) const;

 private:
  WeatherParams params_;
  uint64_t seed_;
};

}  // namespace apots::traffic

#endif  // APOTS_TRAFFIC_WEATHER_H_
