#include "traffic/fault_injector.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace apots::traffic {

Result<unsigned> ParseFaultKinds(const std::string& spec) {
  unsigned kinds = 0;
  for (const std::string& token : Split(spec, ',')) {
    const std::string name = ToLower(Trim(token));
    if (name.empty()) continue;
    if (name == "all") {
      kinds |= kFaultAll;
    } else if (name == "drop") {
      kinds |= kFaultDrop;
    } else if (name == "stuck") {
      kinds |= kFaultStuck;
    } else if (name == "noise") {
      kinds |= kFaultNoise;
    } else if (name == "outage") {
      kinds |= kFaultOutage;
    } else if (name == "poison") {
      kinds |= kFaultPoison;
    } else {
      return Status::InvalidArgument(
          "unknown fault kind: " + name +
          " (valid kinds: drop, stuck, noise, outage, poison, all)");
    }
  }
  if (kinds == 0) {
    return Status::InvalidArgument(
        "no fault kinds in: " + spec +
        " (valid kinds: drop, stuck, noise, outage, poison, all)");
  }
  return kinds;
}

std::string FaultKindsToString(unsigned kinds) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += "|";
    out += name;
  };
  if (kinds & kFaultDrop) append("drop");
  if (kinds & kFaultStuck) append("stuck");
  if (kinds & kFaultNoise) append("noise");
  if (kinds & kFaultOutage) append("outage");
  if (kinds & kFaultPoison) append("poison");
  return out.empty() ? "none" : out;
}

ValidityMask::ValidityMask(int num_roads, long num_intervals)
    : num_roads_(num_roads), num_intervals_(num_intervals) {
  APOTS_CHECK_GT(num_roads, 0);
  APOTS_CHECK_GT(num_intervals, 0L);
  valid_.assign(static_cast<size_t>(num_roads) *
                    static_cast<size_t>(num_intervals),
                1);
}

bool ValidityMask::Valid(int road, long t) const {
  APOTS_CHECK(road >= 0 && road < num_roads_);
  APOTS_CHECK(t >= 0 && t < num_intervals_);
  return valid_[static_cast<size_t>(road) * num_intervals_ + t] != 0;
}

void ValidityMask::Set(int road, long t, bool valid) {
  APOTS_CHECK(road >= 0 && road < num_roads_);
  APOTS_CHECK(t >= 0 && t < num_intervals_);
  valid_[static_cast<size_t>(road) * num_intervals_ + t] = valid ? 1 : 0;
}

void ValidityMask::SetAll(bool valid) {
  std::fill(valid_.begin(), valid_.end(), static_cast<uint8_t>(valid ? 1 : 0));
}

double ValidityMask::ValidRatio() const {
  if (valid_.empty()) return 1.0;
  return 1.0 - static_cast<double>(CountInvalid()) /
                   static_cast<double>(valid_.size());
}

double ValidityMask::WindowRatio(int road, long first, long last) const {
  APOTS_CHECK(road >= 0 && road < num_roads_);
  APOTS_CHECK(first >= 0 && last < num_intervals_ && first <= last);
  long valid = 0;
  const size_t base = static_cast<size_t>(road) * num_intervals_;
  for (long t = first; t <= last; ++t) {
    valid += valid_[base + t];
  }
  return static_cast<double>(valid) / static_cast<double>(last - first + 1);
}

long ValidityMask::CountInvalid() const {
  long invalid = 0;
  for (uint8_t v : valid_) {
    if (v == 0) ++invalid;
  }
  return invalid;
}

namespace {

// Marks [start, start+length) of `road` invalid; returns how many cells
// flipped from valid (already-corrupted cells don't count toward budget).
long MarkInvalid(ValidityMask* mask, int road, long start, long length) {
  long flipped = 0;
  for (long t = start; t < start + length; ++t) {
    if (mask->Valid(road, t)) {
      mask->Set(road, t, false);
      ++flipped;
    }
  }
  return flipped;
}

float ClampSpeed(float kmh) { return std::clamp(kmh, 0.0f, 110.0f); }

}  // namespace

Result<ValidityMask> FaultInjector::Inject(TrafficDataset* dataset) const {
  if (dataset == nullptr) {
    return Status::InvalidArgument("Inject: dataset is null");
  }
  if (!(spec_.rate >= 0.0 && spec_.rate <= 1.0)) {
    return Status::InvalidArgument(
        StrFormat("fault rate %.3f outside [0, 1]", spec_.rate));
  }
  if (spec_.kinds & kFaultPoison) {
    return Status::InvalidArgument(
        "poison is an adversarial fault, not a random one: the injector "
        "cannot synthesize it — use `apots_cli attack` or the serving "
        "harness attack setup");
  }
  if ((spec_.kinds & kFaultAll) == 0) {
    return Status::InvalidArgument("fault spec enables no kinds");
  }
  if (spec_.stuck_min <= 0 || spec_.stuck_max < spec_.stuck_min ||
      spec_.noise_min <= 0 || spec_.noise_max < spec_.noise_min ||
      spec_.outage_min <= 0 || spec_.outage_max < spec_.outage_min) {
    return Status::InvalidArgument("fault stretch bounds are not ordered");
  }

  const int roads = dataset->num_roads();
  const long intervals = dataset->num_intervals();
  ValidityMask mask(roads, intervals);
  const long total_cells = static_cast<long>(roads) * intervals;
  const long budget = static_cast<long>(spec_.rate * total_cells);

  std::vector<unsigned> enabled;
  for (unsigned kind :
       {kFaultDrop, kFaultStuck, kFaultNoise, kFaultOutage}) {
    if (spec_.kinds & kind) enabled.push_back(kind);
  }

  Rng rng(spec_.seed);
  long corrupted = 0;
  // Each attempt corrupts at least one fresh cell or misses an already
  // corrupted region; the cap only guards degenerate specs (rate near 1
  // with long mandatory stretches).
  long attempts_left = 64 * budget + 1024;
  while (corrupted < budget && attempts_left-- > 0) {
    const unsigned kind =
        enabled[static_cast<size_t>(rng.UniformInt(enabled.size()))];
    const int road = static_cast<int>(rng.UniformInt(roads));
    switch (kind) {
      case kFaultDrop: {
        const long t = static_cast<long>(rng.UniformInt(intervals));
        dataset->SetSpeed(road, t, spec_.drop_value);
        corrupted += MarkInvalid(&mask, road, t, 1);
        break;
      }
      case kFaultStuck: {
        const long length = std::min<long>(
            spec_.stuck_min +
                static_cast<long>(rng.UniformInt(
                    spec_.stuck_max - spec_.stuck_min + 1)),
            intervals);
        const long start =
            static_cast<long>(rng.UniformInt(intervals - length + 1));
        const float held =
            dataset->Speed(road, start > 0 ? start - 1 : start);
        for (long t = start; t < start + length; ++t) {
          dataset->SetSpeed(road, t, held);
        }
        corrupted += MarkInvalid(&mask, road, start, length);
        break;
      }
      case kFaultNoise: {
        const long length = std::min<long>(
            spec_.noise_min +
                static_cast<long>(rng.UniformInt(
                    spec_.noise_max - spec_.noise_min + 1)),
            intervals);
        const long start =
            static_cast<long>(rng.UniformInt(intervals - length + 1));
        for (long t = start; t < start + length; ++t) {
          const float noisy = ClampSpeed(
              dataset->Speed(road, t) +
              static_cast<float>(rng.Normal(0.0, spec_.noise_sigma_kmh)));
          dataset->SetSpeed(road, t, noisy);
        }
        corrupted += MarkInvalid(&mask, road, start, length);
        break;
      }
      case kFaultOutage: {
        const long length = std::min<long>(
            spec_.outage_min +
                static_cast<long>(rng.UniformInt(
                    spec_.outage_max - spec_.outage_min + 1)),
            intervals);
        const long start =
            static_cast<long>(rng.UniformInt(intervals - length + 1));
        for (long t = start; t < start + length; ++t) {
          dataset->SetSpeed(road, t, spec_.drop_value);
        }
        corrupted += MarkInvalid(&mask, road, start, length);
        break;
      }
      default:
        break;
    }
  }
  if (corrupted < budget) {
    APOTS_LOG(Warning) << "FaultInjector hit the attempt cap at "
                       << corrupted << "/" << budget << " cells";
  }
  return mask;
}

}  // namespace apots::traffic
