#ifndef APOTS_TRAFFIC_INCIDENT_H_
#define APOTS_TRAFFIC_INCIDENT_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace apots::traffic {

/// Kind of road incident reported in the event log.
enum class IncidentKind {
  kAccident,      ///< crash: sudden sharp capacity loss, fast recovery
  kConstruction,  ///< lane closure: milder loss, longer duration, off-peak
};

/// One incident on one road segment, in 5-minute interval units.
struct Incident {
  IncidentKind kind = IncidentKind::kAccident;
  int road = 0;              ///< road segment index
  long start_interval = 0;   ///< first affected interval
  long duration = 6;         ///< intervals of full effect
  long recovery = 6;         ///< intervals over which capacity returns
  double severity = 0.7;     ///< fraction of capacity removed at peak [0,1)
};

/// Parameters of the incident arrival process (per road).
struct IncidentParams {
  double accidents_per_road_per_day = 0.15;      ///< ~1 per road / week
  double constructions_per_road_per_day = 0.02;  ///< rarer, night work
  double accident_min_duration_hours = 0.5;
  double accident_max_duration_hours = 1.5;
  double accident_min_severity = 0.55;
  double accident_max_severity = 0.85;
  double construction_min_duration_hours = 3.0;
  double construction_max_duration_hours = 8.0;
  double construction_severity = 0.3;
};

/// Generates the incident log for a corridor. The log doubles as the
/// model's "event" non-speed feature (Section IV-A: 1 while an accident or
/// construction is active, else 0).
class IncidentGenerator {
 public:
  IncidentGenerator(IncidentParams params, uint64_t seed);

  /// All incidents over the horizon, sorted by start.
  std::vector<Incident> Generate(int num_roads, int num_days,
                                 int intervals_per_day) const;

  /// Rasterizes incidents into a per-road / per-interval 0-1 flag matrix
  /// (road-major, `num_roads * total_intervals` entries). Recovery
  /// intervals count as active (the situation is still "eventful").
  static std::vector<float> ActiveFlags(const std::vector<Incident>& log,
                                        int num_roads, long total_intervals);

 private:
  IncidentParams params_;
  uint64_t seed_;
};

}  // namespace apots::traffic

#endif  // APOTS_TRAFFIC_INCIDENT_H_
