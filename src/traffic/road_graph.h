#ifndef APOTS_TRAFFIC_ROAD_GRAPH_H_
#define APOTS_TRAFFIC_ROAD_GRAPH_H_

#include <utility>
#include <vector>

#include "util/status.h"

namespace apots::traffic {

/// Undirected adjacency over road segments. The corridor datasets used so
/// far are the special case of a path graph (road i touches i-1 and i+1);
/// METR-LA-style sensor networks are arbitrary sparse graphs. The graph
/// carries *topology only* — speeds, weather, and calendar stay in
/// TrafficDataset, keyed by the same road ids.
///
/// Neighbor lists are kept sorted so every traversal (and therefore every
/// partition, boundary set, and feature window derived from one) is
/// deterministic regardless of edge insertion order.
class RoadGraph {
 public:
  /// Empty graph (0 roads). Useful as a "no graph supplied" default.
  RoadGraph() = default;

  /// Path graph over `num_roads` segments: i ~ i+1. Matches the implicit
  /// topology of the corridor simulator and of FeatureAssembler's
  /// index-contiguous adjacency window.
  static RoadGraph Corridor(int num_roads);

  /// 4-connected grid with `rows * cols` roads, id = r * cols + c. A cheap
  /// stand-in for urban mesh topologies in tests.
  static RoadGraph Grid(int rows, int cols);

  /// Arbitrary topology from an undirected edge list. Rejects self-loops
  /// and out-of-range endpoints; duplicate edges collapse to one.
  static Result<RoadGraph> FromEdges(
      int num_roads, const std::vector<std::pair<int, int>>& edges);

  int num_roads() const { return num_roads_; }
  long num_edges() const { return num_edges_; }

  /// Sorted neighbor ids of `road`.
  const std::vector<int>& Neighbors(int road) const;

  bool AreAdjacent(int a, int b) const;

  /// All roads within `hops` BFS hops of `road` (including `road`),
  /// sorted ascending. On a corridor this is exactly the contiguous range
  /// [road - hops, road + hops] clamped to the graph — the invariant that
  /// keeps graph-derived serving windows bitwise identical to the legacy
  /// index-window plumbing.
  std::vector<int> WithinHops(int road, int hops) const;

 private:
  int num_roads_ = 0;
  long num_edges_ = 0;
  std::vector<std::vector<int>> adjacency_;
};

/// A disjoint cover of a RoadGraph's roads by `num_shards` shards, plus the
/// derived cross-shard boundary structure that sharded serving needs:
///
///   boundary(s)  roads owned by s with at least one edge leaving s — the
///                roads whose observations s must publish.
///   frontier(s)  roads NOT owned by s but adjacent to a road of s — the
///                roads s must import from its neighbors.
///
/// The two sets are views of the same cut edges, so for any road r owned by
/// shard u: r ∈ frontier(s) ⇔ r ∈ boundary(u) and some edge (r, x) has
/// x owned by s. Validate() checks that symmetry plus the exactly-one-shard
/// cover; tests drive it as the partition invariant suite.
class Partition {
 public:
  /// Contiguous split of road ids into `num_shards` near-equal ranges —
  /// the natural partition for corridor graphs (cut edges only between
  /// range ends). Requires 1 <= num_shards <= num_roads.
  static Result<Partition> Contiguous(const RoadGraph& graph, int num_shards);

  /// Arbitrary assignment: `shard_of[road]` in [0, num_shards). Rejects
  /// out-of-range shards and a size mismatch with the graph.
  static Result<Partition> FromAssignment(const RoadGraph& graph,
                                          int num_shards,
                                          const std::vector<int>& shard_of);

  int num_shards() const { return num_shards_; }
  int num_roads() const { return static_cast<int>(shard_of_.size()); }

  int shard_of(int road) const;

  /// Sorted road ids owned by `shard`.
  const std::vector<int>& roads(int shard) const;

  /// Sorted owned roads of `shard` with an edge into another shard.
  const std::vector<int>& boundary(int shard) const;

  /// Sorted foreign roads adjacent to `shard` (its import set / halo).
  const std::vector<int>& frontier(int shard) const;

  /// Re-checks the structural invariants (every road in exactly one shard,
  /// boundary/frontier symmetry across every cut edge). Ok for any
  /// Partition built by the factories; exposed so tests can assert it and
  /// future hand-built partitions can be vetted.
  Status Validate(const RoadGraph& graph) const;

 private:
  Partition() = default;

  /// Fills roads_/boundary_/frontier_ from shard_of_ + the graph.
  void BuildDerivedSets(const RoadGraph& graph);

  int num_shards_ = 0;
  std::vector<int> shard_of_;
  std::vector<std::vector<int>> roads_;
  std::vector<std::vector<int>> boundary_;
  std::vector<std::vector<int>> frontier_;
};

}  // namespace apots::traffic

#endif  // APOTS_TRAFFIC_ROAD_GRAPH_H_
