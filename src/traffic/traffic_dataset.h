#ifndef APOTS_TRAFFIC_TRAFFIC_DATASET_H_
#define APOTS_TRAFFIC_TRAFFIC_DATASET_H_

#include <string>
#include <vector>

#include "traffic/calendar.h"
#include "traffic/incident.h"
#include "traffic/weather.h"
#include "util/status.h"

namespace apots::traffic {

/// The full synthetic corridor dataset: per-road speed series plus every
/// contextual series the APOTS model consumes. The layout mirrors what the
/// paper's Hyundai dataset provides (speeds, accident/construction logs,
/// KMA weather crawl, calendar).
class TrafficDataset {
 public:
  TrafficDataset() = default;

  TrafficDataset(int num_roads, int num_days, int intervals_per_day,
                 Calendar calendar);

  int num_roads() const { return num_roads_; }
  int num_days() const { return num_days_; }
  int intervals_per_day() const { return intervals_per_day_; }
  long num_intervals() const {
    return static_cast<long>(num_days_) * intervals_per_day_;
  }
  const Calendar& calendar() const { return calendar_; }

  /// Speed of `road` at interval `t` in km/h. All element accessors are
  /// hard-checked in every build type, matching SpeedRow — out-of-range
  /// indices abort instead of silently reading adjacent storage. Callers
  /// with untrusted indices should probe CheckBounds first.
  float Speed(int road, long t) const;
  void SetSpeed(int road, long t, float value);

  /// Status-returning bounds probe for fallible callers (OutOfRange on a
  /// bad index) — the non-aborting counterpart of the checked accessors.
  Status CheckBounds(int road, long t) const;

  /// Entire speed row of one road.
  const float* SpeedRow(int road) const;

  /// Event flag (accident/construction active) of `road` at `t`.
  float EventFlag(int road, long t) const;

  /// Weather at interval `t`.
  const WeatherSample& Weather(long t) const;

  /// Hour of day (0-23) at interval `t`.
  int HourOfDay(long t) const;

  /// Fractional hour (e.g. 7.5 for 07:30) at interval `t`.
  double FractionalHour(long t) const;

  /// Calendar day the interval falls on.
  DayInfo Day(long t) const;

  /// Mutable backing stores, used by the generator.
  std::vector<float>* mutable_speeds() { return &speeds_; }
  std::vector<float>* mutable_event_flags() { return &event_flags_; }
  std::vector<WeatherSample>* mutable_weather() { return &weather_; }
  std::vector<Incident>* mutable_incident_log() { return &incident_log_; }

  const std::vector<Incident>& incident_log() const { return incident_log_; }

  /// Writes the dataset to CSV (one row per interval: day, hour, weather,
  /// then per-road speed and event columns) — the exchange format the
  /// examples read back.
  Status WriteCsv(const std::string& path) const;

  /// Reads a dataset written by WriteCsv. The calendar is reconstructed
  /// from the stored day-type columns is not possible, so the caller
  /// supplies it (defaults to the Hyundai period when day counts match).
  static Result<TrafficDataset> ReadCsv(const std::string& path,
                                        const Calendar& calendar);

 private:
  void CheckIndex(int road, long t) const;

  int num_roads_ = 0;
  int num_days_ = 0;
  int intervals_per_day_ = 0;
  Calendar calendar_{1, Weekday::kMonday, {}};
  std::vector<float> speeds_;       ///< road-major [roads x intervals]
  std::vector<float> event_flags_;  ///< road-major [roads x intervals]
  std::vector<WeatherSample> weather_;
  std::vector<Incident> incident_log_;
};

}  // namespace apots::traffic

#endif  // APOTS_TRAFFIC_TRAFFIC_DATASET_H_
