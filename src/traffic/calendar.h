#ifndef APOTS_TRAFFIC_CALENDAR_H_
#define APOTS_TRAFFIC_CALENDAR_H_

#include <array>
#include <string>
#include <vector>

namespace apots::traffic {

/// Day-of-week, Monday = 0 ... Sunday = 6.
enum class Weekday {
  kMonday = 0,
  kTuesday,
  kWednesday,
  kThursday,
  kFriday,
  kSaturday,
  kSunday,
};

/// Per-day classification used both by the simulator (demand profile) and
/// as the model's "day type" non-speed feature (Section IV-A: weekday,
/// holiday, day before holiday, day after holiday — a multi-hot 4-vector).
struct DayInfo {
  int day_index = 0;       ///< 0-based offset from the calendar start
  Weekday weekday = Weekday::kMonday;
  bool is_weekend = false;
  bool is_holiday = false;         ///< official public holiday
  bool is_before_holiday = false;  ///< the day immediately before a holiday
  bool is_after_holiday = false;   ///< the day immediately after a holiday

  /// The 4-dim multi-hot day-type encoding [weekday, holiday, before,
  /// after] from the paper's example ("[1, 0, 1, 0]" for a weekday before
  /// a holiday).
  std::array<float, 4> TypeVector() const;

  /// "Mon", "Tue", ... for diagnostics.
  const char* WeekdayName() const;
};

/// Calendar over a contiguous run of days. The default factory reproduces
/// the paper's data period: 2018-07-01 .. 2018-10-30 (122 days) with the
/// 7 Korean public-holiday days in that window (Liberation Day Aug 15;
/// Chuseok Sep 23-26 incl. substitute; National Foundation Day Oct 3;
/// Hangul Day Oct 9).
class Calendar {
 public:
  /// `first_weekday` is the weekday of day 0; `holidays` are day indices.
  Calendar(int num_days, Weekday first_weekday, std::vector<int> holidays);

  /// The paper's 122-day window (2018-07-01 was a Sunday).
  static Calendar HyundaiPeriod2018();

  int num_days() const { return num_days_; }

  /// Number of official holiday days.
  int num_holidays() const { return static_cast<int>(holidays_.size()); }

  /// Full classification of `day_index` (checked).
  DayInfo Day(int day_index) const;

 private:
  int num_days_;
  Weekday first_weekday_;
  std::vector<int> holidays_;  // sorted
};

}  // namespace apots::traffic

#endif  // APOTS_TRAFFIC_CALENDAR_H_
