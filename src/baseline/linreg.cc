#include "baseline/linreg.h"

#include <cmath>

#include "util/logging.h"

namespace apots::baseline {

bool CholeskySolve(std::vector<double>* a, size_t p, std::vector<double>* b) {
  APOTS_CHECK_EQ(a->size(), p * p);
  APOTS_CHECK_EQ(b->size(), p);
  std::vector<double>& A = *a;
  // Factor A = L L^T, storing L in the lower triangle.
  for (size_t j = 0; j < p; ++j) {
    double diag = A[j * p + j];
    for (size_t k = 0; k < j; ++k) diag -= A[j * p + k] * A[j * p + k];
    if (diag <= 0.0) return false;
    const double ljj = std::sqrt(diag);
    A[j * p + j] = ljj;
    for (size_t i = j + 1; i < p; ++i) {
      double value = A[i * p + j];
      for (size_t k = 0; k < j; ++k) value -= A[i * p + k] * A[j * p + k];
      A[i * p + j] = value / ljj;
    }
  }
  // Forward solve L z = b.
  std::vector<double>& x = *b;
  for (size_t i = 0; i < p; ++i) {
    double value = x[i];
    for (size_t k = 0; k < i; ++k) value -= A[i * p + k] * x[k];
    x[i] = value / A[i * p + i];
  }
  // Back solve L^T w = z.
  for (size_t i = p; i-- > 0;) {
    double value = x[i];
    for (size_t k = i + 1; k < p; ++k) value -= A[k * p + i] * x[k];
    x[i] = value / A[i * p + i];
  }
  return true;
}

apots::Status RidgeRegression::Fit(const std::vector<double>& x, size_t n,
                                   size_t p, const std::vector<double>& y) {
  if (x.size() != n * p) {
    return apots::Status::InvalidArgument("X size does not match n*p");
  }
  if (y.size() != n) {
    return apots::Status::InvalidArgument("y size does not match n");
  }
  if (n == 0 || p == 0) {
    return apots::Status::InvalidArgument("empty design matrix");
  }
  // Gram matrix X^T X + lambda I and moment vector X^T y.
  std::vector<double> gram(p * p, 0.0);
  std::vector<double> moment(p, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* row = x.data() + i * p;
    for (size_t j = 0; j < p; ++j) {
      moment[j] += row[j] * y[i];
      for (size_t k = j; k < p; ++k) gram[j * p + k] += row[j] * row[k];
    }
  }
  for (size_t j = 0; j < p; ++j) {
    for (size_t k = 0; k < j; ++k) gram[j * p + k] = gram[k * p + j];
    gram[j * p + j] += lambda_;
  }
  if (!CholeskySolve(&gram, p, &moment)) {
    return apots::Status::Internal(
        "Gram matrix not positive definite; increase lambda");
  }
  weights_ = std::move(moment);
  return apots::Status::Ok();
}

double RidgeRegression::Predict(const double* row) const {
  APOTS_CHECK(fitted());
  double acc = 0.0;
  for (size_t j = 0; j < weights_.size(); ++j) acc += row[j] * weights_[j];
  return acc;
}

}  // namespace apots::baseline
