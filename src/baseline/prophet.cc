#include "baseline/prophet.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace apots::baseline {

using apots::traffic::DayInfo;
using apots::traffic::TrafficDataset;

Prophet::Prophet(ProphetConfig config) : config_(config) {
  APOTS_CHECK_GE(config_.trend_changepoints, 0);
  APOTS_CHECK_GE(config_.daily_harmonics, 0);
  APOTS_CHECK_GE(config_.weekly_harmonics, 0);
}

size_t Prophet::NumFeatures() const {
  // intercept + linear trend + changepoint hinges + daily Fourier pairs +
  // weekly Fourier pairs + holiday window indicators
  // (lower .. upper inclusive).
  const size_t holiday_terms = static_cast<size_t>(
      config_.holiday_lower_window + config_.holiday_upper_window + 1);
  return 2 + static_cast<size_t>(config_.trend_changepoints) +
         2 * static_cast<size_t>(config_.daily_harmonics) +
         2 * static_cast<size_t>(config_.weekly_harmonics) + holiday_terms;
}

void Prophet::FeatureRow(const TrafficDataset& dataset, long t,
                         double* row) const {
  size_t k = 0;
  const double scaled_t =
      static_cast<double>(t) / static_cast<double>(total_intervals_);
  row[k++] = 1.0;       // intercept
  row[k++] = scaled_t;  // linear trend
  // Piecewise-linear trend: hinge features max(0, t - c_i) at evenly
  // spaced changepoints (Prophet's changepoint grid over history).
  for (int i = 0; i < config_.trend_changepoints; ++i) {
    const double knot =
        static_cast<double>(i + 1) / (config_.trend_changepoints + 1);
    row[k++] = std::max(0.0, scaled_t - knot);
  }
  // Daily seasonality.
  const double day_phase = dataset.FractionalHour(t) / 24.0;
  for (int h = 1; h <= config_.daily_harmonics; ++h) {
    row[k++] = std::sin(2.0 * M_PI * h * day_phase);
    row[k++] = std::cos(2.0 * M_PI * h * day_phase);
  }
  // Weekly seasonality.
  const DayInfo day = dataset.Day(t);
  const double week_phase =
      (static_cast<double>(day.weekday) + day_phase) / 7.0;
  for (int h = 1; h <= config_.weekly_harmonics; ++h) {
    row[k++] = std::sin(2.0 * M_PI * h * week_phase);
    row[k++] = std::cos(2.0 * M_PI * h * week_phase);
  }
  // Holiday effects with lower/upper windows: one indicator per offset in
  // [-lower, +upper]; offset d is active when day_index + d is a holiday
  // ... i.e. when this day sits d days before/after a holiday.
  const int day_index = day.day_index;
  const auto& calendar = dataset.calendar();
  for (int offset = -config_.holiday_lower_window;
       offset <= config_.holiday_upper_window; ++offset) {
    const int probe = day_index + offset;
    bool active = false;
    if (probe >= 0 && probe < calendar.num_days()) {
      active = calendar.Day(probe).is_holiday;
    }
    row[k++] = active ? 1.0 : 0.0;
  }
  APOTS_CHECK_EQ(k, NumFeatures());
}

apots::Status Prophet::Fit(const TrafficDataset& dataset, int road,
                           const std::vector<long>& train_intervals) {
  if (train_intervals.empty()) {
    return apots::Status::InvalidArgument("no training intervals");
  }
  total_intervals_ = std::max<long>(1, dataset.num_intervals());
  const size_t p = NumFeatures();
  const size_t n = train_intervals.size();
  std::vector<double> design(n * p);
  std::vector<double> target(n);
  for (size_t i = 0; i < n; ++i) {
    FeatureRow(dataset, train_intervals[i], design.data() + i * p);
    target[i] = dataset.Speed(road, train_intervals[i]);
  }
  regression_ = RidgeRegression(config_.ridge_lambda);
  return regression_.Fit(design, n, p, target);
}

double Prophet::Predict(const TrafficDataset& dataset, long t) const {
  APOTS_CHECK(fitted());
  std::vector<double> row(NumFeatures());
  FeatureRow(dataset, t, row.data());
  return regression_.Predict(row.data());
}

std::vector<double> Prophet::PredictAtAnchors(
    const TrafficDataset& dataset, const std::vector<long>& anchors,
    int beta) const {
  std::vector<double> out(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    out[i] = Predict(dataset, anchors[i] + beta);
  }
  return out;
}

}  // namespace apots::baseline
