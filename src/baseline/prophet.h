#ifndef APOTS_BASELINE_PROPHET_H_
#define APOTS_BASELINE_PROPHET_H_

#include <vector>

#include "baseline/linreg.h"
#include "traffic/traffic_dataset.h"
#include "util/status.h"

namespace apots::baseline {

/// Configuration of the Prophet-style additive model. Mirrors the knobs
/// the paper mentions: holiday upper/lower windows of 1 day and default
/// regularization scales.
struct ProphetConfig {
  int trend_changepoints = 10;     ///< piecewise-linear trend knots
  int daily_harmonics = 10;        ///< Fourier order of the daily season
  int weekly_harmonics = 3;        ///< Fourier order of the weekly season
  int holiday_lower_window = 1;    ///< days before a holiday with own effect
  int holiday_upper_window = 1;    ///< days after a holiday with own effect
  double ridge_lambda = 1.0;       ///< MAP point-fit regularization
};

/// A from-scratch reimplementation of the additive core of Facebook
/// Prophet: y(t) = trend(t) + daily seasonality + weekly seasonality +
/// holiday effects, fit as a ridge regression (Prophet's MAP point
/// estimate). Like the paper's baseline it conditions only on the clock
/// and calendar — not on recent speeds — which is exactly why it cannot
/// track abrupt changes.
class Prophet {
 public:
  explicit Prophet(ProphetConfig config = ProphetConfig());

  /// Fits on the target road's speeds at the training intervals.
  apots::Status Fit(const apots::traffic::TrafficDataset& dataset, int road,
                    const std::vector<long>& train_intervals);

  /// Predicted speed (km/h) at interval `t`.
  double Predict(const apots::traffic::TrafficDataset& dataset,
                 long t) const;

  /// Batch of predictions at `anchors + beta` (the instants APOTS models
  /// predict), aligned with ApotsModel::PredictKmh.
  std::vector<double> PredictAtAnchors(
      const apots::traffic::TrafficDataset& dataset,
      const std::vector<long>& anchors, int beta) const;

  bool fitted() const { return regression_.fitted(); }
  size_t NumFeatures() const;

 private:
  /// Builds the design row for interval `t` into `row`.
  void FeatureRow(const apots::traffic::TrafficDataset& dataset, long t,
                  double* row) const;

  ProphetConfig config_;
  RidgeRegression regression_;
  long total_intervals_ = 1;  ///< for trend normalization
};

}  // namespace apots::baseline

#endif  // APOTS_BASELINE_PROPHET_H_
