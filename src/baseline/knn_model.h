#ifndef APOTS_BASELINE_KNN_MODEL_H_
#define APOTS_BASELINE_KNN_MODEL_H_

#include <vector>

#include "traffic/traffic_dataset.h"
#include "util/status.h"

namespace apots::baseline {

/// k-nearest-neighbour speed predictor in the spirit of the ST-KNN line of
/// work the paper cites: the query is the target road's last `order`
/// speeds; neighbours are training windows with the smallest Euclidean
/// distance; the prediction is the distance-weighted mean of the
/// neighbours' beta-ahead continuations. Brute-force search — fine at this
/// corpus size and it keeps the baseline dependency-free.
class KnnModel {
 public:
  explicit KnnModel(int order = 12, int k = 15);

  /// Stores the training windows (anchor convention as elsewhere: inputs
  /// [t-order, t-1], target t+beta).
  apots::Status Fit(const apots::traffic::TrafficDataset& dataset, int road,
                    const std::vector<long>& train_anchors, int beta);

  double PredictOne(const apots::traffic::TrafficDataset& dataset,
                    long anchor) const;

  std::vector<double> PredictAtAnchors(
      const apots::traffic::TrafficDataset& dataset,
      const std::vector<long>& anchors) const;

  bool fitted() const { return !targets_.empty(); }
  int k() const { return k_; }

 private:
  int order_;
  int k_;
  int road_ = 0;
  std::vector<float> windows_;   ///< [n, order] row-major
  std::vector<float> targets_;   ///< [n]
};

}  // namespace apots::baseline

#endif  // APOTS_BASELINE_KNN_MODEL_H_
