#ifndef APOTS_BASELINE_LINREG_H_
#define APOTS_BASELINE_LINREG_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace apots::baseline {

/// Ridge regression by normal equations: solves
///   (X^T X + lambda I) w = X^T y
/// with a Cholesky factorization. `X` is row-major [n, p]; the intercept,
/// if wanted, must be an explicit all-ones column. Ridge on the intercept
/// column is harmless at the lambdas used here.
class RidgeRegression {
 public:
  explicit RidgeRegression(double lambda = 1e-3) : lambda_(lambda) {}

  /// Fits the weights; fails when the regularized Gram matrix is not
  /// positive definite (lambda <= 0 with collinear features).
  apots::Status Fit(const std::vector<double>& x, size_t n, size_t p,
                    const std::vector<double>& y);

  /// Predicted value for one feature row (length p).
  double Predict(const double* row) const;

  const std::vector<double>& weights() const { return weights_; }
  bool fitted() const { return !weights_.empty(); }

 private:
  double lambda_;
  std::vector<double> weights_;
};

/// In-place Cholesky solve of A x = b for symmetric positive-definite A
/// ([p, p], row-major). Returns false when A is not positive definite.
bool CholeskySolve(std::vector<double>* a, size_t p, std::vector<double>* b);

}  // namespace apots::baseline

#endif  // APOTS_BASELINE_LINREG_H_
