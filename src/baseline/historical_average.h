#ifndef APOTS_BASELINE_HISTORICAL_AVERAGE_H_
#define APOTS_BASELINE_HISTORICAL_AVERAGE_H_

#include <vector>

#include "traffic/traffic_dataset.h"
#include "util/status.h"

namespace apots::baseline {

/// Time-of-day / day-kind historical mean: the classical ITS baseline.
/// Predicts the training-set average speed for the same interval-of-day,
/// separately for workdays and weekend-or-holiday days. Falls back to the
/// global mean when a bucket is empty.
class HistoricalAverage {
 public:
  HistoricalAverage() = default;

  apots::Status Fit(const apots::traffic::TrafficDataset& dataset, int road,
                    const std::vector<long>& train_intervals);

  double Predict(const apots::traffic::TrafficDataset& dataset,
                 long t) const;

  std::vector<double> PredictAtAnchors(
      const apots::traffic::TrafficDataset& dataset,
      const std::vector<long>& anchors, int beta) const;

  bool fitted() const { return fitted_; }

 private:
  bool fitted_ = false;
  int intervals_per_day_ = 0;
  double global_mean_ = 0.0;
  // [2][intervals_per_day]: bucket 0 = workday, 1 = weekend/holiday.
  std::vector<double> bucket_mean_;
  std::vector<long> bucket_count_;
};

}  // namespace apots::baseline

#endif  // APOTS_BASELINE_HISTORICAL_AVERAGE_H_
