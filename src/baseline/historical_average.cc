#include "baseline/historical_average.h"

#include "util/logging.h"

namespace apots::baseline {

using apots::traffic::DayInfo;
using apots::traffic::TrafficDataset;

namespace {

int BucketOf(const DayInfo& day) {
  return (day.is_weekend || day.is_holiday) ? 1 : 0;
}

}  // namespace

apots::Status HistoricalAverage::Fit(
    const TrafficDataset& dataset, int road,
    const std::vector<long>& train_intervals) {
  if (train_intervals.empty()) {
    return apots::Status::InvalidArgument("no training intervals");
  }
  intervals_per_day_ = dataset.intervals_per_day();
  bucket_mean_.assign(2 * static_cast<size_t>(intervals_per_day_), 0.0);
  bucket_count_.assign(2 * static_cast<size_t>(intervals_per_day_), 0);
  double total = 0.0;
  for (long t : train_intervals) {
    const int slot = static_cast<int>(t % intervals_per_day_);
    const int bucket = BucketOf(dataset.Day(t));
    const size_t idx =
        static_cast<size_t>(bucket) * intervals_per_day_ + slot;
    bucket_mean_[idx] += dataset.Speed(road, t);
    ++bucket_count_[idx];
    total += dataset.Speed(road, t);
  }
  global_mean_ = total / static_cast<double>(train_intervals.size());
  for (size_t i = 0; i < bucket_mean_.size(); ++i) {
    if (bucket_count_[i] > 0) {
      bucket_mean_[i] /= static_cast<double>(bucket_count_[i]);
    } else {
      bucket_mean_[i] = global_mean_;
    }
  }
  fitted_ = true;
  return apots::Status::Ok();
}

double HistoricalAverage::Predict(const TrafficDataset& dataset,
                                  long t) const {
  APOTS_CHECK(fitted_);
  const int slot = static_cast<int>(t % intervals_per_day_);
  const int bucket = BucketOf(dataset.Day(t));
  return bucket_mean_[static_cast<size_t>(bucket) * intervals_per_day_ +
                      slot];
}

std::vector<double> HistoricalAverage::PredictAtAnchors(
    const TrafficDataset& dataset, const std::vector<long>& anchors,
    int beta) const {
  std::vector<double> out(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    out[i] = Predict(dataset, anchors[i] + beta);
  }
  return out;
}

}  // namespace apots::baseline
