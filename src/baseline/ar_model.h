#ifndef APOTS_BASELINE_AR_MODEL_H_
#define APOTS_BASELINE_AR_MODEL_H_

#include <vector>

#include "traffic/traffic_dataset.h"
#include "util/status.h"

namespace apots::baseline {

/// Autoregressive baseline: predicts s_{t+beta} from the last `order`
/// speeds by ridge-fit linear regression (the classical time-series
/// approach in the paper's related-work lineage, ARIMA's AR core). Unlike
/// Prophet it *does* see the recent window, so it tracks slow dynamics but
/// still lags on abrupt changes.
class ArModel {
 public:
  explicit ArModel(int order = 12, double ridge_lambda = 1e-3);

  /// `train_anchors` follow the APOTS anchor convention: inputs are
  /// [t - order, t - 1], target is t + beta.
  apots::Status Fit(const apots::traffic::TrafficDataset& dataset, int road,
                    const std::vector<long>& train_anchors, int beta);

  double PredictOne(const apots::traffic::TrafficDataset& dataset,
                    long anchor) const;

  std::vector<double> PredictAtAnchors(
      const apots::traffic::TrafficDataset& dataset,
      const std::vector<long>& anchors) const;

  bool fitted() const;

 private:
  int order_;
  double lambda_;
  int road_ = 0;
  std::vector<double> weights_;  ///< order lags + intercept
};

}  // namespace apots::baseline

#endif  // APOTS_BASELINE_AR_MODEL_H_
