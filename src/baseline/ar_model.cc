#include "baseline/ar_model.h"

#include "baseline/linreg.h"
#include "util/logging.h"

namespace apots::baseline {

using apots::traffic::TrafficDataset;

ArModel::ArModel(int order, double ridge_lambda)
    : order_(order), lambda_(ridge_lambda) {
  APOTS_CHECK_GT(order, 0);
}

bool ArModel::fitted() const { return !weights_.empty(); }

apots::Status ArModel::Fit(const TrafficDataset& dataset, int road,
                           const std::vector<long>& train_anchors,
                           int beta) {
  if (train_anchors.empty()) {
    return apots::Status::InvalidArgument("no training anchors");
  }
  road_ = road;
  const size_t p = static_cast<size_t>(order_) + 1;  // lags + intercept
  const size_t n = train_anchors.size();
  std::vector<double> design(n * p);
  std::vector<double> target(n);
  for (size_t i = 0; i < n; ++i) {
    const long anchor = train_anchors[i];
    APOTS_CHECK_GE(anchor - order_, 0);
    double* row = design.data() + i * p;
    for (int lag = 0; lag < order_; ++lag) {
      row[lag] = dataset.Speed(road, anchor - order_ + lag);
    }
    row[order_] = 1.0;
    target[i] = dataset.Speed(road, anchor + beta);
  }
  RidgeRegression regression(lambda_);
  APOTS_RETURN_IF_ERROR(regression.Fit(design, n, p, target));
  weights_ = regression.weights();
  return apots::Status::Ok();
}

double ArModel::PredictOne(const TrafficDataset& dataset,
                           long anchor) const {
  APOTS_CHECK(fitted());
  APOTS_CHECK_GE(anchor - order_, 0);
  double acc = weights_[static_cast<size_t>(order_)];
  for (int lag = 0; lag < order_; ++lag) {
    acc += weights_[static_cast<size_t>(lag)] *
           dataset.Speed(road_, anchor - order_ + lag);
  }
  return acc;
}

std::vector<double> ArModel::PredictAtAnchors(
    const TrafficDataset& dataset, const std::vector<long>& anchors) const {
  std::vector<double> out(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    out[i] = PredictOne(dataset, anchors[i]);
  }
  return out;
}

}  // namespace apots::baseline
