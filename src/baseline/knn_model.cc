#include "baseline/knn_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace apots::baseline {

using apots::traffic::TrafficDataset;

KnnModel::KnnModel(int order, int k) : order_(order), k_(k) {
  APOTS_CHECK_GT(order, 0);
  APOTS_CHECK_GT(k, 0);
}

apots::Status KnnModel::Fit(const TrafficDataset& dataset, int road,
                            const std::vector<long>& train_anchors,
                            int beta) {
  if (train_anchors.empty()) {
    return apots::Status::InvalidArgument("no training anchors");
  }
  road_ = road;
  windows_.clear();
  targets_.clear();
  windows_.reserve(train_anchors.size() * static_cast<size_t>(order_));
  targets_.reserve(train_anchors.size());
  for (long anchor : train_anchors) {
    if (anchor - order_ < 0 ||
        anchor + beta >= dataset.num_intervals()) {
      return apots::Status::OutOfRange("anchor window outside dataset");
    }
    for (int lag = 0; lag < order_; ++lag) {
      windows_.push_back(dataset.Speed(road, anchor - order_ + lag));
    }
    targets_.push_back(dataset.Speed(road, anchor + beta));
  }
  return apots::Status::Ok();
}

double KnnModel::PredictOne(const TrafficDataset& dataset,
                            long anchor) const {
  APOTS_CHECK(fitted());
  APOTS_CHECK_GE(anchor - order_, 0);
  std::vector<float> query(static_cast<size_t>(order_));
  for (int lag = 0; lag < order_; ++lag) {
    query[static_cast<size_t>(lag)] =
        dataset.Speed(road_, anchor - order_ + lag);
  }
  // Track the k best (distance, target) pairs with a simple max-heap in a
  // vector — k is small.
  struct Neighbor {
    double distance_sq;
    float target;
    bool operator<(const Neighbor& other) const {
      return distance_sq < other.distance_sq;
    }
  };
  std::vector<Neighbor> best;
  best.reserve(static_cast<size_t>(k_) + 1);
  const size_t n = targets_.size();
  for (size_t i = 0; i < n; ++i) {
    const float* window = windows_.data() + i * static_cast<size_t>(order_);
    double dist = 0.0;
    for (int lag = 0; lag < order_; ++lag) {
      const double diff = window[lag] - query[static_cast<size_t>(lag)];
      dist += diff * diff;
    }
    if (best.size() < static_cast<size_t>(k_)) {
      best.push_back({dist, targets_[i]});
      std::push_heap(best.begin(), best.end());
    } else if (dist < best.front().distance_sq) {
      std::pop_heap(best.begin(), best.end());
      best.back() = {dist, targets_[i]};
      std::push_heap(best.begin(), best.end());
    }
  }
  // Inverse-distance weighting with a small floor for exact matches.
  double weight_sum = 0.0, value_sum = 0.0;
  for (const Neighbor& neighbor : best) {
    const double weight = 1.0 / (std::sqrt(neighbor.distance_sq) + 1e-3);
    weight_sum += weight;
    value_sum += weight * neighbor.target;
  }
  return value_sum / weight_sum;
}

std::vector<double> KnnModel::PredictAtAnchors(
    const TrafficDataset& dataset, const std::vector<long>& anchors) const {
  std::vector<double> out(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    out[i] = PredictOne(dataset, anchors[i]);
  }
  return out;
}

}  // namespace apots::baseline
