#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace apots {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53-bit mantissa from the top bits.
  return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  APOTS_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return spare_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  spare_normal_ = radius * std::sin(theta);
  has_spare_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Exponential(double lambda) {
  APOTS_CHECK_GT(lambda, 0.0);
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

void Rng::Shuffle(std::vector<size_t>* indices) {
  for (size_t i = indices->size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(UniformInt(i));
    std::swap((*indices)[i - 1], (*indices)[j]);
  }
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace apots
