#include "util/logging.h"

#include <cstdio>
#include <cstring>
#include <ctime>

namespace apots {

namespace {

LogLevel ParseEnvLevel() {
  const char* env = std::getenv("APOTS_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  if (std::strcmp(env, "DEBUG") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "INFO") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "WARNING") == 0) return LogLevel::kWarning;
  if (std::strcmp(env, "ERROR") == 0) return LogLevel::kError;
  return LogLevel::kInfo;
}

LogLevel g_level = ParseEnvLevel();

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ < g_level) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace apots
