#ifndef APOTS_UTIL_LOGGING_H_
#define APOTS_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace apots {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity emitted to stderr. Defaults to kInfo; the
/// APOTS_LOG_LEVEL environment variable (DEBUG/INFO/WARNING/ERROR) is read
/// once at startup and overrides the default.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink. Flushes one line to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process after emitting the line.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Swallows a stream expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define APOTS_LOG(level)                                                    \
  ::apots::internal::LogMessage(::apots::LogLevel::k##level, __FILE__,      \
                                __LINE__)                                   \
      .stream()

/// Internal invariant check; aborts with file/line on failure. Used for
/// programmer errors (bad indexing, broken invariants), not user input —
/// user input errors surface as Status.
#define APOTS_CHECK(condition)                                             \
  if (!(condition))                                                        \
  ::apots::internal::FatalLogMessage(__FILE__, __LINE__, #condition).stream()

#define APOTS_CHECK_EQ(a, b) APOTS_CHECK((a) == (b))
#define APOTS_CHECK_NE(a, b) APOTS_CHECK((a) != (b))
#define APOTS_CHECK_LT(a, b) APOTS_CHECK((a) < (b))
#define APOTS_CHECK_LE(a, b) APOTS_CHECK((a) <= (b))
#define APOTS_CHECK_GT(a, b) APOTS_CHECK((a) > (b))
#define APOTS_CHECK_GE(a, b) APOTS_CHECK((a) >= (b))

#ifdef NDEBUG
#define APOTS_DCHECK(condition) \
  if (false) ::apots::internal::NullStream()
#else
#define APOTS_DCHECK(condition) APOTS_CHECK(condition)
#endif

}  // namespace apots

#endif  // APOTS_UTIL_LOGGING_H_
