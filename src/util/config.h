#ifndef APOTS_UTIL_CONFIG_H_
#define APOTS_UTIL_CONFIG_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace apots {

/// A flat key=value configuration map with typed getters. Used by the
/// benches and examples for run parameters; keys can be loaded from a file
/// (one `key = value` per line, `#` comments) and individually overridden
/// by environment variables named `APOTS_<UPPERCASED_KEY>`.
class Config {
 public:
  Config() = default;

  /// Parses `key = value` lines. Later keys override earlier ones.
  static Result<Config> FromFile(const std::string& path);
  static Result<Config> FromString(const std::string& text);

  void Set(const std::string& key, const std::string& value);

  bool Has(const std::string& key) const;

  /// Typed getters; the environment override (APOTS_<KEY> with '.' and '-'
  /// mapped to '_') is consulted first, then the stored value, then
  /// `fallback`.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  bool GetBool(const std::string& key, bool fallback) const;

  /// All keys in sorted order (for dumping a run's configuration).
  std::vector<std::string> Keys() const;

  std::string ToString() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace apots

#endif  // APOTS_UTIL_CONFIG_H_
