#ifndef APOTS_UTIL_CSV_H_
#define APOTS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace apots {

/// A parsed CSV file: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column, or -1 when absent.
  int ColumnIndex(const std::string& name) const;
};

/// Reads a comma-separated file with a mandatory header row. Fields are not
/// quoted (the library only writes/reads numeric tables).
Result<CsvTable> ReadCsv(const std::string& path);

/// Writer that streams rows to disk; used by benches to emit the series
/// behind each figure so they can be re-plotted.
class CsvWriter {
 public:
  /// Opens (truncates) `path` and writes the header row.
  static Result<CsvWriter> Open(const std::string& path,
                                const std::vector<std::string>& header);

  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  /// Appends a row; must match the header width.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Convenience overload formatting doubles with 6 significant digits.
  Status WriteRow(const std::vector<double>& fields);

  /// Flushes and closes; further writes fail.
  Status Close();

 private:
  CsvWriter() = default;

  std::string path_;
  size_t width_ = 0;
  std::string buffer_;
  bool closed_ = false;
};

}  // namespace apots

#endif  // APOTS_UTIL_CSV_H_
