#ifndef APOTS_UTIL_THREAD_POOL_H_
#define APOTS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace apots {

/// Fixed-size worker pool built around one primitive: ParallelFor. The
/// design goals, in priority order, are (1) determinism — callers that
/// write disjoint output ranges per index get bit-identical results for
/// any pool size, and the worker index handed to the body lets callers
/// keep private scratch; (2) safety — exceptions thrown by the body are
/// captured and rethrown on the calling thread, and a ParallelFor issued
/// from inside a worker runs inline instead of deadlocking on the queue;
/// (3) low overhead — chunks are handed out by a single atomic counter,
/// and the calling thread participates as worker 0 so a pool of size N
/// uses exactly N threads.
class ThreadPool {
 public:
  /// Body of a parallel loop: processes indices [begin, end) as worker
  /// `worker` (0 = calling thread, 1..num_threads-1 = pool workers).
  using RangeFn = std::function<void(size_t begin, size_t end, size_t worker)>;

  /// Spawns `num_threads - 1` workers (the caller is the remaining one).
  /// `num_threads` is clamped to at least 1; 1 means fully serial: no
  /// threads are spawned and ParallelFor degenerates to a direct call.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs `fn` over [begin, end) split into contiguous chunks of at least
  /// `grain` indices each, and blocks until every chunk finished. Chunks
  /// are claimed dynamically, so which worker runs which chunk is
  /// unspecified — but chunk boundaries depend only on (begin, end,
  /// grain), never on the pool size, and every index is covered exactly
  /// once. If the range is at most `grain` indices, the pool has one
  /// thread, or the call is issued from inside a pool worker (nested
  /// parallelism), `fn(begin, end, 0)` runs inline on the caller. The
  /// first exception thrown by any chunk is rethrown here after all
  /// workers have quiesced.
  void ParallelFor(size_t begin, size_t end, size_t grain, const RangeFn& fn);

 private:
  /// One parallel region. Heap-allocated and shared with the workers so a
  /// straggler reading the control block after completion stays valid.
  struct Job {
    const RangeFn* fn = nullptr;
    size_t begin = 0;
    size_t chunk_size = 1;
    size_t num_chunks = 0;
    size_t range_end = 0;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> chunks_done{0};
    std::mutex error_mu;
    std::exception_ptr error;
  };

  void WorkerLoop(size_t worker);
  /// Claims and runs chunks until the job is drained; returns after
  /// contributing this worker's share of `chunks_done`.
  void RunChunks(Job* job, size_t worker);

  const size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;   // caller waits for chunks_done
  std::shared_ptr<Job> job_;          // current region, null when idle
  uint64_t generation_ = 0;
  bool shutdown_ = false;
};

/// The process-wide pool used by the tensor kernels and the trainer.
/// Lazily constructed on first use and sized by the APOTS_NUM_THREADS
/// environment variable; unset, empty, or invalid values fall back to
/// std::thread::hardware_concurrency(). APOTS_NUM_THREADS=1 restores the
/// fully serial path (no worker threads at all).
ThreadPool& GlobalPool();

/// Replaces the global pool with one of `num_threads` workers. Intended
/// for tests and benchmarks that compare arms at different pool sizes
/// within one process; must not race with concurrent ParallelFor calls.
void ResetGlobalPool(size_t num_threads);

}  // namespace apots

#endif  // APOTS_UTIL_THREAD_POOL_H_
