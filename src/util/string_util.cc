#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace apots {

std::vector<std::string> Split(std::string_view input, char delimiter) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delimiter) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin])))
    ++begin;
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1])))
    --end;
  return std::string(input.substr(begin, end - begin));
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool ParseDouble(std::string_view text, double* out) {
  const std::string s = Trim(text);
  if (s.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  *out = value;
  return true;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  const std::string s = Trim(text);
  if (s.empty()) return false;
  char* end = nullptr;
  const long long value = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

}  // namespace apots
