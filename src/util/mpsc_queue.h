#ifndef APOTS_UTIL_MPSC_QUEUE_H_
#define APOTS_UTIL_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace apots {

/// Bounded lock-free queue (Vyukov's bounded MPMC ring, used here as the
/// serving front door's MPSC request queue). Every slot carries a sequence
/// number; producers claim slots with one CAS on the enqueue cursor and
/// publish with a release store of the sequence, so TryPush never blocks,
/// never allocates, and fails immediately when the ring is full — the
/// admission-control property the front door builds on. The consumer
/// mirrors the protocol on the dequeue cursor; both sides work with any
/// number of threads, the front door just happens to run one consumer.
///
/// Ordering guarantees: pops observe pushes in slot-claim order, which is
/// FIFO per producer (a producer's later push always claims a later slot)
/// and globally consistent across producers. Capacity is rounded up to a
/// power of two, minimum 2.
template <typename T>
class MpscBoundedQueue {
 public:
  explicit MpscBoundedQueue(size_t capacity)
      : capacity_(RoundUpPowerOfTwo(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        cells_(new Cell[capacity_]) {
    for (size_t i = 0; i < capacity_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscBoundedQueue(const MpscBoundedQueue&) = delete;
  MpscBoundedQueue& operator=(const MpscBoundedQueue&) = delete;

  /// Multi-producer push. Returns false when the ring is full (the caller
  /// sheds); never blocks or spins on a full queue.
  bool TryPush(T value) {
    Cell* cell = nullptr;
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff = static_cast<intptr_t>(seq) -
                            static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // the slot one lap behind is still occupied: full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Pop in slot-claim order. Returns false when the ring is empty.
  bool TryPop(T* out) {
    Cell* cell = nullptr;
    size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff = static_cast<intptr_t>(seq) -
                            static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // the slot has not been published: empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    *out = std::move(cell->value);
    cell->value = T{};  // drop the slot's reference for shared_ptr payloads
    cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return capacity_; }

  /// Racy depth snapshot (cursor difference); exact only when quiescent.
  size_t SizeApprox() const {
    const size_t tail = enqueue_pos_.load(std::memory_order_relaxed);
    const size_t head = dequeue_pos_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> sequence{0};
    T value{};
  };

  static size_t RoundUpPowerOfTwo(size_t v) {
    size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  /// Producers and the consumer hammer different cursors; keep them on
  /// separate cache lines.
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
};

}  // namespace apots

#endif  // APOTS_UTIL_MPSC_QUEUE_H_
