#include "util/stopwatch.h"

// Header-only; this translation unit exists so the target has a definition
// anchor and the header stays in the library's compile check.
