#ifndef APOTS_UTIL_RNG_H_
#define APOTS_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace apots {

/// Deterministic 64-bit random number generator (xoshiro256**, seeded via
/// SplitMix64). Every stochastic component in the library takes an explicit
/// seed so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached spare value).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Exponential with rate `lambda` (> 0).
  double Exponential(double lambda);

  /// Fisher-Yates shuffle of `indices`.
  void Shuffle(std::vector<size_t>* indices);

  /// Returns a new Rng seeded deterministically from this one; useful for
  /// giving each subsystem an independent stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace apots

#endif  // APOTS_UTIL_RNG_H_
