#ifndef APOTS_UTIL_STRING_UTIL_H_
#define APOTS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace apots {

/// Splits `input` on `delimiter`; empty fields are preserved.
std::vector<std::string> Split(std::string_view input, char delimiter);

/// Removes leading/trailing ASCII whitespace.
std::string Trim(std::string_view input);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view input);

/// True when `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view separator);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Parses a double / int64; returns false on malformed input.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt64(std::string_view text, int64_t* out);

}  // namespace apots

#endif  // APOTS_UTIL_STRING_UTIL_H_
