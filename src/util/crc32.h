#ifndef APOTS_UTIL_CRC32_H_
#define APOTS_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace apots {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected). Used as the
/// integrity footer of on-disk artifacts (parameter checkpoints, ingestor
/// state blobs) so torn writes and bit rot are detected at load time
/// instead of silently corrupting model state.
///
/// `seed` allows incremental computation: pass the previous return value to
/// continue a running checksum over a split buffer.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace apots

#endif  // APOTS_UTIL_CRC32_H_
