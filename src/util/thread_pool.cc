#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace apots {

namespace {

/// Pool health instruments (see DESIGN.md §12). Handles are resolved once
/// and shared by every pool instance: the registry is process-wide, like
/// the global pool the metrics describe.
struct PoolMetrics {
  obs::Counter& regions;
  obs::Counter& chunks;
  obs::Counter& inline_runs;
  obs::Gauge& queue_depth;
  static PoolMetrics& Get() {
    static PoolMetrics* metrics = new PoolMetrics{
        obs::MetricsRegistry::Default().GetCounter("pool.regions"),
        obs::MetricsRegistry::Default().GetCounter("pool.chunks"),
        obs::MetricsRegistry::Default().GetCounter("pool.inline_runs"),
        obs::MetricsRegistry::Default().GetGauge("pool.queue_depth"),
    };
    return *metrics;
  }
};

/// Set while a pool worker (or a caller draining chunks) is inside a
/// parallel region; nested ParallelFor calls check it and run inline.
thread_local bool tls_in_parallel_region = false;

size_t ThreadsFromEnv() {
  size_t threads = 0;
  if (const char* env = std::getenv("APOTS_NUM_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      threads = static_cast<size_t>(parsed);
    } else if (*env != '\0') {
      APOTS_LOG(Warning) << "ignoring invalid APOTS_NUM_THREADS=\"" << env
                         << "\"";
    }
  }
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  return threads;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (size_t w = 1; w < num_threads_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Job* job, size_t worker) {
  const bool was_in_region = tls_in_parallel_region;
  tls_in_parallel_region = true;
  // One span per worker per region: the gaps between workers' spans in
  // the trace view are the utilization picture.
  obs::TraceSpan span("pool.worker");
  size_t completed = 0;
  for (;;) {
    const size_t chunk = job->next_chunk.fetch_add(1);
    if (chunk >= job->num_chunks) break;
    PoolMetrics::Get().queue_depth.Set(static_cast<double>(
        job->num_chunks -
        std::min(job->num_chunks, chunk + 1)));
    const size_t lo = job->begin + chunk * job->chunk_size;
    const size_t hi = std::min(job->range_end, lo + job->chunk_size);
    try {
      (*job->fn)(lo, hi, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->error_mu);
      if (!job->error) job->error = std::current_exception();
    }
    ++completed;
  }
  tls_in_parallel_region = was_in_region;
  if (completed > 0 &&
      job->chunks_done.fetch_add(completed) + completed == job->num_chunks) {
    // Last chunk of the region: wake the caller. The lock pairs with the
    // caller's predicate check so the notify can't slip in between.
    std::lock_guard<std::mutex> lock(mu_);
    done_cv_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    RunChunks(job.get(), worker);
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const RangeFn& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  grain = std::max<size_t>(1, grain);
  if (num_threads_ == 1 || n <= grain || tls_in_parallel_region) {
    PoolMetrics::Get().inline_runs.Add();
    fn(begin, end, 0);
    return;
  }
  obs::TraceSpan span("pool.parallel_for");

  // Chunk boundaries depend only on (n, grain) — never on the pool size —
  // so callers that accumulate per chunk stay deterministic across pool
  // sizes. The cap of 32 chunks bounds scheduling overhead while leaving
  // enough slack for dynamic load balancing.
  constexpr size_t kMaxChunks = 32;
  const size_t chunk_size =
      std::max(grain, (n + kMaxChunks - 1) / kMaxChunks);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->range_end = end;
  job->chunk_size = chunk_size;
  job->num_chunks = (n + chunk_size - 1) / chunk_size;
  PoolMetrics::Get().regions.Add();
  PoolMetrics::Get().chunks.Add(job->num_chunks);
  PoolMetrics::Get().queue_depth.Set(
      static_cast<double>(job->num_chunks));

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  RunChunks(job.get(), /*worker=*/0);

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->chunks_done.load() == job->num_chunks;
    });
    job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

namespace {

ThreadPool** GlobalPoolSlot() {
  static ThreadPool* pool = new ThreadPool(ThreadsFromEnv());
  return &pool;
}

}  // namespace

ThreadPool& GlobalPool() { return **GlobalPoolSlot(); }

void ResetGlobalPool(size_t num_threads) {
  ThreadPool** slot = GlobalPoolSlot();
  delete *slot;
  *slot = new ThreadPool(num_threads);
}

}  // namespace apots
