#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "util/string_util.h"

namespace apots {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(Row{false, std::move(row)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    line += "\n";
    return line;
  };
  auto render_separator = [&]() {
    std::string line = "+";
    for (size_t width : widths) line += std::string(width + 2, '-') + "+";
    line += "\n";
    return line;
  };

  std::string out = render_separator();
  out += render_line(header_);
  out += render_separator();
  for (const Row& row : rows_) {
    out += row.separator ? render_separator() : render_line(row.cells);
  }
  out += render_separator();
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatMetric(double value) { return StrFormat("%.2f", value); }

std::string FormatGain(double percent) {
  return StrFormat("%.2f%%", percent);
}

}  // namespace apots
