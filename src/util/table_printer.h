#ifndef APOTS_UTIL_TABLE_PRINTER_H_
#define APOTS_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace apots {

/// Renders fixed-width ASCII tables for the bench binaries, matching the
/// row/column layout of the paper's tables so results can be compared by
/// eye.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a data row (padded/truncated to the header width).
  void AddRow(std::vector<std::string> row);

  /// Adds a horizontal separator between row groups.
  void AddSeparator();

  /// Renders the whole table with aligned columns.
  std::string ToString() const;

  /// Renders and writes to stdout.
  void Print() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

/// Formats a double as the paper prints metrics (two decimals).
std::string FormatMetric(double value);

/// Formats a gain percentage like the paper ("12.06%"; "-" when absent).
std::string FormatGain(double percent);

}  // namespace apots

#endif  // APOTS_UTIL_TABLE_PRINTER_H_
