#ifndef APOTS_UTIL_STATUS_H_
#define APOTS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace apots {

/// Error codes used across the public API. The library does not throw
/// exceptions across API boundaries; fallible operations return `Status`
/// or `Result<T>` (mirroring the Arrow/RocksDB idiom).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kInternal,
  kUnimplemented,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy on the success path (no
/// allocation); failures carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or a failure `Status`. Accessing the value of
/// a failed result aborts the process (programmer error).
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status so `return value;` and
  /// `return Status::...;` both work in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfNotOk();
    return *value_;
  }
  T& value() & {
    AbortIfNotOk();
    return *value_;
  }
  T&& value() && {
    AbortIfNotOk();
    return std::move(*value_);
  }

  /// Moves the value out, or returns `fallback` when this is an error.
  T value_or(T fallback) && {
    if (ok()) return std::move(*value_);
    return fallback;
  }

 private:
  void AbortIfNotOk() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
/// Aborts with `status` printed to stderr. Out-of-line to keep Result small.
[[noreturn]] void AbortOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfNotOk() const {
  if (!ok()) internal::AbortOnBadResultAccess(status_);
}

/// Propagates an error Status from an expression returning Status.
#define APOTS_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::apots::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace apots

#endif  // APOTS_UTIL_STATUS_H_
