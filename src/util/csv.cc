#include "util/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace apots {

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<CsvTable> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open CSV file: " + path);
  CsvTable table;
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("CSV file has no header row: " + path);
  }
  table.header = Split(Trim(line), ',');
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != table.header.size()) {
      return Status::InvalidArgument(
          StrFormat("CSV %s line %zu has %zu fields, expected %zu",
                    path.c_str(), line_no, fields.size(),
                    table.header.size()));
    }
    table.rows.push_back(std::move(fields));
  }
  return table;
}

Result<CsvWriter> CsvWriter::Open(const std::string& path,
                                  const std::vector<std::string>& header) {
  if (header.empty()) {
    return Status::InvalidArgument("CSV header must not be empty");
  }
  CsvWriter writer;
  writer.path_ = path;
  writer.width_ = header.size();
  writer.buffer_ = Join(header, ",") + "\n";
  // Probe writability now so the error surfaces at open time.
  std::ofstream probe(path, std::ios::trunc);
  if (!probe) return Status::IoError("cannot open CSV for writing: " + path);
  return writer;
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (closed_) return Status::FailedPrecondition("CSV writer already closed");
  if (fields.size() != width_) {
    return Status::InvalidArgument(
        StrFormat("row has %zu fields, header has %zu", fields.size(),
                  width_));
  }
  buffer_ += Join(fields, ",");
  buffer_ += "\n";
  return Status::Ok();
}

Status CsvWriter::WriteRow(const std::vector<double>& fields) {
  std::vector<std::string> text;
  text.reserve(fields.size());
  for (double value : fields) text.push_back(StrFormat("%.6g", value));
  return WriteRow(text);
}

Status CsvWriter::Close() {
  if (closed_) return Status::Ok();
  closed_ = true;
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return Status::IoError("cannot open CSV for writing: " + path_);
  out << buffer_;
  out.close();
  if (!out) return Status::IoError("failed writing CSV: " + path_);
  return Status::Ok();
}

}  // namespace apots
