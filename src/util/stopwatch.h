#ifndef APOTS_UTIL_STOPWATCH_H_
#define APOTS_UTIL_STOPWATCH_H_

#include <chrono>

namespace apots {

/// Monotonic wall-clock timer used by the training loop and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Restart.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Restart.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace apots

#endif  // APOTS_UTIL_STOPWATCH_H_
