#include "util/config.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace apots {

namespace {

// Maps "eval.profile" -> "APOTS_EVAL_PROFILE".
std::string EnvName(const std::string& key) {
  std::string out = "APOTS_";
  for (char c : key) {
    if (c == '.' || c == '-') {
      out.push_back('_');
    } else {
      out.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  return out;
}

const char* EnvLookup(const std::string& key) {
  return std::getenv(EnvName(key).c_str());
}

}  // namespace

Result<Config> Config::FromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open config file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return FromString(buffer.str());
}

Result<Config> Config::FromString(const std::string& text) {
  Config config;
  size_t line_no = 0;
  for (const std::string& raw_line : Split(text, '\n')) {
    ++line_no;
    std::string line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument(
          StrFormat("config line %zu has no '=': %s", line_no, line.c_str()));
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key.empty()) {
      return Status::InvalidArgument(
          StrFormat("config line %zu has empty key", line_no));
    }
    config.Set(key, value);
  }
  return config;
}

void Config::Set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::Has(const std::string& key) const {
  return EnvLookup(key) != nullptr || values_.count(key) > 0;
}

std::string Config::GetString(const std::string& key,
                              const std::string& fallback) const {
  if (const char* env = EnvLookup(key)) return env;
  auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

int64_t Config::GetInt(const std::string& key, int64_t fallback) const {
  int64_t out = 0;
  if (ParseInt64(GetString(key, ""), &out)) return out;
  return fallback;
}

double Config::GetDouble(const std::string& key, double fallback) const {
  double out = 0.0;
  if (ParseDouble(GetString(key, ""), &out)) return out;
  return fallback;
}

bool Config::GetBool(const std::string& key, bool fallback) const {
  const std::string value = ToLower(GetString(key, ""));
  if (value == "true" || value == "1" || value == "yes" || value == "on")
    return true;
  if (value == "false" || value == "0" || value == "no" || value == "off")
    return false;
  return fallback;
}

std::vector<std::string> Config::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(values_.size());
  for (const auto& [key, value] : values_) keys.push_back(key);
  return keys;
}

std::string Config::ToString() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    out += key;
    out += " = ";
    out += value;
    out += "\n";
  }
  return out;
}

}  // namespace apots
