#ifndef APOTS_CORE_PREDICTOR_H_
#define APOTS_CORE_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "util/rng.h"

namespace apots::core {

using apots::nn::Parameter;
using apots::tensor::Tensor;

/// The four predictor families evaluated in the paper (Section IV-B).
enum class PredictorType {
  kFc,      ///< F: fully connected
  kLstm,    ///< L: stacked LSTM
  kCnn,     ///< C: convolutional network on the speed matrix (Eq. 6)
  kHybrid,  ///< H: CNN feature extractor + LSTM head (LC-RNN style)
};

const char* PredictorTypeName(PredictorType type);   ///< "F", "L", "C", "H"
const char* PredictorTypeLabel(PredictorType type);  ///< "FC", "LSTM", ...

/// Architecture hyper-parameters (Table I). `Paper()` returns the grid the
/// paper reports; `Scaled(divisor)` shrinks every width by `divisor`
/// (minimum 4 units) for CPU-friendly runs with the same shape ratios.
struct PredictorHparams {
  PredictorType type = PredictorType::kFc;
  std::vector<size_t> fc_hidden = {512, 128, 256, 64};
  std::vector<size_t> lstm_hidden = {512, 512};
  std::vector<size_t> cnn_channels = {128, 32, 64};
  /// Kernel sizes per conv layer: Table I lists 3x3, 1x1, 3x3.
  std::vector<size_t> cnn_kernels = {3, 1, 3};
  float learning_rate = 0.001f;

  static PredictorHparams Paper(PredictorType type);
  static PredictorHparams Scaled(PredictorType type, size_t divisor);
};

/// A traffic-speed predictor P: maps a batch of canonical feature matrices
/// [batch, rows, alpha] to scaled speed predictions [batch, 1].
/// Implementations own their layers; Backward must follow a Forward with
/// `training == true`.
class Predictor {
 public:
  virtual ~Predictor() = default;

  Predictor(const Predictor&) = delete;
  Predictor& operator=(const Predictor&) = delete;

  virtual Tensor Forward(const Tensor& batch, bool training) = 0;

  /// Workspace variant (see nn::Layer::Forward): borrows all activations
  /// from `ws`, and at inference (`training == false`) mutates no
  /// predictor state, so concurrent forwards on a shared predictor are
  /// safe. Bitwise identical to the allocating Forward. The default
  /// implementation materializes the allocating Forward into the arena.
  virtual const Tensor* Forward(const Tensor& batch, bool training,
                                apots::tensor::Workspace* ws);

  /// `grad_output` is [batch, 1]; returns the gradient w.r.t. the input
  /// batch (usually discarded) and accumulates parameter gradients.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Packs the predictor's frozen weights for reduced-precision inference
  /// (see nn::Layer::PrepareQuantized): only the workspace inference
  /// Forward consults the packed copies, training always runs fp32, and
  /// the packed copies snapshot the weights at call time — call again
  /// after training steps, or with kOff to return to exact fp32. Conv
  /// layers have no quantized path and stay fp32 in every mode.
  virtual void PrepareQuantized(apots::tensor::QuantMode mode) {
    (void)mode;
  }

  virtual std::vector<Parameter*> Parameters() = 0;
  virtual PredictorType type() const = 0;
  virtual std::string Name() const = 0;

 protected:
  Predictor() = default;
};

/// Factory: builds the predictor for `hparams` over inputs with
/// `num_rows` feature rows and window length `alpha`.
std::unique_ptr<Predictor> MakePredictor(const PredictorHparams& hparams,
                                         size_t num_rows, size_t alpha,
                                         apots::Rng* rng);

}  // namespace apots::core

#endif  // APOTS_CORE_PREDICTOR_H_
