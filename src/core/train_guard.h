#ifndef APOTS_CORE_TRAIN_GUARD_H_
#define APOTS_CORE_TRAIN_GUARD_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/checkpoint.h"
#include "nn/module.h"
#include "util/status.h"

namespace apots::core {

struct EpochStats;  // adversarial_trainer.h

/// What the watchdog concluded about one epoch.
enum class GuardVerdict {
  kHealthy,
  kNonFiniteLoss,           ///< NaN/Inf in any tracked loss
  kLossExplosion,           ///< MSE far above the best epoch so far
  kDiscriminatorCollapse,   ///< d_fake_accuracy pinned at 0 or 1
};

const char* GuardVerdictName(GuardVerdict verdict);

/// Watchdog thresholds. GAN-style training of the APOTS kind (Eq. 1/2)
/// diverges silently; the guard's job is to detect it the epoch it happens
/// and roll the run back instead of poisoning every downstream metric.
struct GuardConfig {
  bool enabled = false;
  /// Epoch MSE above `explosion_factor` x the best epoch so far counts as
  /// an explosion.
  double explosion_factor = 25.0;
  /// Scale floor for the explosion reference, so one near-zero early
  /// epoch does not make every later epoch look explosive.
  double min_reference_loss = 1e-4;
  /// First-epoch ceiling: scaled speeds live in [0, 1], so an honest MSE
  /// cannot legitimately reach this.
  double absolute_loss_ceiling = 100.0;
  /// d_fake_accuracy within `collapse_margin` of 0 or 1 for
  /// `collapse_patience` consecutive epochs counts as collapse.
  double collapse_margin = 0.01;
  int collapse_patience = 3;
  /// Rollbacks allowed before the guard gives up and restores the last
  /// good checkpoint for the final time.
  int max_rollbacks = 3;
  /// Multiplier applied to both learning rates on every rollback.
  float lr_backoff = 0.1f;
  /// When non-empty, every Snapshot also spills an atomic, checksummed
  /// checkpoint to this directory (generation-retained; see
  /// nn::CheckpointStore) so a process kill mid-training loses at most one
  /// epoch instead of the whole run. A spill failure degrades to the
  /// in-memory checkpoint with a warning — it never aborts training.
  std::string spill_dir;
  /// On-disk generations retained when spilling.
  int spill_generations = 2;
};

/// Epoch-granular checkpoint + divergence detector for AdversarialTrainer.
/// Usage: Snapshot() after every healthy epoch, Inspect() each epoch's
/// stats, Rollback() into the live parameters when Inspect reports a
/// divergence. All fallible paths report Status instead of aborting.
class TrainGuard {
 public:
  explicit TrainGuard(GuardConfig config);

  const GuardConfig& config() const { return config_; }

  /// Deep-copies the current parameter values as the last good checkpoint.
  void Snapshot(const std::vector<apots::nn::Parameter*>& params);

  bool has_snapshot() const { return !checkpoint_.empty(); }

  /// Classifies one epoch. `adversarial` gates the collapse check (plain
  /// MSE runs have no discriminator). Healthy epochs advance the
  /// explosion reference.
  GuardVerdict Inspect(const EpochStats& stats, bool adversarial);

  /// Restores the checkpoint into `params` and consumes one retry.
  /// Fails with FailedPrecondition when no snapshot exists or the retry
  /// budget is already exhausted, and with InvalidArgument when `params`
  /// does not match the checkpointed names/shapes.
  Status Rollback(const std::vector<apots::nn::Parameter*>& params);

  /// Restores the checkpoint without consuming a retry — the "give up but
  /// leave the model in its last good state" path.
  Status RestoreCheckpoint(
      const std::vector<apots::nn::Parameter*>& params) const;

  int rollbacks() const { return rollbacks_; }
  bool RetryBudgetLeft() const { return rollbacks_ < config_.max_rollbacks; }

  /// Outcome of the last disk spill (Ok when spilling is disabled).
  const Status& last_spill_status() const { return last_spill_status_; }
  /// Null unless `config.spill_dir` is set.
  const apots::nn::CheckpointStore* spill_store() const {
    return spill_.get();
  }

 private:
  struct Entry {
    std::string name;
    apots::tensor::Tensor value;
  };

  GuardConfig config_;
  std::vector<Entry> checkpoint_;
  std::unique_ptr<apots::nn::CheckpointStore> spill_;
  Status last_spill_status_;
  double best_mse_ = -1.0;  ///< best healthy epoch MSE; < 0 = none yet
  int collapse_streak_ = 0;
  int rollbacks_ = 0;
};

}  // namespace apots::core

#endif  // APOTS_CORE_TRAIN_GUARD_H_
