#ifndef APOTS_CORE_INFERENCE_RUNTIME_H_
#define APOTS_CORE_INFERENCE_RUNTIME_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/predictor.h"
#include "data/context.h"
#include "data/feature_cache.h"
#include "data/features.h"
#include "tensor/workspace.h"
#include "util/status.h"

namespace apots::core {

/// Knobs of the batched inference path. The defaults are the fast
/// configuration; the bench arms toggle them off to reproduce the
/// per-anchor baseline. Every combination with `quantize == kOff`
/// produces bitwise identical predictions — those switches trade only
/// speed and memory. Reduced-precision modes trade bitwise equality for
/// a benched accuracy band (MAE delta vs fp32 gated in CI).
struct InferenceConfig {
  /// Anchors packed into one predictor forward. 1 reproduces the
  /// per-anchor baseline shape.
  size_t batch_size = 64;
  /// Shard anchor batches across the global ThreadPool. Only effective
  /// together with `use_workspace` (the allocating forward mutates layer
  /// caches and is not reentrant); output ordering is deterministic
  /// because every batch writes a disjoint, position-fixed output range.
  bool parallel = true;
  /// Borrow activations from per-worker Workspace arenas instead of
  /// allocating per forward (zero heap traffic in steady state).
  bool use_workspace = true;
  /// Serve per-interval feature columns from an LRU cache, exploiting the
  /// alpha-1 window overlap between adjacent anchors.
  bool use_feature_cache = true;
  /// Cache entries (per-interval columns) kept before LRU eviction.
  size_t cache_capacity = 8192;
  /// Inference weight precision (tensor::QuantMode). Non-kOff modes pack
  /// the predictor's matmul weights at runtime construction and require
  /// `use_workspace` (only the workspace forward consults packed
  /// weights; silently serving fp32 under a quantized label would be
  /// worse than rejecting).
  apots::tensor::QuantMode quantize = apots::tensor::QuantMode::kOff;
};

/// Rejects configurations the runtime cannot honor as written:
/// `batch_size == 0` (the batch grid divides by it), `cache_capacity == 0`
/// with the cache enabled (an LRU that can hold nothing), and a non-kOff
/// `quantize` with `use_workspace` off (the allocating forward has no
/// quantized path). Returns InvalidArgument naming the offending field.
Status ValidateInferenceConfig(const InferenceConfig& config);

/// Clamps edge values to the nearest working configuration instead of
/// rejecting: `batch_size` 0 → 1, `cache_capacity` 0 disables the
/// feature cache, and a non-kOff `quantize` without `use_workspace`
/// falls back to kOff. The result always passes ValidateInferenceConfig.
InferenceConfig SanitizeInferenceConfig(InferenceConfig config);

/// One inference work item: an anchor plus the counterfactual context it
/// should be evaluated under. Context 0 (the default) is the live/base
/// stream; nonzero ids resolve through the attached data::ContextTable
/// (unknown ids fall back to base and are counted, never rejected — the
/// serving plane must degrade, not fail, on a stale registration).
struct WorkItem {
  long anchor = 0;
  uint64_t context = 0;
};

/// Batched multi-anchor inference engine: packs anchor windows into
/// [batch_size, rows, alpha] tensors, forwards whole batches through the
/// tiled kernels on workspace arenas, and shards batches across the
/// ThreadPool. Deterministic contract (see DESIGN.md §10): the batch grid
/// depends only on (N, batch_size), every batch owns a disjoint output
/// range, and the workspace forward is bitwise identical to the allocating
/// forward — so predictions match the per-anchor path bit for bit at any
/// batch size, thread count, and cache temperature.
///
/// The predictor and assembler are borrowed and must outlive the runtime.
/// Predict must not run concurrently with training steps on the same
/// predictor (training mutates weights); concurrent Predict calls are safe.
class InferenceRuntime {
 public:
  InferenceRuntime(Predictor* predictor,
                   const apots::data::FeatureAssembler* assembler,
                   InferenceConfig config);

  /// Scaled predictions for `anchors` as an [N, 1] tensor.
  Tensor Predict(const std::vector<long>& anchors);

  /// Heterogeneous (anchor, context) batch — the counterfactual what-if
  /// fan-out path. Items ride the identical deterministic batch grid and
  /// per-worker arenas as Predict (disjoint output rows, zero-alloc in
  /// steady state); a batch simply mixes contexts at assembly time. A
  /// batch whose items are all context 0 takes the exact Predict code
  /// path, so enabling what-if wiring leaves live serving bitwise
  /// unchanged.
  Tensor PredictItems(const std::vector<WorkItem>& items);

  /// Attaches the counterfactual context registry (borrowed, may be null
  /// to detach). Without a table every nonzero context resolves to base.
  void SetContextTable(const apots::data::ContextTable* table) {
    context_table_ = table;
  }
  const apots::data::ContextTable* context_table() const {
    return context_table_;
  }
  /// Items whose nonzero context id found no registration and fell back
  /// to base (cumulative).
  uint64_t unknown_context_items() const { return unknown_context_items_; }

  /// Number of batches the deterministic grid carves `count` anchors into.
  size_t NumBatches(size_t count) const;

  /// Walks the batch grid serially in ascending batch order, calling
  /// `fn(batch_index, lo, hi)` for each half-open anchor range [lo, hi).
  /// Exposed so callers that aggregate per-anchor results (e.g. fallback
  /// accounting) can mirror the grid independent of worker scheduling.
  void ForEachBatch(size_t count,
                    const std::function<void(size_t, size_t, size_t)>& fn)
      const;

  /// Drops cached feature columns (call after the dataset is mutated,
  /// e.g. by fault injection). No-op without a cache.
  void InvalidateCache();

  const InferenceConfig& config() const { return config_; }
  /// Null when `use_feature_cache` is false.
  apots::data::FeatureCache* feature_cache() { return cache_.get(); }
  /// Arena high-water mark of worker 0 (diagnostics; 0 before first use).
  size_t workspace_high_water_floats() const;

 private:
  /// Shared batched-inference core: `contexts` is either null (pure base
  /// batch) or one ResolvedContext per anchor.
  Tensor PredictImpl(const long* anchors,
                     const apots::data::ResolvedContext* contexts,
                     size_t count);

  Predictor* predictor_;                            // not owned
  const apots::data::FeatureAssembler* assembler_;  // not owned
  const apots::data::ContextTable* context_table_ = nullptr;  // not owned
  uint64_t unknown_context_items_ = 0;
  InferenceConfig config_;
  std::unique_ptr<apots::data::FeatureCache> cache_;
  /// Per-ThreadPool-worker arenas, grown on the main thread before any
  /// parallel region so workers never mutate the vector concurrently.
  std::vector<std::unique_ptr<apots::tensor::Workspace>> workspaces_;
};

}  // namespace apots::core

#endif  // APOTS_CORE_INFERENCE_RUNTIME_H_
