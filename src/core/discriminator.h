#ifndef APOTS_CORE_DISCRIMINATOR_H_
#define APOTS_CORE_DISCRIMINATOR_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "nn/sequential.h"
#include "util/rng.h"

namespace apots::core {

using apots::nn::Parameter;
using apots::tensor::Tensor;

/// Discriminator hyper-parameters. The paper specifies "five fully
/// connected layers"; widths default to a tapering 256..16 stack ending in
/// one logit, with LeakyReLU activations (the customary GAN choice).
struct DiscriminatorHparams {
  std::vector<size_t> hidden = {256, 128, 64, 32};  ///< + final logit layer
  float leaky_slope = 0.2f;
  float learning_rate = 0.001f;

  /// Shrinks widths by `divisor` (minimum 4), mirroring
  /// PredictorHparams::Scaled.
  static DiscriminatorHparams Scaled(size_t divisor);
};

/// D from Eq. 2/4: takes a length-alpha speed sequence (real
/// S_{t-a+b+1:t+b} or predicted S-hat) optionally concatenated with the
/// conditioning context E_{t-alpha:t-1} (adjacent-speed + non-speed data,
/// flattened), and emits one raw logit per sequence; sigmoid(logit) is the
/// probability the sequence is real.
class Discriminator {
 public:
  /// `context_width` may be 0 (unconditioned, Eq. 2) or the flat width of
  /// the conditioning block (Eq. 4).
  Discriminator(const DiscriminatorHparams& hparams, size_t alpha,
                size_t context_width, apots::Rng* rng);

  /// `sequences` is [batch, alpha]; `context` is [batch, context_width]
  /// (ignored when context_width == 0). Returns logits [batch, 1].
  Tensor Forward(const Tensor& sequences, const Tensor& context,
                 bool training);

  /// Backpropagates logits-gradient [batch, 1]; returns the gradient with
  /// respect to the *sequence* part of the input (context gradient is
  /// dropped — the context is data, not a trainable path).
  Tensor Backward(const Tensor& grad_logits);

  std::vector<Parameter*> Parameters();

  size_t alpha() const { return alpha_; }
  size_t context_width() const { return context_width_; }
  std::string Name() const;

 private:
  size_t alpha_;
  size_t context_width_;
  apots::nn::Sequential net_;
};

}  // namespace apots::core

#endif  // APOTS_CORE_DISCRIMINATOR_H_
