#ifndef APOTS_CORE_CNN_PREDICTOR_H_
#define APOTS_CORE_CNN_PREDICTOR_H_

#include <string>
#include <vector>

#include "core/predictor.h"
#include "nn/sequential.h"

namespace apots::core {

/// The C predictor: reads the feature matrix as a 1-channel image (the
/// speed-matrix view of Eq. 6) through the Table-I conv stack (3x3 / 1x1 /
/// 3x3, "same" padding for the 3x3s), then a dense head to one output.
class CnnPredictor : public Predictor {
 public:
  CnnPredictor(const PredictorHparams& hparams, size_t num_rows, size_t alpha,
               apots::Rng* rng);

  Tensor Forward(const Tensor& batch, bool training) override;
  const Tensor* Forward(const Tensor& batch, bool training,
                        apots::tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  void PrepareQuantized(apots::tensor::QuantMode mode) override {
    net_.PrepareQuantized(mode);  // conv layers no-op; the Dense head packs
  }
  std::vector<Parameter*> Parameters() override;
  PredictorType type() const override { return PredictorType::kCnn; }
  std::string Name() const override;

 private:
  size_t num_rows_;
  size_t alpha_;
  apots::nn::Sequential net_;
};

/// Appends the shared conv trunk (used by both CnnPredictor and
/// HybridPredictor) to `net`; returns the resulting channel count.
size_t BuildConvTrunk(const PredictorHparams& hparams,
                      apots::nn::Sequential* net, apots::Rng* rng);

}  // namespace apots::core

#endif  // APOTS_CORE_CNN_PREDICTOR_H_
