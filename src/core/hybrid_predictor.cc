#include "core/hybrid_predictor.h"

#include <algorithm>

#include "core/cnn_predictor.h"
#include "core/lstm_predictor.h"
#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace apots::core {

HybridPredictor::HybridPredictor(const PredictorHparams& hparams,
                                 size_t num_rows, size_t alpha,
                                 apots::Rng* rng)
    : num_rows_(num_rows), alpha_(alpha) {
  conv_channels_ = BuildConvTrunk(hparams, &conv_, rng);
  BuildLstmHead(hparams, conv_channels_ * num_rows, &lstm_head_, rng);
}

Tensor HybridPredictor::Forward(const Tensor& batch, bool training) {
  APOTS_CHECK_EQ(batch.rank(), 3u);
  APOTS_CHECK_EQ(batch.dim(1), num_rows_);
  APOTS_CHECK_EQ(batch.dim(2), alpha_);
  const size_t n = batch.dim(0);
  const Tensor image = batch.Reshape({n, 1, num_rows_, alpha_});
  Tensor features = conv_.Forward(image, training);
  // [N, C, rows, alpha] -> [N, C*rows, alpha] -> [N, alpha, C*rows].
  features = features.Reshape({n, conv_channels_ * num_rows_, alpha_});
  const Tensor sequence = apots::tensor::Transpose12(features);
  return lstm_head_.Forward(sequence, training);
}

const Tensor* HybridPredictor::Forward(const Tensor& batch, bool training,
                                       apots::tensor::Workspace* ws) {
  if (training) return Predictor::Forward(batch, training, ws);
  APOTS_CHECK_EQ(batch.rank(), 3u);
  APOTS_CHECK_EQ(batch.dim(1), num_rows_);
  APOTS_CHECK_EQ(batch.dim(2), alpha_);
  const size_t n = batch.dim(0);
  Tensor* image = ws->Acquire({n, 1, num_rows_, alpha_});
  std::copy(batch.data(), batch.data() + batch.size(), image->data());
  const Tensor* features = conv_.Forward(*image, training, ws);
  // [N, C, rows, alpha] -> [N, C*rows, alpha] -> [N, alpha, C*rows].
  Tensor* folded = ws->Acquire({n, conv_channels_ * num_rows_, alpha_});
  std::copy(features->data(), features->data() + features->size(),
            folded->data());
  Tensor* sequence = ws->Acquire({n, alpha_, conv_channels_ * num_rows_});
  apots::tensor::Transpose12Into(*folded, sequence);
  return lstm_head_.Forward(*sequence, training, ws);
}

Tensor HybridPredictor::Backward(const Tensor& grad_output) {
  Tensor grad_sequence = lstm_head_.Backward(grad_output);
  Tensor grad_features = apots::tensor::Transpose12(grad_sequence);
  const size_t n = grad_features.dim(0);
  grad_features = grad_features.Reshape(
      {n, conv_channels_, num_rows_, alpha_});
  Tensor grad_image = conv_.Backward(grad_features);
  return grad_image.Reshape({n, num_rows_, alpha_});
}

std::vector<Parameter*> HybridPredictor::Parameters() {
  std::vector<Parameter*> params = conv_.Parameters();
  for (Parameter* p : lstm_head_.Parameters()) params.push_back(p);
  return params;
}

std::string HybridPredictor::Name() const {
  return apots::StrFormat("HybridPredictor(%zux%zu)", num_rows_, alpha_);
}

}  // namespace apots::core
