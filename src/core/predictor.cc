#include "core/predictor.h"

#include <algorithm>

#include "core/cnn_predictor.h"
#include "core/fc_predictor.h"
#include "core/hybrid_predictor.h"
#include "core/lstm_predictor.h"
#include "util/logging.h"

namespace apots::core {

const Tensor* Predictor::Forward(const Tensor& batch, bool training,
                                 apots::tensor::Workspace* ws) {
  return ws->Materialize(Forward(batch, training));
}

const char* PredictorTypeName(PredictorType type) {
  switch (type) {
    case PredictorType::kFc:
      return "F";
    case PredictorType::kLstm:
      return "L";
    case PredictorType::kCnn:
      return "C";
    case PredictorType::kHybrid:
      return "H";
  }
  return "?";
}

const char* PredictorTypeLabel(PredictorType type) {
  switch (type) {
    case PredictorType::kFc:
      return "FC";
    case PredictorType::kLstm:
      return "LSTM";
    case PredictorType::kCnn:
      return "CNN";
    case PredictorType::kHybrid:
      return "Hybrid";
  }
  return "?";
}

PredictorHparams PredictorHparams::Paper(PredictorType type) {
  PredictorHparams hparams;
  hparams.type = type;
  // Table I: F has 4 hidden layers (512, 128, 256, 64); L has 2 (512,
  // 512); C has 3 conv layers (128, 32, 64) with 3x3 / 1x1 / 3x3 filters;
  // H combines C's conv stack with L-sized LSTMs. Learning rate 0.001
  // across the board.
  return hparams;
}

PredictorHparams PredictorHparams::Scaled(PredictorType type,
                                          size_t divisor) {
  APOTS_CHECK_GT(divisor, 0u);
  PredictorHparams hparams = Paper(type);
  auto shrink = [divisor](std::vector<size_t>* widths) {
    for (size_t& w : *widths) w = std::max<size_t>(4, w / divisor);
  };
  shrink(&hparams.fc_hidden);
  shrink(&hparams.lstm_hidden);
  shrink(&hparams.cnn_channels);
  return hparams;
}

std::unique_ptr<Predictor> MakePredictor(const PredictorHparams& hparams,
                                         size_t num_rows, size_t alpha,
                                         apots::Rng* rng) {
  switch (hparams.type) {
    case PredictorType::kFc:
      return std::make_unique<FcPredictor>(hparams, num_rows, alpha, rng);
    case PredictorType::kLstm:
      return std::make_unique<LstmPredictor>(hparams, num_rows, alpha, rng);
    case PredictorType::kCnn:
      return std::make_unique<CnnPredictor>(hparams, num_rows, alpha, rng);
    case PredictorType::kHybrid:
      return std::make_unique<HybridPredictor>(hparams, num_rows, alpha,
                                               rng);
  }
  APOTS_CHECK(false) << "unknown predictor type";
  return nullptr;
}

}  // namespace apots::core
