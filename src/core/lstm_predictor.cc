#include "core/lstm_predictor.h"

#include "nn/dense.h"
#include "nn/lstm.h"
#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace apots::core {

void BuildLstmHead(const PredictorHparams& hparams, size_t input_features,
                   apots::nn::Sequential* net, apots::Rng* rng) {
  APOTS_CHECK(!hparams.lstm_hidden.empty());
  size_t features = input_features;
  for (size_t i = 0; i < hparams.lstm_hidden.size(); ++i) {
    const bool last = i + 1 == hparams.lstm_hidden.size();
    net->Emplace<apots::nn::Lstm>(features, hparams.lstm_hidden[i],
                                  /*return_sequences=*/!last, rng);
    features = hparams.lstm_hidden[i];
  }
  net->Emplace<apots::nn::Dense>(features, 1, rng,
                                 apots::nn::Init::kXavierUniform);
}

LstmPredictor::LstmPredictor(const PredictorHparams& hparams,
                             size_t num_rows, size_t alpha, apots::Rng* rng)
    : num_rows_(num_rows), alpha_(alpha) {
  BuildLstmHead(hparams, num_rows, &net_, rng);
}

Tensor LstmPredictor::Forward(const Tensor& batch, bool training) {
  APOTS_CHECK_EQ(batch.rank(), 3u);
  APOTS_CHECK_EQ(batch.dim(1), num_rows_);
  APOTS_CHECK_EQ(batch.dim(2), alpha_);
  // [N, rows, alpha] -> [N, alpha, rows]: one feature vector per step.
  const Tensor sequence = apots::tensor::Transpose12(batch);
  return net_.Forward(sequence, training);
}

const Tensor* LstmPredictor::Forward(const Tensor& batch, bool training,
                                     apots::tensor::Workspace* ws) {
  if (training) return Predictor::Forward(batch, training, ws);
  APOTS_CHECK_EQ(batch.rank(), 3u);
  APOTS_CHECK_EQ(batch.dim(1), num_rows_);
  APOTS_CHECK_EQ(batch.dim(2), alpha_);
  Tensor* sequence = ws->Acquire({batch.dim(0), alpha_, num_rows_});
  apots::tensor::Transpose12Into(batch, sequence);
  return net_.Forward(*sequence, training, ws);
}

Tensor LstmPredictor::Backward(const Tensor& grad_output) {
  Tensor grad_sequence = net_.Backward(grad_output);
  return apots::tensor::Transpose12(grad_sequence);
}

std::vector<Parameter*> LstmPredictor::Parameters() {
  return net_.Parameters();
}

std::string LstmPredictor::Name() const {
  return apots::StrFormat("LstmPredictor(%zux%zu)", num_rows_, alpha_);
}

}  // namespace apots::core
