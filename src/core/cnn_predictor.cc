#include "core/cnn_predictor.h"

#include <algorithm>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "util/string_util.h"

namespace apots::core {

size_t BuildConvTrunk(const PredictorHparams& hparams,
                      apots::nn::Sequential* net, apots::Rng* rng) {
  APOTS_CHECK_EQ(hparams.cnn_channels.size(), hparams.cnn_kernels.size());
  size_t channels = 1;
  for (size_t i = 0; i < hparams.cnn_channels.size(); ++i) {
    const size_t k = hparams.cnn_kernels[i];
    const size_t pad = k / 2;  // "same" for odd kernels
    net->Emplace<apots::nn::Conv2d>(channels, hparams.cnn_channels[i], k, k,
                                    pad, rng);
    net->Emplace<apots::nn::Relu>();
    channels = hparams.cnn_channels[i];
  }
  return channels;
}

CnnPredictor::CnnPredictor(const PredictorHparams& hparams, size_t num_rows,
                           size_t alpha, apots::Rng* rng)
    : num_rows_(num_rows), alpha_(alpha) {
  const size_t channels = BuildConvTrunk(hparams, &net_, rng);
  net_.Emplace<apots::nn::Flatten>();
  net_.Emplace<apots::nn::Dense>(channels * num_rows * alpha, 1, rng,
                                 apots::nn::Init::kXavierUniform);
}

Tensor CnnPredictor::Forward(const Tensor& batch, bool training) {
  APOTS_CHECK_EQ(batch.rank(), 3u);
  APOTS_CHECK_EQ(batch.dim(1), num_rows_);
  APOTS_CHECK_EQ(batch.dim(2), alpha_);
  const Tensor image =
      batch.Reshape({batch.dim(0), 1, num_rows_, alpha_});
  return net_.Forward(image, training);
}

const Tensor* CnnPredictor::Forward(const Tensor& batch, bool training,
                                    apots::tensor::Workspace* ws) {
  if (training) return Predictor::Forward(batch, training, ws);
  APOTS_CHECK_EQ(batch.rank(), 3u);
  APOTS_CHECK_EQ(batch.dim(1), num_rows_);
  APOTS_CHECK_EQ(batch.dim(2), alpha_);
  Tensor* image = ws->Acquire({batch.dim(0), 1, num_rows_, alpha_});
  std::copy(batch.data(), batch.data() + batch.size(), image->data());
  return net_.Forward(*image, training, ws);
}

Tensor CnnPredictor::Backward(const Tensor& grad_output) {
  Tensor grad_image = net_.Backward(grad_output);
  return grad_image.Reshape({grad_image.dim(0), num_rows_, alpha_});
}

std::vector<Parameter*> CnnPredictor::Parameters() {
  return net_.Parameters();
}

std::string CnnPredictor::Name() const {
  return apots::StrFormat("CnnPredictor(%zux%zu)", num_rows_, alpha_);
}

}  // namespace apots::core
