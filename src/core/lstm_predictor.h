#ifndef APOTS_CORE_LSTM_PREDICTOR_H_
#define APOTS_CORE_LSTM_PREDICTOR_H_

#include <string>
#include <vector>

#include "core/predictor.h"
#include "nn/sequential.h"

namespace apots::core {

/// The L predictor: the [rows, alpha] feature matrix is read as an
/// alpha-step sequence of per-interval feature vectors (one column per
/// step), run through the Table-I stacked LSTMs, and the final hidden
/// state is projected to a single output.
class LstmPredictor : public Predictor {
 public:
  LstmPredictor(const PredictorHparams& hparams, size_t num_rows,
                size_t alpha, apots::Rng* rng);

  Tensor Forward(const Tensor& batch, bool training) override;
  const Tensor* Forward(const Tensor& batch, bool training,
                        apots::tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  void PrepareQuantized(apots::tensor::QuantMode mode) override {
    net_.PrepareQuantized(mode);
  }
  std::vector<Parameter*> Parameters() override;
  PredictorType type() const override { return PredictorType::kLstm; }
  std::string Name() const override;

 private:
  size_t num_rows_;
  size_t alpha_;
  apots::nn::Sequential net_;
};

/// Appends the stacked-LSTM head (used by LstmPredictor and
/// HybridPredictor): LSTM layers per `hparams.lstm_hidden` (all but the
/// last return sequences) followed by a Dense to one output.
void BuildLstmHead(const PredictorHparams& hparams, size_t input_features,
                   apots::nn::Sequential* net, apots::Rng* rng);

}  // namespace apots::core

#endif  // APOTS_CORE_LSTM_PREDICTOR_H_
