#ifndef APOTS_CORE_HYBRID_PREDICTOR_H_
#define APOTS_CORE_HYBRID_PREDICTOR_H_

#include <string>
#include <vector>

#include "core/predictor.h"
#include "nn/sequential.h"

namespace apots::core {

/// The H predictor (CNN + LSTM, LC-RNN style): the conv trunk extracts
/// spatio-temporal features from the speed-matrix image while preserving
/// the time axis ("same" padding), the channel/row dimensions are folded
/// into per-timestep features, and the stacked LSTM consumes the result as
/// an alpha-step sequence.
class HybridPredictor : public Predictor {
 public:
  HybridPredictor(const PredictorHparams& hparams, size_t num_rows,
                  size_t alpha, apots::Rng* rng);

  Tensor Forward(const Tensor& batch, bool training) override;
  const Tensor* Forward(const Tensor& batch, bool training,
                        apots::tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  void PrepareQuantized(apots::tensor::QuantMode mode) override {
    conv_.PrepareQuantized(mode);  // conv layers no-op; Dense head packs
    lstm_head_.PrepareQuantized(mode);
  }
  std::vector<Parameter*> Parameters() override;
  PredictorType type() const override { return PredictorType::kHybrid; }
  std::string Name() const override;

 private:
  size_t num_rows_;
  size_t alpha_;
  size_t conv_channels_;
  apots::nn::Sequential conv_;
  apots::nn::Sequential lstm_head_;
};

}  // namespace apots::core

#endif  // APOTS_CORE_HYBRID_PREDICTOR_H_
