#include "core/adversarial_trainer.h"

#include <algorithm>
#include <cmath>

#include "nn/activations.h"
#include "nn/loss.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/tensor_ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace apots::core {

using apots::data::FeatureAssembler;
using apots::nn::LossResult;
using apots::tensor::Tensor;

namespace {

/// Training-loop instruments (DESIGN.md §12): per-step latency
/// histograms, per-epoch loss gauges, and guard counters.
struct TrainMetrics {
  obs::Histogram& mse_step_ms;
  obs::Histogram& adv_round_ms;
  obs::Histogram& epoch_seconds;
  obs::Gauge& loss_mse;
  obs::Gauge& loss_adv_p;
  obs::Gauge& loss_d;
  obs::Counter& epochs;
  obs::Counter& rollbacks;
  obs::Counter& incidents;
  static TrainMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Default();
    // Epochs run minutes, not milliseconds: widen that histogram's range
    // so long epochs do not pile into the overflow bucket.
    obs::HistogramOptions epoch_opts;
    epoch_opts.min = 1e-3;
    epoch_opts.max = 36e3;  // seconds scale: 1ms .. 10h
    static TrainMetrics* metrics = new TrainMetrics{
        registry.GetHistogram("train.mse_step_ms"),
        registry.GetHistogram("train.adv_round_ms"),
        registry.GetHistogram("train.epoch_seconds", epoch_opts),
        registry.GetGauge("train.loss_mse"),
        registry.GetGauge("train.loss_adv_p"),
        registry.GetGauge("train.loss_d"),
        registry.GetCounter("train.epochs"),
        registry.GetCounter("train.rollbacks"),
        registry.GetCounter("train.incidents"),
    };
    return *metrics;
  }
};

}  // namespace

AdversarialTrainer::AdversarialTrainer(Predictor* predictor,
                                       Discriminator* discriminator,
                                       const FeatureAssembler* assembler,
                                       TrainConfig config,
                                       PredictorFactory predictor_factory)
    : predictor_(predictor),
      predictor_factory_(std::move(predictor_factory)),
      discriminator_(discriminator),
      assembler_(assembler),
      config_(config),
      predictor_opt_(config.learning_rate),
      discriminator_opt_(config.d_learning_rate),
      rng_(config.seed) {
  APOTS_CHECK(predictor != nullptr);
  APOTS_CHECK(assembler != nullptr);
  if (config_.adversarial) {
    APOTS_CHECK(discriminator != nullptr)
        << "adversarial training requires a discriminator";
  }
  if (config_.adv_period <= 0) config_.adv_period = 1;
  if (config_.micro_batch > 0) {
    APOTS_CHECK(predictor_factory_ != nullptr)
        << "micro_batch > 0 needs a predictor factory for worker replicas";
  }
}

void AdversarialTrainer::SyncReplica(
    size_t worker, const std::vector<apots::nn::Parameter*>& primary) {
  if (replicas_[worker] == nullptr) {
    replicas_[worker] = predictor_factory_();
    APOTS_CHECK(replicas_[worker] != nullptr);
  }
  const auto params = replicas_[worker]->Parameters();
  APOTS_CHECK_EQ(params.size(), primary.size())
      << "replica architecture differs from the primary predictor";
  for (size_t p = 0; p < params.size(); ++p) {
    APOTS_CHECK(params[p]->value.SameShape(primary[p]->value));
    params[p]->value = primary[p]->value;
  }
}

double AdversarialTrainer::ShardedMseStep(const std::vector<long>& batch) {
  const size_t total = batch.size();
  const size_t micro = config_.micro_batch;
  const size_t num_shards = (total + micro - 1) / micro;
  ThreadPool& pool = GlobalPool();
  // Every shard runs on a replica — never on the primary — because the
  // primary's grads may already hold the accumulated adversarial term,
  // which the per-shard ZeroAllGrads below would wipe out.
  //
  // Replica slots are grown here on the calling thread; each worker then
  // creates/syncs only its own slot on its first claimed shard. Syncing
  // lazily matters: a batch of 64 at micro_batch 32 yields 2 shards, and
  // eagerly copying the full weight set into every pool replica each step
  // was the dominant cost of the parallel arm on small machines.
  if (replicas_.size() < pool.num_threads()) {
    replicas_.resize(pool.num_threads());
  }
  const auto primary_values = predictor_->Parameters();
  std::vector<char> synced(pool.num_threads(), 0);

  std::vector<double> shard_sq_error(num_shards, 0.0);
  std::vector<std::vector<Tensor>> shard_grads(num_shards);
  pool.ParallelFor(
      0, num_shards, 1, [&](size_t s0, size_t s1, size_t worker) {
        if (!synced[worker]) {
          // Distinct slot per worker; primary weights are read-only during
          // the region, so concurrent syncs never race.
          SyncReplica(worker, primary_values);
          synced[worker] = 1;
        }
        Predictor* replica = replicas_[worker].get();
        const auto params = replica->Parameters();
        for (size_t s = s0; s < s1; ++s) {
          const size_t lo = s * micro;
          const size_t hi = std::min(total, lo + micro);
          const std::vector<long> shard(batch.begin() + lo,
                                        batch.begin() + hi);
          apots::nn::ZeroAllGrads(params);
          const Tensor inputs = assembler_->BatchMatrix(shard);
          const Tensor targets = assembler_->BatchTargets(shard);
          const Tensor outputs = replica->Forward(inputs, /*training=*/true);
          const LossResult loss = apots::nn::MseLoss(outputs, targets);
          replica->Backward(loss.grad);
          shard_sq_error[s] = loss.value * static_cast<double>(hi - lo);
          shard_grads[s].reserve(params.size());
          for (const auto* p : params) shard_grads[s].push_back(p->grad);
        }
      });

  // Reduce in ascending shard order — fixed regardless of which worker
  // computed which shard — weighting each shard by its size so the total
  // equals the full-batch mean-squared-error gradient.
  const auto primary = predictor_->Parameters();
  double sq_error = 0.0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t lo = s * micro;
    const size_t hi = std::min(total, lo + micro);
    const float weight =
        static_cast<float>(hi - lo) / static_cast<float>(total);
    for (size_t p = 0; p < primary.size(); ++p) {
      apots::tensor::Axpy(&primary[p]->grad, shard_grads[s][p], weight);
    }
    sq_error += shard_sq_error[s];
  }
  apots::nn::ClipGradNorm(primary, config_.grad_clip);
  predictor_opt_.StepAndZero(primary);
  return sq_error / static_cast<double>(total);
}

bool AdversarialTrainer::AdversarialEligible(long anchor) const {
  // Sub-anchors run from anchor - alpha + 1 to anchor; the earliest one
  // needs alpha intervals of history.
  const int alpha = assembler_->alpha();
  return anchor - alpha + 1 - alpha >= 0;
}

Tensor AdversarialTrainer::PredictedSequences(
    const std::vector<long>& anchors, bool training) {
  const int alpha = assembler_->alpha();
  // Stack all sub-anchors into one predictor batch of size N * alpha; the
  // reshape back to [N, alpha] yields one predicted sequence per anchor.
  std::vector<long> sub_anchors;
  sub_anchors.reserve(anchors.size() * static_cast<size_t>(alpha));
  for (long anchor : anchors) {
    APOTS_CHECK(AdversarialEligible(anchor));
    for (int i = 0; i < alpha; ++i) {
      sub_anchors.push_back(anchor - alpha + 1 + i);
    }
  }
  const Tensor inputs = assembler_->BatchMatrix(sub_anchors);
  Tensor outputs = predictor_->Forward(inputs, training);  // [N*alpha, 1]
  return outputs.Reshape({anchors.size(), static_cast<size_t>(alpha)});
}

double AdversarialTrainer::MseStep(const std::vector<long>& batch) {
  obs::TraceSpan span("train.mse_step");
  obs::ScopedTimer timer(TrainMetrics::Get().mse_step_ms);
  if (config_.micro_batch > 0 && batch.size() > config_.micro_batch) {
    return ShardedMseStep(batch);
  }
  const Tensor inputs = assembler_->BatchMatrix(batch);
  const Tensor targets = assembler_->BatchTargets(batch);
  const Tensor outputs = predictor_->Forward(inputs, /*training=*/true);
  const LossResult loss = apots::nn::MseLoss(outputs, targets);
  predictor_->Backward(loss.grad);
  auto params = predictor_->Parameters();
  apots::nn::ClipGradNorm(params, config_.grad_clip);
  predictor_opt_.StepAndZero(params);
  return loss.value;
}

void AdversarialTrainer::AdversarialRound(const std::vector<long>& anchors,
                                          EpochStats* stats,
                                          int* round_count) {
  if (anchors.empty()) return;
  obs::TraceSpan span("train.adv_round");
  obs::ScopedTimer timer(TrainMetrics::Get().adv_round_ms);
  const size_t n = anchors.size();
  // Shared conditioning context (E_{t-alpha:t-1} of Eq. 4, without the
  // target road's own speed history — see FeatureAssembler::BatchContext).
  const Tensor context = assembler_->BatchContext(anchors);

  // --- Discriminator step (maximize J_D, Eq. 2) ---
  const Tensor real_seq = assembler_->BatchRealSequences(anchors);
  // Fake sequences: plain forward; no predictor gradient needed here.
  const Tensor fake_seq = PredictedSequences(anchors, /*training=*/false);

  Tensor real_logits =
      discriminator_->Forward(real_seq, context, /*training=*/true);
  const LossResult real_loss = apots::nn::BceWithLogitsLoss(
      real_logits, Tensor::Full({n, 1}, 1.0f));
  discriminator_->Backward(real_loss.grad);

  Tensor fake_logits =
      discriminator_->Forward(fake_seq, context, /*training=*/true);
  const LossResult fake_loss = apots::nn::BceWithLogitsLoss(
      fake_logits, Tensor::Full({n, 1}, 0.0f));
  discriminator_->Backward(fake_loss.grad);

  auto d_params = discriminator_->Parameters();
  apots::nn::ClipGradNorm(d_params, config_.grad_clip);
  discriminator_opt_.StepAndZero(d_params);

  // D accuracy diagnostics (logit > 0 <=> "real").
  size_t real_correct = 0, fake_correct = 0;
  for (size_t i = 0; i < n; ++i) {
    if (real_logits[i] > 0.0f) ++real_correct;
    if (fake_logits[i] <= 0.0f) ++fake_correct;
  }

  // --- Generator (predictor) adversarial step: the second term of J_P
  // (Eq. 1), non-saturating form. ---
  // --- Generator (predictor) adversarial gradient: the second term of
  // J_P (Eq. 1), non-saturating form. The gradient is only ACCUMULATED
  // here; the caller's next MSE minibatch adds the first term of J_P and
  // takes one combined optimizer step — keeping the two terms at their
  // configured ratio under Adam's scale-invariant updates.
  double gen_loss_value = 0.0;
  if (total_adv_rounds_++ >= config_.adv_warmup_rounds) {
    const Tensor fake_seq_live =
        PredictedSequences(anchors, /*training=*/true);
    Tensor live_logits =
        discriminator_->Forward(fake_seq_live, context, /*training=*/true);
    const LossResult gen_loss =
        apots::nn::AdversarialGeneratorLoss(live_logits);
    gen_loss_value = gen_loss.value;
    Tensor grad_seq = discriminator_->Backward(gen_loss.grad);
    // Normalize the conduit gradient to a fixed norm so the MSE:adv ratio
    // is exactly adv_weight regardless of D's internal scale, then route
    // it through the stacked predictor batch.
    const double norm = [&grad_seq] {
      double acc = 0.0;
      for (size_t i = 0; i < grad_seq.size(); ++i) {
        acc += static_cast<double>(grad_seq[i]) * grad_seq[i];
      }
      return std::sqrt(acc);
    }();
    const size_t alpha = static_cast<size_t>(assembler_->alpha());
    if (config_.adv_future_only) {
      // Ablation: keep only the last beta positions (targets outside the
      // anchor's observable window).
      const size_t beta = static_cast<size_t>(assembler_->beta());
      const size_t first_future = beta >= alpha ? 0 : alpha - beta;
      float* g = grad_seq.data();
      for (size_t row = 0; row < n; ++row) {
        for (size_t col = 0; col < first_future; ++col) {
          g[row * alpha + col] = 0.0f;
        }
      }
    }
    if (norm > 1e-12) {
      grad_seq = apots::tensor::Scale(
          grad_seq, static_cast<float>(config_.adv_weight / norm));
    }
    // The discriminator was only a conduit here: drop its gradients.
    apots::nn::ZeroAllGrads(discriminator_->Parameters());
    predictor_->Backward(grad_seq.Reshape({n * alpha, 1}));
    // No optimizer step: gradients stay accumulated for the caller.
  }

  stats->loss_d += 0.5 * (real_loss.value + fake_loss.value);
  stats->adv_loss_p += gen_loss_value;
  stats->d_real_accuracy += static_cast<double>(real_correct) / n;
  stats->d_fake_accuracy += static_cast<double>(fake_correct) / n;
  ++*round_count;
}

EpochStats AdversarialTrainer::RunEpoch(
    const std::vector<long>& train_anchors) {
  APOTS_CHECK(!train_anchors.empty());
  obs::TraceSpan span("train.epoch");
  apots::Stopwatch watch;
  EpochStats stats;

  std::vector<size_t> order(train_anchors.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng_.Shuffle(&order);

  // Adversarial-eligible anchors (enough history for the full sequence).
  std::vector<long> eligible;
  if (config_.adversarial) {
    for (long a : train_anchors) {
      if (AdversarialEligible(a)) eligible.push_back(a);
    }
  }

  int batch_count = 0;
  int adv_rounds = 0;
  double mse_sum = 0.0;
  std::vector<long> batch;
  batch.reserve(config_.batch_size);
  for (size_t i = 0; i < order.size(); ++i) {
    batch.push_back(train_anchors[order[i]]);
    if (batch.size() < config_.batch_size && i + 1 < order.size()) continue;
    mse_sum += MseStep(batch);
    ++batch_count;
    batch.clear();

    if (config_.adversarial && !eligible.empty() &&
        batch_count % config_.adv_period == 0) {
      // Sample the round's sequences from the eligible pool.
      std::vector<long> round;
      const size_t round_size =
          std::min(config_.adv_batch_size, eligible.size());
      for (size_t k = 0; k < round_size; ++k) {
        round.push_back(
            eligible[static_cast<size_t>(rng_.UniformInt(eligible.size()))]);
      }
      AdversarialRound(round, &stats, &adv_rounds);
    }
  }

  stats.mse_loss = batch_count > 0 ? mse_sum / batch_count : 0.0;
  if (adv_rounds > 0) {
    stats.adv_loss_p /= adv_rounds;
    stats.loss_d /= adv_rounds;
    stats.d_real_accuracy /= adv_rounds;
    stats.d_fake_accuracy /= adv_rounds;
  }
  stats.seconds = watch.ElapsedSeconds();
  TrainMetrics& metrics = TrainMetrics::Get();
  metrics.epochs.Add();
  metrics.epoch_seconds.Record(stats.seconds);
  metrics.loss_mse.Set(stats.mse_loss);
  metrics.loss_adv_p.Set(stats.adv_loss_p);
  metrics.loss_d.Set(stats.loss_d);
  return stats;
}

EpochStats AdversarialTrainer::Train(const std::vector<long>& train_anchors) {
  EpochStats last;
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    last = RunEpoch(train_anchors);
    if (config_.verbose) {
      APOTS_LOG(Info) << "epoch " << epoch + 1 << "/" << config_.epochs
                      << " mse=" << last.mse_loss
                      << " adv_p=" << last.adv_loss_p
                      << " d=" << last.loss_d << " ("
                      << last.seconds << "s)";
    }
  }
  return last;
}

std::vector<apots::nn::Parameter*> AdversarialTrainer::AllParameters() {
  std::vector<apots::nn::Parameter*> params = predictor_->Parameters();
  if (discriminator_ != nullptr) {
    for (auto* p : discriminator_->Parameters()) params.push_back(p);
  }
  return params;
}

Result<TrainReport> AdversarialTrainer::TrainGuarded(
    const std::vector<long>& train_anchors) {
  TrainReport report;
  if (!config_.guard.enabled) {
    report.last = Train(train_anchors);
    report.epochs_completed = config_.epochs;
    report.final_learning_rate = predictor_opt_.learning_rate();
    return report;
  }

  TrainGuard guard(config_.guard);
  guard.Snapshot(AllParameters());  // epoch-0 fallback: initial weights
  int epoch = 0;
  while (epoch < config_.epochs) {
    const EpochStats stats = RunEpoch(train_anchors);
    const GuardVerdict verdict = guard.Inspect(stats, config_.adversarial);
    if (verdict == GuardVerdict::kHealthy) {
      guard.Snapshot(AllParameters());
      report.last = stats;
      ++report.epochs_completed;
      ++epoch;
      if (config_.verbose) {
        APOTS_LOG(Info) << "epoch " << epoch << "/" << config_.epochs
                        << " mse=" << stats.mse_loss << " adv_p="
                        << stats.adv_loss_p << " d=" << stats.loss_d;
      }
      continue;
    }
    if (!guard.RetryBudgetLeft()) {
      // Out of retries: leave the model at its last good weights rather
      // than the diverged ones, and report the truncated run.
      APOTS_RETURN_IF_ERROR(guard.RestoreCheckpoint(AllParameters()));
      report.stopped_early = true;
      TrainMetrics::Get().incidents.Add();
      report.incidents.push_back(StrFormat(
          "epoch %d: %s, retry budget exhausted — stopping at last good "
          "checkpoint",
          epoch + 1, GuardVerdictName(verdict)));
      APOTS_LOG(Warning) << report.incidents.back();
      break;
    }
    APOTS_RETURN_IF_ERROR(guard.Rollback(AllParameters()));
    const float p_lr =
        predictor_opt_.learning_rate() * config_.guard.lr_backoff;
    predictor_opt_.set_learning_rate(p_lr);
    predictor_opt_.ResetState();
    discriminator_opt_.set_learning_rate(discriminator_opt_.learning_rate() *
                                         config_.guard.lr_backoff);
    discriminator_opt_.ResetState();
    ++report.rollbacks;
    TrainMetrics::Get().rollbacks.Add();
    TrainMetrics::Get().incidents.Add();
    report.incidents.push_back(
        StrFormat("epoch %d: %s, rolled back, lr -> %g", epoch + 1,
                  GuardVerdictName(verdict), static_cast<double>(p_lr)));
    APOTS_LOG(Warning) << report.incidents.back();
  }
  report.final_learning_rate = predictor_opt_.learning_rate();
  return report;
}

Tensor AdversarialTrainer::Predict(const std::vector<long>& anchors) {
  // Chunked inference keeps peak memory bounded on large test sets.
  constexpr size_t kChunk = 512;
  Tensor out({anchors.size(), 1});
  for (size_t start = 0; start < anchors.size(); start += kChunk) {
    const size_t end = std::min(anchors.size(), start + kChunk);
    const std::vector<long> chunk(anchors.begin() + start,
                                  anchors.begin() + end);
    const Tensor inputs = assembler_->BatchMatrix(chunk);
    const Tensor outputs = predictor_->Forward(inputs, /*training=*/false);
    std::copy(outputs.data(), outputs.data() + (end - start),
              out.data() + start);
  }
  return out;
}

}  // namespace apots::core
