#ifndef APOTS_CORE_APOTS_MODEL_H_
#define APOTS_CORE_APOTS_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/historical_average.h"
#include "core/adversarial_trainer.h"
#include "core/discriminator.h"
#include "core/inference_runtime.h"
#include "core/predictor.h"
#include "data/features.h"
#include "traffic/fault_injector.h"
#include "traffic/traffic_dataset.h"
#include "util/status.h"

namespace apots::core {

/// Everything needed to instantiate one APOTS configuration: a predictor
/// family (F/L/C/H), whether adversarial training is on, and which input
/// blocks are active — one cell of the paper's Table III grid.
/// Graceful degradation under sensor faults: when the fraction of
/// actually-observed cells in a window drops below the threshold, the
/// neural prediction is replaced by the historical-average baseline —
/// a mostly-imputed window carries too little signal for the predictor
/// but the time-of-day profile stays trustworthy.
struct FallbackConfig {
  bool enabled = false;
  double min_validity_ratio = 0.6;
};

struct ApotsConfig {
  PredictorHparams predictor;
  DiscriminatorHparams discriminator;
  apots::data::FeatureConfig features;
  TrainConfig training;
  FallbackConfig fallback;
  InferenceConfig inference;
  uint64_t seed = 42;

  /// Short tag like "APOTS H" / "H" / "Adv F" used in reports.
  std::string Tag() const;
};

/// The public facade of the library: owns the feature assembler, the
/// predictor, and (when adversarial) the discriminator; trains on anchor
/// sets from data::MakeSplit and predicts speeds in km/h.
///
/// Typical use:
///   TrafficDataset dataset = traffic::GenerateDataset(spec);
///   auto split = data::MakeSplit(dataset, 12, 1, 0.2,
///                                data::SplitStrategy::kBlockedByDay, 7);
///   ApotsConfig config = ...;
///   ApotsModel model(&dataset, config);
///   model.Train(split.train);
///   std::vector<double> pred = model.PredictKmh(split.test);
class ApotsModel {
 public:
  /// `dataset` is borrowed and must outlive the model.
  ApotsModel(const apots::traffic::TrafficDataset* dataset,
             ApotsConfig config);

  /// Runs the configured number of epochs; returns the final epoch stats.
  EpochStats Train(const std::vector<long>& train_anchors);

  /// Guarded training (see AdversarialTrainer::TrainGuarded): detects
  /// divergence, rolls back to the last good epoch checkpoint, and retries
  /// with learning-rate backoff within a bounded budget.
  Result<TrainReport> TrainGuarded(const std::vector<long>& train_anchors);

  /// Attaches the sensor-validity mask (borrowed; null detaches). Enables
  /// WindowValidityRatio-based fallback and observed-target evaluation.
  void SetValidityMask(const apots::traffic::ValidityMask* mask);

  /// Predicted speeds in km/h for the anchors' prediction instants. When
  /// `config().fallback.enabled` and a validity mask is attached, anchors
  /// whose window validity falls below the threshold are answered by the
  /// historical-average baseline instead of the predictor.
  std::vector<double> PredictKmh(const std::vector<long>& anchors);

  /// Counterfactual what-if fan-out: km/h predictions for heterogeneous
  /// (anchor, context) items through the batched runtime. No fallback
  /// substitution — counterfactual queries are an explanation workload,
  /// not fault-masked serving — and an all-context-0 item set is bitwise
  /// identical to PredictKmh with fallback disabled.
  std::vector<double> PredictKmhItems(const std::vector<WorkItem>& items);

  /// Attaches the counterfactual context registry (borrowed, may be null
  /// to detach). Survives SetInferenceConfig runtime rebuilds.
  void SetContextTable(const apots::data::ContextTable* table);
  const apots::data::ContextTable* context_table() const {
    return context_table_;
  }

  /// How many of the last PredictKmh anchors used the fallback.
  size_t last_fallback_count() const { return last_fallback_count_; }

  /// Swaps the inference configuration (batch size, parallelism,
  /// workspace/cache toggles), rebuilding the runtime. Predictions are
  /// bitwise identical under every configuration; this is how benches and
  /// tests switch arms on one trained model.
  void SetInferenceConfig(const InferenceConfig& config);
  InferenceRuntime& inference_runtime() { return *runtime_; }

  /// Copies every trainable weight from `other`, which must have an
  /// identical architecture. Used to evaluate trained weights against a
  /// different (e.g. fault-corrupted) dataset binding.
  Status CopyWeightsFrom(ApotsModel& other);

  /// Fits the fallback baseline on the train anchors' observed targets.
  /// Train/TrainGuarded call this automatically; call it directly only
  /// when weights arrived via CopyWeightsFrom/Load instead of training.
  void FitFallback(const std::vector<long>& train_anchors);

  /// Ground-truth speeds in km/h at the anchors' prediction instants.
  std::vector<double> TrueKmh(const std::vector<long>& anchors) const;

  /// Saves / restores all trainable weights.
  Status Save(const std::string& path);
  Status Load(const std::string& path);

  /// Every trainable parameter (predictor, then discriminator when
  /// adversarial) in a stable order — the serialization / checkpoint /
  /// weight-copy contract.
  std::vector<apots::nn::Parameter*> TrainableParameters();

  const ApotsConfig& config() const { return config_; }
  const apots::data::FeatureAssembler& assembler() const {
    return assembler_;
  }
  Predictor& predictor() { return *predictor_; }
  size_t NumWeights();

 private:
  /// Re-packs quantized inference weights after a weight mutation (train,
  /// copy, load). No-op when `config_.inference.quantize` is kOff.
  void RefreshQuantizedWeights();

  const apots::traffic::TrafficDataset* dataset_;  // not owned
  const apots::data::ContextTable* context_table_ = nullptr;  // not owned
  ApotsConfig config_;
  apots::data::FeatureAssembler assembler_;
  apots::Rng rng_;
  std::unique_ptr<Predictor> predictor_;
  std::unique_ptr<Discriminator> discriminator_;
  std::unique_ptr<AdversarialTrainer> trainer_;
  std::unique_ptr<InferenceRuntime> runtime_;
  apots::baseline::HistoricalAverage fallback_model_;
  size_t last_fallback_count_ = 0;
};

}  // namespace apots::core

#endif  // APOTS_CORE_APOTS_MODEL_H_
