#ifndef APOTS_CORE_ADVERSARIAL_TRAINER_H_
#define APOTS_CORE_ADVERSARIAL_TRAINER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/discriminator.h"
#include "core/predictor.h"
#include "core/train_guard.h"
#include "data/features.h"
#include "nn/optimizer.h"
#include "util/rng.h"
#include "util/status.h"

namespace apots::core {

/// Training-loop knobs. The defaults encode the paper's recipe: Adam at
/// lr 0.001 (Table I), and the footnote's alpha:1 ratio between the MSE
/// loss (per speed value) and the adversarial loss (per length-alpha
/// sequence) — realized here by interleaving one adversarial step after
/// every `adv_period` (= alpha) MSE minibatches.
struct TrainConfig {
  int epochs = 10;
  size_t batch_size = 64;
  float learning_rate = 0.001f;
  bool adversarial = false;
  /// Minibatches of plain MSE training per adversarial round. The paper's
  /// ratio alpha:1 (Section III footnote); 0 means "every batch".
  int adv_period = 12;
  /// Sequences per adversarial round (each costs alpha predictor passes).
  size_t adv_batch_size = 16;
  /// Extra multiplier on the generator's adversarial gradient.
  float adv_weight = 1.0f;
  /// Discriminator learning rate; D converges best slightly faster than P
  /// (it only sees a fraction of the minibatches).
  float d_learning_rate = 0.002f;
  /// Adversarial rounds that update only D before the predictor starts
  /// taking generator steps — a fresh D emits noise gradients.
  int adv_warmup_rounds = 20;
  /// When true, the generator's adversarial gradient is applied only to
  /// the last `beta` sequence positions — the entries whose target speeds
  /// fall outside the anchor's observable window. Off by default: every
  /// position of the sequence is a beta-ahead prediction and carries
  /// distribution signal; the option exists for ablation.
  bool adv_future_only = false;
  double grad_clip = 5.0;
  uint64_t seed = 1;
  bool verbose = false;
  /// Data-parallel micro-batching of the MSE minibatch step: when > 0,
  /// every minibatch is split into fixed contiguous shards of at most
  /// `micro_batch` anchors whose forward/backward passes run on
  /// per-worker predictor replicas (concurrently when the global
  /// ThreadPool has threads to spare) and whose gradients are reduced in
  /// ascending shard order. Shard boundaries and reduction order depend
  /// only on the batch — never on APOTS_NUM_THREADS — so seeded runs are
  /// bit-reproducible at any pool size. 0 (the default) keeps the
  /// original single-pass full-batch step, whose numerics the seed tests
  /// pin down. Requires a predictor factory (ApotsModel wires one up).
  size_t micro_batch = 0;
  /// Self-healing watchdog (NaN/explosion/collapse detection with
  /// checkpoint rollback). Off by default; see TrainGuarded.
  GuardConfig guard;
};

/// Per-epoch diagnostics.
struct EpochStats {
  double mse_loss = 0.0;        ///< mean MSE over minibatches
  double adv_loss_p = 0.0;      ///< mean generator adversarial loss
  double loss_d = 0.0;          ///< mean discriminator loss
  double d_real_accuracy = 0.0; ///< fraction of real sequences D got right
  double d_fake_accuracy = 0.0; ///< fraction of fake sequences D got right
  double seconds = 0.0;
};

/// Outcome of a guarded training run (see TrainGuarded).
struct TrainReport {
  EpochStats last;            ///< stats of the last healthy epoch
  int epochs_completed = 0;   ///< healthy epochs finished
  int rollbacks = 0;          ///< checkpoint restores performed
  /// True when the retry budget ran out and training stopped early at the
  /// last good checkpoint instead of finishing all epochs.
  bool stopped_early = false;
  float final_learning_rate = 0.0f;
  /// One line per divergence, e.g. "epoch 4: LossExplosion, lr -> 0.0002".
  std::vector<std::string> incidents;
};

/// Orchestrates APOTS training: minimizes J_P (Eq. 1 / Eq. 4) over the
/// predictor while maximizing J_D (Eq. 2) over the discriminator. When
/// `config.adversarial` is false this reduces to plain MSE training and
/// the discriminator may be null.
class AdversarialTrainer {
 public:
  /// Builds a fresh, architecturally identical predictor. Used to stamp
  /// out the per-worker replicas of the data-parallel MSE step; replica
  /// weights are overwritten from the primary before every sharded step,
  /// so the factory's own initialization does not matter.
  using PredictorFactory = std::function<std::unique_ptr<Predictor>()>;

  /// `predictor` and `discriminator` are borrowed; `discriminator` may be
  /// null iff `config.adversarial` is false. The assembler provides
  /// samples, targets, real sequences and D's conditioning context.
  /// `predictor_factory` may be null; then `config.micro_batch` must be 0.
  AdversarialTrainer(Predictor* predictor, Discriminator* discriminator,
                     const apots::data::FeatureAssembler* assembler,
                     TrainConfig config,
                     PredictorFactory predictor_factory = nullptr);

  /// Runs one epoch over a shuffled copy of `train_anchors`.
  EpochStats RunEpoch(const std::vector<long>& train_anchors);

  /// Runs `config.epochs` epochs; returns the last epoch's stats.
  EpochStats Train(const std::vector<long>& train_anchors);

  /// Like Train, but supervised by a TrainGuard when `config.guard.enabled`:
  /// the guard snapshots predictor+discriminator weights after every
  /// healthy epoch; on NaN/Inf losses, loss explosion, or discriminator
  /// collapse it rolls back to the last good checkpoint, backs off both
  /// learning rates, resets optimizer state, and retries the epoch within
  /// a bounded budget. When the budget runs out the model is left at its
  /// last good checkpoint and the report says so — structural failures
  /// (e.g. checkpoint/model mismatch) come back as an error Status.
  Result<TrainReport> TrainGuarded(const std::vector<long>& train_anchors);

  /// Predictions for `anchors` as a [N, 1] tensor (scaled space).
  Tensor Predict(const std::vector<long>& anchors);

  /// The predicted sequence S-hat_{t-a+b+1 : t+b} for each anchor
  /// ([N, alpha]); each column is one predictor invocation. `training`
  /// selects whether the predictor caches for backward.
  Tensor PredictedSequences(const std::vector<long>& anchors, bool training);

  /// True when `anchor`'s full adversarial window (alpha sub-anchors, each
  /// with its own alpha-length input) fits in the dataset.
  bool AdversarialEligible(long anchor) const;

  const TrainConfig& config() const { return config_; }

 private:
  /// All trainable parameters in checkpoint order: predictor first, then
  /// discriminator (when present).
  std::vector<apots::nn::Parameter*> AllParameters();

  /// One MSE minibatch step; returns the batch loss. Delegates to
  /// ShardedMseStep when data-parallel micro-batching is configured.
  double MseStep(const std::vector<long>& batch);

  /// Data-parallel MSE step: shards `batch` into micro-batches, runs each
  /// shard's forward/backward on a per-worker replica, reduces shard
  /// gradients into the primary predictor in ascending shard order
  /// (weighted by shard size so the sum equals the full-batch gradient),
  /// then clips and steps exactly like the serial path.
  double ShardedMseStep(const std::vector<long>& batch);

  /// Creates worker `worker`'s replica if absent and copies the primary
  /// weights (`primary`) into it. Called by each worker for its own slot
  /// only — lazily, on the worker's first shard of a step — so steps with
  /// fewer shards than pool workers never pay for unused replicas.
  void SyncReplica(size_t worker,
                   const std::vector<apots::nn::Parameter*>& primary);

  /// One adversarial round (D update then P generator update) on
  /// `anchors`; accumulates into `stats`.
  void AdversarialRound(const std::vector<long>& anchors, EpochStats* stats,
                        int* round_count);

  Predictor* predictor_;           // not owned
  int total_adv_rounds_ = 0;       ///< lifetime rounds, for the D warm-up
  PredictorFactory predictor_factory_;
  /// Per-worker predictor replicas for the sharded MSE step, indexed by
  /// ThreadPool worker id; grown lazily to the pool size.
  std::vector<std::unique_ptr<Predictor>> replicas_;
  Discriminator* discriminator_;   // not owned, may be null
  const apots::data::FeatureAssembler* assembler_;  // not owned
  TrainConfig config_;
  apots::nn::Adam predictor_opt_;
  apots::nn::Adam discriminator_opt_;
  apots::Rng rng_;
};

}  // namespace apots::core

#endif  // APOTS_CORE_ADVERSARIAL_TRAINER_H_
