#include "core/discriminator.h"

#include <algorithm>

#include "nn/activations.h"
#include "nn/dense.h"
#include "util/string_util.h"

namespace apots::core {

DiscriminatorHparams DiscriminatorHparams::Scaled(size_t divisor) {
  DiscriminatorHparams hparams;
  for (size_t& w : hparams.hidden) w = std::max<size_t>(4, w / divisor);
  return hparams;
}

Discriminator::Discriminator(const DiscriminatorHparams& hparams,
                             size_t alpha, size_t context_width,
                             apots::Rng* rng)
    : alpha_(alpha), context_width_(context_width) {
  size_t width = alpha + context_width;
  for (size_t hidden : hparams.hidden) {
    net_.Emplace<apots::nn::Dense>(width, hidden, rng,
                                   apots::nn::Init::kHeNormal);
    net_.Emplace<apots::nn::LeakyRelu>(hparams.leaky_slope);
    width = hidden;
  }
  // Fifth FC layer: the logit head.
  net_.Emplace<apots::nn::Dense>(width, 1, rng,
                                 apots::nn::Init::kXavierUniform);
}

Tensor Discriminator::Forward(const Tensor& sequences, const Tensor& context,
                              bool training) {
  APOTS_CHECK_EQ(sequences.rank(), 2u);
  APOTS_CHECK_EQ(sequences.dim(1), alpha_);
  const size_t batch = sequences.dim(0);
  Tensor input({batch, alpha_ + context_width_});
  for (size_t n = 0; n < batch; ++n) {
    float* dst = input.data() + n * (alpha_ + context_width_);
    std::copy(sequences.data() + n * alpha_,
              sequences.data() + (n + 1) * alpha_, dst);
    if (context_width_ > 0) {
      APOTS_CHECK_EQ(context.rank(), 2u);
      APOTS_CHECK_EQ(context.dim(0), batch);
      APOTS_CHECK_EQ(context.dim(1), context_width_);
      std::copy(context.data() + n * context_width_,
                context.data() + (n + 1) * context_width_, dst + alpha_);
    }
  }
  return net_.Forward(input, training);
}

Tensor Discriminator::Backward(const Tensor& grad_logits) {
  Tensor grad_input = net_.Backward(grad_logits);
  const size_t batch = grad_input.dim(0);
  Tensor grad_sequences({batch, alpha_});
  for (size_t n = 0; n < batch; ++n) {
    std::copy(grad_input.data() + n * (alpha_ + context_width_),
              grad_input.data() + n * (alpha_ + context_width_) + alpha_,
              grad_sequences.data() + n * alpha_);
  }
  return grad_sequences;
}

std::vector<Parameter*> Discriminator::Parameters() {
  return net_.Parameters();
}

std::string Discriminator::Name() const {
  return apots::StrFormat("Discriminator(alpha=%zu, ctx=%zu)", alpha_,
                          context_width_);
}

}  // namespace apots::core
