#include "core/inference_runtime.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace apots::core {

using apots::tensor::Tensor;
using apots::tensor::Workspace;

namespace {

/// Inference-path instruments (DESIGN.md §12). Pre-registered once; the
/// per-call and per-batch hot paths touch only the cached references.
struct InferMetrics {
  obs::Histogram& predict_ms;
  obs::Histogram& batch_ms;
  obs::Counter& anchors;
  obs::Counter& batches;
  static InferMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Default();
    static InferMetrics* metrics = new InferMetrics{
        registry.GetHistogram("infer.predict_ms"),
        registry.GetHistogram("infer.batch_ms"),
        registry.GetCounter("infer.anchors"),
        registry.GetCounter("infer.batches"),
    };
    return *metrics;
  }
};

}  // namespace

Status ValidateInferenceConfig(const InferenceConfig& config) {
  if (config.batch_size == 0) {
    return Status::InvalidArgument(
        "InferenceConfig.batch_size must be positive (the batch grid "
        "divides the anchor count by it)");
  }
  if (config.use_feature_cache && config.cache_capacity == 0) {
    return Status::InvalidArgument(
        "InferenceConfig.cache_capacity must be positive when "
        "use_feature_cache is set (an LRU of capacity 0 cannot hold any "
        "column); either raise it or disable the cache");
  }
  if (config.quantize != apots::tensor::QuantMode::kOff &&
      !config.use_workspace) {
    return Status::InvalidArgument(
        "InferenceConfig.quantize requires use_workspace (only the "
        "workspace forward consults packed weights; the allocating "
        "forward would silently serve fp32 under a quantized label)");
  }
  return Status::Ok();
}

InferenceConfig SanitizeInferenceConfig(InferenceConfig config) {
  if (config.batch_size == 0) {
    APOTS_LOG(Warning)
        << "InferenceConfig.batch_size of 0 clamped to 1 (per-anchor)";
    config.batch_size = 1;
  }
  if (config.use_feature_cache && config.cache_capacity == 0) {
    APOTS_LOG(Warning) << "InferenceConfig.cache_capacity of 0 disables the "
                          "feature cache";
    config.use_feature_cache = false;
  }
  if (config.quantize != apots::tensor::QuantMode::kOff &&
      !config.use_workspace) {
    APOTS_LOG(Warning)
        << "InferenceConfig.quantize="
        << apots::tensor::QuantModeName(config.quantize)
        << " needs use_workspace; falling back to fp32 (quantize=off)";
    config.quantize = apots::tensor::QuantMode::kOff;
  }
  return config;
}

InferenceRuntime::InferenceRuntime(
    Predictor* predictor, const apots::data::FeatureAssembler* assembler,
    InferenceConfig config)
    : predictor_(predictor),
      assembler_(assembler),
      config_(SanitizeInferenceConfig(config)) {
  APOTS_CHECK(predictor != nullptr);
  APOTS_CHECK(assembler != nullptr);
  if (config_.use_feature_cache) {
    cache_ = std::make_unique<apots::data::FeatureCache>(
        config_.cache_capacity);
  }
  // Apply the precision mode unconditionally: packing for kInt8/kFp16,
  // dropping any packed copies for kOff. A predictor follows the most
  // recently constructed runtime — leaving stale packs active would serve
  // quantized math under an fp32 label.
  predictor_->PrepareQuantized(config_.quantize);
}

size_t InferenceRuntime::NumBatches(size_t count) const {
  return (count + config_.batch_size - 1) / config_.batch_size;
}

void InferenceRuntime::ForEachBatch(
    size_t count,
    const std::function<void(size_t, size_t, size_t)>& fn) const {
  const size_t num_batches = NumBatches(count);
  for (size_t b = 0; b < num_batches; ++b) {
    const size_t lo = b * config_.batch_size;
    const size_t hi = std::min(count, lo + config_.batch_size);
    fn(b, lo, hi);
  }
}

void InferenceRuntime::InvalidateCache() {
  if (cache_ != nullptr) cache_->Invalidate();
}

size_t InferenceRuntime::workspace_high_water_floats() const {
  return workspaces_.empty() ? 0 : workspaces_[0]->high_water_floats();
}

Tensor InferenceRuntime::Predict(const std::vector<long>& anchors) {
  return PredictImpl(anchors.data(), /*contexts=*/nullptr, anchors.size());
}

Tensor InferenceRuntime::PredictItems(const std::vector<WorkItem>& items) {
  std::vector<long> anchors(items.size());
  std::vector<apots::data::ResolvedContext> contexts(items.size());
  // Keep resolved specs alive across the whole call: Find hands out
  // shared ownership so a concurrent re-registration cannot free a spec
  // mid-assembly.
  std::vector<std::shared_ptr<const apots::data::ContextSpec>> pins;
  pins.reserve(items.size());
  bool any_context = false;
  for (size_t i = 0; i < items.size(); ++i) {
    anchors[i] = items[i].anchor;
    contexts[i].id = 0;
    if (items[i].context != 0) {
      auto spec = context_table_ == nullptr
                      ? nullptr
                      : context_table_->Find(items[i].context);
      if (spec == nullptr) {
        // Unknown (or table-less) context: degrade to base, loudly in the
        // counter but never by failing the request.
        ++unknown_context_items_;
      } else {
        contexts[i].id = items[i].context;
        contexts[i].spec = spec.get();
        pins.push_back(std::move(spec));
        any_context = true;
      }
    }
  }
  // A pure-base item set takes the exact Predict code path (null contexts
  // array), so live traffic through this entry point stays bitwise
  // unchanged — the context-0 identity the serving gates enforce.
  return PredictImpl(anchors.data(), any_context ? contexts.data() : nullptr,
                     items.size());
}

Tensor InferenceRuntime::PredictImpl(
    const long* anchors, const apots::data::ResolvedContext* contexts,
    size_t count) {
  Tensor out({count, 1});
  if (count == 0) return out;
  obs::TraceSpan span("infer.predict");
  obs::ScopedTimer call_timer(InferMetrics::Get().predict_ms);
  InferMetrics::Get().anchors.Add(count);

  const size_t rows = static_cast<size_t>(assembler_->NumRows());
  const size_t alpha = static_cast<size_t>(assembler_->alpha());
  const size_t num_batches = NumBatches(count);

  if (!config_.use_workspace) {
    // Baseline path, seed semantics: allocating assembly + allocating
    // forward. The allocating forward writes layer caches, so this path is
    // strictly serial regardless of `parallel`.
    ForEachBatch(count, [&](size_t, size_t lo, size_t hi) {
      obs::TraceSpan batch_span("infer.batch");
      obs::ScopedTimer batch_timer(InferMetrics::Get().batch_ms);
      InferMetrics::Get().batches.Add();
      Tensor inputs({hi - lo, rows, alpha});
      assembler_->AssembleBatchInto(
          anchors + lo, contexts == nullptr ? nullptr : contexts + lo,
          hi - lo, cache_.get(), &inputs);
      const Tensor outputs = predictor_->Forward(inputs, /*training=*/false);
      std::copy(outputs.data(), outputs.data() + (hi - lo),
                out.data() + lo);
    });
    return out;
  }

  apots::ThreadPool& pool = apots::GlobalPool();
  const bool parallel =
      config_.parallel && pool.num_threads() > 1 && num_batches > 1;
  // Grow the arena set on this thread before entering the parallel region;
  // workers then only touch their own slot.
  const size_t num_workers = parallel ? pool.num_threads() : 1;
  while (workspaces_.size() < num_workers) {
    workspaces_.push_back(std::make_unique<Workspace>());
  }

  const auto run_batch = [&](size_t lo, size_t hi, size_t worker) {
    obs::TraceSpan batch_span("infer.batch");
    obs::ScopedTimer batch_timer(InferMetrics::Get().batch_ms);
    InferMetrics::Get().batches.Add();
    Workspace* ws = workspaces_[worker].get();
    ws->Reset();
    Tensor* inputs = ws->Acquire({hi - lo, rows, alpha});
    assembler_->AssembleBatchInto(
        anchors + lo, contexts == nullptr ? nullptr : contexts + lo,
        hi - lo, cache_.get(), inputs);
    const Tensor* outputs =
        predictor_->Forward(*inputs, /*training=*/false, ws);
    // Disjoint output range per batch: writes never race and land at the
    // same position regardless of which worker ran the batch.
    std::copy(outputs->data(), outputs->data() + (hi - lo), out.data() + lo);
  };

  if (!parallel) {
    ForEachBatch(count,
                 [&](size_t, size_t lo, size_t hi) { run_batch(lo, hi, 0); });
    return out;
  }
  pool.ParallelFor(0, num_batches, 1, [&](size_t b0, size_t b1,
                                          size_t worker) {
    for (size_t b = b0; b < b1; ++b) {
      const size_t lo = b * config_.batch_size;
      const size_t hi = std::min(count, lo + config_.batch_size);
      run_batch(lo, hi, worker);
    }
  });
  return out;
}

}  // namespace apots::core
