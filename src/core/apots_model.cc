#include "core/apots_model.h"

#include "nn/serialize.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace apots::core {

using apots::data::FeatureAssembler;
using apots::traffic::TrafficDataset;

std::string ApotsConfig::Tag() const {
  std::string tag;
  if (training.adversarial) tag += "Adv ";
  tag += PredictorTypeName(predictor.type);
  const bool add_data = features.use_adjacent || features.use_event ||
                        features.use_weather || features.use_time;
  if (add_data) tag += "+add";
  return tag;
}

ApotsModel::ApotsModel(const TrafficDataset* dataset, ApotsConfig config)
    : dataset_(dataset),
      config_(std::move(config)),
      assembler_(dataset, config_.features),
      rng_(config_.seed) {
  assembler_.Fit();
  predictor_ = MakePredictor(config_.predictor,
                             static_cast<size_t>(assembler_.NumRows()),
                             static_cast<size_t>(assembler_.alpha()), &rng_);
  if (config_.training.adversarial) {
    const size_t context_width = static_cast<size_t>(assembler_.FlatWidth());
    discriminator_ = std::make_unique<Discriminator>(
        config_.discriminator, static_cast<size_t>(assembler_.alpha()),
        context_width, &rng_);
  }
  TrainConfig train_config = config_.training;
  train_config.seed = rng_.NextUint64();
  // The paper's alpha:1 MSE-to-adversarial ratio.
  if (train_config.adv_period <= 0) {
    train_config.adv_period = assembler_.alpha();
  }
  // The factory stamps out architecture-identical replicas for the
  // data-parallel MSE step; their weights are always overwritten from the
  // primary, so the fixed seed only affects dead initial values.
  const PredictorHparams replica_hparams = config_.predictor;
  const size_t replica_rows = static_cast<size_t>(assembler_.NumRows());
  const size_t replica_alpha = static_cast<size_t>(assembler_.alpha());
  trainer_ = std::make_unique<AdversarialTrainer>(
      predictor_.get(), discriminator_.get(), &assembler_, train_config,
      [replica_hparams, replica_rows, replica_alpha] {
        apots::Rng replica_rng(1);
        return MakePredictor(replica_hparams, replica_rows, replica_alpha,
                             &replica_rng);
      });
  runtime_ = std::make_unique<InferenceRuntime>(predictor_.get(), &assembler_,
                                                config_.inference);
}

void ApotsModel::SetInferenceConfig(const InferenceConfig& config) {
  config_.inference = config;
  runtime_ = std::make_unique<InferenceRuntime>(predictor_.get(), &assembler_,
                                                config_.inference);
  // The rebuilt runtime must keep answering registered contexts — bench
  // arms swap inference configs on a serving model mid-run.
  runtime_->SetContextTable(context_table_);
}

void ApotsModel::SetContextTable(const apots::data::ContextTable* table) {
  context_table_ = table;
  runtime_->SetContextTable(table);
}

std::vector<double> ApotsModel::PredictKmhItems(
    const std::vector<WorkItem>& items) {
  const Tensor scaled = runtime_->PredictItems(items);
  std::vector<double> out(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    out[i] = assembler_.UnscaleSpeed(scaled[i]);
  }
  return out;
}

void ApotsModel::RefreshQuantizedWeights() {
  if (config_.inference.quantize != apots::tensor::QuantMode::kOff) {
    predictor_->PrepareQuantized(config_.inference.quantize);
  }
}

EpochStats ApotsModel::Train(const std::vector<long>& train_anchors) {
  FitFallback(train_anchors);
  EpochStats stats = trainer_->Train(train_anchors);
  RefreshQuantizedWeights();
  return stats;
}

Result<TrainReport> ApotsModel::TrainGuarded(
    const std::vector<long>& train_anchors) {
  FitFallback(train_anchors);
  Result<TrainReport> result = trainer_->TrainGuarded(train_anchors);
  RefreshQuantizedWeights();
  return result;
}

void ApotsModel::SetValidityMask(const apots::traffic::ValidityMask* mask) {
  assembler_.SetValidityMask(mask);
  // A mask change usually accompanies in-place dataset mutation (fault
  // injection); cached feature columns may now be stale.
  runtime_->InvalidateCache();
}

void ApotsModel::FitFallback(const std::vector<long>& train_anchors) {
  if (!config_.fallback.enabled) return;
  // Fit on the train anchors' observed prediction instants so the profile
  // never learns from fault-fabricated values.
  std::vector<long> intervals;
  intervals.reserve(train_anchors.size());
  for (long anchor : train_anchors) {
    const long t = anchor + assembler_.beta();
    if (assembler_.TargetObserved(anchor)) intervals.push_back(t);
  }
  if (intervals.empty()) {
    APOTS_LOG(Warning)
        << "fallback enabled but no observed train targets; fallback stays "
           "unfitted and predictions always use the predictor";
    return;
  }
  const Status status =
      fallback_model_.Fit(*dataset_, assembler_.target_road(), intervals);
  if (!status.ok()) {
    APOTS_LOG(Warning) << "fallback fit failed: " << status.ToString();
  }
}

std::vector<double> ApotsModel::PredictKmh(const std::vector<long>& anchors) {
  const Tensor scaled = runtime_->Predict(anchors);
  std::vector<double> out(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    out[i] = assembler_.UnscaleSpeed(scaled[i]);
  }
  last_fallback_count_ = 0;
  if (config_.fallback.enabled && fallback_model_.fitted() &&
      assembler_.validity_mask() != nullptr) {
    // Fallback substitution follows the runtime's batch grid: per-shard
    // counts are accumulated in ascending shard order, so the reported
    // count is identical whether the shards were evaluated serially or
    // out of order by the parallel arm.
    std::vector<size_t> shard_counts(runtime_->NumBatches(anchors.size()),
                                     0);
    runtime_->ForEachBatch(
        anchors.size(), [&](size_t shard, size_t lo, size_t hi) {
          for (size_t i = lo; i < hi; ++i) {
            if (assembler_.WindowValidityRatio(anchors[i]) <
                config_.fallback.min_validity_ratio) {
              out[i] = fallback_model_.Predict(
                  *dataset_, anchors[i] + assembler_.beta());
              ++shard_counts[shard];
            }
          }
        });
    for (const size_t c : shard_counts) last_fallback_count_ += c;
  }
  return out;
}

Status ApotsModel::CopyWeightsFrom(ApotsModel& other) {
  std::vector<apots::nn::Parameter*> dst = predictor_->Parameters();
  std::vector<apots::nn::Parameter*> src = other.predictor_->Parameters();
  if (discriminator_ != nullptr && other.discriminator_ != nullptr) {
    for (auto* p : discriminator_->Parameters()) dst.push_back(p);
    for (auto* p : other.discriminator_->Parameters()) src.push_back(p);
  } else if ((discriminator_ == nullptr) != (other.discriminator_ == nullptr)) {
    return Status::InvalidArgument(
        "CopyWeightsFrom: one model has a discriminator, the other not");
  }
  if (dst.size() != src.size()) {
    return Status::InvalidArgument(
        StrFormat("CopyWeightsFrom: %zu vs %zu parameters", dst.size(),
                  src.size()));
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    if (dst[i]->name != src[i]->name ||
        !dst[i]->value.SameShape(src[i]->value)) {
      return Status::InvalidArgument(
          StrFormat("CopyWeightsFrom: parameter %zu mismatch ('%s' vs '%s')",
                    i, dst[i]->name.c_str(), src[i]->name.c_str()));
    }
  }
  for (size_t i = 0; i < dst.size(); ++i) {
    dst[i]->value = src[i]->value;
  }
  RefreshQuantizedWeights();
  return Status::Ok();
}

std::vector<double> ApotsModel::TrueKmh(
    const std::vector<long>& anchors) const {
  std::vector<double> out(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    out[i] = dataset_->Speed(assembler_.target_road(),
                             anchors[i] + assembler_.beta());
  }
  return out;
}

std::vector<apots::nn::Parameter*> ApotsModel::TrainableParameters() {
  std::vector<apots::nn::Parameter*> params = predictor_->Parameters();
  if (discriminator_ != nullptr) {
    for (auto* p : discriminator_->Parameters()) params.push_back(p);
  }
  return params;
}

Status ApotsModel::Save(const std::string& path) {
  return apots::nn::SaveParameters(TrainableParameters(), path);
}

Status ApotsModel::Load(const std::string& path) {
  const Status status = apots::nn::LoadParameters(TrainableParameters(), path);
  if (status.ok()) RefreshQuantizedWeights();
  return status;
}

size_t ApotsModel::NumWeights() {
  size_t n = apots::nn::CountWeights(predictor_->Parameters());
  if (discriminator_ != nullptr) {
    n += apots::nn::CountWeights(discriminator_->Parameters());
  }
  return n;
}

}  // namespace apots::core
