#ifndef APOTS_CORE_FC_PREDICTOR_H_
#define APOTS_CORE_FC_PREDICTOR_H_

#include <string>
#include <vector>

#include "core/predictor.h"
#include "nn/sequential.h"

namespace apots::core {

/// The F predictor: flatten the [rows, alpha] feature matrix and pass it
/// through the Table-I stack of fully connected + ReLU layers to a single
/// scaled-speed output.
class FcPredictor : public Predictor {
 public:
  FcPredictor(const PredictorHparams& hparams, size_t num_rows, size_t alpha,
              apots::Rng* rng);

  Tensor Forward(const Tensor& batch, bool training) override;
  const Tensor* Forward(const Tensor& batch, bool training,
                        apots::tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  void PrepareQuantized(apots::tensor::QuantMode mode) override {
    net_.PrepareQuantized(mode);
  }
  std::vector<Parameter*> Parameters() override;
  PredictorType type() const override { return PredictorType::kFc; }
  std::string Name() const override;

 private:
  size_t num_rows_;
  size_t alpha_;
  apots::nn::Sequential net_;
};

}  // namespace apots::core

#endif  // APOTS_CORE_FC_PREDICTOR_H_
