#include "core/fc_predictor.h"

#include <algorithm>

#include "nn/activations.h"
#include "nn/dense.h"
#include "util/string_util.h"

namespace apots::core {

FcPredictor::FcPredictor(const PredictorHparams& hparams, size_t num_rows,
                         size_t alpha, apots::Rng* rng)
    : num_rows_(num_rows), alpha_(alpha) {
  size_t width = num_rows * alpha;
  for (size_t hidden : hparams.fc_hidden) {
    net_.Emplace<apots::nn::Dense>(width, hidden, rng,
                                   apots::nn::Init::kHeNormal);
    net_.Emplace<apots::nn::Relu>();
    width = hidden;
  }
  net_.Emplace<apots::nn::Dense>(width, 1, rng,
                                 apots::nn::Init::kXavierUniform);
}

Tensor FcPredictor::Forward(const Tensor& batch, bool training) {
  APOTS_CHECK_EQ(batch.rank(), 3u);
  APOTS_CHECK_EQ(batch.dim(1), num_rows_);
  APOTS_CHECK_EQ(batch.dim(2), alpha_);
  const Tensor flat = batch.Reshape({batch.dim(0), num_rows_ * alpha_});
  return net_.Forward(flat, training);
}

const Tensor* FcPredictor::Forward(const Tensor& batch, bool training,
                                   apots::tensor::Workspace* ws) {
  if (training) return Predictor::Forward(batch, training, ws);
  APOTS_CHECK_EQ(batch.rank(), 3u);
  APOTS_CHECK_EQ(batch.dim(1), num_rows_);
  APOTS_CHECK_EQ(batch.dim(2), alpha_);
  Tensor* flat = ws->Acquire({batch.dim(0), num_rows_ * alpha_});
  std::copy(batch.data(), batch.data() + batch.size(), flat->data());
  return net_.Forward(*flat, training, ws);
}

Tensor FcPredictor::Backward(const Tensor& grad_output) {
  Tensor grad_flat = net_.Backward(grad_output);
  return grad_flat.Reshape({grad_flat.dim(0), num_rows_, alpha_});
}

std::vector<Parameter*> FcPredictor::Parameters() {
  return net_.Parameters();
}

std::string FcPredictor::Name() const {
  return apots::StrFormat("FcPredictor(%zux%zu)", num_rows_, alpha_);
}

}  // namespace apots::core
