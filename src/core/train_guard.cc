#include "core/train_guard.h"

#include <algorithm>
#include <cmath>

#include "core/adversarial_trainer.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace apots::core {

TrainGuard::TrainGuard(GuardConfig config) : config_(std::move(config)) {
  if (!config_.spill_dir.empty()) {
    spill_ = std::make_unique<apots::nn::CheckpointStore>(
        config_.spill_dir, config_.spill_generations);
  }
}

const char* GuardVerdictName(GuardVerdict verdict) {
  switch (verdict) {
    case GuardVerdict::kHealthy:
      return "Healthy";
    case GuardVerdict::kNonFiniteLoss:
      return "NonFiniteLoss";
    case GuardVerdict::kLossExplosion:
      return "LossExplosion";
    case GuardVerdict::kDiscriminatorCollapse:
      return "DiscriminatorCollapse";
  }
  return "Unknown";
}

void TrainGuard::Snapshot(const std::vector<apots::nn::Parameter*>& params) {
  checkpoint_.clear();
  checkpoint_.reserve(params.size());
  for (const apots::nn::Parameter* p : params) {
    checkpoint_.push_back({p->name, p->value});
  }
  if (spill_ != nullptr) {
    auto spilled = spill_->Save(params);
    last_spill_status_ = spilled.status();
    if (!spilled.ok()) {
      // The in-memory checkpoint still protects this run; only crash
      // recovery across processes is degraded.
      APOTS_LOG(Warning) << "guard checkpoint spill failed: "
                         << spilled.status().ToString();
    }
  }
}

GuardVerdict TrainGuard::Inspect(const EpochStats& stats, bool adversarial) {
  if (!std::isfinite(stats.mse_loss) || !std::isfinite(stats.adv_loss_p) ||
      !std::isfinite(stats.loss_d)) {
    return GuardVerdict::kNonFiniteLoss;
  }
  const double reference =
      best_mse_ < 0.0 ? config_.absolute_loss_ceiling / config_.explosion_factor
                      : std::max(best_mse_, config_.min_reference_loss);
  if (stats.mse_loss > config_.explosion_factor * reference) {
    return GuardVerdict::kLossExplosion;
  }
  if (adversarial) {
    const bool pinned = stats.d_fake_accuracy <= config_.collapse_margin ||
                        stats.d_fake_accuracy >= 1.0 - config_.collapse_margin;
    collapse_streak_ = pinned ? collapse_streak_ + 1 : 0;
    if (collapse_streak_ >= config_.collapse_patience) {
      collapse_streak_ = 0;
      return GuardVerdict::kDiscriminatorCollapse;
    }
  }
  best_mse_ = best_mse_ < 0.0 ? stats.mse_loss
                              : std::min(best_mse_, stats.mse_loss);
  return GuardVerdict::kHealthy;
}

Status TrainGuard::RestoreCheckpoint(
    const std::vector<apots::nn::Parameter*>& params) const {
  if (checkpoint_.empty()) {
    return Status::FailedPrecondition("no checkpoint to restore");
  }
  if (params.size() != checkpoint_.size()) {
    return Status::InvalidArgument(
        StrFormat("checkpoint holds %zu parameters, model has %zu",
                  checkpoint_.size(), params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i]->name != checkpoint_[i].name ||
        !params[i]->value.SameShape(checkpoint_[i].value)) {
      return Status::InvalidArgument(
          StrFormat("parameter %zu mismatch: checkpoint '%s' %s vs model "
                    "'%s' %s",
                    i, checkpoint_[i].name.c_str(),
                    checkpoint_[i].value.ShapeString().c_str(),
                    params[i]->name.c_str(),
                    params[i]->value.ShapeString().c_str()));
    }
  }
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = checkpoint_[i].value;
    params[i]->ZeroGrad();
  }
  return Status::Ok();
}

Status TrainGuard::Rollback(const std::vector<apots::nn::Parameter*>& params) {
  if (!RetryBudgetLeft()) {
    return Status::FailedPrecondition(
        StrFormat("retry budget of %d rollbacks exhausted",
                  config_.max_rollbacks));
  }
  APOTS_RETURN_IF_ERROR(RestoreCheckpoint(params));
  ++rollbacks_;
  // The explosion reference and collapse streak describe the diverged
  // trajectory; start fresh from the restored weights.
  collapse_streak_ = 0;
  return Status::Ok();
}

}  // namespace apots::core
