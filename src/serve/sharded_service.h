#ifndef APOTS_SERVE_SHARDED_SERVICE_H_
#define APOTS_SERVE_SHARDED_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baseline/historical_average.h"
#include "core/apots_model.h"
#include "serve/feed.h"
#include "serve/serving_supervisor.h"
#include "serve/stream_ingestor.h"
#include "traffic/dataset_generator.h"
#include "traffic/road_graph.h"
#include "util/status.h"

namespace apots::serve {

/// Monotonic simulated time shared by every replica of a ShardedService.
/// Time advances only when the service says so (per-tick progression,
/// per-attempt call costs, retry backoffs), which makes every timeout,
/// quarantine expiry, and failover latency measurement deterministic —
/// the property the chaos drills and their CI gates rely on. Thread-safe:
/// watchdog sampler threads read it concurrently with the serving loop.
class VirtualClock {
 public:
  int64_t now_ns() const { return ns_.load(std::memory_order_acquire); }
  void Advance(double ms) {
    ns_.fetch_add(static_cast<int64_t>(ms * 1e6),
                  std::memory_order_acq_rel);
  }

 private:
  std::atomic<int64_t> ns_{0};
};

/// Retry/failover policy of the ShardRouter.
struct RouterConfig {
  /// Per-attempt budget: an attempt on a partitioned (or stalled past
  /// this) replica costs the full timeout before the router moves on.
  double timeout_ms = 50.0;
  /// A refused connection (killed replica) fails fast at this cost.
  double probe_cost_ms = 0.1;
  /// Nominal cost of a healthy replica call.
  double call_cost_ms = 0.5;
  /// Bounded exponential backoff between retry attempts.
  double backoff_base_ms = 1.0;
  double backoff_mult = 2.0;
  double backoff_max_ms = 16.0;
  /// Full passes over the replica set before declaring the shard down.
  int max_rounds = 2;
  /// A replica that failed an attempt is skipped for this long.
  double quarantine_ms = 200.0;
};

/// Cross-shard routing + failover counters (anchors, not batches, except
/// where noted).
struct RouterStats {
  uint64_t requests = 0;         ///< anchors routed
  uint64_t attempts = 0;         ///< replica call attempts (batches)
  uint64_t replica_served = 0;   ///< anchors answered by a live replica
  uint64_t ladder_answers = 0;   ///< anchors answered by the router's
                                 ///< profile ladder (whole shard down)
  uint64_t failovers = 0;        ///< batches answered off the preferred
                                 ///< replica
  uint64_t retries = 0;          ///< failed attempts
  uint64_t quarantine_skips = 0; ///< replicas skipped while quarantined
};

/// Boundary feature-exchange counters. `stale_epoch_serves` is the
/// cross-shard consistency invariant (full-tier responses must never ride
/// an epoch older than the freshness tolerance) and is CI-gated to zero;
/// `epoch_lag_serves` counts serves that *observed* a lagging epoch at
/// any tier — the detection signal the outage drills assert is non-zero.
struct ExchangeStats {
  uint64_t snapshots_published = 0;
  uint64_t publishes_skipped = 0;  ///< source shard had no live replica
  uint64_t records_shipped = 0;    ///< snapshot records offered to consumers
  uint64_t stale_epoch_serves = 0;
  uint64_t epoch_lag_serves = 0;
};

/// One routed prediction: the replica's ServeResponse plus routing facts.
struct ShardedResponse {
  ServeResponse serve;
  int shard = 0;
  int replica = -1;        ///< -1: answered by the router ladder
  int attempts = 1;
  bool failover = false;   ///< not answered by the preferred replica
  double latency_ms = 0.0; ///< virtual admission-to-answer latency
};

/// Aggregate health of a ShardedService run.
struct ShardedReport {
  ServeReport serve;       ///< merged across shards, replicas, restarts
  RouterStats router;
  ExchangeStats exchange;
  double failover_p50_ms = 0.0;
  double failover_p99_ms = 0.0;
  /// Chaos admin counters (kills/restarts applied via the admin API).
  uint64_t kills = 0;
  uint64_t restarts = 0;
  uint64_t stalls = 0;
  uint64_t partitions = 0;
  uint64_t clock_skews = 0;
  uint64_t checkpoint_corruptions = 0;

  /// Fraction of routed anchors answered by anything (replica or ladder).
  double availability() const {
    return router.requests == 0
               ? 1.0
               : static_cast<double>(router.replica_served +
                                     router.ladder_answers) /
                     static_cast<double>(router.requests);
  }
  /// Fraction answered by a live replica — the stricter SLO the
  /// one-replica-killed chaos gate holds at >= 0.999: failover must reach
  /// a live replica, not the ladder.
  double replica_availability() const {
    return router.requests == 0
               ? 1.0
               : static_cast<double>(router.replica_served) /
                     static_cast<double>(router.requests);
  }
};

struct ShardedConfig {
  apots::traffic::DatasetSpec spec = apots::traffic::DatasetSpec::Small();
  double warmup_fraction = 0.5;
  apots::core::PredictorType predictor = apots::core::PredictorType::kFc;
  size_t width_divisor = 16;
  int train_epochs = 0;
  uint64_t model_seed = 42;
  int alpha = 12;
  int beta = 3;
  /// Feature-window half-width m. -1 picks the widest m <= 2 that keeps
  /// every shard target's window inside the dataset.
  int num_adjacent = -1;
  int num_shards = 2;
  int replicas_per_shard = 2;
  /// Trailing anchors served per shard per tick.
  int anchors_per_tick = 2;
  FeedFaultSpec feed = FeedFaultSpec::Clean();
  ServeConfig serve;  ///< per-replica supervisor knobs (clock is overridden)
  apots::core::InferenceConfig inference;
  RouterConfig router;
  /// "" disables checkpoints; else replica r of shard s checkpoints under
  /// <root>/shard<s>_replica<r>.
  std::string checkpoint_root;
  /// Trailing intervals re-published in every boundary snapshot; >1 lets
  /// consumers pick up records the publisher itself received late.
  long exchange_depth = 2;
  /// Virtual ms the clock advances per stream tick (lets quarantines and
  /// failure backoffs expire as the simulation progresses).
  double tick_advance_ms = 50.0;
};

/// N-shard, R-replica serving plane over one simulated road network.
///
/// The road graph is partitioned contiguously; each shard serves one
/// target road near its cut (so feature windows genuinely span shards)
/// with R identical replicas, each owning a full stack: live dataset,
/// model, StreamIngestor, ServingSupervisor, and its own deterministic
/// FaultyFeed (same seed -> replicas see bit-identical streams). Replicas
/// ingest only the roads their shard owns; roads their feature window
/// borrows from neighbor shards arrive through the boundary exchange —
/// versioned snapshots (sequence-numbered, epoch = publishing tick)
/// published each tick by the first live replica of the owning shard.
/// A stalled exchange is not masked: halo staleness climbs and the
/// supervisor's ladder degrades honestly, and the router tracks epoch lag
/// so full-tier serves over a stale epoch (the cross-shard inconsistency)
/// can be gated to zero.
///
/// Requests route through a health-checked ShardRouter: round-robin
/// preferred replica, per-attempt timeout, bounded exponential-backoff
/// retries, quarantine of failed replicas, failover across the replica
/// set, and the historical-profile ladder only when the whole shard is
/// down. All timing is virtual (see VirtualClock), so failover latency
/// percentiles are bit-stable across machines.
///
/// The admin API (Kill/Restart/Stall/Partition/Skew/Corrupt) is the
/// surface the chaos:: driver manipulates mid-serve.
class ShardedService {
 public:
  explicit ShardedService(ShardedConfig config);
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// One stream tick: every live replica polls its feed and ingests its
  /// shard's records, boundary snapshots are published and applied, every
  /// live replica advances its watermark, each shard serves the tick's
  /// anchors through the router, and checkpoint schedules fire. Returns
  /// false once every servable tick has run.
  bool RunTick();

  /// Routed prediction against `shard` (anchors served for its target
  /// road). Public so drills can probe specific shards outside RunTick.
  std::vector<ShardedResponse> Predict(int shard,
                                       const std::vector<long>& anchors);

  /// The bitwise-identity arm: the first live replica's direct
  /// InferenceRuntime::Predict path (ApotsModel::PredictKmh). Empty when
  /// the shard has no live replica.
  std::vector<double> PredictDirect(int shard,
                                    const std::vector<long>& anchors);

  /// Anchors RunTick serves at `tick` (same for every shard).
  std::vector<long> TickAnchors(long tick) const;

  /// Registers counterfactual context `id` on every live replica's
  /// supervisor, and remembers it so rebuilt/restarted replicas re-apply
  /// the full registration set — a what-if query keeps resolving across
  /// failovers and chaos restarts.
  Status RegisterContext(uint64_t id, apots::data::ContextSpec spec);

  /// What-if fan-out against a specific live replica's supervisor (the
  /// drill/bench surface; routed serving stays anchor-keyed). Fails when
  /// the replica is down.
  Result<std::vector<ServeResponse>> PredictItemsOn(
      int shard, int replica,
      const std::vector<apots::core::WorkItem>& items);

  // --- chaos admin surface -------------------------------------------
  /// Tears the replica's whole stack down (model, ingestor, supervisor,
  /// feed). Subsequent router attempts fail fast.
  Status KillReplica(int shard, int replica);
  /// Rebuilds the stack; recovers from the replica's checkpoint dir when
  /// configured (newest readable generation), else replays the stream
  /// from the warmup boundary.
  Status RestartReplica(int shard, int replica);
  /// The replica answers, but each call costs `stall_ms` for the next
  /// `ticks` stream ticks; past the router timeout that is a failed
  /// attempt.
  Status StallReplica(int shard, int replica, double stall_ms, long ticks);
  /// The replica is unreachable (attempts burn the full timeout) for
  /// `ticks` stream ticks; it keeps ingesting its feed (the network to
  /// the router is what broke, not the replica).
  Status PartitionReplica(int shard, int replica, long ticks);
  /// Skews the replica's injected clock by `skew_ms`, applied *inside*
  /// its next neural inference section — a deterministic mid-inference
  /// clock jump, the worst case for deadline accounting.
  Status SkewReplicaClock(int shard, int replica, double skew_ms);
  /// Flips one byte in the middle of the replica's newest checkpoint
  /// file; the next restart must fall back a generation.
  Status CorruptNewestCheckpoint(int shard, int replica);

  bool ReplicaAlive(int shard, int replica) const;

  // --- introspection -------------------------------------------------
  long next_tick() const { return next_tick_; }
  long warmup_end() const { return warm_end_; }
  long last_servable_tick() const;
  int num_shards() const { return config_.num_shards; }
  int replicas_per_shard() const { return config_.replicas_per_shard; }
  int num_adjacent() const { return num_adjacent_; }
  int target_road(int shard) const;
  const apots::traffic::RoadGraph& graph() const { return graph_; }
  const apots::traffic::Partition& partition() const { return partition_; }
  const apots::traffic::TrafficDataset& truth() const { return truth_; }
  VirtualClock& clock() { return clock_; }
  const ShardedConfig& config() const { return config_; }
  /// Responses of the most recent RunTick, per shard.
  const std::vector<ShardedResponse>& last_responses(int shard) const;
  const std::vector<long>& last_anchors() const { return last_anchors_; }
  /// Per-source applied exchange epoch of a replica (-1 = never).
  long applied_epoch(int shard, int replica, int source_shard) const;

  /// Aggregated report (includes torn-down replicas' serve reports).
  ShardedReport report() const;

 private:
  struct Replica {
    std::unique_ptr<apots::traffic::TrafficDataset> live;
    std::unique_ptr<apots::core::ApotsModel> model;
    std::unique_ptr<StreamIngestor> ingestor;
    std::unique_ptr<ServingSupervisor> supervisor;
    std::unique_ptr<FaultyFeed> feed;
    bool alive = false;
    long partitioned_until = -1;  ///< tick (exclusive) the partition heals
    long stalled_until = -1;
    double stall_ms = 0.0;
    std::atomic<int64_t> skew_ns{0};
    int64_t pending_jump_ns = 0;
    int64_t quarantined_until_ns = -1;
    std::string checkpoint_dir;
    /// source shard -> newest boundary epoch applied.
    std::map<int, long> applied_epoch;
  };
  struct Shard {
    int target_road = 0;
    std::vector<int> window_roads;   ///< own + halo roads of the window
    std::vector<int> halo_roads;     ///< window roads owned elsewhere
    std::vector<int> spanning_shards;///< owners of halo_roads (!= this)
    std::vector<int> publish_roads;  ///< own roads some consumer imports
    int preferred = 0;               ///< round-robin cursor
    std::vector<std::unique_ptr<Replica>> replicas;
  };
  /// Latest boundary snapshot per source shard.
  struct BoundarySnapshot {
    long epoch = -1;
    uint64_t seq = 0;
    std::vector<FeedRecord> records;
  };

  void BuildReplica(int shard, int replica);
  /// Whether the router may try the replica right now (alive and not
  /// partitioned; stalls are discovered by the attempt itself).
  bool Reachable(const Replica& rep, long tick) const;
  int FirstLiveReplica(int shard) const;
  void PublishBoundary(int shard, long tick);
  void ApplyBoundary(int shard, int replica, long tick);
  void IngestTickInto(int shard, int replica, long tick);
  std::vector<ShardedResponse> LadderAnswer(int shard,
                                            const std::vector<long>& anchors);

  ShardedConfig config_;
  apots::traffic::TrafficDataset truth_;
  apots::traffic::RoadGraph graph_;
  apots::traffic::Partition partition_;
  long warm_end_ = 0;
  int num_adjacent_ = 0;
  std::vector<apots::baseline::HistoricalAverage> profiles_;
  std::vector<Shard> shards_;
  /// Registered what-if contexts, re-applied to every rebuilt replica
  /// (ordered so re-application is deterministic).
  std::map<uint64_t, apots::data::ContextSpec> registered_contexts_;
  std::vector<BoundarySnapshot> bus_;
  uint64_t next_snapshot_seq_ = 0;
  VirtualClock clock_;
  long next_tick_ = 0;
  std::vector<long> last_anchors_;
  std::vector<std::vector<ShardedResponse>> last_responses_;
  mutable RouterStats router_stats_;
  ExchangeStats exchange_stats_;
  std::vector<double> failover_latency_ms_;
  ServeReport dead_replica_reports_;  ///< reports of torn-down stacks
  uint64_t kills_ = 0, restarts_ = 0, stalls_ = 0, partitions_ = 0,
           clock_skews_ = 0, checkpoint_corruptions_ = 0;
};

}  // namespace apots::serve

#endif  // APOTS_SERVE_SHARDED_SERVICE_H_
