#ifndef APOTS_SERVE_SERVING_SUPERVISOR_H_
#define APOTS_SERVE_SERVING_SUPERVISOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baseline/historical_average.h"
#include "core/apots_model.h"
#include "data/context.h"
#include "nn/checkpoint.h"
#include "serve/stream_ingestor.h"
#include "traffic/road_graph.h"
#include "util/status.h"

namespace apots::serve {

/// How a prediction was produced, from best to worst. The ladder degrades
/// by *input staleness*: a model is only as good as the window it reads.
enum class ServeTier {
  kFull = 0,       ///< fresh window, full APOTS prediction
  kImputed,        ///< APOTS over an imputed window — flagged degraded
  kHistorical,     ///< window too stale for the model: time-of-day profile
  kLastKnownGood,  ///< total outage: last good residual, decayed
};
constexpr int kNumServeTiers = 4;
const char* ServeTierName(ServeTier tier);

/// Ladder thresholds and protection limits, in watermark ticks / wall ms.
struct ServeConfig {
  /// Worst window-road staleness up to which the window counts as fresh.
  long t1_fresh = 2;
  /// ... up to which APOTS still runs over the imputed window (LOCF keeps
  /// short gaps honest; beyond this the window is mostly fabricated).
  long t2_imputed = 12;
  /// ... up to which the historical profile is served; beyond it the road
  /// is in total outage and only the decayed last-known-good remains.
  long t3_outage = 96;

  /// Per-Predict wall budget in ms; 0 = unbounded. When the cost model
  /// projects an overrun, neural anchors are served from the historical
  /// tier instead (cheap, no forward pass).
  double deadline_ms = 0.0;
  /// Stuck-worker watchdog: a neural inference exceeding this trips the
  /// watchdog thread and the *next* Predict degrades to historical while
  /// the flag is up. 0 disables the watchdog.
  double watchdog_timeout_ms = 0.0;

  /// Checkpoint every N watermark ticks through MaybeCheckpoint; 0 never.
  long checkpoint_every = 0;
  std::string checkpoint_dir;
  int checkpoint_keep = 3;

  /// Last-known-good residual decay per tick of age.
  double lkg_decay = 0.9;

  /// Injectable monotonic clock in nanoseconds; null means
  /// std::chrono::steady_clock. Every time read on the serving path — the
  /// per-call deadline measurement, the EMA cost model, the watchdog's
  /// armed-at stamps, and the frontend's admission deadlines — goes
  /// through this, so chaos clock-skew drills can shift one replica's
  /// notion of time deterministically.
  std::function<int64_t()> now_ns;
};

/// One served prediction.
struct ServeResponse {
  double kmh = 0.0;
  ServeTier tier = ServeTier::kFull;
  long staleness = 0;        ///< worst window-road staleness at serve time
  bool deadline_miss = false;
};

/// Aggregate serving health; availability is the headline SLO.
struct ServeReport {
  uint64_t requests = 0;
  uint64_t tier_counts[kNumServeTiers] = {0, 0, 0, 0};
  uint64_t failures = 0;           ///< anchors no tier could serve
  uint64_t deadline_misses = 0;    ///< Predict calls over budget
  uint64_t deadline_degraded = 0;  ///< anchors pre-degraded to meet it
  uint64_t watchdog_trips = 0;
  uint64_t checkpoints_written = 0;
  long max_staleness = 0;

  /// Fraction of requests answered by *some* tier.
  double availability() const {
    return requests == 0
               ? 1.0
               : 1.0 - static_cast<double>(failures) / requests;
  }
  void MergeFrom(const ServeReport& other);
};

/// Background stall detector for the inference path. The serving thread
/// arms it around each neural batch; a sampler thread trips when one
/// batch overstays the timeout. Communication is lock-free (atomics
/// only) so the hot path never blocks on the watchdog.
class ServeWatchdog {
 public:
  /// `now_ns` must match the clock the serving thread stamps Arm() with;
  /// null means steady_clock (the production default).
  explicit ServeWatchdog(double timeout_ms,
                         std::function<int64_t()> now_ns = nullptr);
  ~ServeWatchdog();

  ServeWatchdog(const ServeWatchdog&) = delete;
  ServeWatchdog& operator=(const ServeWatchdog&) = delete;

  void Arm();
  void Disarm();
  /// True when a stall was detected since the last call; clears the flag.
  bool ConsumeStuck();
  uint64_t trips() const { return trips_.load(std::memory_order_relaxed); }

 private:
  void Run();
  int64_t Now() const;

  const double timeout_ms_;
  const std::function<int64_t()> now_ns_;
  std::atomic<bool> quit_{false};
  std::atomic<bool> in_flight_{false};
  std::atomic<bool> tripped_this_flight_{false};
  std::atomic<bool> stuck_{false};
  std::atomic<int64_t> armed_at_ns_{0};
  std::atomic<uint64_t> trips_{0};
  std::thread thread_;
};

/// Fault-tolerant serving facade over a trained ApotsModel.
///
/// Per anchor, the supervisor reads the worst staleness across the roads
/// feeding the anchor's input window and picks the tier (see ServeTier).
/// Fresh and imputed anchors share one batched pass through the model's
/// InferenceRuntime — with faults disabled, responses are bitwise
/// identical to InferenceRuntime::Predict because subset batching is
/// bitwise-stable (DESIGN.md §10) and the km/h conversion is the same
/// float->double path ApotsModel::PredictKmh uses.
///
/// Protection: a per-call deadline degrades neural anchors to the
/// historical tier when the EMA cost model projects an overrun, and the
/// watchdog degrades the call after a stuck inference. Checkpoints
/// (weights + ingestor state as the aux blob) are atomic and
/// generation-retained; Recover() restores the newest uncorrupted
/// generation and the ingestor watermark.
class ServingSupervisor {
 public:
  /// All borrowed; must outlive the supervisor. `fallback` must be fitted
  /// (it backs the historical and last-known-good tiers). With a `graph`,
  /// the staleness window is the set of roads within `num_adjacent` hops
  /// of the target — on a corridor graph that is exactly the legacy
  /// contiguous index range, so behavior (and the clean path) is
  /// unchanged; null keeps the index-range computation.
  ServingSupervisor(apots::core::ApotsModel* model, StreamIngestor* ingestor,
                    const apots::baseline::HistoricalAverage* fallback,
                    ServeConfig config,
                    const apots::traffic::RoadGraph* graph = nullptr);
  ~ServingSupervisor();

  /// Serves one batch of anchors. Never throws and never aborts on a
  /// servable anchor; anchors whose window or target falls outside the
  /// dataset are counted as failures and answered with the profile's
  /// nearest in-range value (or 0 when even that is impossible).
  std::vector<ServeResponse> Predict(const std::vector<long>& anchors);

  /// Same, under a caller-supplied wall budget instead of the configured
  /// one — the front door propagates the tightest remaining per-request
  /// deadline of a coalesced batch through here so the EMA pre-degradation
  /// model protects real request deadlines, not just the static config.
  /// `deadline_ms <= 0` means unbounded (identical to deadline-free
  /// config; the clean path stays bitwise unchanged).
  std::vector<ServeResponse> Predict(const std::vector<long>& anchors,
                                     double deadline_ms);

  /// Heterogeneous (anchor, context) batch — the counterfactual what-if
  /// serving path. The staleness ladder, deadline pre-degradation, and
  /// watchdog apply per anchor exactly as in Predict (a counterfactual
  /// reads the same live window); neural tiers evaluate under the item's
  /// registered context, while the degraded tiers answer from the base
  /// historical profile (counterfactuals perturb model inputs, not the
  /// time-of-day climatology). Context-0 items are bitwise identical to
  /// Predict, and only context-0 full-tier responses feed the
  /// last-known-good state — counterfactual traffic never pollutes live
  /// serving state.
  std::vector<ServeResponse> PredictItems(
      const std::vector<apots::core::WorkItem>& items);
  std::vector<ServeResponse> PredictItems(
      const std::vector<apots::core::WorkItem>& items, double deadline_ms);

  /// Registers (or replaces) counterfactual context `id` on this
  /// supervisor's table. The table is attached to the served model's
  /// runtime at construction, so registered ids resolve on the next
  /// PredictItems without any further wiring.
  Status RegisterContext(uint64_t id, apots::data::ContextSpec spec);
  const apots::data::ContextTable& context_table() const {
    return context_table_;
  }

  /// Tier the ladder would assign to `anchor` right now.
  ServeTier TierFor(long anchor) const;
  /// Worst staleness across the roads feeding `anchor`'s window.
  long WindowStaleness(long anchor) const;

  /// Writes a checkpoint when `checkpoint_every` ticks elapsed since the
  /// last one. Returns true when a checkpoint was written.
  bool MaybeCheckpoint(long tick);
  /// Unconditional checkpoint (weights + ingestor state).
  Status CheckpointNow();
  /// Restores weights and ingestor state from the newest readable
  /// generation; falls back generation by generation on corruption.
  Result<apots::nn::CheckpointStore::RecoverInfo> Recover();

  const ServeReport& report() const;
  const ServeConfig& config() const { return config_; }
  /// The profile backing the degraded tiers (borrowed). Exposed so the
  /// front door can answer overload sheds from the ladder's historical
  /// tier without entering Predict: the profile is immutable after Fit and
  /// reads only the dataset's calendar, so this is safe from any thread.
  const apots::baseline::HistoricalAverage& fallback() const {
    return *fallback_;
  }
  /// Read-only view of the served model (window geometry, dataset).
  const apots::core::ApotsModel& model() const { return *model_; }
  const Status& last_checkpoint_status() const {
    return last_checkpoint_status_;
  }
  apots::nn::CheckpointStore* checkpoint_store() { return store_.get(); }

  /// Test hook: runs inside every neural inference section (e.g. a sleep
  /// to trip the watchdog). Not for production use.
  void set_inference_delay_for_test(std::function<void()> hook) {
    inference_delay_for_test_ = std::move(hook);
  }

 private:
  double LastKnownGood(long target_interval);
  int64_t Now() const;

  apots::core::ApotsModel* model_;                          // not owned
  StreamIngestor* ingestor_;                                // not owned
  const apots::baseline::HistoricalAverage* fallback_;      // not owned
  ServeConfig config_;
  /// Registered counterfactual contexts; attached to the model's runtime
  /// for the supervisor's lifetime (detached in the destructor).
  apots::data::ContextTable context_table_;
  /// Roads feeding the target's input window (sorted). Graph-derived when
  /// a RoadGraph is supplied, else the contiguous [target-m, target+m].
  std::vector<int> window_roads_;
  std::unique_ptr<apots::nn::CheckpointStore> store_;
  std::unique_ptr<ServeWatchdog> watchdog_;
  mutable ServeReport report_;
  Status last_checkpoint_status_;
  long last_checkpoint_tick_;
  /// EMA of neural cost per anchor, feeding the deadline projection.
  double ema_ms_per_anchor_ = 0.0;
  /// Last-known-good state: the newest fresh neural response.
  bool has_lkg_ = false;
  double lkg_kmh_ = 0.0;
  double lkg_profile_kmh_ = 0.0;
  long lkg_interval_ = 0;
  std::function<void()> inference_delay_for_test_;
};

}  // namespace apots::serve

#endif  // APOTS_SERVE_SERVING_SUPERVISOR_H_
