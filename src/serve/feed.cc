#include "serve/feed.h"

#include <algorithm>

#include "util/logging.h"

namespace apots::serve {

FeedFaultSpec FeedFaultSpec::Clean() {
  FeedFaultSpec spec;
  spec.enabled = false;
  return spec;
}

FeedFaultSpec FeedFaultSpec::Storm(uint64_t seed) {
  FeedFaultSpec spec;
  spec.enabled = true;
  spec.delay_prob = 0.15;
  spec.delay_min = 1;
  spec.delay_max = 12;
  spec.duplicate_prob = 0.08;
  spec.drop_prob = 0.04;
  spec.outage_prob = 0.01;
  spec.outage_min = 12;
  spec.outage_max = 60;
  spec.torn_tick_prob = 0.10;
  spec.seed = seed;
  return spec;
}

FaultyFeed::FaultyFeed(const apots::traffic::TrafficDataset* truth,
                       long start_interval, FeedFaultSpec spec)
    : truth_(truth),
      spec_(spec),
      rng_(spec.seed),
      next_generate_(start_interval) {
  APOTS_CHECK(truth != nullptr);
  APOTS_CHECK(start_interval >= 0);
  outage_until_.assign(static_cast<size_t>(truth_->num_roads()), -1);
}

void FaultyFeed::GenerateTick(long t) {
  const int roads = truth_->num_roads();
  // A torn tick delays a random suffix of the batch by one tick, so the
  // consumer sees a partial interval on time and the rest trickles in.
  const bool torn =
      spec_.enabled && roads > 1 && rng_.Bernoulli(spec_.torn_tick_prob);
  const int torn_from =
      torn ? 1 + static_cast<int>(rng_.UniformInt(
                     static_cast<uint64_t>(roads - 1)))
           : roads;
  if (torn) ++stats_.torn_ticks;

  for (int road = 0; road < roads; ++road) {
    FeedRecord rec;
    rec.interval = t;
    rec.road = road;
    rec.speed_kmh = truth_->Speed(road, t);
    // Poisoning compromises the sensor itself, before any delivery fault,
    // and deliberately consumes no RNG draws — the delivery pattern is
    // bit-identical with poisoning on or off, so attack experiments
    // isolate the value corruption from the transport behavior.
    if (spec_.poison && poison_plan_ != nullptr) {
      const float delta = poison_plan_->Delta(road, t);
      if (delta != 0.0f) {
        rec.speed_kmh =
            std::clamp(rec.speed_kmh + delta, poison_budget_.min_kmh,
                       poison_budget_.max_kmh);
        ++stats_.poisoned;
      }
    }
    rec.seq = next_seq_++;
    ++stats_.generated;

    if (spec_.enabled) {
      if (outage_until_[static_cast<size_t>(road)] >= t) {
        ++stats_.dropped;  // road is dark; reading lost on the floor
        continue;
      }
      if (rng_.Bernoulli(spec_.outage_prob)) {
        const long len =
            spec_.outage_min +
            static_cast<long>(rng_.UniformInt(static_cast<uint64_t>(
                spec_.outage_max - spec_.outage_min + 1)));
        outage_until_[static_cast<size_t>(road)] = t + len - 1;
        ++stats_.dropped;
        continue;
      }
      if (rng_.Bernoulli(spec_.drop_prob)) {
        ++stats_.dropped;
        continue;
      }
      long arrival = t;
      if (road >= torn_from) {
        arrival = t + 1;
        ++stats_.delayed;
      } else if (rng_.Bernoulli(spec_.delay_prob)) {
        arrival = t + spec_.delay_min +
                  static_cast<long>(rng_.UniformInt(static_cast<uint64_t>(
                      spec_.delay_max - spec_.delay_min + 1)));
        ++stats_.delayed;
      }
      pending_[arrival].push_back(rec);
      if (rng_.Bernoulli(spec_.duplicate_prob)) {
        FeedRecord dup = rec;
        dup.seq = next_seq_++;
        pending_[arrival +
                 static_cast<long>(rng_.UniformInt(3))].push_back(dup);
        ++stats_.duplicated;
      }
    } else {
      pending_[t].push_back(rec);
    }
  }
}

std::vector<FeedRecord> FaultyFeed::Poll(long tick) {
  while (next_generate_ <= tick &&
         next_generate_ < truth_->num_intervals()) {
    GenerateTick(next_generate_);
    ++next_generate_;
  }
  std::vector<FeedRecord> batch;
  // Everything due at or before `tick` is delivered now, so a caller that
  // skips ticks still sees every record exactly once.
  while (!pending_.empty() && pending_.begin()->first <= tick) {
    auto node = pending_.begin();
    batch.insert(batch.end(), node->second.begin(), node->second.end());
    pending_.erase(node);
  }
  if (spec_.enabled && batch.size() > 1) {
    // Within-tick arrival order is arbitrary in a real feed.
    std::vector<size_t> order(batch.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng_.Shuffle(&order);
    std::vector<FeedRecord> shuffled(batch.size());
    for (size_t i = 0; i < order.size(); ++i) shuffled[i] = batch[order[i]];
    batch.swap(shuffled);
  }
  return batch;
}

bool FaultyFeed::Exhausted() const {
  return next_generate_ >= truth_->num_intervals() && pending_.empty();
}

void FaultyFeed::AttachPoison(const apots::attack::PerturbationPlan* plan,
                              apots::attack::PlausibilityBudget budget) {
  poison_plan_ = plan;
  poison_budget_ = budget;
}

}  // namespace apots::serve
