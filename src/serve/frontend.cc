#include "serve/frontend.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "core/apots_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace apots::serve {

namespace {

/// Front-door instruments (DESIGN.md §12/§14): admission, shedding,
/// coalescing, and queueing health.
struct FrontendMetrics {
  obs::Gauge& queue_depth;
  obs::Counter& submitted;
  obs::Counter& served;
  obs::Counter& coalesce_hits;
  obs::Counter& shed_overload;
  obs::Counter& shed_deadline;
  obs::Counter& deadline_misses;
  obs::Counter& inference_calls;
  obs::Histogram& queue_ms;
  obs::Histogram& latency_ms;
  static FrontendMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Default();
    static FrontendMetrics* metrics = new FrontendMetrics{
        registry.GetGauge("frontend.queue_depth"),
        registry.GetCounter("frontend.submitted"),
        registry.GetCounter("frontend.served"),
        registry.GetCounter("frontend.coalesce_hits"),
        registry.GetCounter("frontend.shed_overload"),
        registry.GetCounter("frontend.shed_deadline"),
        registry.GetCounter("frontend.deadline_misses"),
        registry.GetCounter("frontend.inference_calls"),
        registry.GetHistogram("frontend.queue_ms"),
        registry.GetHistogram("frontend.latency_ms"),
    };
    return *metrics;
  }
};

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

FrontendConfig SanitizeFrontendConfig(FrontendConfig config) {
  if (config.queue_capacity < 2) config.queue_capacity = 2;
  if (config.max_batch == 0) config.max_batch = 1;
  if (config.default_deadline_ms < 0.0) config.default_deadline_ms = 0.0;
  if (config.idle_sleep_us < 0.0) config.idle_sleep_us = 0.0;
  return config;
}

const char* RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kServed:
      return "served";
    case RequestOutcome::kCoalesced:
      return "coalesced";
    case RequestOutcome::kShedDeadline:
      return "shed-deadline";
    case RequestOutcome::kShedOverload:
      return "shed-overload";
  }
  return "unknown";
}

Frontend::Frontend(ServingSupervisor* supervisor, FrontendConfig config)
    : supervisor_(supervisor),
      config_(SanitizeFrontendConfig(config)),
      beta_(0),
      queue_(config_.queue_capacity) {
  APOTS_CHECK(supervisor != nullptr);
  beta_ = supervisor_->model().assembler().beta();
  // Inherit the supervisor's injected clock so the admission-deadline path
  // and the serving path agree on "now" under chaos clock skew; an explicit
  // set_clock_for_test still overrides this.
  if (!clock_ && supervisor_->config().now_ns) {
    clock_ = supervisor_->config().now_ns;
  }
  if (config_.background) {
    thread_ = std::thread([this] { Run(); });
  }
}

Frontend::~Frontend() { Stop(); }

int64_t Frontend::NowNs() const {
  return clock_ ? clock_() : SteadyNowNs();
}

ServeResponse Frontend::LadderAnswer(long anchor) const {
  // The shed tier: the time-of-day profile, which after Fit reads only
  // its own table plus the dataset's immutable calendar — never the live
  // speed cells the ingestor mutates — so producers can compute it at
  // admission while the consumer runs inference.
  const auto& dataset = supervisor_->model().assembler().dataset();
  ServeResponse response;
  response.tier = ServeTier::kHistorical;
  const long intervals = dataset.num_intervals();
  if (intervals > 0) {
    const long target =
        std::min(std::max(anchor + beta_, 0L), intervals - 1);
    response.kmh = supervisor_->fallback().Predict(dataset, target);
  }
  return response;
}

void Frontend::Complete(PendingResponse* pending,
                        const ServeResponse& serve, RequestOutcome outcome,
                        int64_t drained_ns, int64_t done_ns) {
  pending->response_.serve = serve;
  pending->response_.outcome = outcome;
  pending->response_.queue_ms =
      static_cast<double>(drained_ns - pending->enqueue_ns) / 1e6;
  pending->response_.total_ms =
      static_cast<double>(done_ns - pending->enqueue_ns) / 1e6;
  pending->ready_.store(true, std::memory_order_release);
  pending->ready_.notify_all();
  auto& metrics = FrontendMetrics::Get();
  metrics.queue_ms.Record(pending->response_.queue_ms);
  if (outcome == RequestOutcome::kServed ||
      outcome == RequestOutcome::kCoalesced) {
    // Sheds are answered in O(1); folding them into the latency
    // distribution would make overload look fast. They are counted, not
    // timed.
    metrics.latency_ms.Record(pending->response_.total_ms);
  }
}

std::shared_ptr<PendingResponse> Frontend::SubmitAsync(
    const FrontendRequest& request) {
  auto pending = std::make_shared<PendingResponse>();
  pending->request_ = request;
  if (pending->request_.deadline_ms < 0.0) {
    pending->request_.deadline_ms = config_.default_deadline_ms;
  }
  pending->enqueue_ns = NowNs();
  pending->deadline_ns =
      pending->request_.deadline_ms > 0.0
          ? pending->enqueue_ns +
                static_cast<int64_t>(pending->request_.deadline_ms * 1e6)
          : 0;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto& metrics = FrontendMetrics::Get();
  metrics.submitted.Add();

  const bool admitted = !stopped_.load(std::memory_order_acquire) &&
                        queue_.TryPush(pending);
  if (!admitted) {
    // Admission control: never block, never buffer beyond the ring —
    // answer from the ladder right here on the producer thread.
    shed_overload_.fetch_add(1, std::memory_order_relaxed);
    metrics.shed_overload.Add();
    Complete(pending.get(), LadderAnswer(request.anchor),
             RequestOutcome::kShedOverload, pending->enqueue_ns, NowNs());
    return pending;
  }

  const size_t depth = depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  metrics.queue_depth.Set(static_cast<double>(depth));
  uint64_t seen = max_queue_depth_.load(std::memory_order_relaxed);
  while (depth > seen && !max_queue_depth_.compare_exchange_weak(
                             seen, depth, std::memory_order_relaxed)) {
  }
  return pending;
}

FrontendResponse Frontend::Submit(const FrontendRequest& request) {
  return SubmitAsync(request)->Wait();
}

size_t Frontend::RunCycle() {
  std::vector<std::shared_ptr<PendingResponse>> drained;
  drained.reserve(config_.max_batch);
  std::shared_ptr<PendingResponse> item;
  while (drained.size() < config_.max_batch && queue_.TryPop(&item)) {
    drained.push_back(std::move(item));
  }
  if (drained.empty()) return 0;
  depth_.fetch_sub(drained.size(), std::memory_order_relaxed);
  auto& metrics = FrontendMetrics::Get();
  metrics.queue_depth.Set(
      static_cast<double>(depth_.load(std::memory_order_relaxed)));
  cycles_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceSpan span("frontend.cycle");

  const int64_t drained_ns = NowNs();

  // Deadline propagation, half one: a request already past its deadline
  // is answered from the ladder instead of occupying a batch slot.
  // Coalescing: first-arrival order of (anchor, context) keys; duplicates
  // attach to their key's group and share the inference below. Contexts
  // ride the same machinery — a counterfactual request simply carries its
  // context id into the supervisor's heterogeneous batch.
  std::vector<apots::core::WorkItem> work;
  std::vector<std::vector<std::shared_ptr<PendingResponse>>> groups;
  std::map<std::pair<long, uint64_t>, size_t> key_index;
  int64_t tightest_deadline_ns = 0;
  for (auto& pending : drained) {
    if (pending->deadline_ns > 0 && drained_ns > pending->deadline_ns) {
      shed_deadline_.fetch_add(1, std::memory_order_relaxed);
      metrics.shed_deadline.Add();
      metrics.deadline_misses.Add();
      Complete(pending.get(), LadderAnswer(pending->request_.anchor),
               RequestOutcome::kShedDeadline, drained_ns, NowNs());
      continue;
    }
    if (pending->deadline_ns > 0 &&
        (tightest_deadline_ns == 0 ||
         pending->deadline_ns < tightest_deadline_ns)) {
      tightest_deadline_ns = pending->deadline_ns;
    }
    const std::pair<long, uint64_t> key{pending->request_.anchor,
                                        pending->request_.context};
    if (config_.coalesce) {
      auto [it, inserted] = key_index.try_emplace(key, groups.size());
      if (inserted) {
        work.push_back(
            {pending->request_.anchor, pending->request_.context});
        groups.emplace_back();
      }
      groups[it->second].push_back(std::move(pending));
    } else {
      work.push_back({pending->request_.anchor, pending->request_.context});
      groups.emplace_back();
      groups.back().push_back(std::move(pending));
    }
  }

  if (!work.empty()) {
    // Deadline propagation, half two: the batch runs under the tightest
    // surviving request budget so the supervisor's EMA pre-degradation
    // can keep the whole batch honest. No request deadlines -> the
    // supervisor's own configured budget applies unchanged.
    std::vector<ServeResponse> responses;
    if (tightest_deadline_ns > 0) {
      const double remaining_ms = std::max(
          0.001,
          static_cast<double>(tightest_deadline_ns - drained_ns) / 1e6);
      responses = supervisor_->PredictItems(work, remaining_ms);
    } else {
      responses = supervisor_->PredictItems(work);
    }
    inference_calls_.fetch_add(1, std::memory_order_relaxed);
    inferred_keys_.fetch_add(work.size(), std::memory_order_relaxed);
    metrics.inference_calls.Add();
    const int64_t done_ns = NowNs();
    for (size_t g = 0; g < groups.size(); ++g) {
      for (size_t j = 0; j < groups[g].size(); ++j) {
        // Fan-out copies the double unchanged: every coalesced caller
        // gets bits identical to the slot owner's.
        const RequestOutcome outcome = j == 0
                                           ? RequestOutcome::kServed
                                           : RequestOutcome::kCoalesced;
        if (j == 0) {
          served_.fetch_add(1, std::memory_order_relaxed);
          metrics.served.Add();
        } else {
          coalesce_hits_.fetch_add(1, std::memory_order_relaxed);
          metrics.coalesce_hits.Add();
        }
        Complete(groups[g][j].get(), responses[g], outcome, drained_ns,
                 done_ns);
      }
    }
  }
  return drained.size();
}

void Frontend::Run() {
  int idle_spins = 0;
  while (!quit_.load(std::memory_order_acquire)) {
    if (RunCycle() > 0) {
      idle_spins = 0;
      continue;
    }
    if (++idle_spins < 64) {
      std::this_thread::yield();
    } else if (config_.idle_sleep_us > 0.0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<int64_t>(config_.idle_sleep_us)));
    }
  }
}

void Frontend::Stop() {
  stopped_.store(true, std::memory_order_release);
  quit_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  // Answer stragglers so no waiter hangs; the supervisor is still valid
  // (it outlives the frontend by contract), so they are served normally.
  while (RunCycle() > 0) {
  }
}

FrontendStats Frontend::stats() const {
  FrontendStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.served = served_.load(std::memory_order_relaxed);
  stats.coalesce_hits = coalesce_hits_.load(std::memory_order_relaxed);
  stats.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  stats.shed_overload = shed_overload_.load(std::memory_order_relaxed);
  stats.cycles = cycles_.load(std::memory_order_relaxed);
  stats.inference_calls =
      inference_calls_.load(std::memory_order_relaxed);
  stats.inferred_keys = inferred_keys_.load(std::memory_order_relaxed);
  stats.max_queue_depth =
      max_queue_depth_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace apots::serve
