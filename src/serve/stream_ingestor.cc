#include "serve/stream_ingestor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace apots::serve {

namespace {

/// Stream-health instruments (DESIGN.md §12). The watermark gauges are the
/// serving dashboard's primary freshness signal.
struct IngestMetrics {
  obs::Counter& applied;
  obs::Counter& duplicates;
  obs::Counter& late;
  obs::Counter& rejected;
  obs::Counter& imputed;
  obs::Counter& cache_invalidations;
  obs::Gauge& watermark;
  obs::Gauge& watermark_lag;
  static IngestMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Default();
    static IngestMetrics* metrics = new IngestMetrics{
        registry.GetCounter("serve.ingest.applied"),
        registry.GetCounter("serve.ingest.duplicates"),
        registry.GetCounter("serve.ingest.late"),
        registry.GetCounter("serve.ingest.rejected"),
        registry.GetCounter("serve.ingest.imputed"),
        registry.GetCounter("serve.ingest.cache_invalidations"),
        registry.GetGauge("serve.ingest.watermark"),
        registry.GetGauge("serve.ingest.watermark_lag"),
    };
    return *metrics;
  }
};

constexpr uint32_t kStateMagic = 0x53494731;  // "SIG1"

template <typename T>
void AppendPod(std::string* blob, const T& value) {
  blob->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(const std::string& blob, size_t* cursor, T* value) {
  if (blob.size() - *cursor < sizeof(T)) return false;
  std::memcpy(value, blob.data() + *cursor, sizeof(T));
  *cursor += sizeof(T);
  return true;
}

}  // namespace

StreamIngestor::StreamIngestor(
    apots::traffic::TrafficDataset* live, long start_interval,
    apots::data::ImputationConfig imputation,
    std::function<float(int road, long t)> profile)
    : live_(live),
      start_(start_interval),
      watermark_(start_interval - 1),
      imputer_(live == nullptr ? 1 : live->num_roads(), imputation,
               std::move(profile)),
      observed_(live == nullptr ? 1 : live->num_roads(),
                live == nullptr ? 1 : live->num_intervals()) {
  APOTS_CHECK(live != nullptr);
  APOTS_CHECK(start_ > 0 && start_ <= live_->num_intervals());
  observed_.SetAll(false);
  for (int road = 0; road < live_->num_roads(); ++road) {
    for (long t = 0; t < start_; ++t) observed_.Set(road, t, true);
    // Seed LOCF with the newest warmup value so the first streamed gap can
    // carry forward across the warmup boundary.
    imputer_.Observe(road, start_ - 1, live_->Speed(road, start_ - 1));
  }
}

void StreamIngestor::AttachCache(apots::data::FeatureCache* cache,
                                 int target_road) {
  cache_ = cache;
  cache_road_ = target_road;
}

void StreamIngestor::AttachDetector(
    apots::attack::ResidualDetector* detector,
    std::function<float(int road, long t)> profile) {
  APOTS_CHECK(detector == nullptr || profile != nullptr);
  detector_ = detector;
  detector_profile_ = std::move(profile);
}

void StreamIngestor::TouchCache(long interval) {
  if (cache_ == nullptr) return;
  cache_->InvalidateKey({cache_road_, interval});
  ++stats_.cache_invalidations;
  IngestMetrics::Get().cache_invalidations.Add();
}

Status StreamIngestor::Ingest(const FeedRecord& record) {
  const Status bounds = live_->CheckBounds(record.road, record.interval);
  if (!bounds.ok()) {
    ++stats_.rejected;
    IngestMetrics::Get().rejected.Add();
    return bounds;
  }
  if (!std::isfinite(record.speed_kmh) || record.speed_kmh < 0.0f) {
    ++stats_.rejected;
    IngestMetrics::Get().rejected.Add();
    return Status::InvalidArgument(
        StrFormat("record for road %d interval %ld carries invalid speed",
                  record.road, record.interval));
  }
  if (record.interval < start_) {
    ++stats_.rejected;
    IngestMetrics::Get().rejected.Add();
    return Status::InvalidArgument(
        StrFormat("record for interval %ld predates the stream start %ld",
                  record.interval, start_));
  }
  if (observed_.Valid(record.road, record.interval)) {
    ++stats_.duplicates;  // idempotent: the first observation won
    IngestMetrics::Get().duplicates.Add();
    return Status::Ok();
  }
  live_->SetSpeed(record.road, record.interval, record.speed_kmh);
  observed_.Set(record.road, record.interval, true);
  imputer_.Observe(record.road, record.interval, record.speed_kmh);
  ++stats_.applied;
  IngestMetrics::Get().applied.Add();
  if (detector_ != nullptr) {
    detector_->Observe(record.road, record.speed_kmh,
                       detector_profile_(record.road, record.interval));
  }
  if (record.interval <= watermark_) {
    // Late reconciliation: the cell held an imputed value that cached
    // feature columns may already embed.
    ++stats_.late;
    IngestMetrics::Get().late.Add();
  }
  TouchCache(record.interval);
  return Status::Ok();
}

void StreamIngestor::AdvanceWatermark(long tick) {
  const long limit = live_->num_intervals() - 1;
  if (tick > limit) tick = limit;
  for (long t = watermark_ + 1; t <= tick; ++t) {
    bool changed = false;
    for (int road = 0; road < live_->num_roads(); ++road) {
      if (observed_.Valid(road, t)) continue;
      live_->SetSpeed(road, t, imputer_.Fill(road, t));
      ++stats_.imputed;
      IngestMetrics::Get().imputed.Add();
      changed = true;
    }
    if (changed) TouchCache(t);
  }
  if (tick > watermark_) watermark_ = tick;
  IngestMetrics::Get().watermark.Set(static_cast<double>(watermark_));
  long lag = 0;
  for (int road = 0; road < live_->num_roads(); ++road) {
    lag = std::max(lag, Staleness(road));
  }
  IngestMetrics::Get().watermark_lag.Set(static_cast<double>(lag));
}

long StreamIngestor::Staleness(int road) const {
  const long last = imputer_.last_observed(road);
  if (last < 0) return watermark_ - start_ + 1;
  return watermark_ - last;
}

std::string StreamIngestor::SerializeState() const {
  std::string blob;
  AppendPod(&blob, kStateMagic);
  AppendPod(&blob, static_cast<int32_t>(live_->num_roads()));
  AppendPod(&blob, static_cast<int64_t>(start_));
  AppendPod(&blob, static_cast<int64_t>(watermark_));
  for (int road = 0; road < live_->num_roads(); ++road) {
    AppendPod(&blob, static_cast<int64_t>(imputer_.last_observed(road)));
    AppendPod(&blob, imputer_.last_value(road));
  }
  AppendPod(&blob, stats_.applied);
  AppendPod(&blob, stats_.duplicates);
  AppendPod(&blob, stats_.late);
  AppendPod(&blob, stats_.rejected);
  AppendPod(&blob, stats_.imputed);
  AppendPod(&blob, stats_.cache_invalidations);
  return blob;
}

Status StreamIngestor::RestoreState(const std::string& blob) {
  size_t cursor = 0;
  uint32_t magic = 0;
  int32_t roads = 0;
  int64_t start = 0, watermark = 0;
  if (!ReadPod(blob, &cursor, &magic) || magic != kStateMagic) {
    return Status::InvalidArgument("ingestor state: bad magic");
  }
  if (!ReadPod(blob, &cursor, &roads) || !ReadPod(blob, &cursor, &start) ||
      !ReadPod(blob, &cursor, &watermark)) {
    return Status::InvalidArgument("ingestor state: truncated header");
  }
  if (roads != live_->num_roads()) {
    return Status::InvalidArgument(
        StrFormat("ingestor state describes %d roads, dataset has %d",
                  roads, live_->num_roads()));
  }
  if (start != static_cast<int64_t>(start_)) {
    return Status::InvalidArgument(
        StrFormat("ingestor state starts at %lld, stream at %ld",
                  static_cast<long long>(start), start_));
  }
  if (watermark < start_ - 1 || watermark >= live_->num_intervals()) {
    return Status::InvalidArgument("ingestor state: watermark out of range");
  }
  std::vector<std::pair<int64_t, float>> tails(static_cast<size_t>(roads));
  for (auto& [last_t, last_val] : tails) {
    if (!ReadPod(blob, &cursor, &last_t) ||
        !ReadPod(blob, &cursor, &last_val)) {
      return Status::InvalidArgument("ingestor state: truncated tails");
    }
  }
  Stats stats;
  if (!ReadPod(blob, &cursor, &stats.applied) ||
      !ReadPod(blob, &cursor, &stats.duplicates) ||
      !ReadPod(blob, &cursor, &stats.late) ||
      !ReadPod(blob, &cursor, &stats.rejected) ||
      !ReadPod(blob, &cursor, &stats.imputed) ||
      !ReadPod(blob, &cursor, &stats.cache_invalidations)) {
    return Status::InvalidArgument("ingestor state: truncated stats");
  }

  watermark_ = watermark;
  stats_ = stats;
  for (int road = 0; road < roads; ++road) {
    const auto& [last_t, last_val] = tails[static_cast<size_t>(road)];
    if (last_t < 0) continue;
    imputer_.Observe(road, last_t, last_val);
    if (last_t >= start_) {
      // The snapshot carries each road's newest real observation; restore
      // it as observed so LOCF and staleness pick up where they left off.
      live_->SetSpeed(road, last_t, last_val);
      observed_.Set(road, last_t, true);
    }
  }
  // The stream before the kill is gone; re-populate every streamed cell up
  // to the watermark from the imputer so feature windows read consistent
  // values. Cells stay unobserved, so a re-delivered record still wins.
  for (long t = start_; t <= watermark_; ++t) {
    for (int road = 0; road < live_->num_roads(); ++road) {
      if (observed_.Valid(road, t)) continue;
      live_->SetSpeed(road, t, imputer_.Fill(road, t));
    }
    TouchCache(t);
  }
  return Status::Ok();
}

}  // namespace apots::serve
