#ifndef APOTS_SERVE_HARNESS_H_
#define APOTS_SERVE_HARNESS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/attacker.h"
#include "attack/detector.h"
#include "baseline/historical_average.h"
#include "core/apots_model.h"
#include "serve/feed.h"
#include "serve/frontend.h"
#include "serve/serving_supervisor.h"
#include "serve/stream_ingestor.h"
#include "traffic/dataset_generator.h"

namespace apots::serve {

/// One self-contained serving simulation: ground truth, a live dataset
/// fed through the fault model, a model trained (or just initialized) on
/// the warmup window, and the full ingestor + supervisor stack.
struct HarnessConfig {
  apots::traffic::DatasetSpec spec = apots::traffic::DatasetSpec::Small();
  /// Leading fraction of the dataset treated as already-ingested history:
  /// profiles are fitted and the model is trained on it.
  double warmup_fraction = 0.5;
  apots::core::PredictorType predictor = apots::core::PredictorType::kFc;
  /// Width divisor for PredictorHparams::Scaled (CPU-friendly sims).
  size_t width_divisor = 16;
  /// 0 = serve with initialized weights (mechanics-only runs).
  int train_epochs = 0;
  uint64_t model_seed = 42;
  int alpha = 12;
  int beta = 3;
  FeedFaultSpec feed = FeedFaultSpec::Clean();
  ServeConfig serve;
  /// Inference-path knobs (batching, workspace, quantization) passed
  /// through to the model stack verbatim.
  apots::core::InferenceConfig inference;
  /// Trailing anchors served per tick (tick, tick-1, ...).
  int anchors_per_tick = 4;

  /// Adversarial-attack wiring (see DESIGN.md §13). When `enabled`, the
  /// harness builds a perturbation plan against the trained weights over
  /// the streamed region, attaches it to the feed, and stands up a
  /// ResidualDetector primed on warmup truth. Whether readings are
  /// actually poisoned is still `feed.poison` — machinery attached with
  /// poisoning off is the bitwise-identity arm of the robustness bench.
  struct AttackSetup {
    bool enabled = false;
    /// Black-box SPSA instead of white-box PGD.
    bool use_spsa = false;
    apots::attack::AttackConfig attack;
    apots::attack::DetectorConfig detector;
  };
  AttackSetup attack;
};

class SimulationHarness {
 public:
  explicit SimulationHarness(HarnessConfig config);

  /// Runs one tick: polls the feed, ingests, advances the watermark,
  /// serves this tick's anchors, and maybe checkpoints. Returns false
  /// once the simulation has consumed every servable tick.
  bool RunTick();

  /// Advances the stream one tick (poll, ingest, watermark, checkpoint)
  /// WITHOUT serving. Load benches use it to ingest the whole stream up
  /// front and then drive the frontend against a fresh, quiescent state.
  bool IngestTick();

  /// Routes RunTick's serving through a serve::Frontend over the
  /// supervisor (all tick anchors submitted concurrently, results awaited
  /// in order). The frontend is rebuilt on KillAndRecover. Call before
  /// the first tick.
  void EnableFrontend(FrontendConfig config);
  /// Null unless EnableFrontend was called.
  Frontend* frontend() { return frontend_.get(); }

  /// Anchors RunTick serves at `tick` (in-range trailing window).
  std::vector<long> TickAnchors(long tick) const;

  /// Responses of the most recent RunTick.
  const std::vector<ServeResponse>& last_responses() const {
    return last_responses_;
  }
  /// Anchors of the most recent RunTick.
  const std::vector<long>& last_anchors() const { return last_anchors_; }

  /// The bitwise-identity arm: the model facade's direct prediction path
  /// (fallback disabled, so exactly InferenceRuntime + UnscaleSpeed).
  std::vector<double> DirectPredictKmh(const std::vector<long>& anchors) {
    return model_->PredictKmh(anchors);
  }

  /// Flat copy of every trainable parameter, for bitwise comparisons.
  std::vector<std::vector<float>> ParamSnapshot();

  /// Simulates a process kill and cold restart: tears down the model,
  /// ingestor and supervisor, rebuilds them with `new_seed` (different
  /// init weights, empty live stream state) and recovers both from the
  /// checkpoint store. The feed resumes at the recovered watermark + 1.
  Result<apots::nn::CheckpointStore::RecoverInfo> KillAndRecover(
      uint64_t new_seed);

  /// Serving report accumulated across restarts.
  ServeReport report() const;

  long next_tick() const { return next_tick_; }
  long warmup_end() const { return warm_end_; }
  long last_servable_tick() const;
  const apots::traffic::TrafficDataset& truth() const { return truth_; }
  apots::core::ApotsModel& model() { return *model_; }
  StreamIngestor& ingestor() { return *ingestor_; }
  ServingSupervisor& supervisor() { return *supervisor_; }
  FaultyFeed& feed() { return *feed_; }
  int target_road() const { return target_road_; }

  /// Attack surface (valid only when `config.attack.enabled`).
  const apots::attack::PerturbationPlan& attack_plan() const {
    return attack_plan_;
  }
  const apots::attack::AttackStats& attack_stats() const {
    return attack_stats_;
  }
  /// Null unless the attack setup is enabled. The detector deliberately
  /// survives KillAndRecover: it models external monitoring, not process
  /// state.
  apots::attack::ResidualDetector* detector() { return detector_.get(); }

 private:
  void BuildStack(uint64_t model_seed);
  /// Builds the perturbation plan and detector against the trained model.
  void BuildAttack();
  /// (Re-)attaches the detector to the current ingestor.
  void AttachDetector();
  /// Poll + ingest + watermark for one tick (shared by RunTick and
  /// IngestTick).
  void IngestAt(long tick);

  HarnessConfig config_;
  apots::traffic::TrafficDataset truth_;
  apots::traffic::TrafficDataset live_;
  long warm_end_;
  int target_road_;
  std::vector<apots::baseline::HistoricalAverage> profiles_;
  std::unique_ptr<apots::core::ApotsModel> model_;
  std::unique_ptr<StreamIngestor> ingestor_;
  std::unique_ptr<ServingSupervisor> supervisor_;
  std::unique_ptr<Frontend> frontend_;
  bool frontend_enabled_ = false;
  FrontendConfig frontend_config_;
  std::unique_ptr<FaultyFeed> feed_;
  apots::attack::PerturbationPlan attack_plan_;
  apots::attack::AttackStats attack_stats_;
  std::unique_ptr<apots::attack::ResidualDetector> detector_;
  long next_tick_;
  ServeReport merged_report_;  ///< reports of torn-down supervisors
  std::vector<long> last_anchors_;
  std::vector<ServeResponse> last_responses_;
};

}  // namespace apots::serve

#endif  // APOTS_SERVE_HARNESS_H_
