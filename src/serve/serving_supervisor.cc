#include "serve/serving_supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace apots::serve {

using apots::tensor::Tensor;

namespace {

/// Serving-path instruments (DESIGN.md §12): one counter per degradation
/// tier, the deadline-miss latency histogram, and protection counters.
struct ServeMetrics {
  obs::Counter* tiers[kNumServeTiers];  // pointers: arrays of references
                                        // are not a thing
  obs::Histogram& predict_ms;
  obs::Counter& requests;
  obs::Counter& failures;
  obs::Counter& deadline_misses;
  obs::Counter& deadline_degraded;
  obs::Counter& watchdog_trips;
  obs::Counter& checkpoints;
  obs::Gauge& max_staleness;
  static ServeMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Default();
    static ServeMetrics* metrics = new ServeMetrics{
        {&registry.GetCounter("serve.tier_full"),
         &registry.GetCounter("serve.tier_imputed"),
         &registry.GetCounter("serve.tier_historical"),
         &registry.GetCounter("serve.tier_last_known_good")},
        registry.GetHistogram("serve.predict_ms"),
        registry.GetCounter("serve.requests"),
        registry.GetCounter("serve.failures"),
        registry.GetCounter("serve.deadline_misses"),
        registry.GetCounter("serve.deadline_degraded"),
        registry.GetCounter("serve.watchdog_trips"),
        registry.GetCounter("serve.checkpoints_written"),
        registry.GetGauge("serve.max_staleness"),
    };
    return *metrics;
  }
};

}  // namespace

const char* ServeTierName(ServeTier tier) {
  switch (tier) {
    case ServeTier::kFull:
      return "full";
    case ServeTier::kImputed:
      return "imputed";
    case ServeTier::kHistorical:
      return "historical";
    case ServeTier::kLastKnownGood:
      return "last-known-good";
  }
  return "unknown";
}

void ServeReport::MergeFrom(const ServeReport& other) {
  requests += other.requests;
  for (int i = 0; i < kNumServeTiers; ++i) {
    tier_counts[i] += other.tier_counts[i];
  }
  failures += other.failures;
  deadline_misses += other.deadline_misses;
  deadline_degraded += other.deadline_degraded;
  watchdog_trips += other.watchdog_trips;
  checkpoints_written += other.checkpoints_written;
  max_staleness = std::max(max_staleness, other.max_staleness);
}

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeWatchdog::ServeWatchdog(double timeout_ms,
                             std::function<int64_t()> now_ns)
    : timeout_ms_(timeout_ms), now_ns_(std::move(now_ns)) {
  APOTS_CHECK(timeout_ms_ > 0.0);
  thread_ = std::thread([this] { Run(); });
}

int64_t ServeWatchdog::Now() const {
  return now_ns_ ? now_ns_() : SteadyNowNs();
}

ServeWatchdog::~ServeWatchdog() {
  quit_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void ServeWatchdog::Arm() {
  armed_at_ns_.store(Now(), std::memory_order_release);
  tripped_this_flight_.store(false, std::memory_order_release);
  in_flight_.store(true, std::memory_order_release);
}

void ServeWatchdog::Disarm() {
  in_flight_.store(false, std::memory_order_release);
}

bool ServeWatchdog::ConsumeStuck() {
  return stuck_.exchange(false, std::memory_order_acq_rel);
}

void ServeWatchdog::Run() {
  // Sample at a quarter of the timeout so a stall is noticed within ~1.25
  // timeouts; floor the period to keep the sampler from busy-spinning.
  const auto period = std::chrono::microseconds(
      std::max<int64_t>(200, static_cast<int64_t>(timeout_ms_ * 250.0)));
  while (!quit_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(period);
    if (!in_flight_.load(std::memory_order_acquire)) continue;
    if (tripped_this_flight_.load(std::memory_order_acquire)) continue;
    const double elapsed_ms =
        static_cast<double>(Now() -
                            armed_at_ns_.load(std::memory_order_acquire)) /
        1e6;
    if (elapsed_ms > timeout_ms_) {
      tripped_this_flight_.store(true, std::memory_order_release);
      stuck_.store(true, std::memory_order_release);
      trips_.fetch_add(1, std::memory_order_relaxed);
      ServeMetrics::Get().watchdog_trips.Add();
    }
  }
}

ServingSupervisor::ServingSupervisor(
    apots::core::ApotsModel* model, StreamIngestor* ingestor,
    const apots::baseline::HistoricalAverage* fallback, ServeConfig config,
    const apots::traffic::RoadGraph* graph)
    : model_(model),
      ingestor_(ingestor),
      fallback_(fallback),
      config_(std::move(config)),
      last_checkpoint_tick_(ingestor == nullptr ? 0 : ingestor->watermark()) {
  APOTS_CHECK(model != nullptr);
  APOTS_CHECK(ingestor != nullptr);
  APOTS_CHECK(fallback != nullptr);
  APOTS_CHECK(config_.t1_fresh <= config_.t2_imputed &&
              config_.t2_imputed <= config_.t3_outage);
  const auto& features = model_->config().features;
  const int target = model_->assembler().target_road();
  const int roads = model_->assembler().dataset().num_roads();
  const int m = features.use_adjacent ? features.num_adjacent : 0;
  if (graph != nullptr) {
    APOTS_CHECK_EQ(graph->num_roads(), roads);
    window_roads_ = graph->WithinHops(target, m);
  } else {
    for (int road = std::max(0, target - m);
         road <= std::min(roads - 1, target + m); ++road) {
      window_roads_.push_back(road);
    }
  }
  if (!config_.checkpoint_dir.empty()) {
    store_ = std::make_unique<apots::nn::CheckpointStore>(
        config_.checkpoint_dir, config_.checkpoint_keep);
  }
  if (config_.watchdog_timeout_ms > 0.0) {
    watchdog_ = std::make_unique<ServeWatchdog>(config_.watchdog_timeout_ms,
                                                config_.now_ns);
  }
  // Contexts registered on this supervisor resolve inside the model's
  // runtime (and survive SetInferenceConfig rebuilds via the model).
  model_->SetContextTable(&context_table_);
}

ServingSupervisor::~ServingSupervisor() {
  // The model outlives the supervisor by contract; drop the borrow so a
  // later direct PredictItems on the model cannot read freed table state.
  model_->SetContextTable(nullptr);
}

Status ServingSupervisor::RegisterContext(uint64_t id,
                                          apots::data::ContextSpec spec) {
  return context_table_.Register(id, std::move(spec));
}

int64_t ServingSupervisor::Now() const {
  return config_.now_ns ? config_.now_ns() : SteadyNowNs();
}

long ServingSupervisor::WindowStaleness(long anchor) const {
  // Staleness is tracked at the watermark; shift to the anchor's frame so
  // backfill anchors (older than the watermark) are not over-penalized.
  const long shift = anchor - ingestor_->watermark();
  long worst = 0;
  for (const int road : window_roads_) {
    worst = std::max(worst, ingestor_->Staleness(road) + shift);
  }
  return std::max(0L, worst);
}

ServeTier ServingSupervisor::TierFor(long anchor) const {
  const long staleness = WindowStaleness(anchor);
  if (staleness <= config_.t1_fresh) return ServeTier::kFull;
  if (staleness <= config_.t2_imputed) return ServeTier::kImputed;
  if (staleness <= config_.t3_outage) return ServeTier::kHistorical;
  return ServeTier::kLastKnownGood;
}

double ServingSupervisor::LastKnownGood(long target_interval) {
  const auto& dataset = model_->assembler().dataset();
  const double profile = fallback_->Predict(dataset, target_interval);
  if (!has_lkg_) return profile;
  // Carry the last fresh neural residual over the profile, decayed toward
  // pure profile as the outage ages — the standard "decay to climatology"
  // rule for dead sensors.
  const long age = std::max(0L, target_interval - lkg_interval_);
  const double residual = lkg_kmh_ - lkg_profile_kmh_;
  return profile + residual * std::pow(config_.lkg_decay, age);
}

std::vector<ServeResponse> ServingSupervisor::Predict(
    const std::vector<long>& anchors) {
  return Predict(anchors, config_.deadline_ms);
}

std::vector<ServeResponse> ServingSupervisor::Predict(
    const std::vector<long>& anchors, double deadline_ms) {
  std::vector<apots::core::WorkItem> items(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    items[i].anchor = anchors[i];
  }
  return PredictItems(items, deadline_ms);
}

std::vector<ServeResponse> ServingSupervisor::PredictItems(
    const std::vector<apots::core::WorkItem>& items) {
  return PredictItems(items, config_.deadline_ms);
}

std::vector<ServeResponse> ServingSupervisor::PredictItems(
    const std::vector<apots::core::WorkItem>& items, double deadline_ms) {
  // Deadline accounting reads the injectable clock (not Stopwatch) so
  // chaos clock-skew drills observe deterministic elapsed times.
  const int64_t call_start_ns = Now();
  obs::TraceSpan span("serve.predict");
  obs::ScopedTimer call_timer(ServeMetrics::Get().predict_ms);
  ServeMetrics::Get().requests.Add(items.size());
  const auto& assembler = model_->assembler();
  const auto& dataset = assembler.dataset();
  const long intervals = dataset.num_intervals();
  const long alpha = assembler.alpha();
  const long beta = assembler.beta();

  std::vector<ServeResponse> responses(items.size());
  report_.requests += items.size();

  // A watchdog trip reported since the last call means the inference path
  // stalled; protect this call by keeping it off the neural tiers.
  const bool stuck = watchdog_ != nullptr && watchdog_->ConsumeStuck();

  std::vector<size_t> neural_index;
  std::vector<apots::core::WorkItem> neural_items;
  neural_index.reserve(items.size());
  neural_items.reserve(items.size());

  for (size_t i = 0; i < items.size(); ++i) {
    const long anchor = items[i].anchor;
    ServeResponse& resp = responses[i];
    resp.staleness = WindowStaleness(anchor);
    report_.max_staleness = std::max(report_.max_staleness, resp.staleness);
    if (anchor - alpha < 0 || anchor + beta >= intervals) {
      // No tier can honestly serve this anchor: the window or the target
      // falls outside the dataset.
      ++report_.failures;
      ServeMetrics::Get().failures.Add();
      const long clamped =
          std::min(std::max(anchor + beta, 0L), intervals - 1);
      resp.kmh = intervals > 0 ? fallback_->Predict(dataset, clamped) : 0.0;
      resp.tier = ServeTier::kHistorical;
      continue;
    }
    resp.tier = TierFor(anchor);
    if (stuck && (resp.tier == ServeTier::kFull ||
                  resp.tier == ServeTier::kImputed)) {
      resp.tier = ServeTier::kHistorical;
    }
    if (resp.tier == ServeTier::kFull || resp.tier == ServeTier::kImputed) {
      neural_index.push_back(i);
      neural_items.push_back(items[i]);
    }
  }

  // Deadline pre-check: when the EMA cost model projects the neural batch
  // over budget, serve those anchors from the (cheap) historical tier
  // instead of blowing the deadline on a forward pass.
  if (deadline_ms > 0.0 && ema_ms_per_anchor_ > 0.0 &&
      !neural_items.empty()) {
    const double projected =
        ema_ms_per_anchor_ * static_cast<double>(neural_items.size());
    if (projected > deadline_ms) {
      report_.deadline_degraded += neural_items.size();
      ServeMetrics::Get().deadline_degraded.Add(neural_items.size());
      for (const size_t i : neural_index) {
        responses[i].tier = ServeTier::kHistorical;
      }
      neural_index.clear();
      neural_items.clear();
    }
  }

  if (!neural_items.empty()) {
    const int64_t neural_start_ns = Now();
    if (watchdog_ != nullptr) watchdog_->Arm();
    if (inference_delay_for_test_) inference_delay_for_test_();
    // An all-context-0 item set takes the exact Predict code path inside
    // the runtime, so live serving stays bitwise unchanged.
    const Tensor scaled =
        model_->inference_runtime().PredictItems(neural_items);
    if (watchdog_ != nullptr) watchdog_->Disarm();
    const double per_anchor =
        static_cast<double>(Now() - neural_start_ns) / 1e6 /
        static_cast<double>(neural_items.size());
    ema_ms_per_anchor_ = ema_ms_per_anchor_ == 0.0
                             ? per_anchor
                             : 0.7 * ema_ms_per_anchor_ + 0.3 * per_anchor;
    for (size_t j = 0; j < neural_index.size(); ++j) {
      // Same float->double conversion as ApotsModel::PredictKmh: bitwise
      // identical to the direct runtime path.
      responses[neural_index[j]].kmh =
          assembler.UnscaleSpeed(scaled[j]);
    }
  }

  long freshest_full = -1;
  size_t freshest_idx = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    const long anchor = items[i].anchor;
    ServeResponse& resp = responses[i];
    switch (resp.tier) {
      case ServeTier::kFull:
        // Only the live context feeds last-known-good: a counterfactual
        // full-tier answer must never leak into base serving state.
        if (items[i].context == 0 && anchor > freshest_full) {
          freshest_full = anchor;
          freshest_idx = i;
        }
        break;
      case ServeTier::kImputed:
        break;  // neural value already written
      case ServeTier::kHistorical:
        // Failure anchors (window/target out of range) already hold the
        // clamped profile value; in-range anchors get the real one.
        if (anchor - alpha >= 0 && anchor + beta < intervals) {
          resp.kmh = fallback_->Predict(dataset, anchor + beta);
        }
        break;
      case ServeTier::kLastKnownGood:
        resp.kmh = LastKnownGood(anchor + beta);
        break;
    }
    ++report_.tier_counts[static_cast<int>(resp.tier)];
    ServeMetrics::Get().tiers[static_cast<int>(resp.tier)]->Add();
  }
  ServeMetrics::Get().max_staleness.Set(
      static_cast<double>(report_.max_staleness));

  // Remember the freshest full-tier response as last-known-good.
  if (freshest_full >= 0) {
    const long target = freshest_full + beta;
    has_lkg_ = true;
    lkg_kmh_ = responses[freshest_idx].kmh;
    lkg_profile_kmh_ = fallback_->Predict(dataset, target);
    lkg_interval_ = target;
  }

  const double elapsed =
      static_cast<double>(Now() - call_start_ns) / 1e6;
  if (deadline_ms > 0.0 && elapsed > deadline_ms) {
    ++report_.deadline_misses;
    ServeMetrics::Get().deadline_misses.Add();
    for (ServeResponse& resp : responses) resp.deadline_miss = true;
  }
  return responses;
}

bool ServingSupervisor::MaybeCheckpoint(long tick) {
  if (store_ == nullptr || config_.checkpoint_every <= 0) return false;
  if (tick - last_checkpoint_tick_ < config_.checkpoint_every) return false;
  const Status status = CheckpointNow();
  if (!status.ok()) {
    APOTS_LOG(Warning) << "serving checkpoint failed: " << status.ToString();
  }
  return status.ok();
}

Status ServingSupervisor::CheckpointNow() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "no checkpoint store configured (ServeConfig.checkpoint_dir empty)");
  }
  auto saved = store_->Save(model_->TrainableParameters(),
                            ingestor_->SerializeState());
  last_checkpoint_status_ = saved.status();
  if (!saved.ok()) return saved.status();
  ++report_.checkpoints_written;
  ServeMetrics::Get().checkpoints.Add();
  last_checkpoint_tick_ = ingestor_->watermark();
  return Status::Ok();
}

Result<apots::nn::CheckpointStore::RecoverInfo> ServingSupervisor::Recover() {
  if (store_ == nullptr) {
    return Status::FailedPrecondition(
        "no checkpoint store configured (ServeConfig.checkpoint_dir empty)");
  }
  auto recovered = store_->Recover(model_->TrainableParameters());
  if (!recovered.ok()) return recovered.status();
  APOTS_RETURN_IF_ERROR(
      ingestor_->RestoreState(recovered.value().aux));
  return std::move(recovered).value();
}

const ServeReport& ServingSupervisor::report() const {
  if (watchdog_ != nullptr) report_.watchdog_trips = watchdog_->trips();
  return report_;
}

}  // namespace apots::serve
