#ifndef APOTS_SERVE_FRONTEND_H_
#define APOTS_SERVE_FRONTEND_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "serve/serving_supervisor.h"
#include "util/mpsc_queue.h"

namespace apots::serve {

/// Knobs of the front-door request path (DESIGN.md §14). The defaults
/// suit the load bench; tests flip `background` off and pump RunCycle()
/// by hand for deterministic schedules.
struct FrontendConfig {
  /// Bounded MPSC ring slots (rounded up to a power of two, min 2). A
  /// full ring sheds at admission — memory is bounded by construction.
  size_t queue_capacity = 4096;
  /// Coalesced keys drained into one supervisor batch per cycle.
  size_t max_batch = 64;
  /// Merge duplicate in-flight (anchor, context) requests into one
  /// inference slot and fan the result out bit-for-bit.
  bool coalesce = true;
  /// Per-request wall budget applied when a request does not carry its
  /// own; 0 = no deadline.
  double default_deadline_ms = 0.0;
  /// Spawn the serving thread. When false, no thread is started and the
  /// owner must pump RunCycle() — the deterministic mode tests use.
  bool background = true;
  /// Consumer backoff once the yield budget is spent on an empty queue.
  double idle_sleep_us = 100.0;
};

/// Clamps edge values to the nearest working configuration (mirrors
/// core::SanitizeInferenceConfig): `queue_capacity` < 2 -> 2, `max_batch`
/// 0 -> 1, negative deadline/idle times -> 0.
FrontendConfig SanitizeFrontendConfig(FrontendConfig config);

/// How the front door disposed of one request, from best to worst.
enum class RequestOutcome {
  kServed = 0,    ///< answered by a supervisor batch it occupied a slot in
  kCoalesced,     ///< shared another in-flight request's inference bits
  kShedDeadline,  ///< deadline expired before a batch slot: ladder answer
  kShedOverload,  ///< queue full (or stopped) at admission: ladder answer
};
constexpr int kNumRequestOutcomes = 4;
const char* RequestOutcomeName(RequestOutcome outcome);

/// One client query. `context` scopes both coalescing (requests merge
/// only within the same context) and evaluation: context 0 is the live
/// stream, and a nonzero id is answered under the counterfactual context
/// registered on the supervisor (DESIGN.md §17) — its deadline sheds fall
/// back to the same context-agnostic ladder as live traffic. An
/// unregistered nonzero id degrades to the live answer.
struct FrontendRequest {
  long anchor = 0;
  uint64_t context = 0;
  /// Wall budget for this request; < 0 uses the config default, 0 means
  /// no deadline.
  double deadline_ms = -1.0;
};

struct FrontendResponse {
  ServeResponse serve;
  RequestOutcome outcome = RequestOutcome::kServed;
  double queue_ms = 0.0;  ///< admission -> drained by the serving thread
  double total_ms = 0.0;  ///< admission -> response ready
};

/// Monotonic front-door accounting. Every submitted request is answered
/// exactly once: submitted == served + coalesce_hits + shed_deadline +
/// shed_overload once the queue is drained.
struct FrontendStats {
  uint64_t submitted = 0;
  uint64_t served = 0;
  uint64_t coalesce_hits = 0;
  uint64_t shed_deadline = 0;
  uint64_t shed_overload = 0;
  uint64_t cycles = 0;           ///< drain cycles that found >= 1 request
  uint64_t inference_calls = 0;  ///< supervisor batches issued
  uint64_t inferred_keys = 0;    ///< unique keys sent to inference
  uint64_t max_queue_depth = 0;

  uint64_t answered() const {
    return served + coalesce_hits + shed_deadline + shed_overload;
  }
  uint64_t sheds() const { return shed_deadline + shed_overload; }
  double shed_rate() const {
    return submitted == 0
               ? 0.0
               : static_cast<double>(sheds()) /
                     static_cast<double>(submitted);
  }
  /// Fraction of answered requests that rode another request's inference.
  double coalesce_rate() const {
    const uint64_t total = answered();
    return total == 0 ? 0.0
                      : static_cast<double>(coalesce_hits) /
                            static_cast<double>(total);
  }
};

class Frontend;

/// Completion handle for one submitted request. The response is written
/// once by the serving (or shedding) thread and published with a release
/// store; Wait blocks on the atomic flag, so a waiter never spins against
/// an in-flight inference.
class PendingResponse {
 public:
  const FrontendResponse& Wait() {
    ready_.wait(false, std::memory_order_acquire);
    return response_;
  }
  bool ready() const { return ready_.load(std::memory_order_acquire); }
  const FrontendRequest& request() const { return request_; }

 private:
  friend class Frontend;
  FrontendRequest request_;
  int64_t enqueue_ns = 0;
  int64_t deadline_ns = 0;  ///< 0 = none
  FrontendResponse response_;
  std::atomic<bool> ready_{false};
};

/// The concurrent client-facing request path (DESIGN.md §14): a bounded
/// lock-free MPSC queue feeding the supervisor's batched inference path
/// (and through it the core::InferenceRuntime batch grid), with
///
///   * admission control — a full queue sheds the request to the
///     staleness ladder's historical tier at submit time, on the producer
///     thread, with no blocking and no unbounded buffering;
///   * request coalescing — duplicate in-flight (anchor, context) queries
///     drained in one cycle share one inference slot and receive the same
///     bits;
///   * deadline propagation — a request past its deadline at drain time
///     is answered from the ladder instead of occupying a batch slot, and
///     the tightest surviving deadline bounds the supervisor batch via
///     its EMA pre-degradation model.
///
/// Thread contract: any number of producers may Submit concurrently; the
/// single consumer (the background thread, or the RunCycle caller in
/// manual mode) is the only thread that touches the supervisor's Predict
/// path. Clean-path responses are bitwise identical to
/// InferenceRuntime::Predict because the supervisor's full tier is
/// (DESIGN.md §11) and the fan-out copies the double unchanged.
class Frontend {
 public:
  /// `supervisor` is borrowed and must outlive the frontend; its Predict
  /// must not be called by anyone else while the frontend is running.
  Frontend(ServingSupervisor* supervisor, FrontendConfig config);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  /// Non-blocking admission: enqueues and returns a completion handle.
  /// On a full queue (or after Stop) the handle is already completed with
  /// a ladder answer and outcome kShedOverload.
  std::shared_ptr<PendingResponse> SubmitAsync(
      const FrontendRequest& request);

  /// SubmitAsync + Wait.
  FrontendResponse Submit(const FrontendRequest& request);

  /// Drains up to max_batch requests, sheds expired deadlines, coalesces,
  /// runs one supervisor batch, fans results out. Returns the number of
  /// requests drained (0 = queue was empty). Consumer-side only: called
  /// by the background thread, or by the owner in manual mode.
  size_t RunCycle();

  /// Stops accepting work (new submits shed), joins the serving thread,
  /// and answers everything still queued so no waiter hangs. Safe to call
  /// twice. Callers must not race Submit against Stop.
  void Stop();

  FrontendStats stats() const;
  /// Racy snapshot of the current queue depth.
  size_t queue_depth() const {
    return depth_.load(std::memory_order_relaxed);
  }
  const FrontendConfig& config() const { return config_; }

  /// Test hook: replaces the steady clock (ns) for deterministic deadline
  /// schedules. Set before any Submit; manual mode only.
  void set_clock_for_test(std::function<int64_t()> now_ns) {
    clock_ = std::move(now_ns);
  }

 private:
  int64_t NowNs() const;
  void Run();
  /// Cheapest ladder tier for sheds: the historical time-of-day profile.
  /// Reads only immutable state, so producers may call it at admission.
  ServeResponse LadderAnswer(long anchor) const;
  void Complete(PendingResponse* pending, const ServeResponse& serve,
                RequestOutcome outcome, int64_t drained_ns,
                int64_t done_ns);

  ServingSupervisor* supervisor_;  // not owned
  FrontendConfig config_;
  long beta_;
  MpscBoundedQueue<std::shared_ptr<PendingResponse>> queue_;
  std::atomic<size_t> depth_{0};
  std::atomic<bool> stopped_{false};
  std::atomic<bool> quit_{false};
  std::function<int64_t()> clock_;

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> coalesce_hits_{0};
  std::atomic<uint64_t> shed_deadline_{0};
  std::atomic<uint64_t> shed_overload_{0};
  std::atomic<uint64_t> cycles_{0};
  std::atomic<uint64_t> inference_calls_{0};
  std::atomic<uint64_t> inferred_keys_{0};
  std::atomic<uint64_t> max_queue_depth_{0};

  std::thread thread_;  ///< last member: joined before the rest dies
};

}  // namespace apots::serve

#endif  // APOTS_SERVE_FRONTEND_H_
