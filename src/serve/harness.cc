#include "serve/harness.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace apots::serve {

using apots::core::ApotsConfig;
using apots::core::ApotsModel;
using apots::core::PredictorHparams;
using apots::data::FeatureConfig;
using apots::traffic::GenerateDataset;

SimulationHarness::SimulationHarness(HarnessConfig config)
    : config_(std::move(config)),
      truth_(GenerateDataset(config_.spec)),
      live_(truth_) {
  const long intervals = truth_.num_intervals();
  warm_end_ = static_cast<long>(static_cast<double>(intervals) *
                                config_.warmup_fraction);
  // The warmup must cover at least one full feature window and leave at
  // least one servable tick.
  warm_end_ = std::max<long>(warm_end_, config_.alpha + config_.beta + 1);
  APOTS_CHECK(warm_end_ < intervals);

  // The streamed region starts unknown: zeroed, to be filled by ingestion.
  // The speed scaler uses physical bounds (not data range), so zeros do
  // not perturb scaling.
  for (int road = 0; road < live_.num_roads(); ++road) {
    for (long t = warm_end_; t < intervals; ++t) {
      live_.SetSpeed(road, t, 0.0f);
    }
  }

  // Per-road time-of-day profiles fitted on warmup ground truth; they
  // back both the streaming imputer and the degraded serving tiers.
  std::vector<long> warmup(static_cast<size_t>(warm_end_));
  for (long t = 0; t < warm_end_; ++t) warmup[static_cast<size_t>(t)] = t;
  profiles_.resize(static_cast<size_t>(live_.num_roads()));
  for (int road = 0; road < live_.num_roads(); ++road) {
    const Status fitted =
        profiles_[static_cast<size_t>(road)].Fit(live_, road, warmup);
    APOTS_CHECK(fitted.ok());
  }

  BuildStack(config_.model_seed);

  if (config_.train_epochs > 0) {
    std::vector<long> anchors;
    for (long a = config_.alpha; a + config_.beta < warm_end_; ++a) {
      anchors.push_back(a);
    }
    model_->Train(anchors);
  }

  if (config_.attack.enabled) BuildAttack();

  feed_ = std::make_unique<FaultyFeed>(&truth_, warm_end_, config_.feed);
  if (config_.attack.enabled) {
    feed_->AttachPoison(&attack_plan_, config_.attack.attack.budget);
  }
  next_tick_ = warm_end_;
}

void SimulationHarness::BuildAttack() {
  // The plan targets the anchors the harness will actually serve, and
  // only streamed cells — warmup ground truth stays honest.
  std::vector<long> anchors;
  for (long a = warm_end_; a <= last_servable_tick(); ++a) {
    anchors.push_back(a);
  }
  APOTS_CHECK(!anchors.empty());
  // The harness model is bound to `live_`, whose streamed region is still
  // zeroed; the attacker needs the readings the sensors will emit. Build
  // a proxy with the same architecture + weights bound to truth — the
  // omniscient-attacker convention for constructing a poisoned feed
  // offline.
  apots::core::ApotsModel proxy(&truth_, model_->config());
  APOTS_CHECK(proxy.CopyWeightsFrom(*model_).ok());
  apots::attack::Attacker attacker(config_.attack.attack);
  auto plan = config_.attack.use_spsa
                  ? attacker.BuildSpsaPlan(&proxy, anchors, warm_end_,
                                           &attack_stats_)
                  : attacker.BuildPgdPlan(&proxy, anchors, warm_end_,
                                          &attack_stats_);
  APOTS_CHECK(plan.ok());
  attack_plan_ = std::move(plan).value();

  detector_ = std::make_unique<apots::attack::ResidualDetector>(
      live_.num_roads(), config_.attack.detector);
  for (int road = 0; road < live_.num_roads(); ++road) {
    for (long t = 0; t < warm_end_; ++t) {
      detector_->Prime(
          road, truth_.Speed(road, t),
          static_cast<float>(
              profiles_[static_cast<size_t>(road)].Predict(truth_, t)));
    }
  }
  AttachDetector();
}

void SimulationHarness::AttachDetector() {
  if (detector_ == nullptr) return;
  ingestor_->AttachDetector(detector_.get(), [this](int road, long t) {
    return static_cast<float>(
        profiles_[static_cast<size_t>(road)].Predict(live_, t));
  });
}

void SimulationHarness::BuildStack(uint64_t model_seed) {
  ApotsConfig cfg;
  cfg.predictor =
      PredictorHparams::Scaled(config_.predictor, config_.width_divisor);
  cfg.features = FeatureConfig::Both(config_.alpha, config_.beta);
  cfg.features.num_adjacent = (live_.num_roads() - 1) / 2;
  cfg.training.adversarial = false;
  cfg.training.epochs = config_.train_epochs;
  cfg.training.verbose = false;
  cfg.fallback.enabled = false;  // the supervisor owns degradation
  cfg.inference = config_.inference;
  cfg.seed = model_seed;
  model_ = std::make_unique<ApotsModel>(&live_, cfg);
  target_road_ = model_->assembler().target_road();

  ingestor_ = std::make_unique<StreamIngestor>(
      &live_, warm_end_, apots::data::ImputationConfig(),
      [this](int road, long t) {
        return static_cast<float>(
            profiles_[static_cast<size_t>(road)].Predict(live_, t));
      });
  ingestor_->AttachCache(model_->inference_runtime().feature_cache(),
                         target_road_);

  supervisor_ = std::make_unique<ServingSupervisor>(
      model_.get(), ingestor_.get(),
      &profiles_[static_cast<size_t>(target_road_)], config_.serve);
}

long SimulationHarness::last_servable_tick() const {
  return truth_.num_intervals() - config_.beta - 1;
}

std::vector<long> SimulationHarness::TickAnchors(long tick) const {
  std::vector<long> anchors;
  const long intervals = truth_.num_intervals();
  for (int k = 0; k < config_.anchors_per_tick; ++k) {
    const long anchor = tick - k;
    if (anchor - config_.alpha < 0) break;
    if (anchor + config_.beta >= intervals) continue;
    anchors.push_back(anchor);
  }
  return anchors;
}

void SimulationHarness::IngestAt(long tick) {
  for (const FeedRecord& record : feed_->Poll(tick)) {
    // Rejections are counted in the ingestor stats; a bad record must
    // never take the serving loop down.
    (void)ingestor_->Ingest(record);
  }
  ingestor_->AdvanceWatermark(tick);
}

bool SimulationHarness::RunTick() {
  if (next_tick_ > last_servable_tick()) return false;
  IngestAt(next_tick_);
  last_anchors_ = TickAnchors(next_tick_);
  if (frontend_ != nullptr) {
    // Front-door mode: the tick's anchors go through the concurrent
    // request path (admission, coalescing, deadlines) and the background
    // serving thread owns the supervisor. Results arrive in submit order.
    std::vector<std::shared_ptr<PendingResponse>> handles;
    handles.reserve(last_anchors_.size());
    for (const long anchor : last_anchors_) {
      FrontendRequest request;
      request.anchor = anchor;
      handles.push_back(frontend_->SubmitAsync(request));
    }
    last_responses_.clear();
    last_responses_.reserve(handles.size());
    for (auto& handle : handles) {
      last_responses_.push_back(handle->Wait().serve);
    }
  } else {
    last_responses_ = supervisor_->Predict(last_anchors_);
  }
  supervisor_->MaybeCheckpoint(next_tick_);
  ++next_tick_;
  return next_tick_ <= last_servable_tick();
}

bool SimulationHarness::IngestTick() {
  if (next_tick_ > last_servable_tick()) return false;
  IngestAt(next_tick_);
  supervisor_->MaybeCheckpoint(next_tick_);
  ++next_tick_;
  return next_tick_ <= last_servable_tick();
}

void SimulationHarness::EnableFrontend(FrontendConfig config) {
  frontend_enabled_ = true;
  frontend_config_ = config;
  frontend_ = std::make_unique<Frontend>(supervisor_.get(), config);
}

std::vector<std::vector<float>> SimulationHarness::ParamSnapshot() {
  std::vector<std::vector<float>> snapshot;
  for (const auto* param : model_->TrainableParameters()) {
    snapshot.emplace_back(param->value.data(),
                          param->value.data() + param->value.size());
  }
  return snapshot;
}

Result<apots::nn::CheckpointStore::RecoverInfo>
SimulationHarness::KillAndRecover(uint64_t new_seed) {
  merged_report_.MergeFrom(supervisor_->report());
  // Simulated kill: every piece of in-memory serving state dies. The
  // frontend goes first — its serving thread borrows the supervisor.
  frontend_.reset();
  supervisor_.reset();
  ingestor_.reset();
  model_.reset();
  feed_.reset();

  // Cold restart: the live dataset reverts to warmup-only knowledge and
  // the model comes up with different (seed-dependent) initial weights —
  // recovery must overwrite both from the checkpoint.
  live_ = truth_;
  for (int road = 0; road < live_.num_roads(); ++road) {
    for (long t = warm_end_; t < live_.num_intervals(); ++t) {
      live_.SetSpeed(road, t, 0.0f);
    }
  }
  BuildStack(new_seed);
  AttachDetector();
  if (frontend_enabled_) {
    frontend_ =
        std::make_unique<Frontend>(supervisor_.get(), frontend_config_);
  }

  auto recovered = supervisor_->Recover();
  if (recovered.ok()) {
    next_tick_ = ingestor_->watermark() + 1;
  } else {
    next_tick_ = warm_end_;
  }
  feed_ = std::make_unique<FaultyFeed>(&truth_, next_tick_, config_.feed);
  if (config_.attack.enabled) {
    feed_->AttachPoison(&attack_plan_, config_.attack.attack.budget);
  }
  return recovered;
}

ServeReport SimulationHarness::report() const {
  ServeReport merged = merged_report_;
  if (supervisor_ != nullptr) merged.MergeFrom(supervisor_->report());
  return merged;
}

}  // namespace apots::serve
