#ifndef APOTS_SERVE_STREAM_INGESTOR_H_
#define APOTS_SERVE_STREAM_INGESTOR_H_

#include <cstdint>
#include <string>

#include "attack/detector.h"
#include "data/feature_cache.h"
#include "data/imputation.h"
#include "serve/feed.h"
#include "traffic/fault_injector.h"
#include "traffic/traffic_dataset.h"
#include "util/status.h"

namespace apots::serve {

/// Applies a (possibly faulty) record stream onto a live TrafficDataset.
///
/// The ingestor owns the watermark — the newest interval whose cells are
/// all populated, by observation or imputation — and guarantees three
/// invariants the serving layer builds on:
///   1. idempotence: a duplicate record is a no-op (first write wins);
///   2. the dataset never exposes an unpopulated cell at or below the
///      watermark — gaps are filled by the streaming imputer (LOCF within
///      `locf_max_gap`, historical profile beyond) as the watermark
///      advances, and reconciled in place when the real record shows up
///      late;
///   3. every cell write invalidates exactly the affected (road, interval)
///      feature-cache key, so cached inference never serves a stale
///      column and a late record does not flush the whole cache.
///
/// Cells before `start_interval` are warmup ground truth and immutable.
/// The mask tracks *observation*, not validity: imputed cells stay
/// unobserved so a late real record still wins over the imputed value.
class StreamIngestor {
 public:
  /// `live` is borrowed and mutated in place; it must outlive the
  /// ingestor. `profile(road, t)` supplies the long-gap fallback value
  /// (see data::StreamingImputer). The imputer is seeded with each road's
  /// speed at `start_interval - 1` so LOCF bridges the warmup boundary.
  StreamIngestor(apots::traffic::TrafficDataset* live, long start_interval,
                 apots::data::ImputationConfig imputation,
                 std::function<float(int road, long t)> profile);

  /// Routes cache invalidations for the assembler's target road to
  /// `cache` (borrowed, may be null to detach).
  void AttachCache(apots::data::FeatureCache* cache, int target_road);

  /// Attaches the attack-aware anomaly detector (borrowed, may be null to
  /// detach). Every *applied* record — duplicates and rejects carry no new
  /// information — is scored against `profile(road, interval)`, the same
  /// historical-profile signature the imputer uses. Detection is
  /// observational: records are never blocked, the detector's flags and
  /// obs:: metrics are the response surface.
  void AttachDetector(apots::attack::ResidualDetector* detector,
                      std::function<float(int road, long t)> profile);

  /// Applies one record. Returns the Status for *rejected* records
  /// (out-of-range indices, non-finite or negative speed, pre-warmup
  /// interval); duplicates and applies return Ok.
  Status Ingest(const FeedRecord& record);

  /// Raises the watermark to `tick`, imputing every still-unobserved cell
  /// in (old watermark, tick]. Ticks beyond the dataset are clamped.
  void AdvanceWatermark(long tick);

  long watermark() const { return watermark_; }
  long start_interval() const { return start_; }

  /// Ticks since `road` last delivered a real observation, measured at
  /// the watermark. 0 = fresh this tick.
  long Staleness(int road) const;

  /// True when (road, t) holds a real observation (warmup counts).
  bool Observed(int road, long t) const { return observed_.Valid(road, t); }
  const apots::traffic::ValidityMask& observed_mask() const {
    return observed_;
  }

  struct Stats {
    uint64_t applied = 0;     ///< records written into the dataset
    uint64_t duplicates = 0;  ///< idempotently skipped re-deliveries
    uint64_t late = 0;        ///< applied at or below the watermark
    uint64_t rejected = 0;    ///< malformed / out-of-range records
    uint64_t imputed = 0;     ///< cells filled by the streaming imputer
    uint64_t cache_invalidations = 0;
  };
  const Stats& stats() const { return stats_; }

  /// Opaque snapshot of the ingestor's recovery state (watermark,
  /// per-road imputer tails, counters) — stored as the checkpoint aux
  /// blob. RestoreState re-fills every unobserved cell up to the restored
  /// watermark from the imputer, so a recovered process serves from a
  /// consistent dataset without replaying the stream.
  std::string SerializeState() const;
  Status RestoreState(const std::string& blob);

 private:
  void TouchCache(long interval);

  apots::traffic::TrafficDataset* live_;  // not owned
  long start_;
  long watermark_;
  apots::data::StreamingImputer imputer_;
  apots::traffic::ValidityMask observed_;
  apots::data::FeatureCache* cache_ = nullptr;  // not owned
  int cache_road_ = 0;
  apots::attack::ResidualDetector* detector_ = nullptr;  // not owned
  std::function<float(int road, long t)> detector_profile_;
  Stats stats_;
};

}  // namespace apots::serve

#endif  // APOTS_SERVE_STREAM_INGESTOR_H_
