#ifndef APOTS_SERVE_FEED_H_
#define APOTS_SERVE_FEED_H_

#include <cstdint>
#include <map>
#include <vector>

#include "attack/budget.h"
#include "traffic/traffic_dataset.h"
#include "util/rng.h"

namespace apots::serve {

/// One speed reading as delivered by the (simulated) roadside feed.
struct FeedRecord {
  long interval = 0;       ///< dataset interval the reading describes
  int road = 0;            ///< reporting road
  float speed_kmh = 0.0f;  ///< measured speed
  uint64_t seq = 0;        ///< feed-assigned emission sequence number
};

/// Delivery-fault model for the simulated feed — the transport-layer
/// counterpart of traffic::FaultSpec (which corrupts *values*; this one
/// corrupts *delivery*): late arrival, reordering, duplicates, silent
/// drops, whole-road outages, and torn ticks where only part of an
/// interval's records show up on time.
struct FeedFaultSpec {
  bool enabled = true;
  double delay_prob = 0.05;      ///< record arrives late
  int delay_min = 1;             ///< ticks of lateness (uniform)
  int delay_max = 8;
  double duplicate_prob = 0.02;  ///< record delivered twice
  double drop_prob = 0.01;       ///< record never delivered
  double outage_prob = 0.002;    ///< per (road, tick): outage starts
  int outage_min = 12;           ///< outage length in ticks (uniform)
  int outage_max = 48;
  double torn_tick_prob = 0.02;  ///< tick delivers only a partial batch
  /// Adversarial poisoning: readings are shifted by an attached
  /// PerturbationPlan (see FaultyFeed::AttachPoison) before delivery.
  /// Independent of `enabled` — a poisoned feed can otherwise deliver
  /// cleanly, and a stormy feed can also be poisoned. Draws no RNG, so
  /// the delivery pattern is identical with poisoning on or off.
  bool poison = false;
  uint64_t seed = 99;

  /// Everything off: the feed delivers each interval's records exactly
  /// once, in road order, at their own tick.
  static FeedFaultSpec Clean();
  /// An aggressive storm for soak tests.
  static FeedFaultSpec Storm(uint64_t seed);
};

/// Deterministic simulated ingestion feed: replays `truth` one interval
/// ("tick") at a time through the fault model. Two feeds built from equal
/// (dataset, start, spec) deliver bit-identical record streams, so every
/// fault scenario is a reproducible experiment axis.
class FaultyFeed {
 public:
  /// `truth` is borrowed and must outlive the feed. Delivery starts at
  /// `start_interval` (earlier intervals are presumed already ingested).
  FaultyFeed(const apots::traffic::TrafficDataset* truth,
             long start_interval, FeedFaultSpec spec);

  /// Records arriving at `tick`. Ticks must be polled in nondecreasing
  /// order; each tick's batch mixes on-time records with late arrivals
  /// and duplicates from earlier ticks, shuffled when faults are enabled.
  std::vector<FeedRecord> Poll(long tick);

  /// True once every interval has been generated and every pending record
  /// delivered by a Poll.
  bool Exhausted() const;

  /// Attaches the poisoning plan consulted when `spec.poison` is set
  /// (borrowed; null detaches). Poisoning happens at *generation* time —
  /// the sensor reading itself is compromised — so delayed and duplicated
  /// copies carry the same poisoned value, exactly like a real tampered
  /// detector. Perturbed readings are clamped into `budget`'s physical
  /// range.
  void AttachPoison(const apots::attack::PerturbationPlan* plan,
                    apots::attack::PlausibilityBudget budget = {});

  struct Stats {
    uint64_t generated = 0;   ///< readings emitted by the sensors
    uint64_t delayed = 0;     ///< delivered later than their interval
    uint64_t duplicated = 0;  ///< extra copies injected
    uint64_t dropped = 0;     ///< never delivered (incl. outage losses)
    uint64_t torn_ticks = 0;  ///< ticks that delivered a partial batch
    uint64_t poisoned = 0;    ///< readings shifted by the attack plan
  };
  const Stats& stats() const { return stats_; }
  const FeedFaultSpec& spec() const { return spec_; }

 private:
  /// Emits interval `t`'s readings into the pending queue.
  void GenerateTick(long t);

  const apots::traffic::TrafficDataset* truth_;  // not owned
  const apots::attack::PerturbationPlan* poison_plan_ = nullptr;  // not owned
  apots::attack::PlausibilityBudget poison_budget_;
  FeedFaultSpec spec_;
  apots::Rng rng_;
  long next_generate_;  ///< first interval not yet emitted
  uint64_t next_seq_ = 0;
  std::vector<long> outage_until_;  ///< per road: silent through this tick
  /// arrival tick -> records landing then.
  std::map<long, std::vector<FeedRecord>> pending_;
  Stats stats_;
};

}  // namespace apots::serve

#endif  // APOTS_SERVE_FEED_H_
