#include "serve/sharded_service.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace apots::serve {

using apots::core::ApotsConfig;
using apots::core::ApotsModel;
using apots::core::PredictorHparams;
using apots::data::FeatureConfig;
using apots::traffic::GenerateDataset;
using apots::traffic::Partition;
using apots::traffic::RoadGraph;

namespace {

/// Router-plane instruments; per-shard served counters live on the Shard.
struct ShardedMetrics {
  obs::Counter& requests;
  obs::Counter& replica_served;
  obs::Counter& ladder_answers;
  obs::Counter& failovers;
  obs::Counter& retries;
  obs::Counter& epoch_lag_serves;
  obs::Counter& stale_epoch_serves;
  obs::Histogram& failover_ms;
  static ShardedMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Default();
    static ShardedMetrics* metrics = new ShardedMetrics{
        registry.GetCounter("sharded.requests"),
        registry.GetCounter("sharded.replica_served"),
        registry.GetCounter("sharded.ladder_answers"),
        registry.GetCounter("sharded.failovers"),
        registry.GetCounter("sharded.retries"),
        registry.GetCounter("sharded.epoch_lag_serves"),
        registry.GetCounter("sharded.stale_epoch_serves"),
        registry.GetHistogram("sharded.failover_ms"),
    };
    return *metrics;
  }
};

/// Nearest-rank percentile over a sorted sample (deterministic; no
/// interpolation so the virtual-time latencies stay bit-stable).
double SortedPercentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  size_t idx = static_cast<size_t>(pos + 0.5);
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace

ShardedService::ShardedService(ShardedConfig config)
    : config_(std::move(config)),
      truth_(GenerateDataset(config_.spec)),
      graph_(RoadGraph::Corridor(truth_.num_roads())),
      partition_(
          std::move(Partition::Contiguous(graph_, config_.num_shards))
              .value()) {
  APOTS_CHECK_GE(config_.num_shards, 1);
  APOTS_CHECK_GE(config_.replicas_per_shard, 1);
  const int roads = truth_.num_roads();
  const long intervals = truth_.num_intervals();

  warm_end_ = static_cast<long>(static_cast<double>(intervals) *
                                config_.warmup_fraction);
  warm_end_ = std::max<long>(warm_end_, config_.alpha + config_.beta + 1);
  APOTS_CHECK(warm_end_ < intervals);
  if (config_.exchange_depth < 1) config_.exchange_depth = 1;

  // Shard targets hug the cuts (last owned road, or the first for the
  // final shard) so feature windows genuinely span shards and the
  // boundary exchange carries live traffic; a single shard keeps the
  // classic middle-road target.
  shards_.resize(static_cast<size_t>(config_.num_shards));
  for (int s = 0; s < config_.num_shards; ++s) {
    const auto& owned = partition_.roads(s);
    APOTS_CHECK(!owned.empty());
    shards_[static_cast<size_t>(s)].target_road =
        config_.num_shards == 1
            ? roads / 2
            : (s + 1 < config_.num_shards ? owned.back() : owned.front());
  }

  // Feature half-width: widest m <= 2 every shard target can afford.
  if (config_.num_adjacent >= 0) {
    num_adjacent_ = config_.num_adjacent;
  } else {
    num_adjacent_ = 2;
    for (const Shard& sh : shards_) {
      num_adjacent_ = std::min(
          {num_adjacent_, sh.target_road, roads - 1 - sh.target_road});
    }
  }
  APOTS_CHECK_GE(num_adjacent_, 0);

  // Window / halo / publish sets from the graph partition.
  std::vector<std::set<int>> publish_sets(
      static_cast<size_t>(config_.num_shards));
  for (int s = 0; s < config_.num_shards; ++s) {
    Shard& sh = shards_[static_cast<size_t>(s)];
    sh.window_roads = graph_.WithinHops(sh.target_road, num_adjacent_);
    std::set<int> spanning;
    for (int road : sh.window_roads) {
      const int owner = partition_.shard_of(road);
      if (owner == s) continue;
      sh.halo_roads.push_back(road);
      spanning.insert(owner);
      publish_sets[static_cast<size_t>(owner)].insert(road);
    }
    sh.spanning_shards.assign(spanning.begin(), spanning.end());
  }
  for (int s = 0; s < config_.num_shards; ++s) {
    shards_[static_cast<size_t>(s)].publish_roads.assign(
        publish_sets[static_cast<size_t>(s)].begin(),
        publish_sets[static_cast<size_t>(s)].end());
  }

  // Per-road time-of-day profiles on warmup ground truth: they back the
  // streaming imputer, the degraded tiers, and the router's ladder.
  std::vector<long> warmup(static_cast<size_t>(warm_end_));
  for (long t = 0; t < warm_end_; ++t) warmup[static_cast<size_t>(t)] = t;
  profiles_.resize(static_cast<size_t>(roads));
  for (int road = 0; road < roads; ++road) {
    const Status fitted =
        profiles_[static_cast<size_t>(road)].Fit(truth_, road, warmup);
    APOTS_CHECK(fitted.ok());
  }

  bus_.resize(static_cast<size_t>(config_.num_shards));
  last_responses_.resize(static_cast<size_t>(config_.num_shards));
  for (int s = 0; s < config_.num_shards; ++s) {
    Shard& sh = shards_[static_cast<size_t>(s)];
    for (int r = 0; r < config_.replicas_per_shard; ++r) {
      sh.replicas.push_back(std::make_unique<Replica>());
      Replica& rep = *sh.replicas.back();
      if (!config_.checkpoint_root.empty()) {
        rep.checkpoint_dir = apots::StrFormat(
            "%s/shard%d_replica%d", config_.checkpoint_root.c_str(), s, r);
      }
      BuildReplica(s, r);
    }
  }
  next_tick_ = warm_end_;
}

ShardedService::~ShardedService() = default;

long ShardedService::last_servable_tick() const {
  return truth_.num_intervals() - config_.beta - 1;
}

int ShardedService::target_road(int shard) const {
  APOTS_CHECK_GE(shard, 0);
  APOTS_CHECK_LT(shard, config_.num_shards);
  return shards_[static_cast<size_t>(shard)].target_road;
}

const std::vector<ShardedResponse>& ShardedService::last_responses(
    int shard) const {
  APOTS_CHECK_GE(shard, 0);
  APOTS_CHECK_LT(shard, config_.num_shards);
  return last_responses_[static_cast<size_t>(shard)];
}

long ShardedService::applied_epoch(int shard, int replica,
                                   int source_shard) const {
  const Replica& rep =
      *shards_[static_cast<size_t>(shard)].replicas[static_cast<size_t>(
          replica)];
  const auto it = rep.applied_epoch.find(source_shard);
  return it == rep.applied_epoch.end() ? -1 : it->second;
}

void ShardedService::BuildReplica(int shard, int replica) {
  Shard& sh = shards_[static_cast<size_t>(shard)];
  Replica& rep = *sh.replicas[static_cast<size_t>(replica)];

  // The live dataset starts at warmup-only knowledge; the streamed region
  // fills from the replica's own feed + the boundary exchange.
  rep.live = std::make_unique<apots::traffic::TrafficDataset>(truth_);
  for (int road = 0; road < rep.live->num_roads(); ++road) {
    for (long t = warm_end_; t < rep.live->num_intervals(); ++t) {
      rep.live->SetSpeed(road, t, 0.0f);
    }
  }

  ApotsConfig cfg;
  cfg.predictor =
      PredictorHparams::Scaled(config_.predictor, config_.width_divisor);
  cfg.features = FeatureConfig::Both(config_.alpha, config_.beta);
  cfg.features.num_adjacent = num_adjacent_;
  cfg.features.target_road = sh.target_road;
  cfg.training.adversarial = false;
  cfg.training.epochs = config_.train_epochs;
  cfg.training.verbose = false;
  cfg.fallback.enabled = false;  // the supervisor owns degradation
  cfg.inference = config_.inference;
  // One seed per *shard*: sibling replicas initialize bit-identically, so
  // with identical feeds their clean-path responses are interchangeable.
  cfg.seed = config_.model_seed + static_cast<uint64_t>(shard);
  rep.model = std::make_unique<ApotsModel>(rep.live.get(), cfg);
  if (config_.train_epochs > 0) {
    std::vector<long> anchors;
    for (long a = config_.alpha; a + config_.beta < warm_end_; ++a) {
      anchors.push_back(a);
    }
    rep.model->Train(anchors);
  }

  rep.ingestor = std::make_unique<StreamIngestor>(
      rep.live.get(), warm_end_, apots::data::ImputationConfig(),
      [this](int road, long t) {
        return static_cast<float>(
            profiles_[static_cast<size_t>(road)].Predict(truth_, t));
      });
  rep.ingestor->AttachCache(rep.model->inference_runtime().feature_cache(),
                            sh.target_road);

  ServeConfig serve = config_.serve;
  serve.checkpoint_dir = rep.checkpoint_dir;
  // Replica time = shared virtual clock + this replica's skew.
  serve.now_ns = [this, shard, replica] {
    return clock_.now_ns() +
           shards_[static_cast<size_t>(shard)]
               .replicas[static_cast<size_t>(replica)]
               ->skew_ns.load(std::memory_order_acquire);
  };
  rep.supervisor = std::make_unique<ServingSupervisor>(
      rep.model.get(), rep.ingestor.get(),
      &profiles_[static_cast<size_t>(sh.target_road)], serve, &graph_);
  // Chaos clock jumps land inside the next measured inference section —
  // the worst case for deadline accounting — via the inference hook.
  rep.supervisor->set_inference_delay_for_test([this, shard, replica] {
    Replica& target = *shards_[static_cast<size_t>(shard)]
                           .replicas[static_cast<size_t>(replica)];
    if (target.pending_jump_ns != 0) {
      target.skew_ns.fetch_add(target.pending_jump_ns,
                               std::memory_order_acq_rel);
      target.pending_jump_ns = 0;
    }
  });
  // Re-apply every registered what-if context so a restarted replica
  // resolves the same ids as its siblings (registration survives chaos).
  for (const auto& [id, spec] : registered_contexts_) {
    (void)rep.supervisor->RegisterContext(id, spec);
  }

  // Recover from the replica's checkpoints when present; otherwise (or
  // when every generation is unreadable) replay the stream from the
  // warmup boundary — the feed emits the whole backlog on its first Poll.
  long feed_start = warm_end_;
  if (!rep.checkpoint_dir.empty()) {
    auto recovered = rep.supervisor->Recover();
    if (recovered.ok()) feed_start = rep.ingestor->watermark() + 1;
  }
  rep.feed = std::make_unique<FaultyFeed>(&truth_, feed_start, config_.feed);

  rep.alive = true;
  rep.partitioned_until = -1;
  rep.stalled_until = -1;
  rep.stall_ms = 0.0;
  rep.skew_ns.store(0, std::memory_order_release);
  rep.pending_jump_ns = 0;
  rep.quarantined_until_ns = -1;
  rep.applied_epoch.clear();
  for (int u : sh.spanning_shards) rep.applied_epoch[u] = -1;
}

bool ShardedService::ReplicaAlive(int shard, int replica) const {
  APOTS_CHECK_GE(shard, 0);
  APOTS_CHECK_LT(shard, config_.num_shards);
  APOTS_CHECK_GE(replica, 0);
  APOTS_CHECK_LT(replica, config_.replicas_per_shard);
  return shards_[static_cast<size_t>(shard)]
      .replicas[static_cast<size_t>(replica)]
      ->alive;
}

Status ShardedService::RegisterContext(uint64_t id,
                                       apots::data::ContextSpec spec) {
  // Validate once against a live replica (or remember-and-apply-later when
  // everything is down — BuildReplica re-validates on restart).
  for (auto& sh : shards_) {
    for (auto& rep : sh.replicas) {
      if (!rep->alive) continue;
      Status s = rep->supervisor->RegisterContext(id, spec);
      if (!s.ok()) return s;
    }
  }
  registered_contexts_[id] = std::move(spec);
  return Status::Ok();
}

Result<std::vector<ServeResponse>> ShardedService::PredictItemsOn(
    int shard, int replica,
    const std::vector<apots::core::WorkItem>& items) {
  APOTS_CHECK_GE(shard, 0);
  APOTS_CHECK_LT(shard, config_.num_shards);
  APOTS_CHECK_GE(replica, 0);
  APOTS_CHECK_LT(replica, config_.replicas_per_shard);
  Replica& rep =
      *shards_[static_cast<size_t>(shard)].replicas[static_cast<size_t>(
          replica)];
  if (!rep.alive) {
    return Status::FailedPrecondition("replica is down: shard " +
                               std::to_string(shard) + " replica " +
                               std::to_string(replica));
  }
  return rep.supervisor->PredictItems(items);
}

bool ShardedService::Reachable(const Replica& rep, long tick) const {
  if (!rep.alive) return false;
  if (rep.partitioned_until >= 0 && tick < rep.partitioned_until) {
    return false;
  }
  return true;
}

int ShardedService::FirstLiveReplica(int shard) const {
  const Shard& sh = shards_[static_cast<size_t>(shard)];
  for (size_t r = 0; r < sh.replicas.size(); ++r) {
    if (sh.replicas[r]->alive) return static_cast<int>(r);
  }
  return -1;
}

void ShardedService::IngestTickInto(int shard, int replica, long tick) {
  Replica& rep =
      *shards_[static_cast<size_t>(shard)].replicas[static_cast<size_t>(
          replica)];
  for (const FeedRecord& record : rep.feed->Poll(tick)) {
    // Shard-local ingestion: foreign roads arrive (if needed) through the
    // boundary exchange, never from the replica's own feed subscription.
    if (partition_.shard_of(record.road) != shard) continue;
    (void)rep.ingestor->Ingest(record);
  }
}

void ShardedService::PublishBoundary(int shard, long tick) {
  Shard& sh = shards_[static_cast<size_t>(shard)];
  if (sh.publish_roads.empty()) return;
  const int publisher = FirstLiveReplica(shard);
  if (publisher < 0) {
    // Whole shard down: the bus keeps the old epoch and consumers' halo
    // staleness climbs — degradation stays honest, never masked.
    ++exchange_stats_.publishes_skipped;
    return;
  }
  Replica& rep = *sh.replicas[static_cast<size_t>(publisher)];
  BoundarySnapshot snap;
  snap.epoch = tick;
  snap.seq = ++next_snapshot_seq_;
  const long lo = std::max(warm_end_, tick - config_.exchange_depth + 1);
  for (int road : sh.publish_roads) {
    for (long t = lo; t <= tick; ++t) {
      // Only *observed* cells ship: publishing the publisher's imputed
      // values would launder fabricated data into a neighbor's window.
      if (!rep.ingestor->Observed(road, t)) continue;
      FeedRecord record;
      record.interval = t;
      record.road = road;
      record.speed_kmh = rep.live->Speed(road, t);
      record.seq = snap.seq;
      snap.records.push_back(record);
    }
  }
  ++exchange_stats_.snapshots_published;
  bus_[static_cast<size_t>(shard)] = std::move(snap);
}

void ShardedService::ApplyBoundary(int shard, int replica, long tick) {
  (void)tick;
  Shard& sh = shards_[static_cast<size_t>(shard)];
  Replica& rep = *sh.replicas[static_cast<size_t>(replica)];
  for (const int source : sh.spanning_shards) {
    const BoundarySnapshot& snap = bus_[static_cast<size_t>(source)];
    if (snap.epoch < 0) continue;
    long& applied = rep.applied_epoch[source];
    // Versioned apply: an old or re-delivered snapshot is a no-op, so
    // epochs are monotone per source.
    if (snap.epoch <= applied) continue;
    for (const FeedRecord& record : snap.records) {
      if (!std::binary_search(sh.halo_roads.begin(), sh.halo_roads.end(),
                              record.road)) {
        continue;
      }
      ++exchange_stats_.records_shipped;
      (void)rep.ingestor->Ingest(record);
    }
    applied = snap.epoch;
  }
}

std::vector<long> ShardedService::TickAnchors(long tick) const {
  std::vector<long> anchors;
  const long intervals = truth_.num_intervals();
  for (int k = 0; k < config_.anchors_per_tick; ++k) {
    const long anchor = tick - k;
    if (anchor - config_.alpha < 0) break;
    if (anchor + config_.beta >= intervals) continue;
    anchors.push_back(anchor);
  }
  return anchors;
}

std::vector<ShardedResponse> ShardedService::LadderAnswer(
    int shard, const std::vector<long>& anchors) {
  const Shard& sh = shards_[static_cast<size_t>(shard)];
  const long intervals = truth_.num_intervals();
  std::vector<ShardedResponse> responses(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    const long clamped =
        std::min(std::max(anchors[i] + config_.beta, 0L), intervals - 1);
    ShardedResponse& out = responses[i];
    out.shard = shard;
    out.replica = -1;
    out.serve.kmh = profiles_[static_cast<size_t>(sh.target_road)].Predict(
        truth_, clamped);
    out.serve.tier = ServeTier::kHistorical;
  }
  router_stats_.ladder_answers += anchors.size();
  ShardedMetrics::Get().ladder_answers.Add(anchors.size());
  return responses;
}

std::vector<ShardedResponse> ShardedService::Predict(
    int shard, const std::vector<long>& anchors) {
  APOTS_CHECK_GE(shard, 0);
  APOTS_CHECK_LT(shard, config_.num_shards);
  Shard& sh = shards_[static_cast<size_t>(shard)];
  const RouterConfig& rc = config_.router;
  const long tick = next_tick_;
  const int64_t start_ns = clock_.now_ns();

  router_stats_.requests += anchors.size();
  ShardedMetrics::Get().requests.Add(anchors.size());

  const int num_replicas = static_cast<int>(sh.replicas.size());
  const int preferred = sh.preferred;
  sh.preferred = (sh.preferred + 1) % num_replicas;

  double backoff = rc.backoff_base_ms;
  int attempts = 0;
  for (int round = 0; round < std::max(1, rc.max_rounds); ++round) {
    const bool last_round = round + 1 >= std::max(1, rc.max_rounds);
    for (int k = 0; k < num_replicas; ++k) {
      const int idx = (preferred + k) % num_replicas;
      Replica& rep = *sh.replicas[static_cast<size_t>(idx)];
      // Quarantined replicas are skipped cheaply — except on the last
      // round, where every replica is a last resort before the ladder.
      if (!last_round && rep.quarantined_until_ns > clock_.now_ns()) {
        ++router_stats_.quarantine_skips;
        continue;
      }
      ++attempts;
      ++router_stats_.attempts;
      bool answered = false;
      double cost_ms;
      if (!rep.alive) {
        cost_ms = rc.probe_cost_ms;  // connection refused fails fast
      } else if (!Reachable(rep, tick)) {
        cost_ms = rc.timeout_ms;  // partition burns the full budget
      } else {
        const double stall =
            (rep.stalled_until >= 0 && tick < rep.stalled_until)
                ? rep.stall_ms
                : 0.0;
        if (stall > rc.timeout_ms) {
          cost_ms = rc.timeout_ms;  // stalled past the deadline
        } else {
          cost_ms = rc.call_cost_ms + stall;
          answered = true;
        }
      }
      clock_.Advance(cost_ms);
      if (!answered) {
        ++router_stats_.retries;
        ShardedMetrics::Get().retries.Add();
        rep.quarantined_until_ns =
            clock_.now_ns() + static_cast<int64_t>(rc.quarantine_ms * 1e6);
        clock_.Advance(backoff);
        backoff = std::min(backoff * rc.backoff_mult, rc.backoff_max_ms);
        continue;
      }

      std::vector<ServeResponse> serves = rep.supervisor->Predict(anchors);
      const double latency_ms =
          static_cast<double>(clock_.now_ns() - start_ns) / 1e6;
      const bool failover = attempts > 1;
      if (failover) {
        ++router_stats_.failovers;
        ShardedMetrics::Get().failovers.Add();
        failover_latency_ms_.push_back(latency_ms);
        ShardedMetrics::Get().failover_ms.Record(latency_ms);
      }
      router_stats_.replica_served += serves.size();
      ShardedMetrics::Get().replica_served.Add(serves.size());

      // Epoch-consistency accounting: a serve riding a lagging boundary
      // epoch is *detected* (epoch_lag_serves); one claiming the full
      // tier past the freshness tolerance would be the cross-shard
      // inconsistency the CI gate holds at zero.
      long min_epoch = tick;
      for (const int source : sh.spanning_shards) {
        const auto it = rep.applied_epoch.find(source);
        min_epoch = std::min(
            min_epoch, it == rep.applied_epoch.end() ? -1 : it->second);
      }
      std::vector<ShardedResponse> responses(serves.size());
      for (size_t i = 0; i < serves.size(); ++i) {
        ShardedResponse& out = responses[i];
        out.serve = serves[i];
        out.shard = shard;
        out.replica = idx;
        out.attempts = attempts;
        out.failover = failover;
        out.latency_ms = latency_ms;
        if (!sh.spanning_shards.empty() && min_epoch < tick) {
          ++exchange_stats_.epoch_lag_serves;
          ShardedMetrics::Get().epoch_lag_serves.Add();
          if (out.serve.tier == ServeTier::kFull &&
              min_epoch < tick - config_.serve.t1_fresh) {
            ++exchange_stats_.stale_epoch_serves;
            ShardedMetrics::Get().stale_epoch_serves.Add();
          }
        }
      }
      return responses;
    }
  }

  // Whole shard down: only now does the staleness ladder take over.
  std::vector<ShardedResponse> responses = LadderAnswer(shard, anchors);
  const double latency_ms =
      static_cast<double>(clock_.now_ns() - start_ns) / 1e6;
  for (ShardedResponse& out : responses) {
    out.attempts = attempts;
    out.failover = true;
    out.latency_ms = latency_ms;
  }
  return responses;
}

std::vector<double> ShardedService::PredictDirect(
    int shard, const std::vector<long>& anchors) {
  APOTS_CHECK_GE(shard, 0);
  APOTS_CHECK_LT(shard, config_.num_shards);
  const int live = FirstLiveReplica(shard);
  if (live < 0) return {};
  return shards_[static_cast<size_t>(shard)]
      .replicas[static_cast<size_t>(live)]
      ->model->PredictKmh(anchors);
}

bool ShardedService::RunTick() {
  if (next_tick_ > last_servable_tick()) return false;
  const long tick = next_tick_;
  clock_.Advance(config_.tick_advance_ms);

  // 1. Every live replica ingests its shard's records for this tick.
  //    (Partitioned and stalled replicas still ingest: the fault is
  //    between router and replica, not between sensors and replica.)
  for (int s = 0; s < config_.num_shards; ++s) {
    for (int r = 0; r < config_.replicas_per_shard; ++r) {
      if (shards_[static_cast<size_t>(s)]
              .replicas[static_cast<size_t>(r)]
              ->alive) {
        IngestTickInto(s, r, tick);
      }
    }
  }
  // 2. Boundary snapshots publish (epoch = tick), then apply everywhere.
  for (int s = 0; s < config_.num_shards; ++s) PublishBoundary(s, tick);
  for (int s = 0; s < config_.num_shards; ++s) {
    for (int r = 0; r < config_.replicas_per_shard; ++r) {
      if (shards_[static_cast<size_t>(s)]
              .replicas[static_cast<size_t>(r)]
              ->alive) {
        ApplyBoundary(s, r, tick);
      }
    }
  }
  // 3. Watermarks advance (imputing whatever neither feed nor exchange
  //    delivered), then every shard serves the tick's anchors through the
  //    router.
  for (int s = 0; s < config_.num_shards; ++s) {
    for (int r = 0; r < config_.replicas_per_shard; ++r) {
      Replica& rep =
          *shards_[static_cast<size_t>(s)].replicas[static_cast<size_t>(r)];
      if (rep.alive) rep.ingestor->AdvanceWatermark(tick);
    }
  }
  last_anchors_ = TickAnchors(tick);
  for (int s = 0; s < config_.num_shards; ++s) {
    last_responses_[static_cast<size_t>(s)] = Predict(s, last_anchors_);
  }
  // 4. Checkpoint schedules.
  for (int s = 0; s < config_.num_shards; ++s) {
    for (int r = 0; r < config_.replicas_per_shard; ++r) {
      Replica& rep =
          *shards_[static_cast<size_t>(s)].replicas[static_cast<size_t>(r)];
      if (rep.alive) rep.supervisor->MaybeCheckpoint(tick);
    }
  }
  ++next_tick_;
  return next_tick_ <= last_servable_tick();
}

Status ShardedService::KillReplica(int shard, int replica) {
  if (shard < 0 || shard >= config_.num_shards || replica < 0 ||
      replica >= config_.replicas_per_shard) {
    return Status::InvalidArgument("replica address out of range");
  }
  Replica& rep =
      *shards_[static_cast<size_t>(shard)].replicas[static_cast<size_t>(
          replica)];
  if (!rep.alive) {
    return Status::FailedPrecondition(apots::StrFormat(
        "shard %d replica %d is already dead", shard, replica));
  }
  dead_replica_reports_.MergeFrom(rep.supervisor->report());
  rep.supervisor.reset();  // joins the watchdog thread
  rep.ingestor.reset();
  rep.model.reset();
  rep.feed.reset();
  rep.live.reset();
  rep.alive = false;
  ++kills_;
  return Status::Ok();
}

Status ShardedService::RestartReplica(int shard, int replica) {
  if (shard < 0 || shard >= config_.num_shards || replica < 0 ||
      replica >= config_.replicas_per_shard) {
    return Status::InvalidArgument("replica address out of range");
  }
  Replica& rep =
      *shards_[static_cast<size_t>(shard)].replicas[static_cast<size_t>(
          replica)];
  if (rep.alive) {
    return Status::FailedPrecondition(apots::StrFormat(
        "shard %d replica %d is already running", shard, replica));
  }
  BuildReplica(shard, replica);
  ++restarts_;
  return Status::Ok();
}

Status ShardedService::StallReplica(int shard, int replica, double stall_ms,
                                    long ticks) {
  if (!ReplicaAlive(shard, replica)) {
    return Status::FailedPrecondition("cannot stall a dead replica");
  }
  Replica& rep =
      *shards_[static_cast<size_t>(shard)].replicas[static_cast<size_t>(
          replica)];
  rep.stall_ms = stall_ms;
  rep.stalled_until = next_tick_ + std::max(1L, ticks);
  ++stalls_;
  return Status::Ok();
}

Status ShardedService::PartitionReplica(int shard, int replica, long ticks) {
  if (!ReplicaAlive(shard, replica)) {
    return Status::FailedPrecondition("cannot partition a dead replica");
  }
  Replica& rep =
      *shards_[static_cast<size_t>(shard)].replicas[static_cast<size_t>(
          replica)];
  rep.partitioned_until = next_tick_ + std::max(1L, ticks);
  ++partitions_;
  return Status::Ok();
}

Status ShardedService::SkewReplicaClock(int shard, int replica,
                                        double skew_ms) {
  if (!ReplicaAlive(shard, replica)) {
    return Status::FailedPrecondition("cannot skew a dead replica's clock");
  }
  Replica& rep =
      *shards_[static_cast<size_t>(shard)].replicas[static_cast<size_t>(
          replica)];
  rep.pending_jump_ns += static_cast<int64_t>(skew_ms * 1e6);
  ++clock_skews_;
  return Status::Ok();
}

Status ShardedService::CorruptNewestCheckpoint(int shard, int replica) {
  if (shard < 0 || shard >= config_.num_shards || replica < 0 ||
      replica >= config_.replicas_per_shard) {
    return Status::InvalidArgument("replica address out of range");
  }
  const Replica& rep =
      *shards_[static_cast<size_t>(shard)].replicas[static_cast<size_t>(
          replica)];
  if (rep.checkpoint_dir.empty()) {
    return Status::FailedPrecondition("replica has no checkpoint dir");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  std::string newest;
  for (const auto& entry : fs::directory_iterator(rep.checkpoint_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("ckpt_", 0) != 0) continue;
    if (name.size() < 5 || name.substr(name.size() - 5) != ".apot") continue;
    if (name > newest) newest = name;  // zero-padded: lexical == numeric
  }
  if (newest.empty()) {
    return Status::NotFound(apots::StrFormat(
        "no checkpoints under %s", rep.checkpoint_dir.c_str()));
  }
  const std::string path = rep.checkpoint_dir + "/" + newest;
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  if (!file) return Status::IoError("cannot open " + path);
  file.seekg(0, std::ios::end);
  const std::streamoff size = file.tellg();
  if (size <= 0) return Status::IoError("empty checkpoint " + path);
  file.seekg(size / 2);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x5a);
  file.seekp(size / 2);
  file.write(&byte, 1);
  if (!file) return Status::IoError("corruption write failed on " + path);
  ++checkpoint_corruptions_;
  return Status::Ok();
}

ShardedReport ShardedService::report() const {
  ShardedReport out;
  out.serve = dead_replica_reports_;
  for (const Shard& sh : shards_) {
    for (const auto& rep : sh.replicas) {
      if (rep->alive) out.serve.MergeFrom(rep->supervisor->report());
    }
  }
  out.router = router_stats_;
  out.exchange = exchange_stats_;
  if (!failover_latency_ms_.empty()) {
    std::vector<double> sorted = failover_latency_ms_;
    std::sort(sorted.begin(), sorted.end());
    out.failover_p50_ms = SortedPercentile(sorted, 0.50);
    out.failover_p99_ms = SortedPercentile(sorted, 0.99);
  }
  out.kills = kills_;
  out.restarts = restarts_;
  out.stalls = stalls_;
  out.partitions = partitions_;
  out.clock_skews = clock_skews_;
  out.checkpoint_corruptions = checkpoint_corruptions_;
  return out;
}

}  // namespace apots::serve
