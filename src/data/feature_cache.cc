#include "data/feature_cache.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace apots::data {

namespace {

/// Process-wide hit/miss/eviction counters across every cache instance;
/// the per-instance Stats struct stays the precise per-cache view.
struct CacheMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& stale_rejects;
  static CacheMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Default();
    static CacheMetrics* metrics = new CacheMetrics{
        registry.GetCounter("data.feature_cache.hits"),
        registry.GetCounter("data.feature_cache.misses"),
        registry.GetCounter("data.feature_cache.evictions"),
        registry.GetCounter("data.feature_cache.stale_rejects"),
    };
    return *metrics;
  }
};

}  // namespace

FeatureCache::FeatureCache(size_t capacity) : capacity_(capacity) {
  APOTS_CHECK_GT(capacity, 0u);
}

uint64_t FeatureCache::CurrentGeneration(const Key& key) const {
  auto it = generations_.find(Key{key.road, key.interval, 0});
  return it == generations_.end() ? 0 : it->second;
}

void FeatureCache::GetOrCompute(const Key& key, size_t column_size,
                                float* dst,
                                const std::function<void(float*)>& fill) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    Entry& entry = *it->second;
    APOTS_CHECK_EQ(entry.column.size(), column_size);
    const uint64_t current = CurrentGeneration(key);
    if (entry.generation != current) {
      // The underlying interval changed since this column was computed;
      // refresh in place rather than serving the stale bytes.
      ++stats_.stale_rejects;
      CacheMetrics::Get().stale_rejects.Add();
      fill(entry.column.data());
      entry.generation = current;
    } else {
      ++stats_.hits;
      CacheMetrics::Get().hits.Add();
    }
    std::copy(entry.column.begin(), entry.column.end(), dst);
    return;
  }
  ++stats_.misses;
  CacheMetrics::Get().misses.Add();
  lru_.emplace_front(Entry{key, CurrentGeneration(key),
                           std::vector<float>(column_size)});
  fill(lru_.front().column.data());
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    CacheMetrics::Get().evictions.Add();
  }
  const std::vector<float>& column = lru_.front().column;
  std::copy(column.begin(), column.end(), dst);
}

void FeatureCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  // With no resident entries every lookup recomputes anyway, so the
  // per-key generation history can be dropped too.
  generations_.clear();
}

void FeatureCache::InvalidateKey(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  // Normalized to context 0: every context variant of this (road,
  // interval) reads the same underlying cells, so one bump stales all.
  ++generations_[Key{key.road, key.interval, 0}];
  ++stats_.key_invalidations;
}

size_t FeatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

FeatureCache::Stats FeatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace apots::data
