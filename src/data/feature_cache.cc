#include "data/feature_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace apots::data {

FeatureCache::FeatureCache(size_t capacity) : capacity_(capacity) {
  APOTS_CHECK_GT(capacity, 0u);
}

void FeatureCache::GetOrCompute(const Key& key, size_t column_size,
                                float* dst,
                                const std::function<void(float*)>& fill) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    const std::vector<float>& column = it->second->second;
    APOTS_CHECK_EQ(column.size(), column_size);
    std::copy(column.begin(), column.end(), dst);
    return;
  }
  ++stats_.misses;
  lru_.emplace_front(key, std::vector<float>(column_size));
  fill(lru_.front().second.data());
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  const std::vector<float>& column = lru_.front().second;
  std::copy(column.begin(), column.end(), dst);
}

void FeatureCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t FeatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

FeatureCache::Stats FeatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace apots::data
