#include "data/feature_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace apots::data {

FeatureCache::FeatureCache(size_t capacity) : capacity_(capacity) {
  APOTS_CHECK_GT(capacity, 0u);
}

uint64_t FeatureCache::CurrentGeneration(const Key& key) const {
  auto it = generations_.find(key);
  return it == generations_.end() ? 0 : it->second;
}

void FeatureCache::GetOrCompute(const Key& key, size_t column_size,
                                float* dst,
                                const std::function<void(float*)>& fill) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    Entry& entry = *it->second;
    APOTS_CHECK_EQ(entry.column.size(), column_size);
    const uint64_t current = CurrentGeneration(key);
    if (entry.generation != current) {
      // The underlying interval changed since this column was computed;
      // refresh in place rather than serving the stale bytes.
      ++stats_.stale_rejects;
      fill(entry.column.data());
      entry.generation = current;
    } else {
      ++stats_.hits;
    }
    std::copy(entry.column.begin(), entry.column.end(), dst);
    return;
  }
  ++stats_.misses;
  lru_.emplace_front(Entry{key, CurrentGeneration(key),
                           std::vector<float>(column_size)});
  fill(lru_.front().column.data());
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  const std::vector<float>& column = lru_.front().column;
  std::copy(column.begin(), column.end(), dst);
}

void FeatureCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  // With no resident entries every lookup recomputes anyway, so the
  // per-key generation history can be dropped too.
  generations_.clear();
}

void FeatureCache::InvalidateKey(const Key& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++generations_[key];
  ++stats_.key_invalidations;
}

size_t FeatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

FeatureCache::Stats FeatureCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace apots::data
