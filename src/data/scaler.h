#ifndef APOTS_DATA_SCALER_H_
#define APOTS_DATA_SCALER_H_

#include <cstddef>
#include <vector>

namespace apots::data {

/// Min-max scaler mapping [min, max] -> [0, 1]. Fit on training data only;
/// transform clamps nothing (values outside the fit range map outside
/// [0, 1], which is fine for the networks).
class MinMaxScaler {
 public:
  MinMaxScaler() = default;

  /// Fits on a raw value range.
  void Fit(const float* values, size_t count);
  void Fit(const std::vector<float>& values) {
    Fit(values.data(), values.size());
  }

  /// Sets the range directly (e.g. physical speed bounds).
  void SetRange(float min_value, float max_value);

  float Transform(float value) const;
  float Inverse(float scaled) const;

  bool fitted() const { return fitted_; }
  float min_value() const { return min_; }
  float max_value() const { return max_; }

 private:
  bool fitted_ = false;
  float min_ = 0.0f;
  float max_ = 1.0f;
};

/// Z-score scaler: (x - mean) / std.
class StandardScaler {
 public:
  StandardScaler() = default;

  void Fit(const float* values, size_t count);
  void Fit(const std::vector<float>& values) {
    Fit(values.data(), values.size());
  }

  float Transform(float value) const;
  float Inverse(float scaled) const;

  bool fitted() const { return fitted_; }
  float mean() const { return mean_; }
  float stddev() const { return stddev_; }

 private:
  bool fitted_ = false;
  float mean_ = 0.0f;
  float stddev_ = 1.0f;
};

}  // namespace apots::data

#endif  // APOTS_DATA_SCALER_H_
