#ifndef APOTS_DATA_IMPUTATION_H_
#define APOTS_DATA_IMPUTATION_H_

#include "traffic/fault_injector.h"
#include "traffic/traffic_dataset.h"
#include "util/status.h"

namespace apots::data {

/// Gap-repair policy. Short gaps are filled by last-observation-carry-
/// forward (traffic speed is strongly autocorrelated over minutes); longer
/// gaps fall back to the historical time-of-day / day-kind profile built
/// from the valid cells of the same road.
struct ImputationConfig {
  /// Maximal gap length (in intervals) repaired by LOCF; longer gaps use
  /// the historical profile. 6 = 30 minutes at 5-minute resolution.
  int locf_max_gap = 6;
};

/// What the repair pass did, for logging and tests.
struct ImputationReport {
  long cells_invalid = 0;   ///< invalid cells seen
  long locf_filled = 0;     ///< filled by carry-forward
  long profile_filled = 0;  ///< filled by historical profile
  long mean_filled = 0;     ///< filled by road/global mean (empty profile)
};

/// Repairs every invalid speed cell of `dataset` in place. The mask is not
/// modified: repaired cells stay invalid so evaluation keeps skipping
/// fabricated ground truth. Fails (rather than aborting) when the mask
/// shape does not match the dataset or no valid cell exists to impute from.
Result<ImputationReport> ImputeSpeeds(
    apots::traffic::TrafficDataset* dataset,
    const apots::traffic::ValidityMask& mask,
    const ImputationConfig& config = ImputationConfig());

}  // namespace apots::data

#endif  // APOTS_DATA_IMPUTATION_H_
