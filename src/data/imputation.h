#ifndef APOTS_DATA_IMPUTATION_H_
#define APOTS_DATA_IMPUTATION_H_

#include <functional>
#include <vector>

#include "traffic/fault_injector.h"
#include "traffic/traffic_dataset.h"
#include "util/status.h"

namespace apots::data {

/// Gap-repair policy. Short gaps are filled by last-observation-carry-
/// forward (traffic speed is strongly autocorrelated over minutes); longer
/// gaps fall back to the historical time-of-day / day-kind profile built
/// from the valid cells of the same road.
struct ImputationConfig {
  /// Maximal gap length (in intervals) repaired by LOCF; longer gaps use
  /// the historical profile. 6 = 30 minutes at 5-minute resolution.
  int locf_max_gap = 6;
};

/// What the repair pass did, for logging and tests.
struct ImputationReport {
  long cells_invalid = 0;   ///< invalid cells seen
  long locf_filled = 0;     ///< filled by carry-forward
  long profile_filled = 0;  ///< filled by historical profile
  long mean_filled = 0;     ///< filled by road/global mean (empty profile)
};

/// Repairs every invalid speed cell of `dataset` in place. The mask is not
/// modified: repaired cells stay invalid so evaluation keeps skipping
/// fabricated ground truth. Fails (rather than aborting) when the mask
/// shape does not match the dataset or no valid cell exists to impute from.
Result<ImputationReport> ImputeSpeeds(
    apots::traffic::TrafficDataset* dataset,
    const apots::traffic::ValidityMask& mask,
    const ImputationConfig& config = ImputationConfig());

/// Incremental cousin of ImputeSpeeds for live feeds: tracks the newest
/// observation per road and answers "what should this missing cell hold"
/// one cell at a time, applying the same policy — LOCF while the gap since
/// the last observation is at most `locf_max_gap`, historical profile
/// beyond that. The profile is supplied by the caller (fitted on warmup
/// data) so the imputer itself stays O(roads) state and O(1) per call.
class StreamingImputer {
 public:
  /// `profile(road, t)` must return a finite fallback speed for any
  /// in-range (road, t); it is only consulted when LOCF does not apply.
  StreamingImputer(int num_roads, ImputationConfig config,
                   std::function<float(int road, long t)> profile);

  /// Records a delivered reading. Out-of-order observations older than the
  /// newest one already seen for the road are ignored — LOCF must carry
  /// the *latest* value forward.
  void Observe(int road, long t, float value);

  /// Value for a cell with no observation at `t`: LOCF when the road's
  /// newest observation is recent enough (and strictly older than `t`),
  /// otherwise the historical profile.
  float Fill(int road, long t) const;

  /// Newest observed interval of `road`; -1 before any observation.
  long last_observed(int road) const;
  /// Speed of the newest observation; meaningless before any observation.
  float last_value(int road) const;
  int num_roads() const { return static_cast<int>(last_t_.size()); }

 private:
  ImputationConfig config_;
  std::function<float(int, long)> profile_;
  std::vector<long> last_t_;     ///< newest observed interval, -1 = none
  std::vector<float> last_val_;  ///< value at last_t_
};

}  // namespace apots::data

#endif  // APOTS_DATA_IMPUTATION_H_
