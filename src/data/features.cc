#include "data/features.h"

#include <algorithm>

#include "util/logging.h"

namespace apots::data {

using apots::tensor::Tensor;
using apots::traffic::DayInfo;
using apots::traffic::TrafficDataset;

FeatureConfig FeatureConfig::SpeedOnly(int alpha, int beta) {
  FeatureConfig config;
  config.alpha = alpha;
  config.beta = beta;
  config.use_adjacent = false;
  config.use_event = false;
  config.use_weather = false;
  config.use_time = false;
  return config;
}

FeatureConfig FeatureConfig::AdjacentOnly(int alpha, int beta) {
  FeatureConfig config = SpeedOnly(alpha, beta);
  config.use_adjacent = true;
  return config;
}

FeatureConfig FeatureConfig::NonSpeedOnly(int alpha, int beta) {
  FeatureConfig config = SpeedOnly(alpha, beta);
  config.use_event = true;
  config.use_weather = true;
  config.use_time = true;
  return config;
}

FeatureConfig FeatureConfig::Both(int alpha, int beta) {
  FeatureConfig config;
  config.alpha = alpha;
  config.beta = beta;
  return config;
}

FeatureAssembler::FeatureAssembler(const TrafficDataset* dataset,
                                   FeatureConfig config)
    : dataset_(dataset), config_(config) {
  APOTS_CHECK(dataset != nullptr);
  APOTS_CHECK_GT(config.alpha, 0);
  APOTS_CHECK_GE(config.beta, 0);
  APOTS_CHECK_GE(config.num_adjacent, 0);
  APOTS_CHECK_GE(dataset->num_roads(), 2 * config.num_adjacent + 1);
  target_road_ =
      config.target_road >= 0 ? config.target_road : dataset->num_roads() / 2;
  APOTS_CHECK_GE(target_road_ - config.num_adjacent, 0);
  APOTS_CHECK_LT(target_road_ + config.num_adjacent, dataset->num_roads());
}

void FeatureAssembler::Fit() {
  // Speed: physical bounds keep the scaling identical across roads and
  // independent of which days land in the training split.
  speed_scaler_.SetRange(0.0f, 110.0f);
  const long total = dataset_->num_intervals();
  std::vector<float> temps(static_cast<size_t>(total));
  std::vector<float> rains(static_cast<size_t>(total));
  for (long t = 0; t < total; ++t) {
    temps[static_cast<size_t>(t)] = dataset_->Weather(t).temperature_c;
    rains[static_cast<size_t>(t)] = dataset_->Weather(t).precipitation_mm;
  }
  // All context features live in [0, 1] like the speeds; mixed scales
  // (e.g. z-scored temperature against 0-1 speed rows) measurably hurt
  // the FC predictor.
  temperature_scaler_.Fit(temps);
  const float max_rain =
      *std::max_element(rains.begin(), rains.end());
  precipitation_scaler_.SetRange(0.0f, std::max(1.0f, max_rain));
}

int FeatureAssembler::NumRows() const {
  // 2m+1 speed rows + event + temperature + precipitation + hour + 4 day
  // type rows.
  return 2 * config_.num_adjacent + 1 + 8;
}

Tensor FeatureAssembler::SampleMatrix(long anchor) const {
  APOTS_CHECK(speed_scaler_.fitted());
  const int alpha = config_.alpha;
  const int m = config_.num_adjacent;
  APOTS_CHECK_GE(anchor - alpha, 0);
  APOTS_CHECK_LT(anchor + config_.beta, dataset_->num_intervals());

  Tensor matrix({static_cast<size_t>(NumRows()),
                 static_cast<size_t>(alpha)});
  // Speed rows: roads target-m .. target+m, zeroed (except the target)
  // when adjacent data is disabled.
  for (int offset = -m; offset <= m; ++offset) {
    const int row = offset + m;
    const bool active = offset == 0 || config_.use_adjacent;
    if (!active) continue;
    const int road = target_road_ + offset;
    for (int i = 0; i < alpha; ++i) {
      const long t = anchor - alpha + i;
      matrix.At(static_cast<size_t>(row), static_cast<size_t>(i)) =
          speed_scaler_.Transform(dataset_->Speed(road, t));
    }
  }
  const int base = 2 * m + 1;
  for (int i = 0; i < alpha; ++i) {
    const long t = anchor - alpha + i;
    if (config_.use_event) {
      matrix.At(base + 0, static_cast<size_t>(i)) =
          dataset_->EventFlag(target_road_, t);
    }
    if (config_.use_weather) {
      matrix.At(base + 1, static_cast<size_t>(i)) =
          temperature_scaler_.Transform(dataset_->Weather(t).temperature_c);
      matrix.At(base + 2, static_cast<size_t>(i)) =
          precipitation_scaler_.Transform(
              dataset_->Weather(t).precipitation_mm);
    }
    if (config_.use_time) {
      matrix.At(base + 3, static_cast<size_t>(i)) =
          static_cast<float>(dataset_->FractionalHour(t) / 24.0);
    }
  }
  if (config_.use_time) {
    // Day type of the anchor day, broadcast across the window (the paper
    // notes the day type is constant within a sequence).
    const DayInfo day = dataset_->Day(anchor);
    const std::array<float, 4> type = day.TypeVector();
    for (int k = 0; k < 4; ++k) {
      for (int i = 0; i < alpha; ++i) {
        matrix.At(base + 4 + k, static_cast<size_t>(i)) = type[k];
      }
    }
  }
  return matrix;
}

Tensor FeatureAssembler::BatchMatrix(const std::vector<long>& anchors) const {
  const size_t rows = static_cast<size_t>(NumRows());
  const size_t alpha = static_cast<size_t>(config_.alpha);
  Tensor batch({anchors.size(), rows, alpha});
  for (size_t n = 0; n < anchors.size(); ++n) {
    const Tensor sample = SampleMatrix(anchors[n]);
    std::copy(sample.data(), sample.data() + rows * alpha,
              batch.data() + n * rows * alpha);
  }
  return batch;
}

void FeatureAssembler::FillIntervalColumn(long t, float* column,
                                          const ContextSpec* spec) const {
  const int m = config_.num_adjacent;
  for (int offset = -m; offset <= m; ++offset) {
    const int row = offset + m;
    const bool active = offset == 0 || config_.use_adjacent;
    column[row] = active ? speed_scaler_.Transform(
                               dataset_->Speed(target_road_ + offset, t))
                         : 0.0f;
  }
  // Counterfactual overlay on the raw values, before scaling: the column
  // is exactly what the base fill would produce had the world carried
  // these values. Perturbations apply in order (last writer wins).
  float event = dataset_->EventFlag(target_road_, t);
  float rain = dataset_->Weather(t).precipitation_mm;
  if (spec != nullptr) {
    for (const ContextPerturbation& p : spec->perturbations) {
      if (!p.AppliesTo(t)) continue;
      switch (p.kind) {
        case PerturbationKind::kClearEvent:
          event = 0.0f;
          break;
        case PerturbationKind::kSetEvent:
          event = 1.0f;
          break;
        case PerturbationKind::kRainDelta:
          rain = std::max(0.0f, rain + p.value);
          break;
        case PerturbationKind::kDayTypeOverride:
          break;  // anchor-keyed: applied at the day-type broadcast
      }
    }
  }
  const int base = 2 * m + 1;
  column[base + 0] = config_.use_event ? event : 0.0f;
  if (config_.use_weather) {
    column[base + 1] =
        temperature_scaler_.Transform(dataset_->Weather(t).temperature_c);
    column[base + 2] = precipitation_scaler_.Transform(rain);
  } else {
    column[base + 1] = 0.0f;
    column[base + 2] = 0.0f;
  }
  column[base + 3] = config_.use_time
                         ? static_cast<float>(
                               dataset_->FractionalHour(t) / 24.0)
                         : 0.0f;
}

void FeatureAssembler::AssembleBatchInto(const long* anchors, size_t count,
                                         FeatureCache* cache,
                                         Tensor* out) const {
  AssembleBatchInto(anchors, /*contexts=*/nullptr, count, cache, out);
}

void FeatureAssembler::AssembleBatchInto(const long* anchors,
                                         const ResolvedContext* contexts,
                                         size_t count, FeatureCache* cache,
                                         Tensor* out) const {
  APOTS_CHECK(speed_scaler_.fitted());
  const size_t rows = static_cast<size_t>(NumRows());
  const size_t alpha = static_cast<size_t>(config_.alpha);
  APOTS_CHECK_EQ(out->rank(), 3u);
  APOTS_CHECK_EQ(out->dim(0), count);
  APOTS_CHECK_EQ(out->dim(1), rows);
  APOTS_CHECK_EQ(out->dim(2), alpha);
  out->Fill(0.0f);  // workspace slots arrive dirty

  const size_t column_size = rows - 4;  // all but the day-type rows
  std::vector<float> column(column_size);
  for (size_t n = 0; n < count; ++n) {
    const long anchor = anchors[n];
    const ContextSpec* spec =
        contexts == nullptr ? nullptr : contexts[n].spec;
    const uint64_t context_id = contexts == nullptr ? 0 : contexts[n].id;
    APOTS_CHECK_GE(anchor - config_.alpha, 0);
    APOTS_CHECK_LT(anchor + config_.beta, dataset_->num_intervals());
    float* sample = out->data() + n * rows * alpha;
    for (size_t i = 0; i < alpha; ++i) {
      const long t = anchor - config_.alpha + static_cast<long>(i);
      // Effective-context keying: a column the spec does not touch is
      // bitwise the base column, so key (and fill) it as context 0 —
      // interleaved base/counterfactual traffic shares those entries.
      const bool touched = spec != nullptr && spec->TouchesColumn(t);
      const ContextSpec* column_spec = touched ? spec : nullptr;
      if (cache != nullptr) {
        cache->GetOrCompute(
            {target_road_, t, touched ? context_id : 0}, column_size,
            column.data(), [this, t, column_spec](float* dst) {
              FillIntervalColumn(t, dst, column_spec);
            });
      } else {
        FillIntervalColumn(t, column.data(), column_spec);
      }
      for (size_t r = 0; r < column_size; ++r) {
        sample[r * alpha + i] = column[r];
      }
    }
    if (config_.use_time) {
      const DayInfo day = dataset_->Day(anchor);
      std::array<float, 4> type = day.TypeVector();
      if (spec != nullptr) {
        const int override_type = spec->DayTypeOverrideFor(anchor);
        if (override_type >= 0) {
          // One-hot at the override index: "as if it were a holiday".
          type = {0.0f, 0.0f, 0.0f, 0.0f};
          type[static_cast<size_t>(override_type)] = 1.0f;
        }
      }
      const size_t base = 2 * static_cast<size_t>(config_.num_adjacent) + 1;
      for (size_t k = 0; k < 4; ++k) {
        float* row = sample + (base + 4 + k) * alpha;
        std::fill(row, row + alpha, type[k]);
      }
    }
  }
}

float FeatureAssembler::Target(long anchor) const {
  APOTS_CHECK_LT(anchor + config_.beta, dataset_->num_intervals());
  return speed_scaler_.Transform(
      dataset_->Speed(target_road_, anchor + config_.beta));
}

Tensor FeatureAssembler::BatchTargets(
    const std::vector<long>& anchors) const {
  Tensor targets({anchors.size(), 1});
  for (size_t n = 0; n < anchors.size(); ++n) {
    targets[n] = Target(anchors[n]);
  }
  return targets;
}

Tensor FeatureAssembler::RealSequence(long anchor) const {
  // S_{t-alpha+beta+1 : t+beta}: the alpha real speeds ending at the
  // prediction time (Section III-A).
  const int alpha = config_.alpha;
  Tensor sequence({static_cast<size_t>(alpha)});
  for (int i = 0; i < alpha; ++i) {
    const long t = anchor - alpha + config_.beta + 1 + i;
    APOTS_CHECK_GE(t, 0);
    sequence[static_cast<size_t>(i)] =
        speed_scaler_.Transform(dataset_->Speed(target_road_, t));
  }
  return sequence;
}

Tensor FeatureAssembler::BatchRealSequences(
    const std::vector<long>& anchors) const {
  const size_t alpha = static_cast<size_t>(config_.alpha);
  Tensor batch({anchors.size(), alpha});
  for (size_t n = 0; n < anchors.size(); ++n) {
    const Tensor seq = RealSequence(anchors[n]);
    std::copy(seq.data(), seq.data() + alpha, batch.data() + n * alpha);
  }
  return batch;
}

void FeatureAssembler::SetValidityMask(
    const apots::traffic::ValidityMask* mask) {
  if (mask != nullptr) {
    APOTS_CHECK_EQ(mask->num_roads(), dataset_->num_roads());
    APOTS_CHECK_EQ(mask->num_intervals(), dataset_->num_intervals());
  }
  validity_mask_ = mask;
}

double FeatureAssembler::WindowValidityRatio(long anchor) const {
  if (validity_mask_ == nullptr) return 1.0;
  const int alpha = config_.alpha;
  APOTS_CHECK_GE(anchor - alpha, 0);
  const int m = config_.use_adjacent ? config_.num_adjacent : 0;
  long valid = 0, total = 0;
  for (int offset = -m; offset <= m; ++offset) {
    const int road = target_road_ + offset;
    for (int i = 0; i < alpha; ++i) {
      valid += validity_mask_->Valid(road, anchor - alpha + i) ? 1 : 0;
      ++total;
    }
  }
  return static_cast<double>(valid) / static_cast<double>(total);
}

bool FeatureAssembler::TargetObserved(long anchor) const {
  if (validity_mask_ == nullptr) return true;
  APOTS_CHECK_LT(anchor + config_.beta, dataset_->num_intervals());
  return validity_mask_->Valid(target_road_, anchor + config_.beta);
}

std::vector<bool> FeatureAssembler::ObservedTargetMask(
    const std::vector<long>& anchors) const {
  std::vector<bool> mask(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    mask[i] = TargetObserved(anchors[i]);
  }
  return mask;
}

Tensor FeatureAssembler::BatchContext(
    const std::vector<long>& anchors) const {
  const size_t rows = static_cast<size_t>(NumRows());
  const size_t alpha = static_cast<size_t>(config_.alpha);
  Tensor batch = BatchMatrix(anchors);
  // Zero the target road's row (index num_adjacent within the speed
  // block).
  const size_t target_row = static_cast<size_t>(config_.num_adjacent);
  for (size_t n = 0; n < anchors.size(); ++n) {
    float* row = batch.data() + (n * rows + target_row) * alpha;
    std::fill(row, row + alpha, 0.0f);
  }
  return batch.Reshape({anchors.size(), rows * alpha});
}

}  // namespace apots::data
