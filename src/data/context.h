#ifndef APOTS_DATA_CONTEXT_H_
#define APOTS_DATA_CONTEXT_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/status.h"

namespace apots::data {

/// One scoped edit to the context features feeding sample assembly — the
/// unit of a counterfactual "what-if" query (ROADMAP item 4): "this road
/// at 8am *without* the accident", "+10mm rain", "as if it were a
/// holiday". Perturbations edit raw dataset values *before* scaling, so a
/// counterfactual sample is exactly what the assembler would have built
/// had the world looked that way.
enum class PerturbationKind {
  kClearEvent,       ///< force the event flag to 0 inside the window
  kSetEvent,         ///< force the event flag to 1 inside the window
  kRainDelta,        ///< add `value` mm of precipitation (clamped >= 0)
  kDayTypeOverride,  ///< override the anchor day's type vector with the
                     ///< one-hot at index `value` in [weekday, holiday,
                     ///< before-holiday, after-holiday]
};
const char* PerturbationKindName(PerturbationKind kind);

struct ContextPerturbation {
  PerturbationKind kind = PerturbationKind::kClearEvent;
  /// Half-open dataset-interval window [begin, end) the perturbation is
  /// scoped to. Column perturbations test the column's interval t;
  /// kDayTypeOverride tests the anchor. Defaults cover every interval.
  long begin = 0;
  long end = std::numeric_limits<long>::max();
  /// kRainDelta: precipitation delta in mm (may be negative; the raw
  /// value is clamped at 0 before scaling). kDayTypeOverride: day-type
  /// index 0..3. Ignored for the event kinds.
  float value = 0.0f;

  bool AppliesTo(long t) const { return t >= begin && t < end; }
};

/// A counterfactual context: an ordered perturbation list. Perturbations
/// apply in order, so a later kSetEvent wins over an earlier kClearEvent
/// on overlapping windows (and the last applicable day-type override
/// wins) — deterministic by construction.
struct ContextSpec {
  std::vector<ContextPerturbation> perturbations;

  /// True when any *column-affecting* perturbation (event or rain — the
  /// values FeatureCache stores) applies at interval `t`. Columns this
  /// returns false for are bitwise identical to the base context and are
  /// cached under context 0, shared with live serving. Day-type overrides
  /// never touch columns (they edit the anchor-keyed broadcast rows).
  bool TouchesColumn(long t) const;

  /// Last day-type override applying to `anchor`, or -1 when none does.
  int DayTypeOverrideFor(long anchor) const;

  // --- fluent builders for the common queries ------------------------
  ContextSpec& ClearEvent(long begin = 0,
                          long end = std::numeric_limits<long>::max());
  ContextSpec& SetEvent(long begin = 0,
                        long end = std::numeric_limits<long>::max());
  ContextSpec& RainDelta(float delta_mm, long begin = 0,
                         long end = std::numeric_limits<long>::max());
  ContextSpec& DayType(int day_type);
};

/// A work item's resolved context binding: the id that keys cache entries
/// and coalescing, plus the spec to overlay (null = base/live — the
/// resolution of context 0 and of unknown ids).
struct ResolvedContext {
  uint64_t id = 0;
  const ContextSpec* spec = nullptr;
};

/// Thread-safe registry of counterfactual contexts, shared by the
/// inference runtime, the serving supervisor, and the front door. Specs
/// are immutable once registered (re-registering an id swaps the whole
/// spec); lookups hand out shared ownership so an in-flight fan-out never
/// races a concurrent re-registration.
///
/// Context id 0 is reserved for the live/base stream and cannot be
/// registered — a lookup of 0 (or of any unknown id) returns null, which
/// every consumer treats as "no overlay", so unregistered traffic always
/// degrades to exact live behavior instead of failing.
class ContextTable {
 public:
  ContextTable() = default;
  ContextTable(const ContextTable&) = delete;
  ContextTable& operator=(const ContextTable&) = delete;

  /// Registers (or replaces) `id`. Rejects id 0 and day-type indices
  /// outside 0..3.
  Status Register(uint64_t id, ContextSpec spec);

  /// The spec for `id`, or null for 0 / unknown ids.
  std::shared_ptr<const ContextSpec> Find(uint64_t id) const;

  size_t size() const;

  /// Stable copy of every registered (id, spec) — how ShardedService
  /// re-applies registrations to a rebuilt replica.
  std::vector<std::pair<uint64_t, ContextSpec>> Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const ContextSpec>> map_;
};

}  // namespace apots::data

#endif  // APOTS_DATA_CONTEXT_H_
