#include "data/context.h"

#include "util/string_util.h"

namespace apots::data {

const char* PerturbationKindName(PerturbationKind kind) {
  switch (kind) {
    case PerturbationKind::kClearEvent:
      return "clear-event";
    case PerturbationKind::kSetEvent:
      return "set-event";
    case PerturbationKind::kRainDelta:
      return "rain-delta";
    case PerturbationKind::kDayTypeOverride:
      return "day-type-override";
  }
  return "unknown";
}

bool ContextSpec::TouchesColumn(long t) const {
  for (const ContextPerturbation& p : perturbations) {
    if (p.kind == PerturbationKind::kDayTypeOverride) continue;
    if (p.AppliesTo(t)) return true;
  }
  return false;
}

int ContextSpec::DayTypeOverrideFor(long anchor) const {
  int day_type = -1;
  for (const ContextPerturbation& p : perturbations) {
    if (p.kind == PerturbationKind::kDayTypeOverride && p.AppliesTo(anchor)) {
      day_type = static_cast<int>(p.value);
    }
  }
  return day_type;
}

ContextSpec& ContextSpec::ClearEvent(long begin, long end) {
  perturbations.push_back(
      {PerturbationKind::kClearEvent, begin, end, 0.0f});
  return *this;
}

ContextSpec& ContextSpec::SetEvent(long begin, long end) {
  perturbations.push_back({PerturbationKind::kSetEvent, begin, end, 0.0f});
  return *this;
}

ContextSpec& ContextSpec::RainDelta(float delta_mm, long begin, long end) {
  perturbations.push_back(
      {PerturbationKind::kRainDelta, begin, end, delta_mm});
  return *this;
}

ContextSpec& ContextSpec::DayType(int day_type) {
  perturbations.push_back({PerturbationKind::kDayTypeOverride, 0,
                           std::numeric_limits<long>::max(),
                           static_cast<float>(day_type)});
  return *this;
}

Status ContextTable::Register(uint64_t id, ContextSpec spec) {
  if (id == 0) {
    return Status::InvalidArgument(
        "context id 0 is reserved for the live/base stream");
  }
  for (const ContextPerturbation& p : spec.perturbations) {
    if (p.begin > p.end) {
      return Status::InvalidArgument(
          StrFormat("context %llu: perturbation window [%ld, %ld) is "
                    "inverted",
                    static_cast<unsigned long long>(id), p.begin, p.end));
    }
    if (p.kind == PerturbationKind::kDayTypeOverride) {
      const int day_type = static_cast<int>(p.value);
      if (day_type < 0 || day_type > 3) {
        return Status::InvalidArgument(
            StrFormat("context %llu: day-type override %d outside 0..3",
                      static_cast<unsigned long long>(id), day_type));
      }
    }
  }
  auto shared = std::make_shared<const ContextSpec>(std::move(spec));
  std::lock_guard<std::mutex> lock(mu_);
  map_[id] = std::move(shared);
  return Status::Ok();
}

std::shared_ptr<const ContextSpec> ContextTable::Find(uint64_t id) const {
  if (id == 0) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(id);
  return it == map_.end() ? nullptr : it->second;
}

size_t ContextTable::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::vector<std::pair<uint64_t, ContextSpec>> ContextTable::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, ContextSpec>> out;
  out.reserve(map_.size());
  for (const auto& [id, spec] : map_) {
    out.emplace_back(id, *spec);
  }
  return out;
}

}  // namespace apots::data
