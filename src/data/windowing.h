#ifndef APOTS_DATA_WINDOWING_H_
#define APOTS_DATA_WINDOWING_H_

#include <cstdint>
#include <vector>

#include "traffic/traffic_dataset.h"

namespace apots::data {

/// How test anchors are chosen from the timeline.
enum class SplitStrategy {
  /// Whole days are assigned to test; train anchors whose input or target
  /// window touches a test day are discarded (the paper's "discard the
  /// overlapped samples from the training set").
  kBlockedByDay,
  /// Anchors are sampled i.i.d.; train anchors overlapping any test
  /// window are discarded. Faithful to a literal reading of the paper but
  /// discards most of the training set — kept for ablation.
  kRandomAnchors,
};

/// The anchors (value of "present time t") of the train/test samples. An
/// anchor t uses inputs over [t - alpha, t - 1] and target t + beta; both
/// ends must be inside the dataset.
struct SampleSplit {
  std::vector<long> train;
  std::vector<long> test;
};

/// Sliding-window sample extraction + train/test split.
///
/// `test_fraction` is the share of anchors (or days) assigned to test;
/// the split is deterministic in `seed`.
SampleSplit MakeSplit(const apots::traffic::TrafficDataset& dataset,
                      int alpha, int beta, double test_fraction,
                      SplitStrategy strategy, uint64_t seed);

/// Removes from `anchors` every anchor whose [t-alpha, t+beta] window
/// intersects a window of `reference` (helper exposed for tests).
std::vector<long> DiscardOverlapping(const std::vector<long>& anchors,
                                     const std::vector<long>& reference,
                                     int alpha, int beta);

/// Splits `anchors` into two parts: the first `1 - fraction` share and the
/// remainder, after a deterministic shuffle — used to carve a validation
/// set out of training anchors (the paper's 20% validation).
std::pair<std::vector<long>, std::vector<long>> HoldOut(
    const std::vector<long>& anchors, double fraction, uint64_t seed);

}  // namespace apots::data

#endif  // APOTS_DATA_WINDOWING_H_
