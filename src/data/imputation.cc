#include "data/imputation.h"

#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace apots::data {

using apots::traffic::DayInfo;
using apots::traffic::TrafficDataset;
using apots::traffic::ValidityMask;

namespace {

int DayKind(const DayInfo& day) {
  return (day.is_weekend || day.is_holiday) ? 1 : 0;
}

// Time-of-day x day-kind mean speed of one road over its valid cells.
class RoadProfile {
 public:
  RoadProfile(const TrafficDataset& dataset, const ValidityMask& mask,
              int road)
      : intervals_per_day_(dataset.intervals_per_day()) {
    sum_.assign(2 * static_cast<size_t>(intervals_per_day_), 0.0);
    count_.assign(2 * static_cast<size_t>(intervals_per_day_), 0);
    for (long t = 0; t < dataset.num_intervals(); ++t) {
      if (!mask.Valid(road, t)) continue;
      const size_t idx = Index(dataset, t);
      sum_[idx] += dataset.Speed(road, t);
      ++count_[idx];
      road_sum_ += dataset.Speed(road, t);
      ++road_count_;
    }
  }

  bool HasBucket(const TrafficDataset& dataset, long t) const {
    return count_[Index(dataset, t)] > 0;
  }
  float Bucket(const TrafficDataset& dataset, long t) const {
    const size_t idx = Index(dataset, t);
    return static_cast<float>(sum_[idx] / count_[idx]);
  }
  long road_count() const { return road_count_; }
  double road_sum() const { return road_sum_; }
  float RoadMean() const {
    return static_cast<float>(road_sum_ / road_count_);
  }

 private:
  size_t Index(const TrafficDataset& dataset, long t) const {
    const int slot = static_cast<int>(t % intervals_per_day_);
    return static_cast<size_t>(DayKind(dataset.Day(t))) * intervals_per_day_ +
           slot;
  }

  int intervals_per_day_;
  std::vector<double> sum_;
  std::vector<long> count_;
  double road_sum_ = 0.0;
  long road_count_ = 0;
};

}  // namespace

Result<ImputationReport> ImputeSpeeds(TrafficDataset* dataset,
                                      const ValidityMask& mask,
                                      const ImputationConfig& config) {
  if (dataset == nullptr) {
    return Status::InvalidArgument("ImputeSpeeds: dataset is null");
  }
  if (mask.num_roads() != dataset->num_roads() ||
      mask.num_intervals() != dataset->num_intervals()) {
    return Status::InvalidArgument(StrFormat(
        "mask shape [%d x %ld] does not match dataset [%d x %ld]",
        mask.num_roads(), mask.num_intervals(), dataset->num_roads(),
        dataset->num_intervals()));
  }
  if (config.locf_max_gap < 0) {
    return Status::InvalidArgument("locf_max_gap must be >= 0");
  }

  const int roads = dataset->num_roads();
  const long intervals = dataset->num_intervals();

  std::vector<RoadProfile> profiles;
  profiles.reserve(static_cast<size_t>(roads));
  double global_sum = 0.0;
  long global_count = 0;
  for (int road = 0; road < roads; ++road) {
    profiles.emplace_back(*dataset, mask, road);
    global_sum += profiles.back().road_sum();
    global_count += profiles.back().road_count();
  }
  if (global_count == 0) {
    return Status::FailedPrecondition(
        "every cell is invalid; nothing to impute from");
  }
  const float global_mean = static_cast<float>(global_sum / global_count);

  ImputationReport report;
  for (int road = 0; road < roads; ++road) {
    const RoadProfile& profile = profiles[static_cast<size_t>(road)];
    long t = 0;
    while (t < intervals) {
      if (mask.Valid(road, t)) {
        ++t;
        continue;
      }
      // Maximal invalid run [start, end).
      const long start = t;
      while (t < intervals && !mask.Valid(road, t)) ++t;
      const long end = t;
      const long length = end - start;
      report.cells_invalid += length;
      if (length <= config.locf_max_gap && start > 0) {
        const float carried = dataset->Speed(road, start - 1);
        for (long i = start; i < end; ++i) {
          dataset->SetSpeed(road, i, carried);
        }
        report.locf_filled += length;
        continue;
      }
      for (long i = start; i < end; ++i) {
        if (profile.HasBucket(*dataset, i)) {
          dataset->SetSpeed(road, i, profile.Bucket(*dataset, i));
          ++report.profile_filled;
        } else if (profile.road_count() > 0) {
          dataset->SetSpeed(road, i, profile.RoadMean());
          ++report.mean_filled;
        } else {
          dataset->SetSpeed(road, i, global_mean);
          ++report.mean_filled;
        }
      }
    }
  }
  return report;
}

StreamingImputer::StreamingImputer(
    int num_roads, ImputationConfig config,
    std::function<float(int road, long t)> profile)
    : config_(config), profile_(std::move(profile)) {
  APOTS_CHECK_GT(num_roads, 0);
  APOTS_CHECK(profile_ != nullptr);
  last_t_.assign(static_cast<size_t>(num_roads), -1);
  last_val_.assign(static_cast<size_t>(num_roads), 0.0f);
}

void StreamingImputer::Observe(int road, long t, float value) {
  APOTS_CHECK(road >= 0 && road < num_roads());
  if (t < last_t_[static_cast<size_t>(road)]) return;  // stale arrival
  last_t_[static_cast<size_t>(road)] = t;
  last_val_[static_cast<size_t>(road)] = value;
}

float StreamingImputer::Fill(int road, long t) const {
  APOTS_CHECK(road >= 0 && road < num_roads());
  const long last = last_t_[static_cast<size_t>(road)];
  if (last >= 0 && t > last && t - last <= config_.locf_max_gap) {
    return last_val_[static_cast<size_t>(road)];
  }
  return profile_(road, t);
}

long StreamingImputer::last_observed(int road) const {
  APOTS_CHECK(road >= 0 && road < num_roads());
  return last_t_[static_cast<size_t>(road)];
}

float StreamingImputer::last_value(int road) const {
  APOTS_CHECK(road >= 0 && road < num_roads());
  return last_val_[static_cast<size_t>(road)];
}

}  // namespace apots::data
