#include "data/windowing.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"
#include "util/rng.h"

namespace apots::data {

using apots::traffic::TrafficDataset;

SampleSplit MakeSplit(const TrafficDataset& dataset, int alpha, int beta,
                      double test_fraction, SplitStrategy strategy,
                      uint64_t seed) {
  APOTS_CHECK_GT(alpha, 0);
  APOTS_CHECK_GE(beta, 0);
  APOTS_CHECK_GT(test_fraction, 0.0);
  APOTS_CHECK_LT(test_fraction, 1.0);
  const long total = dataset.num_intervals();
  const long first_anchor = alpha;           // inputs reach t - alpha
  const long last_anchor = total - beta - 1;  // target reaches t + beta
  APOTS_CHECK_LT(first_anchor, last_anchor);

  apots::Rng rng(seed);
  SampleSplit split;

  if (strategy == SplitStrategy::kBlockedByDay) {
    const int days = dataset.num_days();
    const int ipd = dataset.intervals_per_day();
    std::vector<size_t> day_order(days);
    for (int d = 0; d < days; ++d) day_order[d] = static_cast<size_t>(d);
    rng.Shuffle(&day_order);
    const int num_test_days =
        std::max(1, static_cast<int>(days * test_fraction + 0.5));
    std::unordered_set<int> test_days(day_order.begin(),
                                      day_order.begin() + num_test_days);
    for (long t = first_anchor; t <= last_anchor; ++t) {
      // A sample belongs to the day of its anchor; it goes to train only
      // when its full [t-alpha, t+beta] window avoids every test day.
      const int anchor_day = static_cast<int>(t / ipd);
      if (test_days.count(anchor_day) > 0) {
        split.test.push_back(t);
        continue;
      }
      const int first_day = static_cast<int>((t - alpha) / ipd);
      const int last_day = static_cast<int>((t + beta) / ipd);
      bool touches_test = false;
      for (int d = first_day; d <= last_day; ++d) {
        if (test_days.count(d) > 0) {
          touches_test = true;
          break;
        }
      }
      if (!touches_test) split.train.push_back(t);
    }
    return split;
  }

  // kRandomAnchors.
  std::vector<long> anchors;
  anchors.reserve(static_cast<size_t>(last_anchor - first_anchor + 1));
  for (long t = first_anchor; t <= last_anchor; ++t) anchors.push_back(t);
  std::vector<size_t> order(anchors.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  const size_t num_test = static_cast<size_t>(anchors.size() * test_fraction);
  std::vector<long> test;
  test.reserve(num_test);
  for (size_t i = 0; i < num_test; ++i) test.push_back(anchors[order[i]]);
  std::vector<long> train_candidates;
  train_candidates.reserve(anchors.size() - num_test);
  for (size_t i = num_test; i < order.size(); ++i) {
    train_candidates.push_back(anchors[order[i]]);
  }
  split.test = test;
  split.train = DiscardOverlapping(train_candidates, test, alpha, beta);
  std::sort(split.test.begin(), split.test.end());
  std::sort(split.train.begin(), split.train.end());
  return split;
}

std::vector<long> DiscardOverlapping(const std::vector<long>& anchors,
                                     const std::vector<long>& reference,
                                     int alpha, int beta) {
  // Two windows [a-alpha, a+beta] and [b-alpha, b+beta] intersect iff
  // |a - b| <= alpha + beta. Sort the reference and binary-search.
  std::vector<long> sorted_ref = reference;
  std::sort(sorted_ref.begin(), sorted_ref.end());
  const long radius = alpha + beta;
  std::vector<long> kept;
  kept.reserve(anchors.size());
  for (long a : anchors) {
    auto it = std::lower_bound(sorted_ref.begin(), sorted_ref.end(),
                               a - radius);
    if (it != sorted_ref.end() && *it <= a + radius) continue;
    kept.push_back(a);
  }
  return kept;
}

std::pair<std::vector<long>, std::vector<long>> HoldOut(
    const std::vector<long>& anchors, double fraction, uint64_t seed) {
  APOTS_CHECK_GE(fraction, 0.0);
  APOTS_CHECK_LT(fraction, 1.0);
  std::vector<size_t> order(anchors.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  apots::Rng rng(seed);
  rng.Shuffle(&order);
  const size_t held = static_cast<size_t>(anchors.size() * fraction);
  std::vector<long> main_part, held_part;
  main_part.reserve(anchors.size() - held);
  held_part.reserve(held);
  for (size_t i = 0; i < order.size(); ++i) {
    (i < held ? held_part : main_part).push_back(anchors[order[i]]);
  }
  std::sort(main_part.begin(), main_part.end());
  std::sort(held_part.begin(), held_part.end());
  return {main_part, held_part};
}

}  // namespace apots::data
