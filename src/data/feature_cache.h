#ifndef APOTS_DATA_FEATURE_CACHE_H_
#define APOTS_DATA_FEATURE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace apots::data {

/// Thread-safe LRU cache of per-interval feature columns.
///
/// A sample matrix column i holds the features of one dataset interval
/// t = anchor - alpha + i, and every row except the four day-type rows
/// depends only on t — so adjacent anchors (stride one interval) share
/// alpha-1 of their alpha columns. Caching columns keyed on
/// (target road, interval) turns batched multi-anchor assembly from
/// O(alpha) recomputed columns per anchor into O(1) amortized.
///
/// Values are bitwise copies of what the uncached assembly path computes,
/// so cached and cold assembly produce identical tensors. All operations
/// take one internal mutex; concurrent GetOrCompute calls are safe
/// (misses compute under the lock — columns are cheap relative to the
/// forward pass they feed).
///
/// Two invalidation granularities exist. Invalidate() drops everything —
/// right after a wholesale dataset rewrite. InvalidateKey() marks one
/// (road, interval) stale by bumping its generation; the entry stays
/// resident and is recomputed in place on its next lookup. Streaming
/// ingestion uses the latter so one late record does not evict thousands
/// of unrelated warm columns.
///
/// Counterfactual what-if queries key their perturbed columns with a
/// nonzero `context` id, so base and counterfactual variants of the same
/// (road, interval) coexist. Generations stay keyed by (road, interval)
/// alone: one late record invalidates *every* context's variant of that
/// column, and the base context's generation bookkeeping is bit-identical
/// to the pre-context cache.
class FeatureCache {
 public:
  struct Key {
    int road;       ///< target road id the assembler is configured for
    long interval;  ///< dataset interval index of the column
    /// Counterfactual context id; 0 = live/base. Only columns a context's
    /// perturbations actually touch carry its id — untouched columns are
    /// keyed 0 and shared with base assembly.
    uint64_t context = 0;
    bool operator==(const Key& other) const {
      return road == other.road && interval == other.interval &&
             context == other.context;
    }
  };

  /// splitmix64 over the packed key fields. The previous
  /// `interval * 31 + road` collided pathologically — (t, r) and
  /// (t - 1, r + 31) shared a bucket, and a context id would have aliased
  /// whole column families — while splitmix64's full-avalanche mixing
  /// spreads every field across all 64 bits.
  struct KeyHash {
    static uint64_t SplitMix64(uint64_t x) {
      x += 0x9e3779b97f4a7c15ULL;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      return x ^ (x >> 31);
    }
    size_t operator()(const Key& key) const {
      uint64_t h = SplitMix64(static_cast<uint64_t>(key.interval));
      h = SplitMix64(h ^ static_cast<uint64_t>(
                             static_cast<uint32_t>(key.road)));
      h = SplitMix64(h ^ key.context);
      return static_cast<size_t>(h);
    }
  };

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t evictions = 0;
    /// Lookups that found a resident entry whose generation was behind —
    /// i.e. stale reads that InvalidateKey prevented.
    size_t stale_rejects = 0;
    size_t key_invalidations = 0;
  };

  explicit FeatureCache(size_t capacity);

  /// Copies the column for `key` (length `column_size`) into `dst`. On a
  /// miss, `fill` is invoked to compute the column into the cache entry
  /// first. `column_size` must be consistent across calls for a given key.
  void GetOrCompute(const Key& key, size_t column_size, float* dst,
                    const std::function<void(float*)>& fill);

  /// Drops every entry (e.g. after the underlying dataset is mutated by
  /// fault injection). Stats are preserved.
  void Invalidate();

  /// Marks one (road, interval)'s cached column stale — across *every*
  /// context variant, since all of them read the same underlying interval
  /// (the key's `context` field is ignored here). O(1): a resident entry
  /// is recomputed in place on its next GetOrCompute instead of being
  /// erased now. Safe to call for keys never cached.
  void InvalidateKey(const Key& key);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  struct Entry {
    Key key;
    uint64_t generation;
    std::vector<float> column;
  };

  /// Current generation for `key`'s (road, interval) — context-agnostic;
  /// 0 for keys never invalidated.
  uint64_t CurrentGeneration(const Key& key) const;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  /// Only keys that have been invalidated at least once appear here, so
  /// the map stays proportional to churn rather than to cache traffic.
  /// Keys are normalized to context 0: a generation covers every context
  /// variant of its (road, interval).
  std::unordered_map<Key, uint64_t, KeyHash> generations_;
  Stats stats_;
};

}  // namespace apots::data

#endif  // APOTS_DATA_FEATURE_CACHE_H_
