#ifndef APOTS_DATA_FEATURES_H_
#define APOTS_DATA_FEATURES_H_

#include <vector>

#include "data/context.h"
#include "data/feature_cache.h"
#include "data/scaler.h"
#include "tensor/tensor.h"
#include "traffic/fault_injector.h"
#include "traffic/traffic_dataset.h"

namespace apots::data {

/// Which input blocks are active. Inactive blocks are written as zeros
/// rather than removed — the fixed-input-size protocol of the paper's
/// Fig. 5 ("the size of the input to a predictor was fixed ...; the rest
/// was filled with 0"), which also keeps every predictor architecture
/// identical across ablations.
struct FeatureConfig {
  int alpha = 12;  ///< input window length (speeds)
  int beta = 1;    ///< prediction horizon in intervals

  /// m: number of upstream and of downstream roads around the target. The
  /// dataset must have at least 2m+1 roads; the target is the middle one
  /// unless `target_road` overrides it.
  int num_adjacent = 2;

  /// Target road index, or -1 for the dataset's middle road. Sharded
  /// serving points per-shard models at roads other than the corridor
  /// center; [target_road - m, target_road + m] must stay in range.
  int target_road = -1;

  bool use_adjacent = true;  ///< adjacent-speed rows (other than target)
  bool use_event = true;     ///< accident/construction flag row
  bool use_weather = true;   ///< temperature + precipitation rows
  bool use_time = true;      ///< hour row + day-type rows

  /// Convenience presets matching the paper's ablation arms.
  static FeatureConfig SpeedOnly(int alpha = 12, int beta = 1);
  static FeatureConfig AdjacentOnly(int alpha = 12, int beta = 1);
  static FeatureConfig NonSpeedOnly(int alpha = 12, int beta = 1);
  static FeatureConfig Both(int alpha = 12, int beta = 1);
};

/// Assembles model-ready samples from a TrafficDataset.
///
/// Canonical sample layout: a [rows, alpha] matrix with
///   rows 0 .. 2m        adjacent-road scaled speeds (target in middle)
///   row  2m+1           event flag of the target road
///   row  2m+2           scaled temperature
///   row  2m+3           scaled precipitation
///   row  2m+4           hour of day / 24
///   rows 2m+5 .. 2m+8   day type (weekday/holiday/before/after),
///                       broadcast across the alpha columns
/// FC flattens it, the CNN reads it as a 1-channel image, the LSTM reads
/// the transpose as an alpha-step sequence of per-interval features.
class FeatureAssembler {
 public:
  /// Scalers must be fit by the caller (on training data); `Fit` does the
  /// standard fit from a set of training anchors.
  FeatureAssembler(const apots::traffic::TrafficDataset* dataset,
                   FeatureConfig config);

  /// Fits the speed / temperature / precipitation scalers on the raw
  /// series (physical bounds for speed, data range for weather).
  void Fit();

  int alpha() const { return config_.alpha; }
  int beta() const { return config_.beta; }
  const FeatureConfig& config() const { return config_; }

  /// Index of the target road in the dataset.
  int target_road() const { return target_road_; }

  /// Rows of the canonical sample matrix.
  int NumRows() const;

  /// Flat feature width (= NumRows() * alpha).
  int FlatWidth() const { return NumRows() * config_.alpha; }

  /// Builds the [NumRows, alpha] matrix for anchor `t` (present time).
  apots::tensor::Tensor SampleMatrix(long anchor) const;

  /// Builds a batch [N, NumRows, alpha] for a set of anchors.
  apots::tensor::Tensor BatchMatrix(const std::vector<long>& anchors) const;

  /// Batched assembly into a preallocated [count, NumRows, alpha] tensor
  /// (typically a workspace slot — `out` may be dirty, every element is
  /// written). With a non-null `cache`, per-interval columns are served
  /// from / inserted into it, exploiting the alpha-1 column overlap
  /// between adjacent anchors. Bitwise identical to BatchMatrix with or
  /// without the cache, warm or cold.
  void AssembleBatchInto(const long* anchors, size_t count,
                         FeatureCache* cache,
                         apots::tensor::Tensor* out) const;

  /// Context-overlay variant for counterfactual what-if batches:
  /// `contexts[n]` binds item n to a resolved context (id + spec; a null
  /// spec means base). Perturbed raw values are overlaid *before* scaling
  /// inside the column fill, and cache keys carry the context id only for
  /// the intervals the spec actually touches — untouched columns are
  /// keyed context 0 and shared with base assembly, so an interleaved
  /// base/counterfactual stream stays warm. `contexts == nullptr` (or a
  /// row of all-null specs) is byte-for-byte the base path above.
  void AssembleBatchInto(const long* anchors,
                         const ResolvedContext* contexts, size_t count,
                         FeatureCache* cache,
                         apots::tensor::Tensor* out) const;

  /// Scaled target value s_{t+beta} of the target road.
  float Target(long anchor) const;

  /// Batch of scaled targets as an [N, 1] tensor.
  apots::tensor::Tensor BatchTargets(const std::vector<long>& anchors) const;

  /// The real scaled speed sequence S_{t-alpha+beta+1 : t+beta} of the
  /// target road — what the discriminator sees as "real" (length alpha).
  apots::tensor::Tensor RealSequence(long anchor) const;

  /// Batch version: [N, alpha].
  apots::tensor::Tensor BatchRealSequences(
      const std::vector<long>& anchors) const;

  /// Flattened conditioning context for the discriminator (Eq. 4):
  /// the sample matrix with the target road's speed row zeroed out. The
  /// real sequence overlaps the target road's observed history, so leaving
  /// that row in would let D win by a trivial equality check instead of
  /// judging trajectory realism — the degenerate-discrimination problem
  /// the paper discusses in Section III-A. Shape [N, NumRows * alpha].
  apots::tensor::Tensor BatchContext(const std::vector<long>& anchors) const;

  /// Attaches a sensor-validity mask (borrowed, may be null to detach).
  /// The mask does not change sample layout — imputation has already
  /// repaired the stored values — but it powers the two queries below.
  void SetValidityMask(const apots::traffic::ValidityMask* mask);
  const apots::traffic::ValidityMask* validity_mask() const {
    return validity_mask_;
  }

  /// Fraction of actually-observed cells among the speed rows feeding
  /// `anchor`'s input window (target road, plus adjacent roads when
  /// enabled). 1.0 without a mask.
  double WindowValidityRatio(long anchor) const;

  /// True when the ground truth s_{t+beta} at `anchor` was observed (not
  /// fabricated by a fault) — evaluation must skip anchors where this is
  /// false. True without a mask.
  bool TargetObserved(long anchor) const;

  /// Per-anchor TargetObserved vector, shaped for metrics::ComputeMasked.
  std::vector<bool> ObservedTargetMask(
      const std::vector<long>& anchors) const;

  /// Scaled speed <-> km/h conversions for reporting.
  float ScaleSpeed(float kmh) const { return speed_scaler_.Transform(kmh); }
  float UnscaleSpeed(float scaled) const {
    return speed_scaler_.Inverse(scaled);
  }

  const apots::traffic::TrafficDataset& dataset() const { return *dataset_; }

 private:
  /// Writes the NumRows()-4 anchor-independent feature values of interval
  /// `t` (speed rows, event, temperature, precipitation, hour; inactive
  /// rows as zeros). This is the unit the FeatureCache stores. A non-null
  /// `spec` overlays its perturbations on the raw values before scaling;
  /// callers pass it only when the spec touches `t`, so the null path is
  /// the base context bit for bit.
  void FillIntervalColumn(long t, float* column,
                          const ContextSpec* spec = nullptr) const;

  const apots::traffic::TrafficDataset* dataset_;  // not owned
  const apots::traffic::ValidityMask* validity_mask_ = nullptr;  // not owned
  FeatureConfig config_;
  int target_road_;
  MinMaxScaler speed_scaler_;
  MinMaxScaler temperature_scaler_;
  MinMaxScaler precipitation_scaler_;
};

}  // namespace apots::data

#endif  // APOTS_DATA_FEATURES_H_
