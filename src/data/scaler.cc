#include "data/scaler.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace apots::data {

void MinMaxScaler::Fit(const float* values, size_t count) {
  APOTS_CHECK_GT(count, 0u);
  float lo = values[0];
  float hi = values[0];
  for (size_t i = 1; i < count; ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  SetRange(lo, hi);
}

void MinMaxScaler::SetRange(float min_value, float max_value) {
  APOTS_CHECK_LT(min_value, max_value);
  min_ = min_value;
  max_ = max_value;
  fitted_ = true;
}

float MinMaxScaler::Transform(float value) const {
  APOTS_DCHECK(fitted_);
  return (value - min_) / (max_ - min_);
}

float MinMaxScaler::Inverse(float scaled) const {
  APOTS_DCHECK(fitted_);
  return scaled * (max_ - min_) + min_;
}

void StandardScaler::Fit(const float* values, size_t count) {
  APOTS_CHECK_GT(count, 0u);
  double sum = 0.0;
  for (size_t i = 0; i < count; ++i) sum += values[i];
  const double mean = sum / static_cast<double>(count);
  double var = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const double d = values[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(count);
  mean_ = static_cast<float>(mean);
  stddev_ = static_cast<float>(std::sqrt(std::max(var, 1e-12)));
  fitted_ = true;
}

float StandardScaler::Transform(float value) const {
  APOTS_DCHECK(fitted_);
  return (value - mean_) / stddev_;
}

float StandardScaler::Inverse(float scaled) const {
  APOTS_DCHECK(fitted_);
  return scaled * stddev_ + mean_;
}

}  // namespace apots::data
