#include "eval/profile.h"

#include <cstdlib>

#include "util/logging.h"
#include "util/string_util.h"

namespace apots::eval {

int EvalProfile::EpochsFor(apots::core::PredictorType type) const {
  if (level == ProfileLevel::kPaper) return epochs;  // GPU-scale budget
  switch (type) {
    case apots::core::PredictorType::kFc:
      return epochs * 6;
    case apots::core::PredictorType::kCnn:
      return epochs * 2;
    case apots::core::PredictorType::kLstm:
    case apots::core::PredictorType::kHybrid:
      return epochs;
  }
  return epochs;
}

std::string EvalProfile::LevelName() const {
  switch (level) {
    case ProfileLevel::kSmoke:
      return "smoke";
    case ProfileLevel::kQuick:
      return "quick";
    case ProfileLevel::kPaper:
      return "paper";
  }
  return "?";
}

EvalProfile EvalProfile::ForLevel(ProfileLevel level) {
  EvalProfile profile;
  profile.level = level;
  switch (level) {
    case ProfileLevel::kSmoke:
      profile.dataset = apots::traffic::DatasetSpec::Small(/*seed=*/7);
      profile.width_divisor = 32;
      profile.epochs = 3;
      profile.batch_size = 32;
      profile.max_train_anchors = 600;
      profile.max_test_anchors = 600;
      break;
    case ProfileLevel::kQuick:
      // Full 122-day corridor, subsampled anchors, 1/16-width networks.
      profile.dataset = apots::traffic::DatasetSpec();
      profile.width_divisor = 8;
      profile.epochs = 8;
      profile.adv_period = 5;
      profile.adv_batch_size = 16;
      profile.max_train_anchors = 2000;
      profile.max_test_anchors = 4000;
      break;
    case ProfileLevel::kPaper:
      profile.dataset = apots::traffic::DatasetSpec();
      profile.width_divisor = 1;
      profile.epochs = 10;
      profile.adv_period = 12;  // the paper's alpha:1 ratio
      profile.learning_rate = 0.001f;  // Table I
      profile.max_train_anchors = 0;
      profile.max_test_anchors = 0;
      break;
  }
  return profile;
}

EvalProfile EvalProfile::FromEnv() {
  const char* env = std::getenv("APOTS_EVAL_PROFILE");
  ProfileLevel level = ProfileLevel::kQuick;
  if (env != nullptr) {
    const std::string name = ToLower(env);
    if (name == "smoke") {
      level = ProfileLevel::kSmoke;
    } else if (name == "quick") {
      level = ProfileLevel::kQuick;
    } else if (name == "paper") {
      level = ProfileLevel::kPaper;
    } else {
      APOTS_LOG(Warning) << "unknown APOTS_EVAL_PROFILE '" << name
                         << "', using quick";
    }
  }
  return ForLevel(level);
}

}  // namespace apots::eval
