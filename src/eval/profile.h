#ifndef APOTS_EVAL_PROFILE_H_
#define APOTS_EVAL_PROFILE_H_

#include <cstddef>
#include <string>

#include "core/predictor.h"
#include "traffic/dataset_generator.h"

namespace apots::eval {

/// How big an experiment run is. The benches read APOTS_EVAL_PROFILE
/// (smoke | quick | paper) and default to `quick`, which preserves the
/// paper's architecture shapes and training recipe at widths/epochs that a
/// single CPU core finishes in minutes. `paper` uses the Table-I widths
/// and the full 122-day dataset (hours of CPU time).
enum class ProfileLevel { kSmoke, kQuick, kPaper };

/// All knobs one experiment run needs.
struct EvalProfile {
  ProfileLevel level = ProfileLevel::kQuick;
  apots::traffic::DatasetSpec dataset;

  /// Divisor applied to every layer width (1 = paper scale).
  size_t width_divisor = 16;
  int epochs = 5;
  size_t batch_size = 64;
  size_t adv_batch_size = 32;

  /// Caps on anchors actually used (0 = no cap); subsampling is
  /// deterministic.
  size_t max_train_anchors = 2000;
  size_t max_test_anchors = 2500;

  double test_fraction = 0.2;
  uint64_t split_seed = 20220513;
  uint64_t model_seed = 1234;

  int alpha = 12;
  /// Prediction horizon in 5-minute intervals. 6 (= 30 minutes ahead)
  /// makes the task hard enough that context and adversarial training
  /// matter, mirroring the paper's error regime; at beta = 1 the problem
  /// is near-trivial for any auto-regressive method.
  int beta = 3;

  /// MSE minibatches per adversarial round. The paper's ratio is alpha:1
  /// (= 12); the scaled profiles use 4 so the discriminator sees enough
  /// rounds within the reduced epoch budget. `paper` keeps 12.
  int adv_period = 4;

  /// Predictor learning rate. The paper's 0.001 (Table I) is kept for the
  /// paper profile; the narrow scaled networks train best around 0.003
  /// within the reduced epoch budget.
  float learning_rate = 0.002f;
  /// Generator-adversarial gradient weight (see TrainConfig::adv_weight).
  float adv_weight = 0.05f;
  double abrupt_theta = 0.3;

  std::string LevelName() const;

  /// Per-family epoch budget: epochs is the budget of the most expensive
  /// family (Hybrid); cheaper families get proportionally more epochs so
  /// every model trains to a comparable convergence level in comparable
  /// wall-clock (the paper trains each model to convergence on a GPU).
  int EpochsFor(apots::core::PredictorType type) const;

  /// Builds the profile for a level.
  static EvalProfile ForLevel(ProfileLevel level);

  /// Reads APOTS_EVAL_PROFILE (default quick).
  static EvalProfile FromEnv();
};

}  // namespace apots::eval

#endif  // APOTS_EVAL_PROFILE_H_
