#include "eval/experiment.h"

#include <algorithm>

#include "baseline/ar_model.h"
#include "baseline/historical_average.h"
#include "baseline/knn_model.h"
#include "baseline/prophet.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace apots::eval {

using apots::core::ApotsConfig;
using apots::core::ApotsModel;
using apots::core::PredictorHparams;
using apots::core::PredictorTypeName;
using apots::data::FeatureConfig;
using apots::metrics::Segment;

std::string ModelSpec::Label() const {
  const bool add_data = features.use_adjacent || features.use_event ||
                        features.use_weather || features.use_time;
  std::string label;
  if (adversarial && add_data) {
    label = "APOTS ";
  } else if (adversarial) {
    label = "Adv ";
  }
  label += PredictorTypeName(predictor);
  return label;
}

std::vector<long> SubsampleAnchors(const std::vector<long>& anchors,
                                   size_t cap) {
  if (cap == 0 || anchors.size() <= cap) return anchors;
  std::vector<long> out;
  out.reserve(cap);
  const double stride =
      static_cast<double>(anchors.size()) / static_cast<double>(cap);
  for (size_t i = 0; i < cap; ++i) {
    out.push_back(anchors[static_cast<size_t>(i * stride)]);
  }
  return out;
}

Experiment::Experiment(const EvalProfile& profile)
    : profile_(profile),
      dataset_(apots::traffic::GenerateDataset(profile.dataset)) {
  target_road_ = dataset_.num_roads() / 2;
  auto split = apots::data::MakeSplit(
      dataset_, profile_.alpha, profile_.beta, profile_.test_fraction,
      apots::data::SplitStrategy::kBlockedByDay, profile_.split_seed);
  train_anchors_ = SubsampleAnchors(split.train, profile_.max_train_anchors);
  // Abrupt-change instants are rare (<1% of intervals) but are exactly
  // what Figs. 4/6 evaluate, so subsampling must not wash them out: every
  // abrupt test anchor is kept, and only the normal anchors are thinned
  // to the cap.
  const auto all_segments = apots::metrics::ClassifyAnchors(
      dataset_, target_road_, split.test, profile_.beta,
      profile_.abrupt_theta);
  std::vector<long> normal_anchors, abrupt_anchors;
  for (size_t i = 0; i < split.test.size(); ++i) {
    if (all_segments[i] == apots::metrics::Segment::kNormal) {
      normal_anchors.push_back(split.test[i]);
    } else {
      abrupt_anchors.push_back(split.test[i]);
    }
  }
  test_anchors_ = SubsampleAnchors(normal_anchors, profile_.max_test_anchors);
  test_anchors_.insert(test_anchors_.end(), abrupt_anchors.begin(),
                       abrupt_anchors.end());
  std::sort(test_anchors_.begin(), test_anchors_.end());
  test_segments_ = apots::metrics::ClassifyAnchors(
      dataset_, target_road_, test_anchors_, profile_.beta,
      profile_.abrupt_theta);
  const auto counts = apots::metrics::CountSegments(test_segments_);
  APOTS_LOG(Info) << "experiment[" << profile_.LevelName() << "]: "
                  << train_anchors_.size() << " train / "
                  << test_anchors_.size() << " test anchors; segments "
                  << counts.normal << " normal, " << counts.abrupt_acc
                  << " acc, " << counts.abrupt_dec << " dec";
}

ApotsConfig Experiment::MakeConfig(const ModelSpec& spec) const {
  ApotsConfig config;
  config.predictor =
      profile_.width_divisor <= 1
          ? PredictorHparams::Paper(spec.predictor)
          : PredictorHparams::Scaled(spec.predictor, profile_.width_divisor);
  // The discriminator is kept closer to full size than the predictors:
  // an under-parameterized D cannot tell real from predicted sequences and
  // the adversarial term degenerates to noise.
  config.discriminator =
      profile_.width_divisor <= 1
          ? apots::core::DiscriminatorHparams()
          : apots::core::DiscriminatorHparams::Scaled(
                std::max<size_t>(1, profile_.width_divisor / 4));
  config.features = spec.features;
  config.features.alpha = profile_.alpha;
  config.features.beta = profile_.beta;
  // m follows the dataset: target road +- everything available.
  config.features.num_adjacent = (dataset_.num_roads() - 1) / 2;
  config.training.epochs = profile_.EpochsFor(spec.predictor);
  config.training.batch_size = profile_.batch_size;
  config.training.adversarial = spec.adversarial;
  config.training.adv_period = profile_.adv_period;
  config.training.adv_weight = profile_.adv_weight;
  config.training.adv_batch_size = profile_.adv_batch_size;
  config.training.learning_rate = profile_.learning_rate;
  config.seed = profile_.model_seed;
  return config;
}

EvalRow Experiment::MakeRow(const std::string& label,
                            std::vector<double> predictions,
                            std::vector<double> truths, double seconds,
                            size_t num_weights) const {
  APOTS_CHECK_EQ(predictions.size(), test_anchors_.size());
  EvalRow row;
  row.label = label;
  row.whole = apots::metrics::Compute(predictions, truths);
  row.normal = apots::metrics::ComputeMasked(
      predictions, truths,
      apots::metrics::SegmentMask(test_segments_, Segment::kNormal));
  row.abrupt_acc = apots::metrics::ComputeMasked(
      predictions, truths,
      apots::metrics::SegmentMask(test_segments_,
                                  Segment::kAbruptAcceleration));
  row.abrupt_dec = apots::metrics::ComputeMasked(
      predictions, truths,
      apots::metrics::SegmentMask(test_segments_,
                                  Segment::kAbruptDeceleration));
  row.train_seconds = seconds;
  row.num_weights = num_weights;
  row.predictions = std::move(predictions);
  row.truths = std::move(truths);
  return row;
}

EvalRow Experiment::RunModel(const ModelSpec& spec) const {
  apots::Stopwatch watch;
  ApotsModel model(&dataset_, MakeConfig(spec));
  model.Train(train_anchors_);
  const double seconds = watch.ElapsedSeconds();
  std::vector<double> predictions = model.PredictKmh(test_anchors_);
  std::vector<double> truths = model.TrueKmh(test_anchors_);
  APOTS_LOG(Info) << spec.Label() << ": trained in " << seconds << "s";
  return MakeRow(spec.Label(), std::move(predictions), std::move(truths),
                 seconds, model.NumWeights());
}

namespace {

// Truths at the prediction instants, shared by the baselines.
std::vector<double> TruthsAt(const apots::traffic::TrafficDataset& dataset,
                             int road, const std::vector<long>& anchors,
                             int beta) {
  std::vector<double> out(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    out[i] = dataset.Speed(road, anchors[i] + beta);
  }
  return out;
}

// All intervals belonging to days that contain at least one train anchor —
// the non-windowed baselines fit on raw series, not windows.
std::vector<long> TrainIntervals(
    const apots::traffic::TrafficDataset& dataset,
    const std::vector<long>& train_anchors) {
  const int ipd = dataset.intervals_per_day();
  std::vector<bool> is_train_day(static_cast<size_t>(dataset.num_days()),
                                 false);
  for (long a : train_anchors) {
    is_train_day[static_cast<size_t>(a / ipd)] = true;
  }
  std::vector<long> intervals;
  for (long t = 0; t < dataset.num_intervals(); ++t) {
    if (is_train_day[static_cast<size_t>(t / ipd)]) intervals.push_back(t);
  }
  return intervals;
}

}  // namespace

EvalRow Experiment::RunProphet() const {
  apots::Stopwatch watch;
  apots::baseline::Prophet prophet;
  const auto intervals = TrainIntervals(dataset_, train_anchors_);
  const apots::Status status =
      prophet.Fit(dataset_, target_road_, intervals);
  APOTS_CHECK(status.ok()) << status.ToString();
  std::vector<double> predictions =
      prophet.PredictAtAnchors(dataset_, test_anchors_, profile_.beta);
  return MakeRow("Prophet", std::move(predictions),
                 TruthsAt(dataset_, target_road_, test_anchors_,
                          profile_.beta),
                 watch.ElapsedSeconds(), prophet.NumFeatures());
}

EvalRow Experiment::RunHistoricalAverage() const {
  apots::Stopwatch watch;
  apots::baseline::HistoricalAverage model;
  const auto intervals = TrainIntervals(dataset_, train_anchors_);
  const apots::Status status = model.Fit(dataset_, target_road_, intervals);
  APOTS_CHECK(status.ok()) << status.ToString();
  std::vector<double> predictions =
      model.PredictAtAnchors(dataset_, test_anchors_, profile_.beta);
  return MakeRow("HistAvg", std::move(predictions),
                 TruthsAt(dataset_, target_road_, test_anchors_,
                          profile_.beta),
                 watch.ElapsedSeconds(), 0);
}

EvalRow Experiment::RunArModel() const {
  apots::Stopwatch watch;
  apots::baseline::ArModel model(profile_.alpha);
  const apots::Status status = model.Fit(dataset_, target_road_,
                                         train_anchors_, profile_.beta);
  APOTS_CHECK(status.ok()) << status.ToString();
  std::vector<double> predictions =
      model.PredictAtAnchors(dataset_, test_anchors_);
  return MakeRow("AR", std::move(predictions),
                 TruthsAt(dataset_, target_road_, test_anchors_,
                          profile_.beta),
                 watch.ElapsedSeconds(), profile_.alpha + 1);
}

EvalRow Experiment::RunKnn() const {
  apots::Stopwatch watch;
  apots::baseline::KnnModel model(profile_.alpha);
  const apots::Status status =
      model.Fit(dataset_, target_road_, train_anchors_, profile_.beta);
  APOTS_CHECK(status.ok()) << status.ToString();
  std::vector<double> predictions =
      model.PredictAtAnchors(dataset_, test_anchors_);
  return MakeRow("KNN", std::move(predictions),
                 TruthsAt(dataset_, target_road_, test_anchors_,
                          profile_.beta),
                 watch.ElapsedSeconds(), 0);
}

}  // namespace apots::eval
