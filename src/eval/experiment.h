#ifndef APOTS_EVAL_EXPERIMENT_H_
#define APOTS_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/apots_model.h"
#include "data/windowing.h"
#include "eval/profile.h"
#include "metrics/metrics.h"
#include "metrics/segmentation.h"
#include "traffic/traffic_dataset.h"

namespace apots::eval {

/// One cell of the evaluation grids: predictor family x adversarial flag x
/// active feature blocks.
struct ModelSpec {
  apots::core::PredictorType predictor = apots::core::PredictorType::kFc;
  bool adversarial = false;
  apots::data::FeatureConfig features;

  /// "F", "Adv F", "APOTS H", ... matching the paper's labels: "Adv X" for
  /// adversarial without additional data, "APOTS X" with both.
  std::string Label() const;
};

/// Metrics of one trained configuration, whole-period and per segment.
struct EvalRow {
  std::string label;
  apots::metrics::MetricSet whole;
  apots::metrics::MetricSet normal;
  apots::metrics::MetricSet abrupt_acc;
  apots::metrics::MetricSet abrupt_dec;
  double train_seconds = 0.0;
  size_t num_weights = 0;
  /// Per-anchor predictions/truths (km/h), aligned with the test anchors,
  /// kept so benches can write figure series.
  std::vector<double> predictions;
  std::vector<double> truths;
};

/// A prepared evaluation environment shared across all model runs of one
/// bench: dataset, split (already subsampled per profile), and segment
/// labels of the test anchors.
class Experiment {
 public:
  explicit Experiment(const EvalProfile& profile);

  const apots::traffic::TrafficDataset& dataset() const { return dataset_; }
  const std::vector<long>& train_anchors() const { return train_anchors_; }
  const std::vector<long>& test_anchors() const { return test_anchors_; }
  const std::vector<apots::metrics::Segment>& test_segments() const {
    return test_segments_;
  }
  const EvalProfile& profile() const { return profile_; }
  int target_road() const { return target_road_; }

  /// Trains and evaluates one APOTS configuration.
  EvalRow RunModel(const ModelSpec& spec) const;

  /// Evaluates the Prophet baseline (fit on all training-day intervals).
  EvalRow RunProphet() const;

  /// Evaluates the historical-average baseline.
  EvalRow RunHistoricalAverage() const;

  /// Evaluates the AR(alpha) baseline.
  EvalRow RunArModel() const;

  /// Evaluates the ST-KNN-style nearest-neighbour baseline.
  EvalRow RunKnn() const;

  /// Builds an EvalRow (segmented metrics) from raw predictions.
  EvalRow MakeRow(const std::string& label,
                  std::vector<double> predictions,
                  std::vector<double> truths, double seconds,
                  size_t num_weights) const;

  /// Builds the ApotsConfig for a spec under this experiment's profile
  /// (exposed so benches can tweak, e.g. epochs for Fig. 6).
  apots::core::ApotsConfig MakeConfig(const ModelSpec& spec) const;

 private:
  EvalProfile profile_;
  apots::traffic::TrafficDataset dataset_;
  std::vector<long> train_anchors_;
  std::vector<long> test_anchors_;
  std::vector<apots::metrics::Segment> test_segments_;
  int target_road_ = 0;
};

/// Deterministically subsamples `anchors` to at most `cap` (0 = no cap),
/// keeping an even stride so the time coverage stays uniform.
std::vector<long> SubsampleAnchors(const std::vector<long>& anchors,
                                   size_t cap);

}  // namespace apots::eval

#endif  // APOTS_EVAL_EXPERIMENT_H_
