#ifndef APOTS_EVAL_SCENARIOS_H_
#define APOTS_EVAL_SCENARIOS_H_

#include <string>
#include <vector>

#include "traffic/traffic_dataset.h"

namespace apots::eval {

/// A time window on the target road illustrating one of the paper's
/// Fig. 1 / Fig. 6 situations.
struct ScenarioWindow {
  std::string name;
  long start = 0;   ///< first interval of the window
  long length = 0;  ///< window length in intervals
  bool found = false;
};

/// Finds the four case-study windows of Figs. 1/6 in a dataset:
///   - morning rush (deepest 06:30-09:30 weekday drop),
///   - evening rush (deepest 17:00-21:00 weekday drop),
///   - rainy day (strongest rain-correlated off-peak slowdown),
///   - accident recovery (most severe accident on the target road).
/// Windows that cannot be located (e.g. no accident hit the target road)
/// come back with found == false.
std::vector<ScenarioWindow> FindScenarioWindows(
    const apots::traffic::TrafficDataset& dataset, int road);

}  // namespace apots::eval

#endif  // APOTS_EVAL_SCENARIOS_H_
