#include "eval/scenarios.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace apots::eval {

using apots::traffic::IncidentKind;
using apots::traffic::TrafficDataset;

namespace {

// Deepest speed drop across daily [from_hour, to_hour) windows restricted
// to days matching `want_workday`.
ScenarioWindow DeepestDailyDrop(const TrafficDataset& dataset, int road,
                                double from_hour, double to_hour,
                                bool want_workday, const std::string& name) {
  const int ipd = dataset.intervals_per_day();
  const long from = static_cast<long>(from_hour / 24.0 * ipd);
  const long to = static_cast<long>(to_hour / 24.0 * ipd);
  ScenarioWindow window;
  window.name = name;
  window.length = to - from;
  double best_range = 0.0;
  for (int day = 0; day < dataset.num_days(); ++day) {
    const auto info = dataset.calendar().Day(day);
    const bool workday = !info.is_weekend && !info.is_holiday;
    if (workday != want_workday) continue;
    const long start = static_cast<long>(day) * ipd + from;
    const long end = static_cast<long>(day) * ipd + to;
    if (end >= dataset.num_intervals()) continue;
    double lo = 1e9, hi = 0.0;
    for (long t = start; t < end; ++t) {
      lo = std::min(lo, static_cast<double>(dataset.Speed(road, t)));
      hi = std::max(hi, static_cast<double>(dataset.Speed(road, t)));
    }
    if (hi - lo > best_range) {
      best_range = hi - lo;
      window.start = start;
      window.found = true;
    }
  }
  return window;
}

}  // namespace

std::vector<ScenarioWindow> FindScenarioWindows(const TrafficDataset& dataset,
                                                int road) {
  std::vector<ScenarioWindow> windows;
  windows.push_back(DeepestDailyDrop(dataset, road, 6.5, 9.5, true,
                                     "rush_hour_morning"));
  windows.push_back(DeepestDailyDrop(dataset, road, 17.0, 21.0, true,
                                     "rush_hour_evening"));

  // Rainy day: the off-peak (10:00-16:00) window with the highest product
  // of rainfall and speed depression.
  {
    const int ipd = dataset.intervals_per_day();
    const long from = static_cast<long>(10.0 / 24.0 * ipd);
    const long to = static_cast<long>(16.0 / 24.0 * ipd);
    ScenarioWindow window;
    window.name = "rainy_day";
    window.length = to - from;
    double best_score = 0.0;
    for (int day = 0; day < dataset.num_days(); ++day) {
      const long start = static_cast<long>(day) * ipd + from;
      const long end = static_cast<long>(day) * ipd + to;
      if (end >= dataset.num_intervals()) continue;
      double rain_sum = 0.0, min_speed = 1e9;
      for (long t = start; t < end; ++t) {
        rain_sum += dataset.Weather(t).precipitation_mm;
        min_speed = std::min(min_speed,
                             static_cast<double>(dataset.Speed(road, t)));
      }
      const double depression = std::max(0.0, 90.0 - min_speed);
      const double score = rain_sum * depression;
      if (score > best_score) {
        best_score = score;
        window.start = start;
        window.found = rain_sum > 0.0;
      }
    }
    windows.push_back(window);
  }

  // Accident recovery: the most severe accident on the target road, from
  // 30 minutes before the crash to 30 minutes after full recovery.
  {
    ScenarioWindow window;
    window.name = "accident_recovery";
    double best_severity = 0.0;
    for (const auto& inc : dataset.incident_log()) {
      if (inc.road != road || inc.kind != IncidentKind::kAccident) continue;
      const long start = inc.start_interval - 6;
      const long end = inc.start_interval + inc.duration + inc.recovery + 6;
      if (start < 0 || end >= dataset.num_intervals()) continue;
      if (inc.severity > best_severity) {
        best_severity = inc.severity;
        window.start = start;
        window.length = end - start;
        window.found = true;
      }
    }
    windows.push_back(window);
  }
  return windows;
}

}  // namespace apots::eval
