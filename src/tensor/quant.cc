#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/simd_kernels.h"
#include "tensor/workspace.h"
#include "util/thread_pool.h"

namespace apots::tensor {

namespace {

constexpr size_t kNr = simd::kNrInt8;

/// Same per-chunk work target as the fp32 drivers.
constexpr size_t kGemmGrainFma = 1 << 15;

size_t RowGrain(size_t fma_per_row) {
  return std::max<size_t>(1, kGemmGrainFma / std::max<size_t>(1, fma_per_row));
}

/// Symmetric absmax code for one value: round-to-nearest-even into
/// [-127, 127] (never -128, keeping the code range symmetric).
inline int8_t QuantizeCode(float value, float inv_scale) {
  const float scaled = value * inv_scale;
  const float clamped = std::min(127.0f, std::max(-127.0f, scaled));
  return static_cast<int8_t>(std::nearbyintf(clamped));
}

}  // namespace

const char* QuantModeName(QuantMode mode) {
  switch (mode) {
    case QuantMode::kOff:
      return "off";
    case QuantMode::kFp16:
      return "fp16";
    case QuantMode::kInt8:
      return "int8";
  }
  return "unknown";
}

Int8Matrix PackInt8Weights(const Tensor& w) {
  APOTS_CHECK_EQ(w.rank(), 2u);
  const size_t k = w.rows(), n = w.cols();
  Int8Matrix packed;
  packed.k = k;
  packed.kp = (k + 3) / 4 * 4;
  packed.n = n;
  packed.col_scale.assign(n, 0.0f);
  packed.col_zsum.assign(n, 0);
  const size_t num_panels = (n + kNr - 1) / kNr;
  packed.panels.assign(num_panels * packed.kp * kNr, 0);
  const float* pw = w.data();
  for (size_t j = 0; j < n; ++j) {
    float absmax = 0.0f;
    for (size_t kk = 0; kk < k; ++kk) {
      absmax = std::max(absmax, std::fabs(pw[kk * n + j]));
    }
    const float scale = absmax > 0.0f ? absmax / 127.0f : 0.0f;
    const float inv_scale = absmax > 0.0f ? 127.0f / absmax : 0.0f;
    packed.col_scale[j] = scale;
    const size_t p = j / kNr;
    const size_t c = j % kNr;
    int8_t* panel = packed.panels.data() + p * packed.kp * kNr;
    int32_t zsum = 0;
    for (size_t kk = 0; kk < k; ++kk) {
      const int8_t code = QuantizeCode(pw[kk * n + j], inv_scale);
      // VPDPBUSD layout: (group, column, lane) for kk = 4*group + lane.
      panel[((kk / 4) * kNr + c) * 4 + (kk % 4)] = code;
      zsum += code;
    }
    packed.col_zsum[j] = zsum;
  }
  return packed;
}

Fp16Matrix PackFp16Weights(const Tensor& w) {
  APOTS_CHECK_EQ(w.rank(), 2u);
  Fp16Matrix packed;
  packed.k = w.rows();
  packed.n = w.cols();
  packed.half.resize(packed.k * packed.n);
  simd::FloatToHalf(w.data(), packed.half.data(), packed.k * packed.n);
  return packed;
}

void Int8MatmulInto(const Tensor& a, const Int8Matrix& w, Tensor* out,
                    Workspace* ws) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(a.cols(), w.k);
  const size_t m = a.rows(), k = w.k, kp = w.kp, n = w.n;
  APOTS_CHECK_EQ(out->rank(), 2u);
  APOTS_CHECK_EQ(out->rows(), m);
  APOTS_CHECK_EQ(out->cols(), n);
  if (m == 0 || n == 0) return;
  // Activation scratch: per-row scale + min (floats, 64B-aligned base)
  // followed by the unsigned codes, one padded row each. Borrowed from the
  // workspace on the zero-alloc path, thread-local otherwise.
  const size_t scale_bytes = (2 * m * sizeof(float) + 63) / 64 * 64;
  const size_t total_bytes = scale_bytes + m * kp;
  uint8_t* scratch = ws != nullptr
                         ? static_cast<uint8_t*>(ws->AcquireBytes(total_bytes))
                         : simd::PackBufferBytes(total_bytes);
  float* row_scale = reinterpret_cast<float*>(scratch);
  float* row_min = row_scale + m;
  uint8_t* qa = scratch + scale_bytes;
  const float* pa = a.data();
  for (size_t i = 0; i < m; ++i) {
    // Asymmetric min/max affine quantization: a ~= min + scale * code with
    // code in [0, 255]. Unlike symmetric absmax (+128 zero point), the
    // full code range covers the actual value range — for the all-positive
    // ReLU activations that feed most inference matmuls this doubles the
    // effective resolution.
    const float* a_row = pa + i * k;
    float lo = 0.0f, hi = 0.0f;  // k == 0 reduces to the empty range
    if (k > 0) {
      lo = hi = a_row[0];
      for (size_t kk = 1; kk < k; ++kk) {
        lo = std::min(lo, a_row[kk]);
        hi = std::max(hi, a_row[kk]);
      }
    }
    const float range = hi - lo;
    const float inv_scale = range > 0.0f ? 255.0f / range : 0.0f;
    row_scale[i] = range > 0.0f ? range / 255.0f : 0.0f;
    row_min[i] = lo;
    uint8_t* q_row = qa + i * kp;
    for (size_t kk = 0; kk < k; ++kk) {
      const float scaled = (a_row[kk] - lo) * inv_scale;
      const float clamped = std::min(255.0f, std::max(0.0f, scaled));
      q_row[kk] = static_cast<uint8_t>(std::nearbyintf(clamped));
    }
    // Pad codes meet zero weight codes in the padded k range, so their
    // value is irrelevant; zero keeps the scratch deterministic.
    for (size_t kk = k; kk < kp; ++kk) q_row[kk] = 0;
  }
  const simd::Int8PanelFn kernel = simd::PickInt8Kernel();
  const size_t num_panels = (n + kNr - 1) / kNr;
  const int8_t* panels = w.panels.data();
  const float* col_scale = w.col_scale.data();
  const int32_t* col_zsum = w.col_zsum.data();
  float* po = out->data();
  apots::GlobalPool().ParallelFor(
      0, m, RowGrain(k * n), [&](size_t r0, size_t r1, size_t) {
        for (size_t p = 0; p < num_panels; ++p) {
          const size_t j0 = p * kNr;
          const size_t width = std::min(kNr, n - j0);
          kernel(qa, kp, row_scale, row_min, panels + p * kp * kNr, kp,
                 col_scale + j0, col_zsum + j0, po + j0, n, r0, r1, width);
        }
      });
}

void Fp16MatmulInto(const Tensor& a, const Fp16Matrix& w, Tensor* out) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(a.cols(), w.k);
  APOTS_CHECK_EQ(out->rank(), 2u);
  APOTS_CHECK_EQ(out->rows(), a.rows());
  APOTS_CHECK_EQ(out->cols(), w.n);
  simd::GemmHalfB(a.data(), a.cols(), 1, w.half.data(), out->data(), a.rows(),
                  w.k, w.n);
}

}  // namespace apots::tensor
