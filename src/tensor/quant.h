#ifndef APOTS_TENSOR_QUANT_H_
#define APOTS_TENSOR_QUANT_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace apots::tensor {

class Workspace;

/// Inference weight/activation precision. kOff is exact fp32; kFp16 stores
/// weights as IEEE binary16 (activations stay fp32, panels are dequantized
/// at matmul time); kInt8 quantizes weights per-column and activations
/// per-row (absmax, symmetric) with exact int32 accumulation. Both reduced
/// modes trade bitwise equality for an accuracy band — the benches gate
/// the MAE delta vs fp32 (DESIGN.md §15).
enum class QuantMode { kOff, kFp16, kInt8 };

const char* QuantModeName(QuantMode mode);

/// A weight matrix pre-packed for the int8 kernels: signed codes laid out
/// in VPDPBUSD panel order (see simd::kNrInt8), per-column absmax scales,
/// and per-column code sums (compensating the affine activation offset
/// exactly: a ~= min + s_a * u => dot = s_a*s_b*acc + min*s_b*zsum).
struct Int8Matrix {
  std::vector<int8_t, AlignedAllocator<int8_t>> panels;
  std::vector<float> col_scale;   // [n]
  std::vector<int32_t> col_zsum;  // [n] sum over k of the signed codes
  size_t k = 0;                   // logical reduction depth
  size_t kp = 0;                  // k rounded up to a multiple of 4
  size_t n = 0;
};

/// Packs a row-major [k, n] weight matrix. Rounding is scalar
/// nearest-even, so the packed codes are host-independent.
Int8Matrix PackInt8Weights(const Tensor& w);

/// A weight matrix stored as row-major binary16 bits (half the bytes of
/// fp32; conversion rounds to nearest-even on every host).
struct Fp16Matrix {
  std::vector<uint16_t, AlignedAllocator<uint16_t>> half;  // [k, n]
  size_t k = 0;
  size_t n = 0;
};

Fp16Matrix PackFp16Weights(const Tensor& w);

/// out[m,n] = a[m,k] x w. Activations are quantized per row (asymmetric
/// min/max affine -> u8, full code range even for one-sided ReLU rows)
/// into `ws` scratch when given (the zero-alloc inference path) or
/// thread-local scratch otherwise; accumulation is exact int32 (VNNI or
/// scalar — bit-identical), dequantized via simd::DequantInt8Acc. `out`
/// must be preshaped to [m, n].
void Int8MatmulInto(const Tensor& a, const Int8Matrix& w, Tensor* out,
                    Workspace* ws);

/// out[m,n] = a[m,k] x w with binary16 B panels dequantized at pack time;
/// runs the fp32 SIMD microkernels. `out` must be preshaped to [m, n].
void Fp16MatmulInto(const Tensor& a, const Fp16Matrix& w, Tensor* out);

}  // namespace apots::tensor

#endif  // APOTS_TENSOR_QUANT_H_
