#ifndef APOTS_TENSOR_CPU_FEATURES_H_
#define APOTS_TENSOR_CPU_FEATURES_H_

namespace apots::tensor {

/// Instruction-set ladder the SIMD GEMM kernels dispatch over. The per-ISA
/// translation units are always compiled with their target flags (the rest
/// of the library keeps the build's baseline arch), and a kernel is only
/// ever *called* after the runtime check below says the host executes it —
/// so one binary runs correctly from plain x86-64 up to AVX-512 servers.
enum class SimdIsa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Highest rung of the ladder this process will dispatch to. Detected once
/// via CPUID (AVX-512 requires F+BW+VL; AVX2 requires AVX2+FMA) and cached.
/// The APOTS_FORCE_ISA environment variable (scalar|avx2|avx512|native,
/// read once) clamps the ladder *down* for fallback testing — it can never
/// enable an ISA the CPU lacks.
SimdIsa DetectedIsa();

/// True when the int8 kernels may use AVX-512 VNNI dot products. Requires
/// DetectedIsa() == kAvx512 plus the VNNI CPUID bit; without it the int8
/// path runs the scalar kernel (bit-identical results — the integer
/// accumulation is exact either way).
bool HasVnni();

/// True when fp16 packing may use F16C hardware conversions. Both the F16C
/// and the software conversion round to nearest-even, so this only selects
/// speed, never bits.
bool HasF16c();

/// "scalar" / "avx2" / "avx512".
const char* IsaName(SimdIsa isa);

/// Dispatch label for bench/CLI output, e.g. "avx512+vnni".
const char* ActiveIsaLabel();

namespace internal {
/// Test hooks: clamp dispatch to `isa` (still never above the real CPU)
/// without relying on process-start environment. Not thread-safe against
/// concurrent kernels; tests flip it between runs only.
void OverrideIsaForTesting(SimdIsa isa);
void ClearIsaOverrideForTesting();
}  // namespace internal

}  // namespace apots::tensor

#endif  // APOTS_TENSOR_CPU_FEATURES_H_
