#include "tensor/tensor.h"

#include "util/string_util.h"

namespace apots::tensor {

size_t NumElements(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  return n;
}

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  Tensor t({values.size()});
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

Tensor Tensor::FromMatrix(size_t rows, size_t cols,
                          const std::vector<float>& values) {
  APOTS_CHECK_EQ(rows * cols, values.size());
  Tensor t({rows, cols});
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

Tensor Tensor::Zeros(std::vector<size_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Full(std::vector<size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Tensor Tensor::Reshape(std::vector<size_t> new_shape) const {
  APOTS_CHECK_EQ(NumElements(new_shape), size());
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

void Tensor::ResetShape(std::vector<size_t> new_shape) {
  const size_t n = NumElements(new_shape);
  shape_ = std::move(new_shape);
  data_.resize(n);
}

std::string Tensor::ShapeString() const {
  std::string out = "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%zu", shape_[i]);
  }
  out += "]";
  return out;
}

std::string Tensor::ToString(size_t max_elements) const {
  std::string out = "Tensor" + ShapeString() + " {";
  const size_t n = std::min(size(), max_elements);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%.4g", static_cast<double>(data_[i]));
  }
  if (size() > n) out += ", ...";
  out += "}";
  return out;
}

}  // namespace apots::tensor
