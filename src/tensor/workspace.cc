#include "tensor/workspace.h"

#include <algorithm>
#include <utility>

namespace apots::tensor {

Tensor* Workspace::NextSlot() {
  if (cursor_ == slots_.size()) {
    slots_.push_back(std::make_unique<Tensor>());
  }
  return slots_[cursor_++].get();
}

Tensor* Workspace::Acquire(std::vector<size_t> shape) {
  Tensor* slot = NextSlot();
  slot->ResetShape(std::move(shape));
  high_water_floats_ = std::max(high_water_floats_, capacity_floats());
  return slot;
}

Tensor* Workspace::Materialize(Tensor&& t) {
  Tensor* slot = NextSlot();
  *slot = std::move(t);
  high_water_floats_ = std::max(high_water_floats_, capacity_floats());
  return slot;
}

void* Workspace::AcquireBytes(size_t bytes) {
  if (byte_cursor_ == byte_slots_.size()) {
    byte_slots_.push_back(std::make_unique<ByteBuffer>());
  }
  ByteBuffer* slot = byte_slots_[byte_cursor_++].get();
  if (slot->size() < bytes) slot->resize(std::max<size_t>(bytes, 64));
  return slot->data();
}

void Workspace::Reset() {
  cursor_ = 0;
  byte_cursor_ = 0;
  ++generation_;
}

size_t Workspace::capacity_floats() const {
  size_t total = 0;
  for (const auto& slot : slots_) total += slot->size();
  return total;
}

size_t Workspace::capacity_bytes() const {
  size_t total = 0;
  for (const auto& slot : byte_slots_) total += slot->size();
  return total;
}

}  // namespace apots::tensor
