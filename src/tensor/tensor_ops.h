#ifndef APOTS_TENSOR_TENSOR_OPS_H_
#define APOTS_TENSOR_TENSOR_OPS_H_

#include <functional>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace apots::tensor {

/// Elementwise c = a + b (shapes must match).
Tensor Add(const Tensor& a, const Tensor& b);
/// Elementwise c = a - b.
Tensor Sub(const Tensor& a, const Tensor& b);
/// Elementwise (Hadamard) c = a * b.
Tensor Mul(const Tensor& a, const Tensor& b);
/// c = a * scalar.
Tensor Scale(const Tensor& a, float scalar);

/// In-place a += b (shapes must match).
void AddInPlace(Tensor* a, const Tensor& b);
/// In-place a += b * scalar (axpy).
void Axpy(Tensor* a, const Tensor& b, float scalar);

/// Selects the implementation behind the GEMM/im2col kernels. kBlocked
/// (the default) is the cache-blocked path parallelized over row ranges
/// of the global ThreadPool; kReference is the original serial
/// triple-loop path, kept as the ground truth for kernel tests and as
/// the pre-parallel baseline arm of the perf benches. The blocked
/// kernels preserve the reference per-element accumulation order, so
/// results are bit-identical across modes and across pool sizes.
///
/// kSimd routes the matmul family through explicit packed-panel
/// microkernels with runtime CPUID dispatch (AVX-512 > AVX2 > scalar; see
/// cpu_features.h). Each output element is still one k-ascending FMA
/// chain, so kSimd is bit-reproducible across pool sizes and row
/// partitions for a fixed ISA — but FMA contraction differences vs the
/// scalar chains mean kSimd matches the other modes only within a small
/// relative epsilon (DESIGN.md §15). Im2Col is a copy kernel with no
/// arithmetic; kSimd uses the blocked path for it unchanged.
enum class KernelMode { kBlocked, kReference, kSimd };
void SetKernelMode(KernelMode mode);
KernelMode GetKernelMode();
/// "blocked" / "reference" / "simd".
const char* KernelModeName(KernelMode mode);

/// Matrix product of rank-2 tensors: [m,k] x [k,n] -> [m,n]. Blocked inner
/// loop over k for cache friendliness; this is the hot path of training.
Tensor Matmul(const Tensor& a, const Tensor& b);

/// a^T b without materializing the transpose: [k,m]^T x [k,n] -> [m,n].
Tensor MatmulTransposeA(const Tensor& a, const Tensor& b);

/// a b^T: [m,k] x [n,k]^T -> [m,n]. The blocked path materializes b^T
/// once so the inner loop streams instead of running a latency-bound
/// scalar dot product; the accumulation order per output element is
/// unchanged.
Tensor MatmulTransposeB(const Tensor& a, const Tensor& b);

/// Serial triple-loop ground-truth kernels (see KernelMode::kReference).
namespace reference {
Tensor Matmul(const Tensor& a, const Tensor& b);
Tensor MatmulTransposeA(const Tensor& a, const Tensor& b);
Tensor MatmulTransposeB(const Tensor& a, const Tensor& b);
Tensor Im2Col(const Tensor& input, size_t kh, size_t kw, size_t pad);
}  // namespace reference

/// Workspace-friendly kernel variants: write into a preallocated output of
/// the correct shape instead of returning a fresh tensor. Bitwise identical
/// to the allocating forms in every kernel mode; `out` contents may be
/// dirty (every element is overwritten).
void MatmulInto(const Tensor& a, const Tensor& b, Tensor* out);
void Im2ColInto(const Tensor& input, size_t kh, size_t kw, size_t pad,
                Tensor* out);
void Transpose12Into(const Tensor& a, Tensor* out);

/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Swaps the last two axes of a rank-3 tensor: [n, a, b] -> [n, b, a].
/// Used to turn a [batch, rows, time] feature matrix into the
/// [batch, time, rows] sequence layout the LSTM expects.
Tensor Transpose12(const Tensor& a);

/// Adds a length-n bias row-wise to an [m,n] matrix.
void AddRowBias(Tensor* matrix, const Tensor& bias);

/// Column-wise sum of an [m,n] matrix -> length-n vector (bias gradient).
Tensor SumRows(const Tensor& matrix);

/// Sum / mean / min / max over all elements.
float Sum(const Tensor& a);
float Mean(const Tensor& a);
float MinValue(const Tensor& a);
float MaxValue(const Tensor& a);

/// Applies `fn` elementwise, returning a new tensor.
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

/// Fills with uniform / normal random values.
void FillUniform(Tensor* t, apots::Rng* rng, float lo, float hi);
void FillNormal(Tensor* t, apots::Rng* rng, float mean, float stddev);

/// im2col for 2-D convolution with stride 1 and symmetric zero padding.
/// Input: [channels, height, width]. Output: [channels*kh*kw, out_h*out_w]
/// where out_h = height + 2*pad - kh + 1 (and similarly for width). Each
/// output column holds the receptive field of one output pixel.
Tensor Im2Col(const Tensor& input, size_t kh, size_t kw, size_t pad);

/// Inverse scatter-add of Im2Col: accumulates the column matrix back into a
/// [channels, height, width] tensor (gradient of Im2Col).
Tensor Col2Im(const Tensor& columns, size_t channels, size_t height,
              size_t width, size_t kh, size_t kw, size_t pad);

}  // namespace apots::tensor

#endif  // APOTS_TENSOR_TENSOR_OPS_H_
