#ifndef APOTS_TENSOR_TENSOR_H_
#define APOTS_TENSOR_TENSOR_H_

#include <cstddef>
#include <initializer_list>
#include <new>
#include <string>
#include <vector>

#include "util/logging.h"

namespace apots::tensor {

/// Allocator that over-aligns tensor storage to `Alignment` bytes so every
/// tensor's data() starts on a cache-line boundary — the blocked kernels can
/// then use aligned vector loads, and arena-borrowed buffers never straddle
/// a line shared with a neighbouring allocation.
template <typename T, size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  bool operator==(const AlignedAllocator&) const { return true; }
  bool operator!=(const AlignedAllocator&) const { return false; }
};

/// Tensor backing storage: 64-byte-aligned floats.
using AlignedFloatVector = std::vector<float, AlignedAllocator<float>>;

/// Dense row-major float32 n-dimensional array. This is the numeric
/// substrate of the neural-network stack: contiguous storage, explicit
/// shape, no implicit broadcasting (ops that broadcast say so in their
/// names). Copyable and movable; copies are deep.
class Tensor {
 public:
  /// An empty (rank-0, zero-element) tensor.
  Tensor() = default;

  /// Uninitialized-by-zero tensor of the given shape.
  explicit Tensor(std::vector<size_t> shape);

  /// 1-D tensor from values.
  static Tensor FromVector(const std::vector<float>& values);

  /// 2-D tensor from row-major values; values.size() must equal rows*cols.
  static Tensor FromMatrix(size_t rows, size_t cols,
                           const std::vector<float>& values);

  /// All-zeros / all-`value` tensors.
  static Tensor Zeros(std::vector<size_t> shape);
  static Tensor Full(std::vector<size_t> shape, float value);

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t size() const { return data_.size(); }

  /// Dimension `axis`; checked.
  size_t dim(size_t axis) const {
    APOTS_DCHECK(axis < shape_.size());
    return shape_[axis];
  }

  /// Rows/cols of a rank-2 tensor; checked.
  size_t rows() const {
    APOTS_DCHECK(rank() == 2);
    return shape_[0];
  }
  size_t cols() const {
    APOTS_DCHECK(rank() == 2);
    return shape_[1];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Flat element access; checked in debug builds.
  float& operator[](size_t i) {
    APOTS_DCHECK(i < data_.size());
    return data_[i];
  }
  float operator[](size_t i) const {
    APOTS_DCHECK(i < data_.size());
    return data_[i];
  }

  /// 2-D element access; checked in debug builds.
  float& At(size_t row, size_t col) {
    APOTS_DCHECK(rank() == 2);
    APOTS_DCHECK(row < shape_[0] && col < shape_[1]);
    return data_[row * shape_[1] + col];
  }
  float At(size_t row, size_t col) const {
    APOTS_DCHECK(rank() == 2);
    APOTS_DCHECK(row < shape_[0] && col < shape_[1]);
    return data_[row * shape_[1] + col];
  }

  /// 3-D element access (d0, d1, d2); checked in debug builds.
  float& At3(size_t i, size_t j, size_t k) {
    APOTS_DCHECK(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  float At3(size_t i, size_t j, size_t k) const {
    APOTS_DCHECK(rank() == 3);
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Returns a tensor with the same data and a new shape of equal size.
  Tensor Reshape(std::vector<size_t> new_shape) const;

  /// In-place re-dimension to `new_shape`, reusing the existing buffer
  /// when its capacity suffices (contents become unspecified). This is the
  /// Workspace slot-recycling hook; ordinary code should construct a new
  /// Tensor instead.
  void ResetShape(std::vector<size_t> new_shape);

  /// True when shapes are identical.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable "[2, 3]" shape string.
  std::string ShapeString() const;

  /// Pretty-prints small tensors (debugging aid).
  std::string ToString(size_t max_elements = 64) const;

 private:
  std::vector<size_t> shape_;
  AlignedFloatVector data_;
};

/// Number of elements implied by `shape`.
size_t NumElements(const std::vector<size_t>& shape);

}  // namespace apots::tensor

#endif  // APOTS_TENSOR_TENSOR_H_
