// AVX-512 microkernels (fp32 8x32 FMA tile, int8 VPDPBUSD tile). Compiled
// with -mavx512{f,bw,vl,vnni} regardless of the build's baseline arch and
// dispatched only behind the CPUID checks in cpu_features.h.

#include "tensor/simd_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512VNNI__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace apots::tensor::simd {

namespace {

/// 8x32 register tile: 16 zmm accumulators + 2 panel vectors + 1 broadcast
/// out of 32 architectural registers; 16 independent FMA chains hide the
/// FMA latency on two ports.
constexpr size_t kMr = 8;

inline __mmask16 LaneMask(size_t live) {
  return live >= 16 ? static_cast<__mmask16>(0xFFFFu)
                    : static_cast<__mmask16>((1u << live) - 1u);
}

template <size_t kRows>
void Kernel8x32Full(const float* a, size_t a_rs, size_t a_cs,
                    const float* panel, size_t k, float* out, size_t out_ld,
                    size_t i0) {
  __m512 acc[kRows][2];
  for (size_t r = 0; r < kRows; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const __m512 b0 = _mm512_load_ps(panel + kk * kNrAvx512);
    const __m512 b1 = _mm512_load_ps(panel + kk * kNrAvx512 + 16);
    for (size_t r = 0; r < kRows; ++r) {
      const __m512 av = _mm512_set1_ps(a[(i0 + r) * a_rs + kk * a_cs]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (size_t r = 0; r < kRows; ++r) {
    float* out_row = out + (i0 + r) * out_ld;
    _mm512_storeu_ps(out_row, acc[r][0]);
    _mm512_storeu_ps(out_row + 16, acc[r][1]);
  }
}

/// Remainder tile: < kMr rows and/or width < 32, finished with masked
/// stores — no lane past `width` is written.
void Kernel8x32Tail(const float* a, size_t a_rs, size_t a_cs,
                    const float* panel, size_t k, float* out, size_t out_ld,
                    size_t i0, size_t rows, size_t width) {
  __m512 acc[kMr][2];
  for (size_t r = 0; r < rows; ++r) {
    acc[r][0] = _mm512_setzero_ps();
    acc[r][1] = _mm512_setzero_ps();
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const __m512 b0 = _mm512_load_ps(panel + kk * kNrAvx512);
    const __m512 b1 = _mm512_load_ps(panel + kk * kNrAvx512 + 16);
    for (size_t r = 0; r < rows; ++r) {
      const __m512 av = _mm512_set1_ps(a[(i0 + r) * a_rs + kk * a_cs]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  const __mmask16 m0 = LaneMask(width);
  const __mmask16 m1 = width > 16 ? LaneMask(width - 16) : 0;
  for (size_t r = 0; r < rows; ++r) {
    float* out_row = out + (i0 + r) * out_ld;
    _mm512_mask_storeu_ps(out_row, m0, acc[r][0]);
    if (m1 != 0) _mm512_mask_storeu_ps(out_row + 16, m1, acc[r][1]);
  }
}

}  // namespace

void GemmPanelAvx512(const float* a, size_t a_rs, size_t a_cs,
                     const float* panel, size_t k, size_t nr, float* out,
                     size_t out_ld, size_t r0, size_t r1, size_t width) {
  (void)nr;  // the AVX-512 panel width is kNrAvx512 by construction
  for (size_t i = r0; i < r1; i += kMr) {
    const size_t rows = std::min(kMr, r1 - i);
    if (rows == kMr && width == kNrAvx512) {
      Kernel8x32Full<kMr>(a, a_rs, a_cs, panel, k, out, out_ld, i);
    } else {
      Kernel8x32Tail(a, a_rs, a_cs, panel, k, out, out_ld, i, rows, width);
    }
  }
}

namespace {

/// Loads one 4-byte k-group of a quantized activation row as a broadcast
/// dword (unaligned-safe).
inline __m512i BroadcastA4(const uint8_t* a4) {
  uint32_t dword;
  std::memcpy(&dword, a4, sizeof(dword));
  return _mm512_set1_epi32(static_cast<int>(dword));
}

}  // namespace

void Int8PanelVnni(const uint8_t* qa, size_t qa_ld, const float* row_scale,
                   const float* row_min, const int8_t* panel, size_t kp,
                   const float* col_scale, const int32_t* col_zsum, float* out,
                   size_t out_ld, size_t r0, size_t r1, size_t width) {
  const size_t groups = kp / 4;
  // 4 rows x 16 columns per step: 4 VPDPBUSD chains per panel load. The
  // integer accumulation is exact, so this matches Int8PanelScalar bit for
  // bit (same accumulators, same shared dequantization expression).
  size_t i = r0;
  for (; i + 4 <= r1; i += 4) {
    __m512i acc0 = _mm512_setzero_si512();
    __m512i acc1 = _mm512_setzero_si512();
    __m512i acc2 = _mm512_setzero_si512();
    __m512i acc3 = _mm512_setzero_si512();
    const uint8_t* a0 = qa + i * qa_ld;
    const uint8_t* a1 = a0 + qa_ld;
    const uint8_t* a2 = a1 + qa_ld;
    const uint8_t* a3 = a2 + qa_ld;
    for (size_t g = 0; g < groups; ++g) {
      const __m512i bv = _mm512_load_si512(panel + g * kNrInt8 * 4);
      acc0 = _mm512_dpbusd_epi32(acc0, BroadcastA4(a0 + g * 4), bv);
      acc1 = _mm512_dpbusd_epi32(acc1, BroadcastA4(a1 + g * 4), bv);
      acc2 = _mm512_dpbusd_epi32(acc2, BroadcastA4(a2 + g * 4), bv);
      acc3 = _mm512_dpbusd_epi32(acc3, BroadcastA4(a3 + g * 4), bv);
    }
    alignas(64) int32_t lanes[4][kNrInt8];
    _mm512_store_si512(lanes[0], acc0);
    _mm512_store_si512(lanes[1], acc1);
    _mm512_store_si512(lanes[2], acc2);
    _mm512_store_si512(lanes[3], acc3);
    for (size_t r = 0; r < 4; ++r) {
      float* out_row = out + (i + r) * out_ld;
      for (size_t c = 0; c < width; ++c) {
        out_row[c] = DequantInt8Acc(lanes[r][c], col_zsum[c],
                                    row_scale[i + r], row_min[i + r],
                                    col_scale[c]);
      }
    }
  }
  for (; i < r1; ++i) {
    __m512i acc = _mm512_setzero_si512();
    const uint8_t* a_row = qa + i * qa_ld;
    for (size_t g = 0; g < groups; ++g) {
      const __m512i bv = _mm512_load_si512(panel + g * kNrInt8 * 4);
      acc = _mm512_dpbusd_epi32(acc, BroadcastA4(a_row + g * 4), bv);
    }
    alignas(64) int32_t lanes[kNrInt8];
    _mm512_store_si512(lanes, acc);
    float* out_row = out + i * out_ld;
    for (size_t c = 0; c < width; ++c) {
      out_row[c] = DequantInt8Acc(lanes[c], col_zsum[c], row_scale[i],
                                  row_min[i], col_scale[c]);
    }
  }
}

}  // namespace apots::tensor::simd

#else  // toolchain cannot target AVX-512: forward to the scalar paths.

namespace apots::tensor::simd {

void GemmPanelAvx512(const float* a, size_t a_rs, size_t a_cs,
                     const float* panel, size_t k, size_t nr, float* out,
                     size_t out_ld, size_t r0, size_t r1, size_t width) {
  GemmPanelScalar(a, a_rs, a_cs, panel, k, nr, out, out_ld, r0, r1, width);
}

void Int8PanelVnni(const uint8_t* qa, size_t qa_ld, const float* row_scale,
                   const float* row_min, const int8_t* panel, size_t kp,
                   const float* col_scale, const int32_t* col_zsum, float* out,
                   size_t out_ld, size_t r0, size_t r1, size_t width) {
  Int8PanelScalar(qa, qa_ld, row_scale, row_min, panel, kp, col_scale,
                  col_zsum, out, out_ld, r0, r1, width);
}

}  // namespace apots::tensor::simd

#endif
