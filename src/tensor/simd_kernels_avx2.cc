// AVX2/FMA microkernels. This translation unit is compiled with
// -mavx2 -mfma -mf16c regardless of the build's baseline arch; nothing in
// it runs unless cpu_features.h saw the matching CPUID bits, so the binary
// stays safe on plain x86-64 hosts.

#include "tensor/simd_kernels.h"

#if defined(__AVX2__) && defined(__FMA__) && defined(__F16C__)

#include <immintrin.h>

#include <algorithm>
#include <cstring>

namespace apots::tensor::simd {

namespace {

/// 6x16 register tile: 12 ymm accumulators + 2 panel vectors + 1 broadcast
/// leaves headroom in the 16-register file. The k loop is load-b /
/// broadcast-a / fma with no output traffic; each output element is one
/// k-ascending FMA chain.
constexpr size_t kMr = 6;

template <size_t kRows>
void Kernel6x16Full(const float* a, size_t a_rs, size_t a_cs,
                    const float* panel, size_t k, float* out, size_t out_ld,
                    size_t i0) {
  __m256 acc[kRows][2];
  for (size_t r = 0; r < kRows; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_load_ps(panel + kk * kNrAvx2);
    const __m256 b1 = _mm256_load_ps(panel + kk * kNrAvx2 + 8);
    for (size_t r = 0; r < kRows; ++r) {
      const __m256 av = _mm256_broadcast_ss(a + (i0 + r) * a_rs + kk * a_cs);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (size_t r = 0; r < kRows; ++r) {
    float* out_row = out + (i0 + r) * out_ld;
    _mm256_storeu_ps(out_row, acc[r][0]);
    _mm256_storeu_ps(out_row + 8, acc[r][1]);
  }
}

/// Remainder tile: < kMr rows and/or a ragged panel (width < 16). Narrow
/// stores go through an aligned spill so no lane past `width` is touched.
void Kernel6x16Tail(const float* a, size_t a_rs, size_t a_cs,
                    const float* panel, size_t k, float* out, size_t out_ld,
                    size_t i0, size_t rows, size_t width) {
  __m256 acc[kMr][2];
  for (size_t r = 0; r < rows; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (size_t kk = 0; kk < k; ++kk) {
    const __m256 b0 = _mm256_load_ps(panel + kk * kNrAvx2);
    const __m256 b1 = _mm256_load_ps(panel + kk * kNrAvx2 + 8);
    for (size_t r = 0; r < rows; ++r) {
      const __m256 av = _mm256_broadcast_ss(a + (i0 + r) * a_rs + kk * a_cs);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  if (width == kNrAvx2) {
    for (size_t r = 0; r < rows; ++r) {
      float* out_row = out + (i0 + r) * out_ld;
      _mm256_storeu_ps(out_row, acc[r][0]);
      _mm256_storeu_ps(out_row + 8, acc[r][1]);
    }
    return;
  }
  alignas(32) float spill[kNrAvx2];
  for (size_t r = 0; r < rows; ++r) {
    _mm256_store_ps(spill, acc[r][0]);
    _mm256_store_ps(spill + 8, acc[r][1]);
    std::memcpy(out + (i0 + r) * out_ld, spill, width * sizeof(float));
  }
}

}  // namespace

void GemmPanelAvx2(const float* a, size_t a_rs, size_t a_cs,
                   const float* panel, size_t k, size_t nr, float* out,
                   size_t out_ld, size_t r0, size_t r1, size_t width) {
  (void)nr;  // the AVX2 panel width is kNrAvx2 by construction
  for (size_t i = r0; i < r1; i += kMr) {
    const size_t rows = std::min(kMr, r1 - i);
    if (rows == kMr && width == kNrAvx2) {
      Kernel6x16Full<kMr>(a, a_rs, a_cs, panel, k, out, out_ld, i);
    } else {
      Kernel6x16Tail(a, a_rs, a_cs, panel, k, out, out_ld, i, rows, width);
    }
  }
}

void HalfToFloatF16c(const uint16_t* src, float* dst, size_t count) {
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m128i h =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(h));
  }
  if (i < count) {
    alignas(16) uint16_t hin[8] = {};
    alignas(32) float fout[8];
    std::memcpy(hin, src + i, (count - i) * sizeof(uint16_t));
    _mm256_store_ps(
        fout, _mm256_cvtph_ps(_mm_load_si128(reinterpret_cast<__m128i*>(hin))));
    std::memcpy(dst + i, fout, (count - i) * sizeof(float));
  }
}

void FloatToHalfF16c(const float* src, uint16_t* dst, size_t count) {
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(src + i),
                                      _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  if (i < count) {
    alignas(32) float fin[8] = {};
    alignas(16) uint16_t hout[8];
    std::memcpy(fin, src + i, (count - i) * sizeof(float));
    _mm_store_si128(
        reinterpret_cast<__m128i*>(hout),
        _mm256_cvtps_ph(_mm256_load_ps(fin), _MM_FROUND_TO_NEAREST_INT));
    std::memcpy(dst + i, hout, (count - i) * sizeof(uint16_t));
  }
}

}  // namespace apots::tensor::simd

#else  // toolchain cannot target AVX2+FMA+F16C: forward to the scalar path.

namespace apots::tensor::simd {

void GemmPanelAvx2(const float* a, size_t a_rs, size_t a_cs,
                   const float* panel, size_t k, size_t nr, float* out,
                   size_t out_ld, size_t r0, size_t r1, size_t width) {
  GemmPanelScalar(a, a_rs, a_cs, panel, k, nr, out, out_ld, r0, r1, width);
}

void HalfToFloatF16c(const uint16_t* src, float* dst, size_t count) {
  HalfToFloatScalar(src, dst, count);
}

void FloatToHalfF16c(const float* src, uint16_t* dst, size_t count) {
  FloatToHalfScalar(src, dst, count);
}

}  // namespace apots::tensor::simd

#endif
