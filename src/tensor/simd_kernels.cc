#include "tensor/simd_kernels.h"

#include <algorithm>
#include <cstring>

#include "tensor/cpu_features.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace apots::tensor::simd {

namespace {

/// Same work-per-chunk target as the blocked kernels in tensor_ops.cc:
/// row grains are derived from it so small matrices stay on the caller.
constexpr size_t kGemmGrainFma = 1 << 15;

size_t RowGrain(size_t fma_per_row) {
  return std::max<size_t>(1, kGemmGrainFma / std::max<size_t>(1, fma_per_row));
}

/// Packs fp32 panel `p` (columns [j0, j0+width)) of a strided B into
/// `panel` ([k][nr], zero-padded to nr columns).
void PackPanelFp32(const float* b, size_t b_rs, size_t b_cs, size_t k,
                   size_t j0, size_t width, size_t nr, float* panel) {
  for (size_t kk = 0; kk < k; ++kk) {
    const float* src = b + kk * b_rs + j0 * b_cs;
    float* dst = panel + kk * nr;
    if (b_cs == 1) {
      std::memcpy(dst, src, width * sizeof(float));
    } else {
      for (size_t c = 0; c < width; ++c) dst[c] = src[c * b_cs];
    }
    for (size_t c = width; c < nr; ++c) dst[c] = 0.0f;
  }
}

/// Packs panel `p` of a row-major binary16 B, dequantizing at pack time.
void PackPanelHalf(const uint16_t* b, size_t k, size_t n, size_t j0,
                   size_t width, size_t nr, float* panel) {
  for (size_t kk = 0; kk < k; ++kk) {
    float* dst = panel + kk * nr;
    HalfToFloat(b + kk * n + j0, dst, width);
    for (size_t c = width; c < nr; ++c) dst[c] = 0.0f;
  }
}

using AlignedByteVector = std::vector<uint8_t, AlignedAllocator<uint8_t>>;

/// Shared driver body for the fp32 / fp16 entry points: panels are already
/// packed into `packed`; sweep output row ranges in parallel. Rows are
/// independent, so the chunking (and thus the result) is identical for any
/// pool size.
void RunPanels(const float* a, size_t a_rs, size_t a_cs, const float* packed,
               size_t m, size_t k, size_t n, float* out) {
  const GemmKernel kernel = PickGemmKernel();
  const size_t nr = kernel.nr;
  const size_t num_panels = (n + nr - 1) / nr;
  apots::GlobalPool().ParallelFor(
      0, m, RowGrain(k * n), [&](size_t r0, size_t r1, size_t) {
        for (size_t p = 0; p < num_panels; ++p) {
          const size_t j0 = p * nr;
          const size_t width = std::min(nr, n - j0);
          kernel.fn(a, a_rs, a_cs, packed + p * k * nr, k, nr, out + j0, n,
                    r0, r1, width);
        }
      });
}

}  // namespace

float* PackBufferFp32(size_t floats) {
  thread_local AlignedFloatVector buffer;
  // Grow-only: steady-state shapes stop touching the heap after warm-up,
  // and a non-empty floor keeps `data() + 0` valid for k==0 calls.
  if (buffer.size() < std::max<size_t>(floats, 16)) {
    buffer.resize(std::max<size_t>(floats, 16));
  }
  return buffer.data();
}

uint8_t* PackBufferBytes(size_t bytes) {
  thread_local AlignedByteVector buffer;
  if (buffer.size() < std::max<size_t>(bytes, 64)) {
    buffer.resize(std::max<size_t>(bytes, 64));
  }
  return buffer.data();
}

void GemmPanelScalar(const float* a, size_t a_rs, size_t a_cs,
                     const float* panel, size_t k, size_t nr, float* out,
                     size_t out_ld, size_t r0, size_t r1, size_t width) {
  for (size_t i = r0; i < r1; ++i) {
    float acc[kNrMax] = {};
    const float* a_row = a + i * a_rs;
    for (size_t kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk * a_cs];
      const float* b_row = panel + kk * nr;
      for (size_t c = 0; c < nr; ++c) acc[c] += a_ik * b_row[c];
    }
    float* out_row = out + i * out_ld;
    for (size_t c = 0; c < width; ++c) out_row[c] = acc[c];
  }
}

GemmKernel PickGemmKernel() {
  switch (DetectedIsa()) {
    case SimdIsa::kAvx512:
      return {GemmPanelAvx512, kNrAvx512};
    case SimdIsa::kAvx2:
      return {GemmPanelAvx2, kNrAvx2};
    case SimdIsa::kScalar:
      break;
  }
  return {GemmPanelScalar, kNrAvx2};
}

void Int8PanelScalar(const uint8_t* qa, size_t qa_ld, const float* row_scale,
                     const float* row_min, const int8_t* panel, size_t kp,
                     const float* col_scale, const int32_t* col_zsum,
                     float* out, size_t out_ld, size_t r0, size_t r1,
                     size_t width) {
  const size_t groups = kp / 4;
  for (size_t i = r0; i < r1; ++i) {
    int32_t acc[kNrInt8] = {};
    const uint8_t* a_row = qa + i * qa_ld;
    for (size_t g = 0; g < groups; ++g) {
      const int8_t* blk = panel + g * kNrInt8 * 4;
      const uint8_t* a4 = a_row + g * 4;
      for (size_t c = 0; c < kNrInt8; ++c) {
        const int8_t* b4 = blk + c * 4;
        acc[c] += static_cast<int32_t>(a4[0]) * b4[0] +
                  static_cast<int32_t>(a4[1]) * b4[1] +
                  static_cast<int32_t>(a4[2]) * b4[2] +
                  static_cast<int32_t>(a4[3]) * b4[3];
      }
    }
    float* out_row = out + i * out_ld;
    for (size_t c = 0; c < width; ++c) {
      out_row[c] = DequantInt8Acc(acc[c], col_zsum[c], row_scale[i],
                                  row_min[i], col_scale[c]);
    }
  }
}

Int8PanelFn PickInt8Kernel() {
  return HasVnni() ? Int8PanelVnni : Int8PanelScalar;
}

namespace {

/// Software IEEE binary16 -> binary32: exact for every half bit pattern
/// (subnormals, infinities, NaN payload top bits preserved).
inline float HalfBitsToFloat(uint16_t h) {
  const uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  uint32_t mant = h & 0x3FFu;
  uint32_t bits;
  if (exp == 0) {
    if (mant == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal half: normalize into the float exponent range.
      int shift = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3FFu;
      bits = sign | ((127 - 15 - shift + 1) << 23) | (mant << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7F800000u | (mant << 13);  // inf / NaN
  } else {
    bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

/// Software binary32 -> binary16, round to nearest, ties to even — the
/// same rounding VCVTPS2PH uses, so packed weights are host-independent.
inline uint16_t FloatToHalfBits(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  const uint16_t sign = static_cast<uint16_t>((bits >> 16) & 0x8000u);
  const uint32_t abs = bits & 0x7FFFFFFFu;
  if (abs >= 0x7F800000u) {  // inf / NaN (preserve the quiet bit)
    const uint16_t mant = abs > 0x7F800000u ? 0x200u : 0u;
    return static_cast<uint16_t>(sign | 0x7C00u | mant);
  }
  if (abs >= 0x47800000u) {  // >= 2^16 overflows to infinity
    return static_cast<uint16_t>(sign | 0x7C00u);
  }
  if (abs < 0x33000000u) {  // < 2^-25 underflows to zero
    return sign;
  }
  const uint32_t exp = abs >> 23;
  if (abs >= 0x38800000u) {
    // Normal half. Rebias and shift out 13 mantissa bits with RNE; a
    // mantissa carry ripples into the exponent field (and, at the very
    // top, rolls cleanly into the infinity encoding).
    uint32_t h = ((exp - 112u) << 10) | ((abs & 0x7FFFFFu) >> 13);
    const uint32_t rem = abs & 0x1FFFu;
    if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;
    return static_cast<uint16_t>(sign | h);
  }
  // Subnormal half: shift the full 24-bit significand down to a 2^-24 ulp.
  const uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
  const int shift = 126 - static_cast<int>(exp);  // in [14, 24] here
  uint32_t h = mant >> shift;
  const uint32_t rem = mant & ((1u << shift) - 1u);
  const uint32_t halfway = 1u << (shift - 1);
  if (rem > halfway || (rem == halfway && (h & 1u))) ++h;
  return static_cast<uint16_t>(sign | h);  // overflow -> smallest normal
}

}  // namespace

void HalfToFloatScalar(const uint16_t* src, float* dst, size_t count) {
  for (size_t i = 0; i < count; ++i) dst[i] = HalfBitsToFloat(src[i]);
}

void FloatToHalfScalar(const float* src, uint16_t* dst, size_t count) {
  for (size_t i = 0; i < count; ++i) dst[i] = FloatToHalfBits(src[i]);
}

void HalfToFloat(const uint16_t* src, float* dst, size_t count) {
  if (HasF16c()) {
    HalfToFloatF16c(src, dst, count);
  } else {
    HalfToFloatScalar(src, dst, count);
  }
}

void FloatToHalf(const float* src, uint16_t* dst, size_t count) {
  if (HasF16c()) {
    FloatToHalfF16c(src, dst, count);
  } else {
    FloatToHalfScalar(src, dst, count);
  }
}

void GemmStrided(const float* a, size_t a_rs, size_t a_cs, const float* b,
                 size_t b_rs, size_t b_cs, float* out, size_t m, size_t k,
                 size_t n) {
  if (m == 0 || n == 0) return;
  const GemmKernel kernel = PickGemmKernel();
  const size_t nr = kernel.nr;
  const size_t num_panels = (n + nr - 1) / nr;
  // Pack B once on the calling thread (O(k*n), trivial next to the O(m*k*n)
  // multiply); workers only read the packed panels.
  float* packed = PackBufferFp32(num_panels * k * nr);
  for (size_t p = 0; p < num_panels; ++p) {
    const size_t j0 = p * nr;
    PackPanelFp32(b, b_rs, b_cs, k, j0, std::min(nr, n - j0), nr,
                  packed + p * k * nr);
  }
  RunPanels(a, a_rs, a_cs, packed, m, k, n, out);
}

void GemmHalfB(const float* a, size_t a_rs, size_t a_cs, const uint16_t* b,
               float* out, size_t m, size_t k, size_t n) {
  if (m == 0 || n == 0) return;
  const GemmKernel kernel = PickGemmKernel();
  const size_t nr = kernel.nr;
  const size_t num_panels = (n + nr - 1) / nr;
  float* packed = PackBufferFp32(num_panels * k * nr);
  for (size_t p = 0; p < num_panels; ++p) {
    const size_t j0 = p * nr;
    PackPanelHalf(b, k, n, j0, std::min(nr, n - j0), nr,
                  packed + p * k * nr);
  }
  RunPanels(a, a_rs, a_cs, packed, m, k, n, out);
}

}  // namespace apots::tensor::simd
