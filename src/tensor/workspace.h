#ifndef APOTS_TENSOR_WORKSPACE_H_
#define APOTS_TENSOR_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/tensor.h"

namespace apots::tensor {

/// Bump arena of reusable tensor buffers for allocation-free inference.
///
/// Layers borrow activation/scratch tensors with Acquire instead of
/// constructing fresh ones; Reset returns the cursor to the start without
/// releasing storage, so a steady-state forward pass (same shapes every
/// call) touches the heap zero times after its first warm-up iteration.
///
/// Contract:
///  - Acquire hands out slots in a fixed bump order; two tensors borrowed
///    between the same pair of Resets never alias (each slot owns distinct
///    storage, and slot k is handed out at most once per generation).
///  - Borrowed pointers are invalidated by Reset and by the Workspace's
///    destruction — callers must copy any result that outlives the arena.
///  - Contents of an acquired tensor are unspecified (dirty from the
///    previous generation); writers must fully overwrite their output.
///  - Growth policy: a slot's buffer only grows (never shrinks), and new
///    slots are appended on first use, so capacity converges to the
///    high-water mark of the shapes actually requested.
///  - Not thread-safe; use one Workspace per worker thread.
class Workspace {
 public:
  Workspace() = default;

  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Borrows an uninitialized tensor of `shape` from the arena. The pointer
  /// stays valid until the next Reset.
  Tensor* Acquire(std::vector<size_t> shape);

  /// Moves an existing tensor into the next arena slot (the fallback used
  /// by layers without a native workspace path). Same lifetime rules as
  /// Acquire.
  Tensor* Materialize(Tensor&& t);

  /// Borrows a raw 64-byte-aligned scratch buffer of at least `bytes`
  /// (quantized-inference activation codes and similar non-float
  /// scratch). Same contract as Acquire: bump order, grow-only slots,
  /// contents dirty, invalidated by Reset.
  void* AcquireBytes(size_t bytes);

  /// Starts a new generation: previously borrowed tensors become invalid,
  /// storage is retained for reuse.
  void Reset();

  /// Slots handed out since the last Reset.
  size_t slots_in_use() const { return cursor_; }
  /// Total slots ever created.
  size_t capacity_slots() const { return slots_.size(); }
  /// Total floats currently resident across all slot buffers.
  size_t capacity_floats() const;
  /// Largest capacity_floats observed over the arena's lifetime.
  size_t high_water_floats() const { return high_water_floats_; }
  /// Reset count (diagnostics; one generation ≈ one forward pass).
  size_t generation() const { return generation_; }

  /// Byte slots handed out since the last Reset.
  size_t byte_slots_in_use() const { return byte_cursor_; }
  /// Total bytes currently resident across all byte-slot buffers.
  size_t capacity_bytes() const;

 private:
  using ByteBuffer = std::vector<uint8_t, AlignedAllocator<uint8_t>>;

  Tensor* NextSlot();

  std::vector<std::unique_ptr<Tensor>> slots_;
  std::vector<std::unique_ptr<ByteBuffer>> byte_slots_;
  size_t cursor_ = 0;
  size_t byte_cursor_ = 0;
  size_t generation_ = 0;
  size_t high_water_floats_ = 0;
};

}  // namespace apots::tensor

#endif  // APOTS_TENSOR_WORKSPACE_H_
