#include "tensor/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.h"

namespace apots::tensor {

namespace {

#if defined(__x86_64__) || defined(__i386__)
#define APOTS_X86 1
#else
#define APOTS_X86 0
#endif

struct CpuCaps {
  bool avx2 = false;
  bool avx512 = false;
  bool vnni = false;
  bool f16c = false;
};

CpuCaps QueryCpu() {
  CpuCaps caps;
#if APOTS_X86
  caps.avx2 = __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  caps.f16c = caps.avx2 && __builtin_cpu_supports("f16c");
  caps.avx512 = __builtin_cpu_supports("avx512f") &&
                __builtin_cpu_supports("avx512bw") &&
                __builtin_cpu_supports("avx512vl");
  caps.vnni = caps.avx512 && __builtin_cpu_supports("avx512vnni");
#endif
  return caps;
}

const CpuCaps& RealCaps() {
  static const CpuCaps caps = QueryCpu();
  return caps;
}

SimdIsa RealIsa() {
  const CpuCaps& caps = RealCaps();
  if (caps.avx512) return SimdIsa::kAvx512;
  if (caps.avx2) return SimdIsa::kAvx2;
  return SimdIsa::kScalar;
}

SimdIsa ClampToReal(SimdIsa isa) {
  return static_cast<int>(isa) < static_cast<int>(RealIsa()) ? isa : RealIsa();
}

/// APOTS_FORCE_ISA, read once at first dispatch. Unknown values warn and
/// fall back to full native dispatch rather than silently changing kernels.
SimdIsa EnvClampedIsa() {
  const char* force = std::getenv("APOTS_FORCE_ISA");
  if (force == nullptr || force[0] == '\0') return RealIsa();
  if (std::strcmp(force, "scalar") == 0) return SimdIsa::kScalar;
  if (std::strcmp(force, "avx2") == 0) return ClampToReal(SimdIsa::kAvx2);
  if (std::strcmp(force, "avx512") == 0) return ClampToReal(SimdIsa::kAvx512);
  if (std::strcmp(force, "native") != 0) {
    APOTS_LOG(Warning) << "APOTS_FORCE_ISA=" << force
                       << " not one of scalar|avx2|avx512|native; using native"
                       << " dispatch (" << IsaName(RealIsa()) << ")";
  }
  return RealIsa();
}

/// -1 = no override; otherwise a SimdIsa value forced by tests.
std::atomic<int> g_isa_override{-1};

}  // namespace

SimdIsa DetectedIsa() {
  static const SimdIsa env_isa = EnvClampedIsa();
  const int override_isa = g_isa_override.load(std::memory_order_relaxed);
  if (override_isa >= 0) {
    return ClampToReal(static_cast<SimdIsa>(override_isa));
  }
  return env_isa;
}

bool HasVnni() {
  return DetectedIsa() == SimdIsa::kAvx512 && RealCaps().vnni;
}

bool HasF16c() {
  return static_cast<int>(DetectedIsa()) >= static_cast<int>(SimdIsa::kAvx2) &&
         RealCaps().f16c;
}

const char* IsaName(SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kScalar:
      return "scalar";
    case SimdIsa::kAvx2:
      return "avx2";
    case SimdIsa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

const char* ActiveIsaLabel() {
  if (HasVnni()) return "avx512+vnni";
  return IsaName(DetectedIsa());
}

namespace internal {

void OverrideIsaForTesting(SimdIsa isa) {
  g_isa_override.store(static_cast<int>(isa), std::memory_order_relaxed);
}

void ClearIsaOverrideForTesting() {
  g_isa_override.store(-1, std::memory_order_relaxed);
}

}  // namespace internal

}  // namespace apots::tensor
