#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

namespace apots::tensor {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.SameShape(b)) {
    APOTS_LOG(Error) << op << ": shape mismatch " << a.ShapeString() << " vs "
                     << b.ShapeString();
    APOTS_CHECK(a.SameShape(b));
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor out = a;
  const float* pb = b.data();
  float* po = out.data();
  for (size_t i = 0; i < out.size(); ++i) po[i] += pb[i];
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor out = a;
  const float* pb = b.data();
  float* po = out.data();
  for (size_t i = 0; i < out.size(); ++i) po[i] -= pb[i];
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor out = a;
  const float* pb = b.data();
  float* po = out.data();
  for (size_t i = 0; i < out.size(); ++i) po[i] *= pb[i];
  return out;
}

Tensor Scale(const Tensor& a, float scalar) {
  Tensor out = a;
  float* po = out.data();
  for (size_t i = 0; i < out.size(); ++i) po[i] *= scalar;
  return out;
}

void AddInPlace(Tensor* a, const Tensor& b) {
  CheckSameShape(*a, b, "AddInPlace");
  float* pa = a->data();
  const float* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) pa[i] += pb[i];
}

void Axpy(Tensor* a, const Tensor& b, float scalar) {
  CheckSameShape(*a, b, "Axpy");
  float* pa = a->data();
  const float* pb = b.data();
  for (size_t i = 0; i < a->size(); ++i) pa[i] += scalar * pb[i];
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // ikj loop order: the inner loop streams both b and out rows.
  for (size_t i = 0; i < m; ++i) {
    float* out_row = po + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* b_row = pb + kk * n;
      for (size_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Tensor MatmulTransposeA(const Tensor& a, const Tensor& b) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (size_t kk = 0; kk < k; ++kk) {
    const float* a_row = pa + kk * m;
    const float* b_row = pb + kk * n;
    for (size_t i = 0; i < m; ++i) {
      const float aik = a_row[i];
      if (aik == 0.0f) continue;
      float* out_row = po + i * n;
      for (size_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Tensor MatmulTransposeB(const Tensor& a, const Tensor& b) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = pa + i * k;
    float* out_row = po + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = pb + j * k;
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      out_row[j] = acc;
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.rows(), n = a.cols();
  Tensor out({n, m});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out.At(j, i) = a.At(i, j);
  }
  return out;
}

Tensor Transpose12(const Tensor& a) {
  APOTS_CHECK_EQ(a.rank(), 3u);
  const size_t n = a.dim(0), rows = a.dim(1), cols = a.dim(2);
  Tensor out({n, cols, rows});
  const float* pa = a.data();
  float* po = out.data();
  for (size_t i = 0; i < n; ++i) {
    const float* src = pa + i * rows * cols;
    float* dst = po + i * rows * cols;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
    }
  }
  return out;
}

void AddRowBias(Tensor* matrix, const Tensor& bias) {
  APOTS_CHECK_EQ(matrix->rank(), 2u);
  APOTS_CHECK_EQ(bias.size(), matrix->cols());
  const size_t m = matrix->rows(), n = matrix->cols();
  float* pm = matrix->data();
  const float* pb = bias.data();
  for (size_t i = 0; i < m; ++i) {
    float* row = pm + i * n;
    for (size_t j = 0; j < n; ++j) row[j] += pb[j];
  }
}

Tensor SumRows(const Tensor& matrix) {
  APOTS_CHECK_EQ(matrix.rank(), 2u);
  const size_t m = matrix.rows(), n = matrix.cols();
  Tensor out({n});
  const float* pm = matrix.data();
  float* po = out.data();
  for (size_t i = 0; i < m; ++i) {
    const float* row = pm + i * n;
    for (size_t j = 0; j < n; ++j) po[j] += row[j];
  }
  return out;
}

float Sum(const Tensor& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float Mean(const Tensor& a) {
  APOTS_CHECK_GT(a.size(), 0u);
  return Sum(a) / static_cast<float>(a.size());
}

float MinValue(const Tensor& a) {
  APOTS_CHECK_GT(a.size(), 0u);
  float best = a[0];
  for (size_t i = 1; i < a.size(); ++i) best = std::min(best, a[i]);
  return best;
}

float MaxValue(const Tensor& a) {
  APOTS_CHECK_GT(a.size(), 0u);
  float best = a[0];
  for (size_t i = 1; i < a.size(); ++i) best = std::max(best, a[i]);
  return best;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out = a;
  float* po = out.data();
  for (size_t i = 0; i < out.size(); ++i) po[i] = fn(po[i]);
  return out;
}

void FillUniform(Tensor* t, apots::Rng* rng, float lo, float hi) {
  float* p = t->data();
  for (size_t i = 0; i < t->size(); ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
}

void FillNormal(Tensor* t, apots::Rng* rng, float mean, float stddev) {
  float* p = t->data();
  for (size_t i = 0; i < t->size(); ++i) {
    p[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
}

Tensor Im2Col(const Tensor& input, size_t kh, size_t kw, size_t pad) {
  APOTS_CHECK_EQ(input.rank(), 3u);
  const size_t channels = input.dim(0);
  const size_t height = input.dim(1);
  const size_t width = input.dim(2);
  APOTS_CHECK_GE(height + 2 * pad + 1, kh);
  APOTS_CHECK_GE(width + 2 * pad + 1, kw);
  const size_t out_h = height + 2 * pad - kh + 1;
  const size_t out_w = width + 2 * pad - kw + 1;
  Tensor columns({channels * kh * kw, out_h * out_w});
  float* pc = columns.data();
  const size_t col_width = out_h * out_w;
  for (size_t c = 0; c < channels; ++c) {
    for (size_t ki = 0; ki < kh; ++ki) {
      for (size_t kj = 0; kj < kw; ++kj) {
        const size_t row = (c * kh + ki) * kw + kj;
        float* dst = pc + row * col_width;
        for (size_t oi = 0; oi < out_h; ++oi) {
          const long src_i = static_cast<long>(oi + ki) - static_cast<long>(pad);
          for (size_t oj = 0; oj < out_w; ++oj) {
            const long src_j =
                static_cast<long>(oj + kj) - static_cast<long>(pad);
            float value = 0.0f;
            if (src_i >= 0 && src_i < static_cast<long>(height) &&
                src_j >= 0 && src_j < static_cast<long>(width)) {
              value = input.At3(c, static_cast<size_t>(src_i),
                                static_cast<size_t>(src_j));
            }
            dst[oi * out_w + oj] = value;
          }
        }
      }
    }
  }
  return columns;
}

Tensor Col2Im(const Tensor& columns, size_t channels, size_t height,
              size_t width, size_t kh, size_t kw, size_t pad) {
  APOTS_CHECK_EQ(columns.rank(), 2u);
  const size_t out_h = height + 2 * pad - kh + 1;
  const size_t out_w = width + 2 * pad - kw + 1;
  APOTS_CHECK_EQ(columns.rows(), channels * kh * kw);
  APOTS_CHECK_EQ(columns.cols(), out_h * out_w);
  Tensor image({channels, height, width});
  const float* pc = columns.data();
  const size_t col_width = out_h * out_w;
  for (size_t c = 0; c < channels; ++c) {
    for (size_t ki = 0; ki < kh; ++ki) {
      for (size_t kj = 0; kj < kw; ++kj) {
        const size_t row = (c * kh + ki) * kw + kj;
        const float* src = pc + row * col_width;
        for (size_t oi = 0; oi < out_h; ++oi) {
          const long dst_i = static_cast<long>(oi + ki) - static_cast<long>(pad);
          if (dst_i < 0 || dst_i >= static_cast<long>(height)) continue;
          for (size_t oj = 0; oj < out_w; ++oj) {
            const long dst_j =
                static_cast<long>(oj + kj) - static_cast<long>(pad);
            if (dst_j < 0 || dst_j >= static_cast<long>(width)) continue;
            image.At3(c, static_cast<size_t>(dst_i),
                      static_cast<size_t>(dst_j)) += src[oi * out_w + oj];
          }
        }
      }
    }
  }
  return image;
}

}  // namespace apots::tensor
