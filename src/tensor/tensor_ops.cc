#include "tensor/tensor_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "tensor/simd_kernels.h"
#include "util/thread_pool.h"

namespace apots::tensor {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.SameShape(b)) {
    APOTS_LOG(Error) << op << ": shape mismatch " << a.ShapeString() << " vs "
                     << b.ShapeString();
    APOTS_CHECK(a.SameShape(b));
  }
}

std::atomic<KernelMode> g_kernel_mode{KernelMode::kBlocked};

/// Elementwise kernels are memory-bound; a range must be well past the
/// last-level-cache scale before extra cores beat the wakeup cost, so only
/// large ranges are handed to the pool.
constexpr size_t kElementwiseGrain = 1 << 18;

/// Target work per GEMM chunk, in fused multiply-adds. Row grains are
/// derived from this so tiny matrices stay on the calling thread.
constexpr size_t kGemmGrainFma = 1 << 15;

size_t RowGrain(size_t fma_per_row) {
  return std::max<size_t>(1, kGemmGrainFma / std::max<size_t>(1, fma_per_row));
}

/// Register-tile dimensions for the blocked GEMM kernels. A full tile keeps
/// a kRowTile x kColTile block of the output in registers across the whole
/// k loop (8 vector accumulators + 2 b vectors at AVX2 width), so the inner
/// loop is load-b / broadcast-a / fma with no output traffic.
constexpr size_t kRowTile = 4;
constexpr size_t kColTile = 16;

/// Writes out rows [r0, r1) of a * b where `lhs_at(i, kk)` reads element
/// (i, kk) of the logical left operand and `pb` is the row-major right
/// operand. Each output element accumulates its k products in ascending-k
/// order inside one scalar chain — exactly the reference kernels' order, so
/// results are bitwise identical to them for finite inputs regardless of
/// tile shape or row partition.
template <typename LhsAt>
void GemmRowRangeImpl(LhsAt lhs_at, const float* pb, float* po, size_t r0,
                      size_t r1, size_t k, size_t n) {
  for (size_t i = r0; i < r1; i += kRowTile) {
    const size_t rows = std::min(kRowTile, r1 - i);
    size_t j = 0;
    for (; rows == kRowTile && j + kColTile <= n; j += kColTile) {
      float acc[kRowTile][kColTile] = {};
      for (size_t kk = 0; kk < k; ++kk) {
        const float* b_row = pb + kk * n + j;
        for (size_t r = 0; r < kRowTile; ++r) {
          const float a_rk = lhs_at(i + r, kk);
          for (size_t c = 0; c < kColTile; ++c) {
            acc[r][c] += a_rk * b_row[c];
          }
        }
      }
      for (size_t r = 0; r < kRowTile; ++r) {
        float* out_row = po + (i + r) * n + j;
        for (size_t c = 0; c < kColTile; ++c) out_row[c] = acc[r][c];
      }
    }
    // Ragged edges (last rows, last columns): plain scalar chains.
    for (size_t r = 0; r < rows; ++r) {
      float* out_row = po + (i + r) * n;
      for (size_t jj = j; jj < n; ++jj) {
        float acc = 0.0f;
        for (size_t kk = 0; kk < k; ++kk) {
          acc += lhs_at(i + r, kk) * pb[kk * n + jj];
        }
        out_row[jj] = acc;
      }
    }
  }
}

/// Writes out rows [r0, r1) of a * b (both row-major).
void MatmulRowRange(const float* pa, const float* pb, float* po, size_t r0,
                    size_t r1, size_t k, size_t n) {
  GemmRowRangeImpl([pa, k](size_t i, size_t kk) { return pa[i * k + kk]; },
                   pb, po, r0, r1, k, n);
}

/// Reference im2col triple loop writing every element of `pc`.
void ReferenceIm2ColInto(const Tensor& input, size_t kh, size_t kw,
                         size_t pad, float* pc) {
  const size_t channels = input.dim(0);
  const size_t height = input.dim(1);
  const size_t width = input.dim(2);
  const size_t out_h = height + 2 * pad - kh + 1;
  const size_t out_w = width + 2 * pad - kw + 1;
  const size_t col_width = out_h * out_w;
  for (size_t c = 0; c < channels; ++c) {
    for (size_t ki = 0; ki < kh; ++ki) {
      for (size_t kj = 0; kj < kw; ++kj) {
        const size_t row = (c * kh + ki) * kw + kj;
        float* dst = pc + row * col_width;
        for (size_t oi = 0; oi < out_h; ++oi) {
          const long src_i =
              static_cast<long>(oi + ki) - static_cast<long>(pad);
          for (size_t oj = 0; oj < out_w; ++oj) {
            const long src_j =
                static_cast<long>(oj + kj) - static_cast<long>(pad);
            float value = 0.0f;
            if (src_i >= 0 && src_i < static_cast<long>(height) &&
                src_j >= 0 && src_j < static_cast<long>(width)) {
              value = input.At3(c, static_cast<size_t>(src_i),
                                static_cast<size_t>(src_j));
            }
            dst[oi * out_w + oj] = value;
          }
        }
      }
    }
  }
}

/// Reference ikj matmul accumulating into `po`, which must be zeroed.
void ReferenceMatmulAccumulate(const float* pa, const float* pb, float* po,
                               size_t m, size_t k, size_t n) {
  for (size_t i = 0; i < m; ++i) {
    float* out_row = po + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* b_row = pb + kk * n;
      for (size_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
}

}  // namespace

void SetKernelMode(KernelMode mode) {
  g_kernel_mode.store(mode, std::memory_order_relaxed);
}

KernelMode GetKernelMode() {
  return g_kernel_mode.load(std::memory_order_relaxed);
}

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kBlocked:
      return "blocked";
    case KernelMode::kReference:
      return "reference";
    case KernelMode::kSimd:
      return "simd";
  }
  return "unknown";
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor out = a;
  const float* pb = b.data();
  float* po = out.data();
  GlobalPool().ParallelFor(0, out.size(), kElementwiseGrain,
                           [&](size_t lo, size_t hi, size_t) {
                             for (size_t i = lo; i < hi; ++i) po[i] += pb[i];
                           });
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor out = a;
  const float* pb = b.data();
  float* po = out.data();
  GlobalPool().ParallelFor(0, out.size(), kElementwiseGrain,
                           [&](size_t lo, size_t hi, size_t) {
                             for (size_t i = lo; i < hi; ++i) po[i] -= pb[i];
                           });
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor out = a;
  const float* pb = b.data();
  float* po = out.data();
  GlobalPool().ParallelFor(0, out.size(), kElementwiseGrain,
                           [&](size_t lo, size_t hi, size_t) {
                             for (size_t i = lo; i < hi; ++i) po[i] *= pb[i];
                           });
  return out;
}

Tensor Scale(const Tensor& a, float scalar) {
  Tensor out = a;
  float* po = out.data();
  GlobalPool().ParallelFor(0, out.size(), kElementwiseGrain,
                           [&](size_t lo, size_t hi, size_t) {
                             for (size_t i = lo; i < hi; ++i) po[i] *= scalar;
                           });
  return out;
}

void AddInPlace(Tensor* a, const Tensor& b) {
  CheckSameShape(*a, b, "AddInPlace");
  float* pa = a->data();
  const float* pb = b.data();
  GlobalPool().ParallelFor(0, a->size(), kElementwiseGrain,
                           [&](size_t lo, size_t hi, size_t) {
                             for (size_t i = lo; i < hi; ++i) pa[i] += pb[i];
                           });
}

void Axpy(Tensor* a, const Tensor& b, float scalar) {
  CheckSameShape(*a, b, "Axpy");
  float* pa = a->data();
  const float* pb = b.data();
  GlobalPool().ParallelFor(
      0, a->size(), kElementwiseGrain, [&](size_t lo, size_t hi, size_t) {
        for (size_t i = lo; i < hi; ++i) pa[i] += scalar * pb[i];
      });
}

namespace reference {

Tensor Matmul(const Tensor& a, const Tensor& b) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out({m, n});
  // ikj loop order: the inner loop streams both b and out rows.
  ReferenceMatmulAccumulate(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

Tensor MatmulTransposeA(const Tensor& a, const Tensor& b) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (size_t kk = 0; kk < k; ++kk) {
    const float* a_row = pa + kk * m;
    const float* b_row = pb + kk * n;
    for (size_t i = 0; i < m; ++i) {
      const float aik = a_row[i];
      if (aik == 0.0f) continue;
      float* out_row = po + i * n;
      for (size_t j = 0; j < n; ++j) out_row[j] += aik * b_row[j];
    }
  }
  return out;
}

Tensor MatmulTransposeB(const Tensor& a, const Tensor& b) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  for (size_t i = 0; i < m; ++i) {
    const float* a_row = pa + i * k;
    float* out_row = po + i * n;
    for (size_t j = 0; j < n; ++j) {
      const float* b_row = pb + j * k;
      float acc = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b_row[kk];
      out_row[j] = acc;
    }
  }
  return out;
}

Tensor Im2Col(const Tensor& input, size_t kh, size_t kw, size_t pad) {
  APOTS_CHECK_EQ(input.rank(), 3u);
  const size_t channels = input.dim(0);
  const size_t height = input.dim(1);
  const size_t width = input.dim(2);
  APOTS_CHECK_GE(height + 2 * pad + 1, kh);
  APOTS_CHECK_GE(width + 2 * pad + 1, kw);
  const size_t out_h = height + 2 * pad - kh + 1;
  const size_t out_w = width + 2 * pad - kw + 1;
  Tensor columns({channels * kh * kw, out_h * out_w});
  ReferenceIm2ColInto(input, kh, kw, pad, columns.data());
  return columns;
}

}  // namespace reference

Tensor Matmul(const Tensor& a, const Tensor& b) {
  if (GetKernelMode() == KernelMode::kReference) {
    return reference::Matmul(a, b);
  }
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (GetKernelMode() == KernelMode::kSimd) {
    simd::GemmStrided(pa, k, 1, pb, n, 1, po, m, k, n);
    return out;
  }
  GlobalPool().ParallelFor(0, m, RowGrain(k * n),
                           [&](size_t r0, size_t r1, size_t) {
                             MatmulRowRange(pa, pb, po, r0, r1, k, n);
                           });
  return out;
}

Tensor MatmulTransposeA(const Tensor& a, const Tensor& b) {
  if (GetKernelMode() == KernelMode::kReference) {
    return reference::MatmulTransposeA(a, b);
  }
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows(), m = a.cols(), n = b.cols();
  Tensor out({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (GetKernelMode() == KernelMode::kSimd) {
    // The strided left operand (rs=1, cs=m) expresses a^T without
    // materializing it; broadcast loads don't care about the stride.
    simd::GemmStrided(pa, 1, m, pb, n, 1, po, m, k, n);
    return out;
  }
  // Parallel over output rows (columns of a): each worker owns a disjoint
  // row panel of `out` and walks all of k, so the k-ascending accumulation
  // order per element matches the reference kernel exactly.
  GlobalPool().ParallelFor(
      0, m, RowGrain(k * n), [&](size_t r0, size_t r1, size_t) {
        GemmRowRangeImpl(
            [pa, m](size_t i, size_t kk) { return pa[kk * m + i]; }, pb, po,
            r0, r1, k, n);
      });
  return out;
}

Tensor MatmulTransposeB(const Tensor& a, const Tensor& b) {
  if (GetKernelMode() == KernelMode::kReference) {
    return reference::MatmulTransposeB(a, b);
  }
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.cols(), b.cols());
  const size_t m = a.rows(), k = a.cols(), n = b.rows();
  if (GetKernelMode() == KernelMode::kSimd) {
    // Panels are packed straight from b's rows (B(kk, j) = b[j*k + kk]),
    // so no b^T materialization is needed on this path.
    Tensor out({m, n});
    simd::GemmStrided(a.data(), k, 1, b.data(), 1, k, out.data(), m, k, n);
    return out;
  }
  // Materialize b^T once ([n,k] -> [k,n]) and run the streaming ikj loop.
  // The reference kernel's scalar dot product is a single latency-bound
  // dependency chain; streaming over b^T rows vectorizes while adding the
  // very same products in the very same k-ascending order.
  Tensor bt({k, n});
  const float* pb = b.data();
  float* pbt = bt.data();
  GlobalPool().ParallelFor(0, k, RowGrain(n),
                           [&](size_t r0, size_t r1, size_t) {
                             for (size_t kk = r0; kk < r1; ++kk) {
                               float* bt_row = pbt + kk * n;
                               for (size_t j = 0; j < n; ++j) {
                                 bt_row[j] = pb[j * k + kk];
                               }
                             }
                           });
  Tensor out({m, n});
  const float* pa = a.data();
  float* po = out.data();
  GlobalPool().ParallelFor(0, m, RowGrain(k * n),
                           [&](size_t r0, size_t r1, size_t) {
                             MatmulRowRange(pa, pbt, po, r0, r1, k, n);
                           });
  return out;
}

void MatmulInto(const Tensor& a, const Tensor& b, Tensor* out) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  APOTS_CHECK_EQ(b.rank(), 2u);
  APOTS_CHECK_EQ(a.cols(), b.rows());
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  APOTS_CHECK_EQ(out->rank(), 2u);
  APOTS_CHECK_EQ(out->rows(), m);
  APOTS_CHECK_EQ(out->cols(), n);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  if (GetKernelMode() == KernelMode::kReference) {
    out->Fill(0.0f);
    ReferenceMatmulAccumulate(pa, pb, po, m, k, n);
    return;
  }
  if (GetKernelMode() == KernelMode::kSimd) {
    simd::GemmStrided(pa, k, 1, pb, n, 1, po, m, k, n);
    return;
  }
  GlobalPool().ParallelFor(0, m, RowGrain(k * n),
                           [&](size_t r0, size_t r1, size_t) {
                             MatmulRowRange(pa, pb, po, r0, r1, k, n);
                           });
}

void Transpose12Into(const Tensor& a, Tensor* out) {
  APOTS_CHECK_EQ(a.rank(), 3u);
  const size_t n = a.dim(0), rows = a.dim(1), cols = a.dim(2);
  APOTS_CHECK_EQ(out->rank(), 3u);
  APOTS_CHECK_EQ(out->dim(0), n);
  APOTS_CHECK_EQ(out->dim(1), cols);
  APOTS_CHECK_EQ(out->dim(2), rows);
  const float* pa = a.data();
  float* po = out->data();
  for (size_t i = 0; i < n; ++i) {
    const float* src = pa + i * rows * cols;
    float* dst = po + i * rows * cols;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
    }
  }
}

Tensor Transpose(const Tensor& a) {
  APOTS_CHECK_EQ(a.rank(), 2u);
  const size_t m = a.rows(), n = a.cols();
  Tensor out({n, m});
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < n; ++j) out.At(j, i) = a.At(i, j);
  }
  return out;
}

Tensor Transpose12(const Tensor& a) {
  APOTS_CHECK_EQ(a.rank(), 3u);
  const size_t n = a.dim(0), rows = a.dim(1), cols = a.dim(2);
  Tensor out({n, cols, rows});
  const float* pa = a.data();
  float* po = out.data();
  for (size_t i = 0; i < n; ++i) {
    const float* src = pa + i * rows * cols;
    float* dst = po + i * rows * cols;
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) dst[c * rows + r] = src[r * cols + c];
    }
  }
  return out;
}

void AddRowBias(Tensor* matrix, const Tensor& bias) {
  APOTS_CHECK_EQ(matrix->rank(), 2u);
  APOTS_CHECK_EQ(bias.size(), matrix->cols());
  const size_t m = matrix->rows(), n = matrix->cols();
  float* pm = matrix->data();
  const float* pb = bias.data();
  GlobalPool().ParallelFor(0, m, RowGrain(n),
                           [&](size_t r0, size_t r1, size_t) {
                             for (size_t i = r0; i < r1; ++i) {
                               float* row = pm + i * n;
                               for (size_t j = 0; j < n; ++j) row[j] += pb[j];
                             }
                           });
}

Tensor SumRows(const Tensor& matrix) {
  APOTS_CHECK_EQ(matrix.rank(), 2u);
  const size_t m = matrix.rows(), n = matrix.cols();
  Tensor out({n});
  const float* pm = matrix.data();
  float* po = out.data();
  // Serial: the row-ascending accumulation order is part of the
  // determinism contract (bias gradients must not depend on pool size).
  for (size_t i = 0; i < m; ++i) {
    const float* row = pm + i * n;
    for (size_t j = 0; j < n; ++j) po[j] += row[j];
  }
  return out;
}

float Sum(const Tensor& a) {
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float Mean(const Tensor& a) {
  APOTS_CHECK_GT(a.size(), 0u);
  return Sum(a) / static_cast<float>(a.size());
}

float MinValue(const Tensor& a) {
  APOTS_CHECK_GT(a.size(), 0u);
  float best = a[0];
  for (size_t i = 1; i < a.size(); ++i) best = std::min(best, a[i]);
  return best;
}

float MaxValue(const Tensor& a) {
  APOTS_CHECK_GT(a.size(), 0u);
  float best = a[0];
  for (size_t i = 1; i < a.size(); ++i) best = std::max(best, a[i]);
  return best;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor out = a;
  float* po = out.data();
  for (size_t i = 0; i < out.size(); ++i) po[i] = fn(po[i]);
  return out;
}

void FillUniform(Tensor* t, apots::Rng* rng, float lo, float hi) {
  float* p = t->data();
  for (size_t i = 0; i < t->size(); ++i) {
    p[i] = static_cast<float>(rng->Uniform(lo, hi));
  }
}

void FillNormal(Tensor* t, apots::Rng* rng, float mean, float stddev) {
  float* p = t->data();
  for (size_t i = 0; i < t->size(); ++i) {
    p[i] = static_cast<float>(rng->Normal(mean, stddev));
  }
}

void Im2ColInto(const Tensor& input, size_t kh, size_t kw, size_t pad,
                Tensor* out) {
  APOTS_CHECK_EQ(input.rank(), 3u);
  const size_t channels = input.dim(0);
  const size_t height = input.dim(1);
  const size_t width = input.dim(2);
  APOTS_CHECK_GE(height + 2 * pad + 1, kh);
  APOTS_CHECK_GE(width + 2 * pad + 1, kw);
  const size_t out_h = height + 2 * pad - kh + 1;
  const size_t out_w = width + 2 * pad - kw + 1;
  APOTS_CHECK_EQ(out->rank(), 2u);
  APOTS_CHECK_EQ(out->rows(), channels * kh * kw);
  APOTS_CHECK_EQ(out->cols(), out_h * out_w);
  if (GetKernelMode() == KernelMode::kReference) {
    ReferenceIm2ColInto(input, kh, kw, pad, out->data());
    return;
  }
  float* pc = out->data();
  const float* pi = input.data();
  const size_t col_width = out_h * out_w;
  // Each output row is the sweep of one (channel, ki, kj) tap: disjoint
  // writes, so rows parallelize freely. kSimd shares this path: im2col is
  // a pure copy kernel, so there is no arithmetic for vector units to win
  // on and the copies below already saturate memory bandwidth.
  GlobalPool().ParallelFor(
      0, channels * kh * kw, RowGrain(col_width),
      [&](size_t row0, size_t row1, size_t) {
        for (size_t row = row0; row < row1; ++row) {
          const size_t kj = row % kw;
          const size_t ki = (row / kw) % kh;
          const size_t c = row / (kw * kh);
          const float* src_plane = pi + c * height * width;
          float* dst = pc + row * col_width;
          for (size_t oi = 0; oi < out_h; ++oi) {
            const long src_i =
                static_cast<long>(oi + ki) - static_cast<long>(pad);
            if (src_i < 0 || src_i >= static_cast<long>(height)) {
              std::fill(dst + oi * out_w, dst + (oi + 1) * out_w, 0.0f);
              continue;
            }
            const float* src_row = src_plane + src_i * width;
            for (size_t oj = 0; oj < out_w; ++oj) {
              const long src_j =
                  static_cast<long>(oj + kj) - static_cast<long>(pad);
              dst[oi * out_w + oj] =
                  (src_j >= 0 && src_j < static_cast<long>(width))
                      ? src_row[src_j]
                      : 0.0f;
            }
          }
        }
      });
}

Tensor Im2Col(const Tensor& input, size_t kh, size_t kw, size_t pad) {
  APOTS_CHECK_EQ(input.rank(), 3u);
  const size_t channels = input.dim(0);
  const size_t height = input.dim(1);
  const size_t width = input.dim(2);
  APOTS_CHECK_GE(height + 2 * pad + 1, kh);
  APOTS_CHECK_GE(width + 2 * pad + 1, kw);
  const size_t out_h = height + 2 * pad - kh + 1;
  const size_t out_w = width + 2 * pad - kw + 1;
  Tensor columns({channels * kh * kw, out_h * out_w});
  Im2ColInto(input, kh, kw, pad, &columns);
  return columns;
}

Tensor Col2Im(const Tensor& columns, size_t channels, size_t height,
              size_t width, size_t kh, size_t kw, size_t pad) {
  APOTS_CHECK_EQ(columns.rank(), 2u);
  const size_t out_h = height + 2 * pad - kh + 1;
  const size_t out_w = width + 2 * pad - kw + 1;
  APOTS_CHECK_EQ(columns.rows(), channels * kh * kw);
  APOTS_CHECK_EQ(columns.cols(), out_h * out_w);
  Tensor image({channels, height, width});
  const float* pc = columns.data();
  const size_t col_width = out_h * out_w;
  // Parallel over channels: every (c, ki, kj) row scatters only into
  // channel c's image plane, so channels are independent and each plane
  // keeps its serial accumulation order.
  GlobalPool().ParallelFor(
      0, channels, RowGrain(kh * kw * col_width),
      [&](size_t c0, size_t c1, size_t) {
        for (size_t c = c0; c < c1; ++c) {
          for (size_t ki = 0; ki < kh; ++ki) {
            for (size_t kj = 0; kj < kw; ++kj) {
              const size_t row = (c * kh + ki) * kw + kj;
              const float* src = pc + row * col_width;
              for (size_t oi = 0; oi < out_h; ++oi) {
                const long dst_i =
                    static_cast<long>(oi + ki) - static_cast<long>(pad);
                if (dst_i < 0 || dst_i >= static_cast<long>(height)) continue;
                for (size_t oj = 0; oj < out_w; ++oj) {
                  const long dst_j =
                      static_cast<long>(oj + kj) - static_cast<long>(pad);
                  if (dst_j < 0 || dst_j >= static_cast<long>(width)) continue;
                  image.At3(c, static_cast<size_t>(dst_i),
                            static_cast<size_t>(dst_j)) +=
                      src[oi * out_w + oj];
                }
              }
            }
          }
        }
      });
  return image;
}

}  // namespace apots::tensor
