#ifndef APOTS_TENSOR_SIMD_KERNELS_H_
#define APOTS_TENSOR_SIMD_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

namespace apots::tensor::simd {

/// Internal microkernel interface behind KernelMode::kSimd and the
/// quantized inference paths. The drivers here pack the right-hand operand
/// into zero-padded column panels once per call, then sweep row ranges of
/// the output through an ISA-dispatched register-tiled kernel (see
/// cpu_features.h for the dispatch ladder and DESIGN.md §15 for the
/// numerics contract).
///
/// Panel layout (fp32): panel `p` covers output columns [p*nr, p*nr+width)
/// and stores k rows of nr floats, `panel[kk*nr + c]` = B(kk, p*nr + c),
/// columns beyond `width` zero-padded. nr is an ISA choice: 16 floats (two
/// ymm) for AVX2 and the scalar fallback, 32 (two zmm) for AVX-512. Pack
/// buffers are 64-byte aligned so full panel rows take aligned loads.
inline constexpr size_t kNrAvx2 = 16;
inline constexpr size_t kNrAvx512 = 32;
inline constexpr size_t kNrMax = 32;

/// int8 panels use a fixed nr of 16 columns with the k dimension grouped in
/// fours: element (g, c, t) of a panel — column c, kk = 4*g + t — lives at
/// `panel[(g*kNrInt8 + c)*4 + t]`, matching the VPDPBUSD operand layout.
inline constexpr size_t kNrInt8 = 16;

/// fp32 GEMM over one packed panel. The left operand is strided:
/// A(i, kk) = a[i*a_rs + kk*a_cs], which expresses both plain (rs=k, cs=1)
/// and transposed (rs=1, cs=m) operands without materializing anything.
/// Writes out rows [r0, r1) x panel columns [0, width); `out` points at the
/// panel's first output column of row 0 and has leading dimension out_ld.
/// Every output element accumulates its k products in ascending-k order in
/// a single FMA chain, so results are identical across row partitions (and
/// therefore across thread counts) for a fixed ISA.
using GemmPanelFn = void (*)(const float* a, size_t a_rs, size_t a_cs,
                             const float* panel, size_t k, size_t nr,
                             float* out, size_t out_ld, size_t r0, size_t r1,
                             size_t width);

void GemmPanelScalar(const float* a, size_t a_rs, size_t a_cs,
                     const float* panel, size_t k, size_t nr, float* out,
                     size_t out_ld, size_t r0, size_t r1, size_t width);
/// Defined in simd_kernels_avx2.cc / simd_kernels_avx512.cc; those TUs are
/// compiled with their ISA flags and forward to the scalar kernel when the
/// toolchain cannot target the ISA at all (non-x86). Call only when
/// DetectedIsa() admits the ISA.
void GemmPanelAvx2(const float* a, size_t a_rs, size_t a_cs,
                   const float* panel, size_t k, size_t nr, float* out,
                   size_t out_ld, size_t r0, size_t r1, size_t width);
void GemmPanelAvx512(const float* a, size_t a_rs, size_t a_cs,
                     const float* panel, size_t k, size_t nr, float* out,
                     size_t out_ld, size_t r0, size_t r1, size_t width);

/// The fp32 kernel + panel width the current dispatch ladder selects.
struct GemmKernel {
  GemmPanelFn fn;
  size_t nr;
};
GemmKernel PickGemmKernel();

/// int8 GEMM over one packed panel. `qa` holds unsigned asymmetric
/// (min/max affine) row-major quantized activations with leading dimension
/// qa_ld >= kp (kp = k rounded up to a multiple of 4, zero weight codes in
/// the pad); row i dequantizes as a ~= row_min[i] + row_scale[i] * code.
/// col_scale / col_zsum point at this panel's per-column weight scale and
/// column sum of the signed weight codes (the affine activation offset is
/// compensated exactly via the row_min * zsum term). Integer accumulation
/// is exact, so the scalar and VNNI kernels produce bit-identical floats.
using Int8PanelFn = void (*)(const uint8_t* qa, size_t qa_ld,
                             const float* row_scale, const float* row_min,
                             const int8_t* panel, size_t kp,
                             const float* col_scale, const int32_t* col_zsum,
                             float* out, size_t out_ld, size_t r0, size_t r1,
                             size_t width);

void Int8PanelScalar(const uint8_t* qa, size_t qa_ld, const float* row_scale,
                     const float* row_min, const int8_t* panel, size_t kp,
                     const float* col_scale, const int32_t* col_zsum,
                     float* out, size_t out_ld, size_t r0, size_t r1,
                     size_t width);
/// AVX-512 VNNI (VPDPBUSD). No AVX2 variant on purpose: VPMADDUBSW
/// saturates its 16-bit intermediate sums (2*255*128 > 32767), which would
/// silently corrupt accumulators — non-VNNI hosts take the scalar kernel.
void Int8PanelVnni(const uint8_t* qa, size_t qa_ld, const float* row_scale,
                   const float* row_min, const int8_t* panel, size_t kp,
                   const float* col_scale, const int32_t* col_zsum, float* out,
                   size_t out_ld, size_t r0, size_t r1, size_t width);

Int8PanelFn PickInt8Kernel();

/// Shared dequantization of one int8 accumulator — a single expression so
/// every kernel produces identical floats from identical accumulators:
/// sum_k a*w = sum_k (min + s_a*u) * (s_b*q) = s_a*s_b*acc + min*s_b*zsum.
/// The multiply-add is an explicit std::fma, not a contraction candidate:
/// this header is inlined into TUs built with different target flags (the
/// generic library may lack FMA while the per-ISA kernel TUs have it), and
/// letting the compiler contract in some TUs but not others breaks the
/// scalar==VNNI bitwise guarantee. std::fma is correctly rounded whether it
/// lowers to vfmadd or libm, so every build produces the same bits.
inline float DequantInt8Acc(int32_t acc, int32_t col_zsum, float row_scale,
                            float row_min, float col_scale) {
  return std::fma(row_scale * col_scale, static_cast<float>(acc),
                  row_min * col_scale * static_cast<float>(col_zsum));
}

/// IEEE binary16 conversions. Half -> float is exact in any implementation;
/// float -> half rounds to nearest-even in both the software and the F16C
/// path, so packed bits never depend on the host ISA.
void HalfToFloatScalar(const uint16_t* src, float* dst, size_t count);
void FloatToHalfScalar(const float* src, uint16_t* dst, size_t count);
void HalfToFloatF16c(const uint16_t* src, float* dst, size_t count);
void FloatToHalfF16c(const float* src, uint16_t* dst, size_t count);

/// Converts with the F16C units when the host has them, else in software.
void HalfToFloat(const uint16_t* src, float* dst, size_t count);
void FloatToHalf(const float* src, uint16_t* dst, size_t count);

/// out[m,n] = A x B with both operands strided: A(i,kk) = a[i*a_rs +
/// kk*a_cs], B(kk,j) = b[kk*b_rs + j*b_cs]. Packs B into panels on the
/// calling thread, then parallelizes disjoint output row ranges over the
/// global pool. This is the KernelMode::kSimd entry point for Matmul
/// (b_rs=n, b_cs=1), MatmulTransposeA (a_rs=1, a_cs=m), and
/// MatmulTransposeB (b_rs=1, b_cs=k).
void GemmStrided(const float* a, size_t a_rs, size_t a_cs, const float* b,
                 size_t b_rs, size_t b_cs, float* out, size_t m, size_t k,
                 size_t n);

/// out[m,n] = A x B where B is a row-major [k,n] matrix of binary16 bits.
/// Panels are dequantized into the fp32 pack buffer at pack time and the
/// fp32 microkernels run unchanged.
void GemmHalfB(const float* a, size_t a_rs, size_t a_cs, const uint16_t* b,
               float* out, size_t m, size_t k, size_t n);

/// Grow-only, 64-byte-aligned thread-local scratch used by the drivers for
/// packed panels (exposed for the quantized drivers in quant.cc).
float* PackBufferFp32(size_t floats);
uint8_t* PackBufferBytes(size_t bytes);

}  // namespace apots::tensor::simd

#endif  // APOTS_TENSOR_SIMD_KERNELS_H_
