#ifndef APOTS_METRICS_STATS_H_
#define APOTS_METRICS_STATS_H_

#include <cstddef>
#include <vector>

namespace apots::metrics {

/// Sample mean of `values`.
double Mean(const std::vector<double>& values);

/// Unbiased sample standard deviation (n-1 denominator).
double SampleStddev(const std::vector<double>& values);

/// Result of a paired t-test.
struct TTestResult {
  double t = 0.0;
  size_t df = 0;
  double p_two_sided = 1.0;
};

/// Paired two-sided t-test between equally sized samples `a` and `b`
/// (H0: mean difference is zero). This reproduces the paper's
/// "t(7)=3.04, p<0.05"-style significance checks across the 8 predictor
/// configurations.
TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b);

/// CDF of Student's t-distribution with `df` degrees of freedom,
/// implemented via the regularized incomplete beta function.
double StudentTCdf(double t, size_t df);

/// Regularized incomplete beta function I_x(a, b) via the Lentz continued
/// fraction (Numerical-Recipes-style formulation).
double RegularizedIncompleteBeta(double a, double b, double x);

}  // namespace apots::metrics

#endif  // APOTS_METRICS_STATS_H_
