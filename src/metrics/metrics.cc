#include "metrics/metrics.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace apots::metrics {

std::string MetricSet::ToString() const {
  return apots::StrFormat("MAE=%.2f RMSE=%.2f MAPE=%.2f%% (n=%zu)", mae,
                          rmse, mape, count);
}

MetricSet Compute(const std::vector<double>& predictions,
                  const std::vector<double>& truths, double mape_floor_kmh) {
  std::vector<bool> mask(predictions.size(), true);
  return ComputeMasked(predictions, truths, mask, mape_floor_kmh);
}

MetricSet ComputeMasked(const std::vector<double>& predictions,
                        const std::vector<double>& truths,
                        const std::vector<bool>& mask,
                        double mape_floor_kmh) {
  APOTS_CHECK_EQ(predictions.size(), truths.size());
  APOTS_CHECK_EQ(predictions.size(), mask.size());
  MetricSet out;
  double abs_sum = 0.0, sq_sum = 0.0, pct_sum = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (!mask[i]) continue;
    const double err = predictions[i] - truths[i];
    abs_sum += std::fabs(err);
    sq_sum += err * err;
    const double denom = std::max(std::fabs(truths[i]), mape_floor_kmh);
    pct_sum += std::fabs(err) / denom * 100.0;
    ++out.count;
  }
  if (out.count == 0) return out;
  const double n = static_cast<double>(out.count);
  out.mae = abs_sum / n;
  out.rmse = std::sqrt(sq_sum / n);
  out.mape = pct_sum / n;
  return out;
}

std::vector<bool> ObservedTargetMask(
    const apots::traffic::ValidityMask& validity,
    const std::vector<long>& anchors, int road, int beta) {
  std::vector<bool> mask(anchors.size());
  for (size_t i = 0; i < anchors.size(); ++i) {
    mask[i] = validity.Valid(road, anchors[i] + beta);
  }
  return mask;
}

double GainPercent(double error_new, double error_baseline) {
  if (error_baseline == 0.0) return 0.0;
  return (error_baseline - error_new) / error_baseline * 100.0;
}

}  // namespace apots::metrics
