#ifndef APOTS_METRICS_SEGMENTATION_H_
#define APOTS_METRICS_SEGMENTATION_H_

#include <vector>

#include "traffic/traffic_dataset.h"

namespace apots::metrics {

/// Classification of a prediction instant by the paper's abrupt-change
/// criterion (Eqs. 7-8 with theta = +-0.3 by default): compare the real
/// speed at the prediction time with the real speed one interval earlier.
enum class Segment {
  kNormal,
  kAbruptDeceleration,  ///< (s_{t-1} - s_t) / s_{t-1} >= theta
  kAbruptAcceleration,  ///< (s_{t-1} - s_t) / s_{t-1} <= -theta
};

/// Classifies the instant `t` on `road` of `dataset`.
Segment ClassifyInstant(const apots::traffic::TrafficDataset& dataset,
                        int road, long t, double theta = 0.3);

/// Classifies the prediction instants `anchor + beta` for a set of sample
/// anchors on the target road.
std::vector<Segment> ClassifyAnchors(
    const apots::traffic::TrafficDataset& dataset, int road,
    const std::vector<long>& anchors, int beta, double theta = 0.3);

/// Boolean mask selecting the anchors in `segments` equal to `segment`.
std::vector<bool> SegmentMask(const std::vector<Segment>& segments,
                              Segment segment);

/// Mask selecting every anchor (the "whole period" row of Fig. 4).
std::vector<bool> AllMask(size_t count);

/// Counts per segment (diagnostic).
struct SegmentCounts {
  size_t normal = 0;
  size_t abrupt_dec = 0;
  size_t abrupt_acc = 0;
};
SegmentCounts CountSegments(const std::vector<Segment>& segments);

}  // namespace apots::metrics

#endif  // APOTS_METRICS_SEGMENTATION_H_
