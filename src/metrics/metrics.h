#ifndef APOTS_METRICS_METRICS_H_
#define APOTS_METRICS_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "traffic/fault_injector.h"

namespace apots::metrics {

/// The paper's three accuracy metrics over a set of (prediction, truth)
/// pairs in km/h.
struct MetricSet {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;  ///< percent
  size_t count = 0;

  std::string ToString() const;
};

/// Computes MAE / RMSE / MAPE. MAPE terms with |truth| below
/// `mape_floor_kmh` are computed against the floor to avoid division
/// blow-ups on near-zero speeds (speeds here are >= 5 km/h by
/// construction, so the floor rarely binds).
MetricSet Compute(const std::vector<double>& predictions,
                  const std::vector<double>& truths,
                  double mape_floor_kmh = 1.0);

/// Computes metrics over the subset selected by `mask[i] == true`.
MetricSet ComputeMasked(const std::vector<double>& predictions,
                        const std::vector<double>& truths,
                        const std::vector<bool>& mask,
                        double mape_floor_kmh = 1.0);

/// Per-anchor "ground truth was observed" mask: element i is true when
/// `validity` marks (road, anchors[i] + beta) as observed. Feed the result
/// to ComputeMasked so fault-fabricated targets never score as truth.
std::vector<bool> ObservedTargetMask(
    const apots::traffic::ValidityMask& validity,
    const std::vector<long>& anchors, int road, int beta);

/// Gain of `a` over baseline `b` per the paper's Eq. 9:
/// (E_a - E_b) / E_b * 100, reported as a positive improvement when the
/// error decreased. Here we return the improvement percentage
/// (b - a) / b * 100 so "higher is better", matching how the paper's
/// tables read.
double GainPercent(double error_new, double error_baseline);

}  // namespace apots::metrics

#endif  // APOTS_METRICS_METRICS_H_
