#include "metrics/stats.h"

#include <cmath>

#include "util/logging.h"

namespace apots::metrics {

double Mean(const std::vector<double>& values) {
  APOTS_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double SampleStddev(const std::vector<double>& values) {
  APOTS_CHECK_GT(values.size(), 1u);
  const double mean = Mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - mean) * (v - mean);
  return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

namespace {

double LogBeta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

// Continued fraction for the incomplete beta function (modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 1e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  APOTS_CHECK_GT(a, 0.0);
  APOTS_CHECK_GT(b, 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double log_front =
      a * std::log(x) + b * std::log(1.0 - x) - LogBeta(a, b);
  const double front = std::exp(log_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, size_t df) {
  APOTS_CHECK_GT(df, 0u);
  const double v = static_cast<double>(df);
  const double x = v / (v + t * t);
  const double tail = 0.5 * RegularizedIncompleteBeta(v / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

TTestResult PairedTTest(const std::vector<double>& a,
                        const std::vector<double>& b) {
  APOTS_CHECK_EQ(a.size(), b.size());
  APOTS_CHECK_GT(a.size(), 1u);
  std::vector<double> diff(a.size());
  for (size_t i = 0; i < a.size(); ++i) diff[i] = a[i] - b[i];
  const double mean = Mean(diff);
  const double stddev = SampleStddev(diff);
  TTestResult result;
  result.df = a.size() - 1;
  if (stddev == 0.0) {
    result.t = mean == 0.0 ? 0.0 : (mean > 0.0 ? 1e9 : -1e9);
    result.p_two_sided = mean == 0.0 ? 1.0 : 0.0;
    return result;
  }
  result.t = mean / (stddev / std::sqrt(static_cast<double>(a.size())));
  const double cdf = StudentTCdf(std::fabs(result.t), result.df);
  result.p_two_sided = 2.0 * (1.0 - cdf);
  return result;
}

}  // namespace apots::metrics
