#include "metrics/segmentation.h"

#include "util/logging.h"

namespace apots::metrics {

using apots::traffic::TrafficDataset;

Segment ClassifyInstant(const TrafficDataset& dataset, int road, long t,
                        double theta) {
  APOTS_CHECK_GT(t, 0);
  const double prev = dataset.Speed(road, t - 1);
  const double curr = dataset.Speed(road, t);
  if (prev <= 0.0) return Segment::kNormal;
  const double change = (prev - curr) / prev;
  if (change >= theta) return Segment::kAbruptDeceleration;
  if (change <= -theta) return Segment::kAbruptAcceleration;
  return Segment::kNormal;
}

std::vector<Segment> ClassifyAnchors(const TrafficDataset& dataset, int road,
                                     const std::vector<long>& anchors,
                                     int beta, double theta) {
  std::vector<Segment> segments;
  segments.reserve(anchors.size());
  for (long anchor : anchors) {
    segments.push_back(
        ClassifyInstant(dataset, road, anchor + beta, theta));
  }
  return segments;
}

std::vector<bool> SegmentMask(const std::vector<Segment>& segments,
                              Segment segment) {
  std::vector<bool> mask(segments.size());
  for (size_t i = 0; i < segments.size(); ++i) {
    mask[i] = segments[i] == segment;
  }
  return mask;
}

std::vector<bool> AllMask(size_t count) {
  return std::vector<bool>(count, true);
}

SegmentCounts CountSegments(const std::vector<Segment>& segments) {
  SegmentCounts counts;
  for (Segment s : segments) {
    switch (s) {
      case Segment::kNormal:
        ++counts.normal;
        break;
      case Segment::kAbruptDeceleration:
        ++counts.abrupt_dec;
        break;
      case Segment::kAbruptAcceleration:
        ++counts.abrupt_acc;
        break;
    }
  }
  return counts;
}

}  // namespace apots::metrics
