#include "chaos/chaos.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace apots::chaos {

Result<unsigned> ParseChaosKinds(const std::string& spec) {
  unsigned kinds = 0;
  for (const std::string& token : Split(spec, ',')) {
    const std::string name = ToLower(Trim(token));
    if (name.empty()) continue;
    if (name == "all") {
      kinds |= kChaosAll;
    } else if (name == "kill") {
      kinds |= kChaosKill;
    } else if (name == "stall") {
      kinds |= kChaosStall;
    } else if (name == "partition") {
      kinds |= kChaosPartition;
    } else if (name == "skew") {
      kinds |= kChaosSkew;
    } else if (name == "corrupt") {
      kinds |= kChaosCorrupt;
    } else {
      return Status::InvalidArgument(
          "unknown chaos kind: " + name +
          " (valid kinds: kill, stall, partition, skew, corrupt, all)");
    }
  }
  if (kinds == 0) {
    return Status::InvalidArgument(
        "no chaos kinds in: " + spec +
        " (valid kinds: kill, stall, partition, skew, corrupt, all)");
  }
  return kinds;
}

std::string ChaosKindsToString(unsigned kinds) {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
  if (kinds & kChaosKill) append("kill");
  if (kinds & kChaosStall) append("stall");
  if (kinds & kChaosPartition) append("partition");
  if (kinds & kChaosSkew) append("skew");
  if (kinds & kChaosCorrupt) append("corrupt");
  if (out.empty()) out = "none";
  return out;
}

const char* ChaosActionName(ChaosAction action) {
  switch (action) {
    case ChaosAction::kKill:
      return "kill";
    case ChaosAction::kRestart:
      return "restart";
    case ChaosAction::kStall:
      return "stall";
    case ChaosAction::kPartition:
      return "partition";
    case ChaosAction::kClockSkew:
      return "clock-skew";
    case ChaosAction::kCorruptCheckpoint:
      return "corrupt-checkpoint";
  }
  return "unknown";
}

ChaosSpec ChaosSpec::Off() {
  ChaosSpec spec;
  spec.kinds = 0;
  spec.kill_prob = 0.0;
  spec.stall_prob = 0.0;
  spec.partition_prob = 0.0;
  spec.skew_prob = 0.0;
  spec.corrupt_prob = 0.0;
  return spec;
}

ChaosSpec ChaosSpec::Storm(uint64_t seed) {
  ChaosSpec spec;
  spec.seed = seed;
  spec.kill_prob = 0.02;
  spec.stall_prob = 0.04;
  spec.partition_prob = 0.02;
  spec.skew_prob = 0.02;
  spec.corrupt_prob = 0.01;
  return spec;
}

ChaosScheduler::ChaosScheduler(ChaosSpec spec, int num_shards,
                               int replicas_per_shard)
    : spec_(spec),
      num_shards_(num_shards),
      replicas_per_shard_(replicas_per_shard),
      rng_(spec.seed) {
  APOTS_CHECK_GE(num_shards_, 1);
  APOTS_CHECK_GE(replicas_per_shard_, 1);
  states_.resize(static_cast<size_t>(num_shards_ * replicas_per_shard_));
}

ChaosScheduler::ReplicaState& ChaosScheduler::At(int shard, int replica) {
  return states_[static_cast<size_t>(shard * replicas_per_shard_ + replica)];
}

int ChaosScheduler::HealthyCount(int shard, long tick) {
  int healthy = 0;
  for (int r = 0; r < replicas_per_shard_; ++r) {
    const ReplicaState& state = At(shard, r);
    if (state.down_until >= 0 && tick < state.down_until) continue;
    if (state.unreachable_until >= 0 && tick < state.unreachable_until) {
      continue;
    }
    if (state.stalled_until >= 0 && tick < state.stalled_until) continue;
    ++healthy;
  }
  return healthy;
}

std::vector<ChaosEvent> ChaosScheduler::Step(long tick) {
  std::vector<ChaosEvent> events;

  // Due restarts first, so a replica can be back before new faults draw.
  auto due = std::stable_partition(
      pending_restarts_.begin(), pending_restarts_.end(),
      [tick](const ChaosEvent& event) { return event.tick <= tick; });
  for (auto it = pending_restarts_.begin(); it != due; ++it) {
    ChaosEvent restart = *it;
    restart.tick = tick;
    At(restart.shard, restart.replica).down_until = -1;
    ++stats_.restarts;
    events.push_back(restart);
  }
  pending_restarts_.erase(pending_restarts_.begin(), due);

  // Fault draws in fixed (shard, replica, kind) order — determinism needs
  // a stable RNG consumption sequence, so every probability is drawn even
  // when an earlier draw already fired.
  for (int s = 0; s < num_shards_; ++s) {
    for (int r = 0; r < replicas_per_shard_; ++r) {
      const bool kill_draw =
          (spec_.kinds & kChaosKill) && rng_.Bernoulli(spec_.kill_prob);
      const bool stall_draw =
          (spec_.kinds & kChaosStall) && rng_.Bernoulli(spec_.stall_prob);
      const double stall_ms =
          rng_.Uniform(spec_.stall_ms_min, spec_.stall_ms_max);
      const long stall_ticks = static_cast<long>(
          spec_.stall_ticks_min +
          static_cast<int>(rng_.UniformInt(static_cast<uint64_t>(
              spec_.stall_ticks_max - spec_.stall_ticks_min + 1))));
      const bool partition_draw = (spec_.kinds & kChaosPartition) &&
                                  rng_.Bernoulli(spec_.partition_prob);
      const long partition_ticks = static_cast<long>(
          spec_.partition_min +
          static_cast<int>(rng_.UniformInt(static_cast<uint64_t>(
              spec_.partition_max - spec_.partition_min + 1))));
      const bool skew_draw =
          (spec_.kinds & kChaosSkew) && rng_.Bernoulli(spec_.skew_prob);
      const double skew_ms =
          rng_.Uniform(-spec_.skew_ms_max, spec_.skew_ms_max);
      const bool corrupt_draw = (spec_.kinds & kChaosCorrupt) &&
                                rng_.Bernoulli(spec_.corrupt_prob);
      const long down_ticks = static_cast<long>(
          spec_.down_min + static_cast<int>(rng_.UniformInt(
                               static_cast<uint64_t>(spec_.down_max -
                                                     spec_.down_min + 1))));

      ReplicaState& state = At(s, r);
      const bool is_down = state.down_until >= 0 && tick < state.down_until;
      if (is_down) continue;  // nothing to do to a dead replica

      // The spare-last-healthy guard asks whether taking THIS replica out
      // would leave the shard with no healthy one. A victim that is
      // already partitioned or stalled is not healthy, so removing it
      // cannot reduce the healthy count.
      const auto victim_healthy = [&state, tick] {
        return !(state.unreachable_until >= 0 &&
                 tick < state.unreachable_until) &&
               !(state.stalled_until >= 0 && tick < state.stalled_until);
      };
      const auto would_strand = [this, s, tick, &victim_healthy] {
        return HealthyCount(s, tick) - (victim_healthy() ? 1 : 0) < 1;
      };

      // Corruption composes the full drill: corrupt the newest
      // checkpoint, kill, and recover through the fallback on restart.
      const bool wants_kill = kill_draw || corrupt_draw;
      if (wants_kill || partition_draw) {
        if (spec_.spare_last_healthy && would_strand()) {
          ++stats_.spared;
        } else if (wants_kill) {
          if (corrupt_draw) {
            ChaosEvent corrupt;
            corrupt.tick = tick;
            corrupt.action = ChaosAction::kCorruptCheckpoint;
            corrupt.shard = s;
            corrupt.replica = r;
            events.push_back(corrupt);
            ++stats_.corruptions;
          }
          ChaosEvent kill;
          kill.tick = tick;
          kill.action = ChaosAction::kKill;
          kill.shard = s;
          kill.replica = r;
          events.push_back(kill);
          ++stats_.kills;
          state.down_until = tick + down_ticks;
          ChaosEvent restart;
          restart.tick = tick + down_ticks;
          restart.action = ChaosAction::kRestart;
          restart.shard = s;
          restart.replica = r;
          pending_restarts_.push_back(restart);
          continue;  // no further faults on a replica killed this tick
        } else {
          ChaosEvent partition;
          partition.tick = tick;
          partition.action = ChaosAction::kPartition;
          partition.shard = s;
          partition.replica = r;
          partition.duration_ticks = partition_ticks;
          events.push_back(partition);
          ++stats_.partitions;
          state.unreachable_until = tick + partition_ticks;
        }
      }
      if (stall_draw) {
        // A stall can exceed the router timeout, so it threatens the
        // availability promise the same way a partition does: guard it.
        if (spec_.spare_last_healthy && would_strand()) {
          ++stats_.spared;
        } else {
          ChaosEvent stall;
          stall.tick = tick;
          stall.action = ChaosAction::kStall;
          stall.shard = s;
          stall.replica = r;
          stall.param_ms = stall_ms;
          stall.duration_ticks = stall_ticks;
          events.push_back(stall);
          ++stats_.stalls;
          state.stalled_until = tick + stall_ticks;
        }
      }
      if (skew_draw) {
        ChaosEvent skew;
        skew.tick = tick;
        skew.action = ChaosAction::kClockSkew;
        skew.shard = s;
        skew.replica = r;
        skew.param_ms = skew_ms;
        events.push_back(skew);
        ++stats_.skews;
      }
      // Heal expired partitions/stalls in the model (the service heals by
      // tick comparison on its own).
      if (state.unreachable_until >= 0 && tick >= state.unreachable_until) {
        state.unreachable_until = -1;
      }
      if (state.stalled_until >= 0 && tick >= state.stalled_until) {
        state.stalled_until = -1;
      }
    }
  }
  return events;
}

ChaosDriver::ChaosDriver(apots::serve::ShardedService* service,
                         ChaosScheduler* scheduler)
    : service_(service), scheduler_(scheduler) {
  APOTS_CHECK(service != nullptr);
  APOTS_CHECK(scheduler != nullptr);
}

int ChaosDriver::Step(long tick) {
  int applied = 0;
  for (const ChaosEvent& event : scheduler_->Step(tick)) {
    Status status;
    switch (event.action) {
      case ChaosAction::kKill:
        status = service_->KillReplica(event.shard, event.replica);
        break;
      case ChaosAction::kRestart:
        status = service_->RestartReplica(event.shard, event.replica);
        break;
      case ChaosAction::kStall:
        status = service_->StallReplica(event.shard, event.replica,
                                        event.param_ms,
                                        event.duration_ticks);
        break;
      case ChaosAction::kPartition:
        status = service_->PartitionReplica(event.shard, event.replica,
                                            event.duration_ticks);
        break;
      case ChaosAction::kClockSkew:
        status = service_->SkewReplicaClock(event.shard, event.replica,
                                            event.param_ms);
        break;
      case ChaosAction::kCorruptCheckpoint:
        status =
            service_->CorruptNewestCheckpoint(event.shard, event.replica);
        break;
    }
    if (status.ok()) {
      ++applied;
      ++stats_.applied;
    } else {
      // A refused event (e.g. corrupting before the first checkpoint
      // exists) is part of the drill, not an error: count and move on.
      ++stats_.rejected;
    }
  }
  return applied;
}

}  // namespace apots::chaos
