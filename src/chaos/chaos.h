#ifndef APOTS_CHAOS_CHAOS_H_
#define APOTS_CHAOS_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/sharded_service.h"
#include "util/rng.h"
#include "util/status.h"

namespace apots::chaos {

/// Fault kinds the scheduler can inject, as a bitmask (mirrors
/// traffic::ParseFaultKinds / the CLI's --fault-kinds convention).
constexpr unsigned kChaosKill = 1u << 0;       ///< kill + later restart
constexpr unsigned kChaosStall = 1u << 1;      ///< slow replies
constexpr unsigned kChaosPartition = 1u << 2;  ///< unreachable, still alive
constexpr unsigned kChaosSkew = 1u << 3;       ///< mid-inference clock jump
constexpr unsigned kChaosCorrupt = 1u << 4;    ///< corrupt newest ckpt,
                                               ///< then kill + restart
constexpr unsigned kChaosAll = kChaosKill | kChaosStall | kChaosPartition |
                               kChaosSkew | kChaosCorrupt;

/// Parses "kill,stall" / "all" (case-insensitive). Unknown names return
/// InvalidArgument listing the valid kinds.
Result<unsigned> ParseChaosKinds(const std::string& spec);
std::string ChaosKindsToString(unsigned kinds);

enum class ChaosAction {
  kKill,
  kRestart,
  kStall,
  kPartition,
  kClockSkew,
  kCorruptCheckpoint,
};
const char* ChaosActionName(ChaosAction action);

/// One scheduled fault.
struct ChaosEvent {
  long tick = 0;
  ChaosAction action = ChaosAction::kKill;
  int shard = 0;
  int replica = 0;
  double param_ms = 0.0;    ///< stall cost / clock jump
  long duration_ticks = 0;  ///< stall / partition length
};

struct ChaosSpec {
  unsigned kinds = kChaosAll;
  uint64_t seed = 2024;
  /// Per-(replica, tick) probabilities of each fault starting.
  double kill_prob = 0.01;
  double stall_prob = 0.02;
  double partition_prob = 0.01;
  double skew_prob = 0.01;
  double corrupt_prob = 0.005;
  /// Kill downtime (restart scheduled this many ticks later, uniform).
  int down_min = 4;
  int down_max = 16;
  int stall_ticks_min = 1;
  int stall_ticks_max = 4;
  double stall_ms_min = 10.0;
  double stall_ms_max = 120.0;
  int partition_min = 2;
  int partition_max = 8;
  double skew_ms_max = 80.0;  ///< jump drawn uniform in [-max, max]
  /// Never take down (kill, partition, or stall) a shard's last healthy
  /// replica. Stalls count: a stall can exceed the router timeout, which
  /// is indistinguishable from a partition to callers. This is what lets
  /// the storm arm gate replica availability at 0.999: chaos breaks
  /// replicas, not the promise behind the replication factor.
  bool spare_last_healthy = true;

  static ChaosSpec Off();
  static ChaosSpec Storm(uint64_t seed);
};

/// Seeded, deterministic fault scheduler. Step(tick) must be called with
/// strictly increasing ticks; equal (spec, shards, replicas) schedules
/// emit bit-identical event streams. The scheduler tracks its own view of
/// which replicas it has taken down so kill events always pair with a
/// later restart and `spare_last_healthy` can hold.
class ChaosScheduler {
 public:
  ChaosScheduler(ChaosSpec spec, int num_shards, int replicas_per_shard);

  /// Events to apply at `tick`, in deterministic order.
  std::vector<ChaosEvent> Step(long tick);

  struct Stats {
    uint64_t kills = 0;
    uint64_t restarts = 0;
    uint64_t stalls = 0;
    uint64_t partitions = 0;
    uint64_t skews = 0;
    uint64_t corruptions = 0;
    uint64_t spared = 0;  ///< kills/partitions withheld by the guard
  };
  const Stats& stats() const { return stats_; }
  const ChaosSpec& spec() const { return spec_; }

 private:
  struct ReplicaState {
    long down_until = -1;         ///< killed through this tick (exclusive)
    long unreachable_until = -1;  ///< partitioned through this tick
    long stalled_until = -1;      ///< stalled through this tick
  };
  ReplicaState& At(int shard, int replica);
  /// Healthy-and-reachable replicas of `shard` in the scheduler's model
  /// (not down, not partitioned, not stalled).
  int HealthyCount(int shard, long tick);

  ChaosSpec spec_;
  int num_shards_;
  int replicas_per_shard_;
  apots::Rng rng_;
  std::vector<ReplicaState> states_;
  std::vector<ChaosEvent> pending_restarts_;  ///< sorted by tick
  Stats stats_;
};

/// Applies scheduled events to a ShardedService's admin surface. Corrupt
/// events compose the full drill: corrupt the newest checkpoint, kill the
/// replica, and let the paired restart exercise the fall-back-a-generation
/// recovery path mid-serve.
class ChaosDriver {
 public:
  /// Both borrowed; must outlive the driver.
  ChaosDriver(apots::serve::ShardedService* service,
              ChaosScheduler* scheduler);

  /// Draws and applies this tick's events. Call once per tick *before*
  /// ShardedService::RunTick. Returns the number of events applied.
  int Step(long tick);

  struct Stats {
    uint64_t applied = 0;
    uint64_t rejected = 0;  ///< admin call refused (e.g. already dead)
  };
  const Stats& stats() const { return stats_; }

 private:
  apots::serve::ShardedService* service_;  // not owned
  ChaosScheduler* scheduler_;              // not owned
  Stats stats_;
};

}  // namespace apots::chaos

#endif  // APOTS_CHAOS_CHAOS_H_
