#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/json_escape.h"

namespace apots::obs {

std::atomic<bool> TraceRecorder::g_enabled{false};

namespace {

/// SplitMix64 — the same mixer the repo's Rng uses for seeding; here it
/// turns (seed, thread index, sequence) into well-spread span ids.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-thread nesting depth; maintained only while tracing is enabled.
thread_local int32_t tls_depth = 0;

/// Cache of the last (recorder, buffer) pair this thread resolved.
/// Recorder instance ids are never reused, so a stale cache entry can
/// only miss, never alias a destroyed recorder's buffer.
struct TlsCache {
  uint64_t recorder_id = 0;
  void* buffer = nullptr;
};
thread_local TlsCache tls_cache;

std::atomic<uint64_t> g_next_recorder_id{1};

/// Never-reused identity for the calling thread. The OS recycles
/// std::thread::id values after a thread exits, so buffer ownership keyed
/// on them would let a new thread silently adopt a dead thread's buffer;
/// a monotonically assigned thread_local token cannot be handed down.
uint64_t ThisThreadToken() {
  static std::atomic<uint64_t> next_token{1};
  thread_local const uint64_t token =
      next_token.fetch_add(1, std::memory_order_relaxed);
  return token;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceRecorder::TraceRecorder()
    : instance_id_(g_next_recorder_id.fetch_add(1)) {}

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Enable(TraceOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  seed_.store(options.seed, std::memory_order_relaxed);
  capacity_.store(std::max<size_t>(1, options.events_per_thread),
                  std::memory_order_relaxed);
  epoch_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  // Bump the generation BEFORE clearing: an in-flight span from the old
  // epoch either lands before its buffer is cleared (wiped here) or after
  // (its buffer lock then makes the new generation visible and Emit drops
  // it). Either way the fresh trace stays clean.
  generation_.fetch_add(1, std::memory_order_relaxed);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->ring.clear();
    buffer->head = 0;
    buffer->next_seq = 0;
    buffer->written = 0;
  }
  g_enabled.store(true, std::memory_order_release);
}

void TraceRecorder::Disable() {
  g_enabled.store(false, std::memory_order_release);
}

int64_t TraceRecorder::NowNs() const {
  // A span racing an Enable may observe a pre-epoch timestamp; Emit
  // clamps it to zero rather than rejecting the event.
  return SteadyNowNs() - epoch_ns_.load(std::memory_order_relaxed);
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  if (tls_cache.recorder_id == instance_id_ &&
      tls_cache.buffer != nullptr) {
    return static_cast<ThreadBuffer*>(tls_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t me = ThisThreadToken();
  for (auto& buffer : buffers_) {
    if (buffer->owner_token == me) {
      tls_cache = {instance_id_, buffer.get()};
      return buffer.get();
    }
  }
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<uint32_t>(buffers_.size());
  buffer->owner_token = me;
  buffer->ring.reserve(options_.events_per_thread);
  buffers_.push_back(std::move(buffer));
  tls_cache = {instance_id_, buffers_.back().get()};
  return buffers_.back().get();
}

void TraceRecorder::Emit(const char* name, int64_t start_ns, int64_t dur_ns,
                         int32_t depth) {
  Emit(name, start_ns, dur_ns, depth, generation());
}

void TraceRecorder::Emit(const char* name, int64_t start_ns, int64_t dur_ns,
                         int32_t depth, uint64_t generation) {
  if (!enabled()) return;
  ThreadBuffer* buffer = BufferForThisThread();
  const size_t capacity = capacity_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(buffer->mu);
  // Checked under the buffer lock: Enable bumps the generation before it
  // clears this buffer, so a span from a previous epoch is either wiped
  // by the clear or rejected here — never recorded into the new trace.
  if (generation != generation_.load(std::memory_order_relaxed)) return;
  TraceEvent event;
  event.name = name;
  event.tid = buffer->tid;
  event.depth = depth;
  event.start_ns = std::max<int64_t>(0, start_ns);
  event.dur_ns = std::max<int64_t>(0, dur_ns);
  event.id = Mix64(seed_.load(std::memory_order_relaxed) ^
                   (static_cast<uint64_t>(buffer->tid) << 32) ^
                   buffer->next_seq);
  ++buffer->next_seq;
  ++buffer->written;
  if (buffer->ring.size() < capacity) {
    buffer->ring.push_back(event);
  } else {
    buffer->ring[buffer->head] = event;
    buffer->head = (buffer->head + 1) % capacity;
  }
}

size_t TraceRecorder::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += buffer->ring.size();
  }
  return total;
}

uint64_t TraceRecorder::DroppedEvents() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    dropped += buffer->written - buffer->ring.size();
  }
  return dropped;
}

std::vector<TraceEvent> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    // Oldest-first: once the ring has wrapped (lifetime writes exceed
    // retained events) the oldest retained event sits at head.
    const bool wrapped = buffer->written > buffer->ring.size();
    for (size_t i = 0; i < buffer->ring.size(); ++i) {
      const size_t idx =
          wrapped ? (buffer->head + i) % buffer->ring.size() : i;
      events.push_back(buffer->ring[idx]);
    }
  }
  return events;
}

std::string TraceRecorder::ToJson() const {
  const std::vector<TraceEvent> events = Snapshot();
  const uint64_t dropped = DroppedEvents();
  std::ostringstream out;
  out << "{\n  \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& event = events[i];
    // Only the bounded numeric fields go through fixed buffers; the name
    // is streamed, so arbitrarily long span names cannot truncate the
    // object mid-brace.
    char num[64];
    out << (i == 0 ? "\n    " : ",\n    ") << "{\"name\": \""
        << EscapeJson(event.name)
        << "\", \"cat\": \"apots\", \"ph\": \"X\", \"ts\": ";
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(event.start_ns) / 1e3);
    out << num << ", \"dur\": ";
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(event.dur_ns) / 1e3);
    out << num << ", \"pid\": 1, \"tid\": " << event.tid
        << ", \"args\": {\"id\": \"";
    std::snprintf(num, sizeof(num), "%016" PRIx64, event.id);
    out << num << "\", \"depth\": " << event.depth << "}}";
  }
  out << (events.empty() ? "" : "\n  ") << "],\n"
      << "  \"displayTimeUnit\": \"ms\",\n"
      << "  \"otherData\": {\"dropped_events\": " << dropped
      << ", \"seed\": " << seed_.load(std::memory_order_relaxed)
      << "}\n}\n";
  return out.str();
}

bool TraceRecorder::WriteJson(const std::string& path) const {
  const std::filesystem::path out_path(path);
  std::error_code ec;
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

void TraceSpan::Begin(const char* name) {
  TraceRecorder& recorder = TraceRecorder::Default();
  name_ = name;
  depth_ = tls_depth++;
  generation_ = recorder.generation();
  start_ns_ = recorder.NowNs();
}

void TraceSpan::End() {
  --tls_depth;
  TraceRecorder& recorder = TraceRecorder::Default();
  recorder.Emit(name_, start_ns_,
                recorder.NowNs() - start_ns_, depth_, generation_);
}

}  // namespace apots::obs
