#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/json_escape.h"

namespace apots::obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Formats a double the way the perf JSON writers do: shortest
/// round-trippable representation is overkill, %.17g is noisy — %.6g
/// keeps files diffable while far exceeding bucket resolution.
std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Defends against degenerate bucket layouts: min <= 0 (or NaN) would
/// make the bound-building loop spin forever (0 * growth == 0) or grow
/// bounds_ without limit, and growth <= 1 would never reach max. The
/// negated comparisons also route NaNs to the fallback values.
HistogramOptions Sanitize(HistogramOptions options) {
  if (!(options.min > 0.0)) options.min = 1e-9;
  if (!(options.max >= options.min)) options.max = options.min;
  if (!(options.growth >= 1.0001)) options.growth = 1.0001;
  return options;
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

Histogram::Histogram(HistogramOptions options)
    : options_(Sanitize(options)) {
  double bound = options_.min;
  bounds_.push_back(bound);  // underflow bucket: [0, min]
  while (bound < options_.max) {
    bound *= options_.growth;
    bounds_.push_back(std::min(bound, options_.max));
  }
  // Overflow bucket (max, +inf); Percentile clamps it to max.
  bounds_.push_back(std::numeric_limits<double>::infinity());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size());
  for (size_t i = 0; i < bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

size_t Histogram::BucketIndex(double value) const {
  // First bucket whose upper bound contains `value`. bounds_ is sorted
  // and immutable, so the search is race-free.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return it == bounds_.end() ? bounds_.size() - 1
                             : static_cast<size_t>(it - bounds_.begin());
}

void Histogram::Record(double value) {
  if (!MetricsEnabled()) return;
  if (!std::isfinite(value)) return;
  if (value < 0.0) value = 0.0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double observed = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(observed, observed + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::Percentile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  // Snapshot the cells once so the rank and the walk agree even while
  // writers keep recording.
  std::vector<uint64_t> counts(bounds_.size());
  uint64_t total = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (cumulative + counts[i] >= rank) {
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi =
          std::isinf(bounds_[i]) ? options_.max : bounds_[i];
      const double frac = static_cast<double>(rank - cumulative) /
                          static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    cumulative += counts[i];
  }
  return options_.max;  // unreachable unless a writer raced past us
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.count = count();
  snap.sum = sum();
  snap.mean = snap.count == 0
                  ? 0.0
                  : snap.sum / static_cast<double>(snap.count);
  snap.p50 = Percentile(0.50);
  snap.p95 = Percentile(0.95);
  snap.p99 = Percentile(0.99);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i < bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         HistogramOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": " << FormatDouble(gauge->value());
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->TakeSnapshot();
    out << (first ? "\n" : ",\n") << "    \"" << EscapeJson(name)
        << "\": {\"count\": " << snap.count
        << ", \"sum\": " << FormatDouble(snap.sum)
        << ", \"mean\": " << FormatDouble(snap.mean)
        << ", \"p50\": " << FormatDouble(snap.p50)
        << ", \"p95\": " << FormatDouble(snap.p95)
        << ", \"p99\": " << FormatDouble(snap.p99) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

bool MetricsRegistry::WriteJson(const std::string& path) const {
  const std::filesystem::path out_path(path);
  std::error_code ec;
  if (out_path.has_parent_path()) {
    std::filesystem::create_directories(out_path.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) return false;
  out << ToJson();
  return static_cast<bool>(out);
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

size_t MetricsRegistry::num_instruments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace apots::obs
