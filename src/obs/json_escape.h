#ifndef APOTS_OBS_JSON_ESCAPE_H_
#define APOTS_OBS_JSON_ESCAPE_H_

#include <cstdio>
#include <string>
#include <string_view>

namespace apots::obs {

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes, and every control character below 0x20 (named escapes for
/// the common ones, \u00XX otherwise). Shared by the trace and metrics
/// JSON writers so span names and metric names can never produce an
/// invalid document.
inline std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace apots::obs

#endif  // APOTS_OBS_JSON_ESCAPE_H_
