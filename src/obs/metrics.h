#ifndef APOTS_OBS_METRICS_H_
#define APOTS_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace apots::obs {

/// Process-wide kill switch for the metric write paths. Defaults to on:
/// every instrument is an atomic relaxed add, cheap enough to leave
/// enabled in production (bench/obs_overhead gates the cost at < 2% of
/// the batched inference path). Disabling turns every Add/Set/Record into
/// a single relaxed load + branch; the registry and its values survive so
/// re-enabling resumes counting where it left off.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Monotonic event counter. Add is wait-free (one relaxed fetch_add);
/// value() is a relaxed load, so a reader racing writers sees some valid
/// intermediate total — never a torn value.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (loss, watermark lag, queue
/// depth). Set/value are single atomic stores/loads.
class Gauge {
 public:
  void Set(double v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Bucket layout of a Histogram: log-spaced upper bounds covering
/// [min, max] with `growth` ratio between adjacent bounds, plus an
/// underflow bucket [0, min] and an overflow bucket (max, +inf). The
/// defaults suit latencies in milliseconds — 1us to 60s at ~5% bucket
/// width, 270-odd buckets — and bound the percentile quantization error
/// at `growth - 1` relative. Degenerate layouts are sanitized at
/// construction (min clamped positive, max raised to min, growth raised
/// to 1.0001) so no option combination can hang or exhaust memory.
struct HistogramOptions {
  double min = 1e-3;
  double max = 60e3;
  double growth = 1.05;
};

/// Fixed-bucket latency histogram with lock-free recording. Record is a
/// branchless bucket search (binary, over an immutable bounds table) plus
/// one relaxed fetch_add; no allocation ever happens after construction,
/// so the hot path is safe inside parallel regions. Percentiles are
/// estimated by linear interpolation inside the bucket that contains the
/// requested rank — the single definition every bench and serving report
/// shares (see DESIGN.md §12). Readers may snapshot while writers record:
/// all cells are relaxed atomics, so a concurrent snapshot is a valid
/// (if slightly stale) set of counts.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;

  /// Rank definition: for q in [0, 1] and n recorded samples, the value
  /// at rank ceil(q * n) (1-based), linearly interpolated between the
  /// containing bucket's bounds. Empty histogram -> 0.
  double Percentile(double q) const;

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Snapshot TakeSnapshot() const;

  void Reset();

  const HistogramOptions& options() const { return options_; }
  size_t num_buckets() const { return bounds_.size(); }

 private:
  /// Index of the bucket that owns `value` (0 = underflow, last =
  /// overflow).
  size_t BucketIndex(double value) const;

  const HistogramOptions options_;
  /// Upper bound of bucket i; bucket buckets_.size()-1 is the overflow
  /// bucket with bound +inf. Immutable after construction.
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  /// CAS-accumulated so pre-C++20-fetch_add toolchains stay lock-free.
  std::atomic<double> sum_{0.0};
};

/// Wall-clock scope timer that records elapsed milliseconds into a
/// Histogram at scope exit. The enabled check happens once at
/// construction; when metrics are off neither clock is read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(MetricsEnabled() ? &histogram : nullptr) {
    if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (histogram_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(
        std::chrono::duration<double, std::milli>(elapsed).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Name -> instrument directory. Instruments are registered once (first
/// GetX call wins; subsequent calls return the same node, so handles may
/// be cached in function-local statics) and live as long as the registry:
/// the hot path touches only the returned reference, never the registry
/// lock. Snapshots serialize deterministically — std::map iteration
/// yields names in sorted order.
class MetricsRegistry {
 public:
  /// The process-wide registry every built-in instrument registers with.
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name,
                          HistogramOptions options = {});

  /// Deterministic JSON document: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, p50, p95, p99}}}, keys
  /// sorted. Safe to call while writers are recording.
  std::string ToJson() const;

  /// Writes ToJson() to `path`, creating parent directories. Returns
  /// false when the file cannot be written.
  bool WriteJson(const std::string& path) const;

  /// Zeroes every registered instrument (registrations survive, so cached
  /// handles stay valid). For benches and tests that isolate runs.
  void ResetValues();

  size_t num_instruments() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace apots::obs

#endif  // APOTS_OBS_METRICS_H_
