#ifndef APOTS_OBS_TRACE_H_
#define APOTS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace apots::obs {

/// One completed span, Chrome trace_event "X" phase. `name` must point at
/// static storage (string literals at the instrumentation sites) — the
/// recorder stores the pointer, never a copy, so recording allocates
/// nothing.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t id = 0;       ///< seeded-deterministic span id
  uint32_t tid = 0;      ///< recorder-assigned thread index
  int32_t depth = 0;     ///< nesting depth on the recording thread
  int64_t start_ns = 0;  ///< nanoseconds since Enable()
  int64_t dur_ns = 0;
};

struct TraceOptions {
  /// Seed mixed into every span id, so two runs with the same seed and
  /// the same per-thread span sequence emit identical ids.
  uint64_t seed = 1;
  /// Ring capacity per recording thread; the newest events win when a
  /// thread overflows (dropped count is reported in the JSON metadata).
  size_t events_per_thread = 1 << 14;
};

/// Per-thread ring-buffer trace recorder emitting Chrome trace_event
/// JSON (load the file in chrome://tracing or https://ui.perfetto.dev).
///
/// Disabled (the default) it is zero-cost by construction: TraceSpan's
/// constructor reads one relaxed atomic and stops — no clock read, no
/// allocation, no stores (tests pin the no-allocation claim down with an
/// operator-new counter). Enabled, each span costs two steady_clock
/// reads and one write into the calling thread's ring buffer behind an
/// uncontended per-thread mutex; buffers are only merged at WriteJson
/// time. Ids are deterministic per (thread index, span sequence, seed) —
/// thread indices follow first-record order, which is stable for
/// single-threaded sections and documented best-effort under races.
class TraceRecorder {
 public:
  static TraceRecorder& Default();

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Clears all buffers, re-arms the epoch clock, and starts recording.
  void Enable(TraceOptions options = {});
  void Disable();

  static bool enabled() {
    return g_enabled.load(std::memory_order_relaxed);
  }

  /// Events currently retained across all thread buffers.
  size_t EventCount() const;
  /// Events overwritten by ring wrap-around since Enable().
  uint64_t DroppedEvents() const;

  /// Copies every retained event out, oldest-first per thread. Intended
  /// for tests; WriteJson is the production exit.
  std::vector<TraceEvent> Snapshot() const;

  /// Chrome trace_event JSON: {"traceEvents": [...], "displayTimeUnit":
  /// "ms", "otherData": {...}}. Returns false when the file cannot be
  /// written. Safe while recording (buffers lock individually).
  bool WriteJson(const std::string& path) const;
  std::string ToJson() const;

  /// Internal: called by TraceSpan's destructor. The `generation` is the
  /// value of generation() captured when the span began; the event is
  /// dropped if tracing was disabled or re-enabled since (a stale span
  /// must not pollute a freshly started trace). The convenience overload
  /// stamps the current generation.
  void Emit(const char* name, int64_t start_ns, int64_t dur_ns,
            int32_t depth, uint64_t generation);
  void Emit(const char* name, int64_t start_ns, int64_t dur_ns,
            int32_t depth);

  /// Nanoseconds since Enable() on the recorder's monotonic epoch.
  int64_t NowNs() const;

  /// Bumped by every Enable(); spans stamp it at Begin so Emit can drop
  /// events that straddle a Disable()/Enable() boundary.
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    /// Never-reused per-thread token (see ThisThreadToken in trace.cc);
    /// set once at registration, under mu_. OS thread ids are recycled
    /// after a thread exits, so identity has to come from a token a dead
    /// thread can never hand down.
    uint64_t owner_token = 0;
    uint32_t tid = 0;
    uint64_t next_seq = 0;  ///< feeds the deterministic span id
    uint64_t written = 0;   ///< lifetime events, for the drop count
    size_t head = 0;
    std::vector<TraceEvent> ring;
  };

  ThreadBuffer* BufferForThisThread();

  static std::atomic<bool> g_enabled;

  /// Never-reused instance id keying the per-thread buffer cache, so a
  /// stale cache entry for a destroyed recorder can only miss.
  const uint64_t instance_id_;

  mutable std::mutex mu_;
  TraceOptions options_;  ///< written under mu_; hot-path copies below
  /// Relaxed-read copies of the options the hot path needs, so Emit never
  /// takes the registry lock and never races Enable.
  std::atomic<uint64_t> seed_{1};
  std::atomic<size_t> capacity_{1 << 14};
  /// Absolute steady_clock nanoseconds at Enable() time.
  std::atomic<int64_t> epoch_ns_{0};
  std::atomic<uint64_t> generation_{0};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: times the enclosing scope and emits one TraceEvent on the
/// recording thread. `name` must be a string literal. When tracing is
/// disabled construction and destruction do nothing measurable.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!TraceRecorder::enabled()) return;
    Begin(name);
  }
  ~TraceSpan() {
    if (name_ != nullptr) End();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void Begin(const char* name);
  void End();

  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  int32_t depth_ = 0;
  uint64_t generation_ = 0;  ///< recorder generation at Begin
};

}  // namespace apots::obs

#endif  // APOTS_OBS_TRACE_H_
