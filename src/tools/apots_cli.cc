// apots_cli — command-line front end for the library, the entry point a
// downstream user would script against:
//
//   apots_cli generate --out dataset.csv [--days N] [--roads N] [--seed S]
//   apots_cli train    --data dataset.csv --model out.bin
//                      [--predictor F|L|C|H] [--adversarial 0|1]
//                      [--epochs N] [--divisor N]
//   apots_cli evaluate --data dataset.csv --model out.bin
//                      [--predictor F|L|C|H] [--adversarial 0|1]
//                      [--divisor N]
//
// `train` fits on the day-blocked 80% split and reports test metrics;
// `evaluate` reloads saved weights and reproduces them.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/apots_model.h"
#include "data/windowing.h"
#include "eval/experiment.h"
#include "metrics/metrics.h"
#include "traffic/dataset_generator.h"
#include "util/csv.h"
#include "util/string_util.h"

namespace {

using namespace apots;

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (StartsWith(key, "--")) key = key.substr(2);
    flags[key] = argv[i + 1];
  }
  return flags;
}

std::string Flag(const std::map<std::string, std::string>& flags,
                 const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it != flags.end() ? it->second : fallback;
}

core::PredictorType ParsePredictor(const std::string& name) {
  if (name == "L") return core::PredictorType::kLstm;
  if (name == "C") return core::PredictorType::kCnn;
  if (name == "H") return core::PredictorType::kHybrid;
  return core::PredictorType::kFc;
}

int Generate(const std::map<std::string, std::string>& flags) {
  const std::string out = Flag(flags, "out", "dataset.csv");
  traffic::DatasetSpec spec;
  int64_t value = 0;
  if (ParseInt64(Flag(flags, "days", ""), &value)) {
    spec.num_days = static_cast<int>(value);
    spec.hyundai_calendar = spec.num_days == 122;
  }
  if (ParseInt64(Flag(flags, "roads", ""), &value)) {
    spec.num_roads = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "seed", ""), &value)) {
    spec.seed = static_cast<uint64_t>(value);
  }
  const traffic::TrafficDataset dataset = traffic::GenerateDataset(spec);
  const Status status = dataset.WriteCsv(out);
  if (!status.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d roads x %ld intervals (%d days), %zu incidents\n",
              out.c_str(), dataset.num_roads(), dataset.num_intervals(),
              dataset.num_days(), dataset.incident_log().size());
  return 0;
}

// Shared setup for train/evaluate.
struct Session {
  traffic::TrafficDataset dataset;
  core::ApotsConfig config;
  data::SampleSplit split;
};

int LoadSession(const std::map<std::string, std::string>& flags,
                Session* session) {
  const std::string data_path = Flag(flags, "data", "");
  if (data_path.empty()) {
    std::fprintf(stderr, "--data is required\n");
    return 1;
  }
  // Day count must be known to rebuild the calendar: probe with a generic
  // calendar sized from the CSV row count at 288 intervals/day.
  auto probe = apots::ReadCsv(data_path);
  if (!probe.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", data_path.c_str(),
                 probe.status().ToString().c_str());
    return 1;
  }
  const int days = static_cast<int>(probe.value().rows.size() / 288);
  traffic::Calendar calendar =
      days == 122 ? traffic::Calendar::HyundaiPeriod2018()
                  : traffic::Calendar(days, traffic::Weekday::kSunday, {});
  auto dataset = traffic::TrafficDataset::ReadCsv(data_path, calendar);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot parse %s: %s\n", data_path.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  session->dataset = std::move(dataset).value();

  int64_t value = 0;
  size_t divisor = 8;
  if (ParseInt64(Flag(flags, "divisor", ""), &value)) {
    divisor = static_cast<size_t>(value);
  }
  const core::PredictorType type =
      ParsePredictor(Flag(flags, "predictor", "F"));
  session->config.predictor =
      divisor <= 1 ? core::PredictorHparams::Paper(type)
                   : core::PredictorHparams::Scaled(type, divisor);
  session->config.discriminator = core::DiscriminatorHparams::Scaled(
      std::max<size_t>(1, divisor / 4));
  session->config.features = data::FeatureConfig::Both();
  session->config.features.num_adjacent =
      (session->dataset.num_roads() - 1) / 2;
  session->config.features.beta = 3;
  session->config.training.adversarial =
      Flag(flags, "adversarial", "0") == "1";
  session->config.training.adv_weight = 0.05f;
  if (ParseInt64(Flag(flags, "epochs", ""), &value)) {
    session->config.training.epochs = static_cast<int>(value);
  }
  session->split = data::MakeSplit(session->dataset, 12, 3, 0.2,
                                   data::SplitStrategy::kBlockedByDay, 42);
  return 0;
}

void Report(core::ApotsModel* model, const std::vector<long>& anchors) {
  const auto predictions = model->PredictKmh(anchors);
  const auto truths = model->TrueKmh(anchors);
  const auto metrics = metrics::Compute(predictions, truths);
  std::printf("test (%zu anchors): %s\n", anchors.size(),
              metrics.ToString().c_str());
}

int Train(const std::map<std::string, std::string>& flags) {
  Session session;
  if (int rc = LoadSession(flags, &session); rc != 0) return rc;
  core::ApotsModel model(&session.dataset, session.config);
  std::printf("training %s on %zu anchors (%zu weights)...\n",
              session.config.Tag().c_str(), session.split.train.size(),
              model.NumWeights());
  const auto stats = model.Train(session.split.train);
  std::printf("final epoch: mse=%.5f (%.1fs)\n", stats.mse_loss,
              stats.seconds);
  Report(&model, session.split.test);
  const std::string model_path = Flag(flags, "model", "");
  if (!model_path.empty()) {
    const Status status = model.Save(model_path);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved weights to %s\n", model_path.c_str());
  }
  return 0;
}

int Evaluate(const std::map<std::string, std::string>& flags) {
  Session session;
  if (int rc = LoadSession(flags, &session); rc != 0) return rc;
  core::ApotsModel model(&session.dataset, session.config);
  const std::string model_path = Flag(flags, "model", "");
  if (model_path.empty()) {
    std::fprintf(stderr, "--model is required for evaluate\n");
    return 1;
  }
  const Status status = model.Load(model_path);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  Report(&model, session.split.test);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: apots_cli <generate|train|evaluate> [--flag value]\n"
               "  generate --out d.csv [--days N] [--roads N] [--seed S]\n"
               "  train    --data d.csv [--model m.bin] [--predictor F|L|C|H]\n"
               "           [--adversarial 0|1] [--epochs N] [--divisor N]\n"
               "  evaluate --data d.csv --model m.bin [same model flags]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "generate") return Generate(flags);
  if (command == "train") return Train(flags);
  if (command == "evaluate") return Evaluate(flags);
  return Usage();
}
