// apots_cli — command-line front end for the library, the entry point a
// downstream user would script against:
//
//   apots_cli generate --out dataset.csv [--days N] [--roads N] [--seed S]
//   apots_cli train    --data dataset.csv --model out.bin
//                      [--predictor F|L|C|H] [--adversarial 0|1]
//                      [--epochs N] [--divisor N]
//   apots_cli evaluate --data dataset.csv --model out.bin
//                      [--predictor F|L|C|H] [--adversarial 0|1]
//                      [--divisor N]
//   apots_cli robustness --data dataset.csv | --days N --roads N
//                      [--rates 0,0.05,0.15,0.3] [--predictor F|L|C|H]
//                      [--epochs N] [--divisor N] [--fault-seed S]
//                      [--fault-kinds drop,stuck,noise,outage]
//   apots_cli serve    [--days N] [--roads N] [--storm 0|1]
//                      [--deadline-ms MS] [--watchdog-ms MS]
//                      [--checkpoint-dir D] [--checkpoint-every N]
//                      [--kill-at TICK] [--ticks N]
//                      [--shards N] [--replicas R]
//                      [--chaos off|kill,stall,partition,skew,corrupt|all]
//                      [--chaos-seed S]
//                      [--attack 0|1] [--attack-method pgd|spsa]
//                      [--eps-kmh E] [--smooth-kmh S] [--attack-steps N]
//   apots_cli attack   [--days N] [--roads N] [--seed S]
//                      [--predictor F|L|C|H] [--epochs N] [--divisor N]
//                      [--method pgd|spsa] [--eps-kmh E] [--smooth-kmh S]
//                      [--steps N] [--spsa-samples N] [--attack-seed S]
//                      [--defend 0|1] [--defense-rounds N]
//                      [--finetune-epochs N]
//   apots_cli whatif   [--days N] [--roads N] [--seed S] [--anchor A]
//                      [--predictor F|L|C|H] [--epochs N] [--divisor N]
//                      [--contexts "clear-event;rain+10;day=holiday"]
//
// Every model command also accepts --kernel-mode {reference,blocked,simd}
// (process-wide matmul dispatch) and --quantize {off,fp16,int8} (inference
// weight precision); serve and attack print the dispatched kernel and ISA.
//
// `attack` trains a model, perturbs its speed inputs under the
// sensor-plausibility budget (white-box PGD or black-box SPSA), and
// reports clean vs attacked accuracy — with `--defend 1`, also after
// RDAT-style adversarial fine-tuning, re-attacked adaptively.
//
// `serve` simulates online operation: warmup data trains/fits the stack,
// the rest streams through a delivery-fault model (delays, duplicates,
// outages, torn ticks) into the StreamIngestor + ServingSupervisor, which
// degrades per-road through full -> imputed -> historical ->
// last-known-good tiers and can checkpoint + kill + recover mid-stream.
// With --shards/--replicas (or --chaos) it runs the sharded plane
// instead: N shards x R replicas behind the health-checked failover
// router with cross-shard boundary exchange, optionally under the seeded
// chaos scheduler.
//
// `train` fits on the day-blocked 80% split and reports test metrics;
// `evaluate` reloads saved weights and reproduces them. All three data
// commands accept --fault-rate/--fault-seed/--fault-kinds to corrupt the
// loaded dataset with sensor faults (then repair it by imputation) before
// training or evaluating; `robustness` sweeps the fault rate and prints an
// accuracy-vs-fault-rate table.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "attack/attacker.h"
#include "attack/defense.h"
#include "chaos/chaos.h"
#include "core/apots_model.h"
#include "data/context.h"
#include "data/imputation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "data/windowing.h"
#include "eval/experiment.h"
#include "metrics/metrics.h"
#include "serve/harness.h"
#include "serve/sharded_service.h"
#include "tensor/cpu_features.h"
#include "tensor/quant.h"
#include "tensor/tensor_ops.h"
#include "traffic/dataset_generator.h"
#include "traffic/fault_injector.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

using namespace apots;

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (StartsWith(key, "--")) key = key.substr(2);
    flags[key] = argv[i + 1];
  }
  return flags;
}

std::string Flag(const std::map<std::string, std::string>& flags,
                 const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it != flags.end() ? it->second : fallback;
}

core::PredictorType ParsePredictor(const std::string& name) {
  if (name == "L") return core::PredictorType::kLstm;
  if (name == "C") return core::PredictorType::kCnn;
  if (name == "H") return core::PredictorType::kHybrid;
  return core::PredictorType::kFc;
}

// Applies --kernel-mode to the process-wide matmul dispatch switch.
// Unknown values are rejected (after printing the valid set), mirroring
// --fault-kinds. Absent flag keeps the library default (blocked).
bool ApplyKernelModeFlag(const std::map<std::string, std::string>& flags) {
  const std::string name = Flag(flags, "kernel-mode", "");
  if (name.empty()) return true;
  if (name == "reference") {
    tensor::SetKernelMode(tensor::KernelMode::kReference);
  } else if (name == "blocked") {
    tensor::SetKernelMode(tensor::KernelMode::kBlocked);
  } else if (name == "simd") {
    tensor::SetKernelMode(tensor::KernelMode::kSimd);
  } else {
    std::fprintf(stderr,
                 "bad --kernel-mode: %s (valid: reference, blocked, simd)\n",
                 name.c_str());
    return false;
  }
  return true;
}

// Reads --quantize into `mode`; rejects unknown values like --fault-kinds.
bool ParseQuantizeFlag(const std::map<std::string, std::string>& flags,
                       tensor::QuantMode* mode) {
  const std::string name = Flag(flags, "quantize", "off");
  if (name == "off") {
    *mode = tensor::QuantMode::kOff;
  } else if (name == "fp16") {
    *mode = tensor::QuantMode::kFp16;
  } else if (name == "int8") {
    *mode = tensor::QuantMode::kInt8;
  } else {
    std::fprintf(stderr, "bad --quantize: %s (valid: off, fp16, int8)\n",
                 name.c_str());
    return false;
  }
  return true;
}

// One-line dispatch summary: which kernel family the matmuls route
// through, the ISA rung runtime dispatch lands on, and the inference
// weight precision.
void PrintDispatch(tensor::QuantMode quantize) {
  std::printf("kernels: %s (isa %s), quantize %s\n",
              tensor::KernelModeName(tensor::GetKernelMode()),
              tensor::ActiveIsaLabel(), tensor::QuantModeName(quantize));
}

int Generate(const std::map<std::string, std::string>& flags) {
  const std::string out = Flag(flags, "out", "dataset.csv");
  traffic::DatasetSpec spec;
  int64_t value = 0;
  if (ParseInt64(Flag(flags, "days", ""), &value)) {
    spec.num_days = static_cast<int>(value);
    spec.hyundai_calendar = spec.num_days == 122;
  }
  if (ParseInt64(Flag(flags, "roads", ""), &value)) {
    spec.num_roads = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "seed", ""), &value)) {
    spec.seed = static_cast<uint64_t>(value);
  }
  const traffic::TrafficDataset dataset = traffic::GenerateDataset(spec);
  const Status status = dataset.WriteCsv(out);
  if (!status.ok()) {
    std::fprintf(stderr, "generate failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %d roads x %ld intervals (%d days), %zu incidents\n",
              out.c_str(), dataset.num_roads(), dataset.num_intervals(),
              dataset.num_days(), dataset.incident_log().size());
  return 0;
}

// Shared setup for train/evaluate.
struct Session {
  traffic::TrafficDataset dataset;
  core::ApotsConfig config;
  data::SampleSplit split;
  /// Empty unless --fault-rate > 0 injected sensor faults.
  traffic::ValidityMask mask;
};

// Reads --fault-rate/--fault-seed/--fault-kinds into a FaultSpec; returns
// false (after printing) on a malformed kind list.
bool ParseFaultSpec(const std::map<std::string, std::string>& flags,
                    traffic::FaultSpec* spec) {
  double rate = 0.0;
  if (ParseDouble(Flag(flags, "fault-rate", "0"), &rate)) spec->rate = rate;
  int64_t value = 0;
  if (ParseInt64(Flag(flags, "fault-seed", ""), &value)) {
    spec->seed = static_cast<uint64_t>(value);
  }
  const std::string kinds = Flag(flags, "fault-kinds", "all");
  auto parsed = traffic::ParseFaultKinds(kinds);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad --fault-kinds: %s\n",
                 parsed.status().ToString().c_str());
    return false;
  }
  spec->kinds = parsed.value();
  return true;
}

// Corrupts `session->dataset` per `spec`, repairs it by imputation, and
// enables mask-aware fallback. Returns false (after printing) on failure.
bool ApplyFaults(const traffic::FaultSpec& spec, Session* session) {
  traffic::FaultInjector injector(spec);
  auto mask = injector.Inject(&session->dataset);
  if (!mask.ok()) {
    std::fprintf(stderr, "fault injection failed: %s\n",
                 mask.status().ToString().c_str());
    return false;
  }
  session->mask = std::move(mask).value();
  auto report = data::ImputeSpeeds(&session->dataset, session->mask);
  if (!report.ok()) {
    std::fprintf(stderr, "imputation failed: %s\n",
                 report.status().ToString().c_str());
    return false;
  }
  session->config.fallback.enabled = true;
  std::printf("injected %s faults over %.1f%% of cells (seed %llu); "
              "repaired %ld cells (locf=%ld profile=%ld mean=%ld)\n",
              traffic::FaultKindsToString(spec.kinds).c_str(),
              spec.rate * 100.0,
              static_cast<unsigned long long>(spec.seed),
              report.value().cells_invalid, report.value().locf_filled,
              report.value().profile_filled, report.value().mean_filled);
  return true;
}

int LoadSession(const std::map<std::string, std::string>& flags,
                Session* session) {
  const std::string data_path = Flag(flags, "data", "");
  if (data_path.empty()) {
    std::fprintf(stderr, "--data is required\n");
    return 1;
  }
  // Day count must be known to rebuild the calendar: probe with a generic
  // calendar sized from the CSV row count at 288 intervals/day.
  auto probe = apots::ReadCsv(data_path);
  if (!probe.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", data_path.c_str(),
                 probe.status().ToString().c_str());
    return 1;
  }
  const int days = static_cast<int>(probe.value().rows.size() / 288);
  traffic::Calendar calendar =
      days == 122 ? traffic::Calendar::HyundaiPeriod2018()
                  : traffic::Calendar(days, traffic::Weekday::kSunday, {});
  auto dataset = traffic::TrafficDataset::ReadCsv(data_path, calendar);
  if (!dataset.ok()) {
    std::fprintf(stderr, "cannot parse %s: %s\n", data_path.c_str(),
                 dataset.status().ToString().c_str());
    return 1;
  }
  session->dataset = std::move(dataset).value();

  int64_t value = 0;
  size_t divisor = 8;
  if (ParseInt64(Flag(flags, "divisor", ""), &value)) {
    divisor = static_cast<size_t>(value);
  }
  const core::PredictorType type =
      ParsePredictor(Flag(flags, "predictor", "F"));
  session->config.predictor =
      divisor <= 1 ? core::PredictorHparams::Paper(type)
                   : core::PredictorHparams::Scaled(type, divisor);
  session->config.discriminator = core::DiscriminatorHparams::Scaled(
      std::max<size_t>(1, divisor / 4));
  session->config.features = data::FeatureConfig::Both();
  session->config.features.num_adjacent =
      (session->dataset.num_roads() - 1) / 2;
  session->config.features.beta = 3;
  session->config.training.adversarial =
      Flag(flags, "adversarial", "0") == "1";
  session->config.training.adv_weight = 0.05f;
  if (ParseInt64(Flag(flags, "epochs", ""), &value)) {
    session->config.training.epochs = static_cast<int>(value);
  }
  if (!ParseQuantizeFlag(flags, &session->config.inference.quantize)) {
    return 1;
  }
  traffic::FaultSpec fault_spec;
  if (!ParseFaultSpec(flags, &fault_spec)) return 1;
  if (fault_spec.rate > 0.0 && !ApplyFaults(fault_spec, session)) return 1;
  session->split = data::MakeSplit(session->dataset, 12, 3, 0.2,
                                   data::SplitStrategy::kBlockedByDay, 42);
  return 0;
}

void Report(const Session& session, core::ApotsModel* model,
            const std::vector<long>& anchors) {
  const auto predictions = model->PredictKmh(anchors);
  const auto truths = model->TrueKmh(anchors);
  if (session.mask.empty()) {
    const auto metrics = metrics::Compute(predictions, truths);
    std::printf("test (%zu anchors): %s\n", anchors.size(),
                metrics.ToString().c_str());
    return;
  }
  // Fault-fabricated targets are no ground truth: score observed ones only.
  const auto metrics = metrics::ComputeMasked(
      predictions, truths, model->assembler().ObservedTargetMask(anchors));
  std::printf("test (%zu anchors, observed targets only): %s, "
              "%zu fallback predictions\n",
              anchors.size(), metrics.ToString().c_str(),
              model->last_fallback_count());
}

int Train(const std::map<std::string, std::string>& flags) {
  Session session;
  if (int rc = LoadSession(flags, &session); rc != 0) return rc;
  session.config.training.guard.enabled = Flag(flags, "guard", "1") == "1";
  core::ApotsModel model(&session.dataset, session.config);
  if (!session.mask.empty()) model.SetValidityMask(&session.mask);
  std::printf("training %s on %zu anchors (%zu weights)...\n",
              session.config.Tag().c_str(), session.split.train.size(),
              model.NumWeights());
  auto trained = model.TrainGuarded(session.split.train);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  const core::TrainReport& report = trained.value();
  for (const std::string& incident : report.incidents) {
    std::printf("guard: %s\n", incident.c_str());
  }
  std::printf("final epoch: mse=%.5f (%d epochs, %d rollbacks%s)\n",
              report.last.mse_loss, report.epochs_completed,
              report.rollbacks,
              report.stopped_early ? ", stopped early" : "");
  Report(session, &model, session.split.test);
  const std::string model_path = Flag(flags, "model", "");
  if (!model_path.empty()) {
    const Status status = model.Save(model_path);
    if (!status.ok()) {
      std::fprintf(stderr, "save failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved weights to %s\n", model_path.c_str());
  }
  return 0;
}

int Evaluate(const std::map<std::string, std::string>& flags) {
  Session session;
  if (int rc = LoadSession(flags, &session); rc != 0) return rc;
  core::ApotsModel model(&session.dataset, session.config);
  const std::string model_path = Flag(flags, "model", "");
  if (model_path.empty()) {
    std::fprintf(stderr, "--model is required for evaluate\n");
    return 1;
  }
  const Status status = model.Load(model_path);
  if (!status.ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (!session.mask.empty()) model.SetValidityMask(&session.mask);
  Report(session, &model, session.split.test);
  return 0;
}

// Accuracy-vs-fault-rate sweep: trains one model on clean data, then
// re-evaluates the same weights against datasets corrupted at increasing
// fault rates (repaired by imputation, guarded by the fallback).
int Robustness(const std::map<std::string, std::string>& flags) {
  // Validate the sweep flags before the expensive training run.
  if (!Flag(flags, "fault-rate", "").empty()) {
    std::fprintf(stderr,
                 "robustness sweeps --rates; do not pass --fault-rate\n");
    return 1;
  }
  std::vector<double> rates;
  for (const std::string& token :
       Split(Flag(flags, "rates", "0,0.05,0.15,0.3"), ',')) {
    double rate = 0.0;
    if (!ParseDouble(Trim(token), &rate) || rate < 0.0 || rate > 1.0) {
      std::fprintf(stderr, "bad --rates entry: %s\n", token.c_str());
      return 1;
    }
    rates.push_back(rate);
  }
  traffic::FaultSpec base_spec;
  if (!ParseFaultSpec(flags, &base_spec)) return 1;

  Session session;
  traffic::TrafficDataset clean;
  const bool from_file = !Flag(flags, "data", "").empty();
  if (from_file) {
    if (int rc = LoadSession(flags, &session); rc != 0) return rc;
  } else {
    traffic::DatasetSpec spec;
    spec.num_days = 21;
    spec.num_roads = 5;
    spec.hyundai_calendar = false;
    int64_t value = 0;
    if (ParseInt64(Flag(flags, "days", ""), &value)) {
      spec.num_days = static_cast<int>(value);
    }
    if (ParseInt64(Flag(flags, "roads", ""), &value)) {
      spec.num_roads = static_cast<int>(value);
    }
    if (ParseInt64(Flag(flags, "seed", ""), &value)) {
      spec.seed = static_cast<uint64_t>(value);
    }
    session.dataset = traffic::GenerateDataset(spec);
    size_t divisor = 8;
    if (ParseInt64(Flag(flags, "divisor", ""), &value)) {
      divisor = static_cast<size_t>(value);
    }
    const core::PredictorType type =
        ParsePredictor(Flag(flags, "predictor", "H"));
    session.config.predictor =
        divisor <= 1 ? core::PredictorHparams::Paper(type)
                     : core::PredictorHparams::Scaled(type, divisor);
    session.config.discriminator = core::DiscriminatorHparams::Scaled(
        std::max<size_t>(1, divisor / 4));
    session.config.features = data::FeatureConfig::Both();
    session.config.features.num_adjacent =
        (session.dataset.num_roads() - 1) / 2;
    session.config.features.beta = 3;
    session.config.training.adversarial =
        Flag(flags, "adversarial", "0") == "1";
    session.config.training.adv_weight = 0.05f;
    if (ParseInt64(Flag(flags, "epochs", ""), &value)) {
      session.config.training.epochs = static_cast<int>(value);
    }
    if (!ParseQuantizeFlag(flags, &session.config.inference.quantize)) {
      return 1;
    }
    session.split = data::MakeSplit(session.dataset, 12, 3, 0.2,
                                    data::SplitStrategy::kBlockedByDay, 42);
  }
  clean = session.dataset;  // pristine copy: corruption source + truth

  session.config.training.guard.enabled = true;
  core::ApotsModel model(&session.dataset, session.config);
  std::printf("training %s on %zu anchors (%zu weights)...\n",
              session.config.Tag().c_str(), session.split.train.size(),
              model.NumWeights());
  auto trained = model.TrainGuarded(session.split.train);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }

  const int target = model.assembler().target_road();
  const int beta = model.assembler().beta();
  TablePrinter table({"fault rate", "valid", "MAE", "RMSE", "MAPE",
                      "fallback", "scored"});
  for (double rate : rates) {
    traffic::TrafficDataset faulted = clean;
    traffic::FaultSpec spec = base_spec;
    spec.rate = rate;
    traffic::FaultInjector injector(spec);
    auto mask_result = injector.Inject(&faulted);
    if (!mask_result.ok()) {
      std::fprintf(stderr, "injection at rate %.2f failed: %s\n", rate,
                   mask_result.status().ToString().c_str());
      return 1;
    }
    traffic::ValidityMask mask = std::move(mask_result).value();
    if (rate > 0.0) {
      auto repair = data::ImputeSpeeds(&faulted, mask);
      if (!repair.ok()) {
        std::fprintf(stderr, "imputation at rate %.2f failed: %s\n", rate,
                     repair.status().ToString().c_str());
        return 1;
      }
    }
    core::ApotsConfig eval_config = session.config;
    eval_config.fallback.enabled = true;
    core::ApotsModel eval_model(&faulted, eval_config);
    if (const Status st = eval_model.CopyWeightsFrom(model); !st.ok()) {
      std::fprintf(stderr, "weight transfer failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    eval_model.SetValidityMask(&mask);
    eval_model.FitFallback(session.split.train);
    const auto predictions = eval_model.PredictKmh(session.split.test);
    // Truths come from the pristine copy; score observed targets only,
    // like a deployment that cannot grade itself on fabricated values.
    std::vector<double> truths(session.split.test.size());
    for (size_t i = 0; i < truths.size(); ++i) {
      truths[i] = clean.Speed(target, session.split.test[i] + beta);
    }
    const auto metric_set = metrics::ComputeMasked(
        predictions, truths,
        metrics::ObservedTargetMask(mask, session.split.test, target, beta));
    table.AddRow({StrFormat("%.0f%%", rate * 100.0),
                  StrFormat("%.1f%%", mask.ValidRatio() * 100.0),
                  FormatMetric(metric_set.mae), FormatMetric(metric_set.rmse),
                  StrFormat("%.2f%%", metric_set.mape),
                  StrFormat("%zu", eval_model.last_fallback_count()),
                  StrFormat("%zu", metric_set.count)});
  }
  table.Print();
  return 0;
}

// Reads the shared attack flags into an AttackConfig. `steps_flag` names
// the PGD/SPSA iteration flag ("steps" for the attack command,
// "attack-steps" for serve, which already uses --steps-adjacent names).
attack::AttackConfig ParseAttackConfig(
    const std::map<std::string, std::string>& flags,
    const std::string& steps_flag) {
  attack::AttackConfig config;
  double real = 0.0;
  int64_t value = 0;
  if (ParseDouble(Flag(flags, "eps-kmh", ""), &real)) {
    config.budget.epsilon_kmh = static_cast<float>(real);
  }
  if (ParseDouble(Flag(flags, "smooth-kmh", ""), &real)) {
    config.budget.smooth_kmh = static_cast<float>(real);
  }
  if (ParseInt64(Flag(flags, steps_flag, ""), &value) && value > 0) {
    config.steps = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "spsa-samples", ""), &value) && value > 0) {
    config.spsa_samples = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "attack-seed", ""), &value)) {
    config.seed = static_cast<uint64_t>(value);
  }
  return config;
}

// Adversarial attack/defense demo: train, attack the speed matrix under
// the plausibility budget, optionally defend by RDAT-style fine-tuning,
// and report the accuracy at each stage (truths always from clean data).
int Attack(const std::map<std::string, std::string>& flags) {
  traffic::DatasetSpec spec;
  spec.num_days = 14;
  spec.num_roads = 5;
  spec.hyundai_calendar = false;
  int64_t value = 0;
  if (ParseInt64(Flag(flags, "days", ""), &value)) {
    spec.num_days = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "roads", ""), &value)) {
    spec.num_roads = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "seed", ""), &value)) {
    spec.seed = static_cast<uint64_t>(value);
  }
  Session session;
  session.dataset = traffic::GenerateDataset(spec);
  size_t divisor = 8;
  if (ParseInt64(Flag(flags, "divisor", ""), &value) && value > 0) {
    divisor = static_cast<size_t>(value);
  }
  const core::PredictorType type =
      ParsePredictor(Flag(flags, "predictor", "F"));
  session.config.predictor =
      divisor <= 1 ? core::PredictorHparams::Paper(type)
                   : core::PredictorHparams::Scaled(type, divisor);
  session.config.discriminator =
      core::DiscriminatorHparams::Scaled(std::max<size_t>(1, divisor / 4));
  session.config.features = data::FeatureConfig::Both();
  session.config.features.num_adjacent =
      (session.dataset.num_roads() - 1) / 2;
  session.config.features.beta = 3;
  if (ParseInt64(Flag(flags, "epochs", ""), &value)) {
    session.config.training.epochs = static_cast<int>(value);
  }
  session.config.training.guard.enabled = true;
  if (!ParseQuantizeFlag(flags, &session.config.inference.quantize)) return 1;
  session.split = data::MakeSplit(session.dataset, 12, 3, 0.2,
                                  data::SplitStrategy::kBlockedByDay, 42);

  core::ApotsModel model(&session.dataset, session.config);
  PrintDispatch(session.config.inference.quantize);
  std::printf("training %s on %zu anchors (%zu weights)...\n",
              session.config.Tag().c_str(), session.split.train.size(),
              model.NumWeights());
  auto trained = model.TrainGuarded(session.split.train);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }

  const attack::AttackConfig attack_config = ParseAttackConfig(flags, "steps");
  const bool spsa = Flag(flags, "method", "pgd") == "spsa";
  attack::Attacker attacker(attack_config);

  const auto truths = model.TrueKmh(session.split.test);
  const double clean_mae =
      metrics::Compute(model.PredictKmh(session.split.test), truths).mae;

  // MAE of `weights`'s predictions over the test split when its inputs
  // come from `dataset` (targets stay clean truth).
  const auto attacked_mae_of = [&](const traffic::TrafficDataset& dataset,
                                   core::ApotsModel& weights,
                                   double* out) -> bool {
    core::ApotsModel eval_model(&dataset, session.config);
    if (const Status st = eval_model.CopyWeightsFrom(weights); !st.ok()) {
      std::fprintf(stderr, "weight transfer failed: %s\n",
                   st.ToString().c_str());
      return false;
    }
    *out =
        metrics::Compute(eval_model.PredictKmh(session.split.test), truths)
            .mae;
    return true;
  };

  const auto build_plan = [&](core::ApotsModel* victim,
                              attack::AttackStats* stats) {
    return spsa ? attacker.BuildSpsaPlan(victim, session.split.test, 0, stats)
                : attacker.BuildPgdPlan(victim, session.split.test, 0, stats);
  };

  attack::AttackStats stats;
  auto plan = build_plan(&model, &stats);
  if (!plan.ok()) {
    std::fprintf(stderr, "attack failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  traffic::TrafficDataset attacked = session.dataset;
  plan.value().ApplyTo(&attacked, attack_config.budget);
  double attacked_mae = 0.0;
  if (!attacked_mae_of(attacked, model, &attacked_mae)) return 1;

  std::printf(
      "%s attack: eps %.1f km/h, smooth %.1f km/h, %d steps; "
      "max|delta| %.2f, max step %.2f, %ld cells, %llu queries\n",
      spsa ? "spsa" : "pgd", attack_config.budget.epsilon_kmh,
      attack_config.budget.smooth_kmh, attack_config.steps,
      plan.value().MaxAbsDelta(), plan.value().MaxTemporalStep(),
      plan.value().NonzeroCells(),
      static_cast<unsigned long long>(stats.queries));

  TablePrinter table({"arm", "MAE km/h", "vs clean"});
  const auto ratio = [&](double mae) {
    return clean_mae <= 0.0 ? std::string("-")
                            : StrFormat("%.2fx", mae / clean_mae);
  };
  table.AddRow({"clean", FormatMetric(clean_mae), "1.00x"});
  table.AddRow({"attacked", FormatMetric(attacked_mae),
                ratio(attacked_mae)});

  if (Flag(flags, "defend", "0") == "1") {
    attack::DefenseConfig defense_config;
    defense_config.attack = attack_config;
    if (ParseInt64(Flag(flags, "defense-rounds", ""), &value) && value > 0) {
      defense_config.rounds = static_cast<int>(value);
    }
    if (ParseInt64(Flag(flags, "finetune-epochs", ""), &value) &&
        value > 0) {
      defense_config.finetune_epochs = static_cast<int>(value);
    }
    attack::RdatDefense defense(defense_config);
    auto defended = defense.Run(&model, session.split.train);
    if (!defended.ok()) {
      std::fprintf(stderr, "defense failed: %s\n",
                   defended.status().ToString().c_str());
      return 1;
    }
    const double defended_clean_mae =
        metrics::Compute(model.PredictKmh(session.split.test), truths).mae;
    // Transfer arm: the attacker's plan was fixed against the deployed
    // (undefended) weights — the poisoned-feed scenario — and the defense
    // fine-tuned after. This is the recovery the robustness bench gates.
    double defended_transfer_mae = 0.0;
    if (!attacked_mae_of(attacked, model, &defended_transfer_mae)) return 1;
    // Adaptive re-attack: the attacker gets a fresh plan against the
    // defended weights — the honest robustness measure.
    attack::AttackStats defended_stats;
    auto defended_plan = build_plan(&model, &defended_stats);
    if (!defended_plan.ok()) {
      std::fprintf(stderr, "re-attack failed: %s\n",
                   defended_plan.status().ToString().c_str());
      return 1;
    }
    traffic::TrafficDataset reattacked = session.dataset;
    defended_plan.value().ApplyTo(&reattacked, attack_config.budget);
    double defended_attacked_mae = 0.0;
    if (!attacked_mae_of(reattacked, model, &defended_attacked_mae)) {
      return 1;
    }
    table.AddRow({"defended clean", FormatMetric(defended_clean_mae),
                  ratio(defended_clean_mae)});
    table.AddRow({"defended (transfer)", FormatMetric(defended_transfer_mae),
                  ratio(defended_transfer_mae)});
    table.AddRow({"defended (adaptive)", FormatMetric(defended_attacked_mae),
                  ratio(defended_attacked_mae)});
    const double gap = attacked_mae - clean_mae;
    if (gap > 0.0) {
      std::printf("defense recovered %.0f%% of the MAE gap against the "
                  "original plan (%.0f%% under adaptive re-attack; "
                  "%d rounds, %llu attack queries)\n",
                  100.0 * (attacked_mae - defended_transfer_mae) / gap,
                  100.0 * (attacked_mae - defended_attacked_mae) / gap,
                  defense_config.rounds,
                  static_cast<unsigned long long>(
                      defended.value().attack_queries));
    }
  }
  table.Print();
  return 0;
}

// Sharded serving: N shards x R replicas of the supervisor stack behind
// the health-checked router, with cross-shard boundary exchange and an
// optional seeded chaos storm (--chaos kill,stall,partition,skew,corrupt
// or all; off by default).
int ServeSharded(const std::map<std::string, std::string>& flags,
                 int shards, int replicas) {
  serve::ShardedConfig sc;
  traffic::DatasetSpec spec;
  spec.num_days = 7;
  spec.num_roads = 8;
  spec.hyundai_calendar = false;
  int64_t value = 0;
  if (ParseInt64(Flag(flags, "days", ""), &value)) {
    spec.num_days = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "roads", ""), &value)) {
    spec.num_roads = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "seed", ""), &value)) {
    spec.seed = static_cast<uint64_t>(value);
  }
  if (shards > spec.num_roads / 2) {
    std::fprintf(stderr,
                 "bad --shards: %d (valid: 1..%d with --roads %d; each "
                 "shard needs at least two roads)\n",
                 shards, spec.num_roads / 2, spec.num_roads);
    return 1;
  }
  sc.spec = spec;
  sc.num_shards = shards;
  sc.replicas_per_shard = replicas;
  double warmup = 0.5;
  if (ParseDouble(Flag(flags, "warmup", ""), &warmup)) {
    sc.warmup_fraction = warmup;
  }
  sc.predictor = ParsePredictor(Flag(flags, "predictor", "F"));
  if (ParseInt64(Flag(flags, "divisor", ""), &value) && value > 0) {
    sc.width_divisor = static_cast<size_t>(value);
  }
  if (ParseInt64(Flag(flags, "epochs", ""), &value)) {
    sc.train_epochs = static_cast<int>(value);
  }
  uint64_t feed_seed = 99;
  if (ParseInt64(Flag(flags, "feed-seed", ""), &value)) {
    feed_seed = static_cast<uint64_t>(value);
  }
  sc.feed = Flag(flags, "storm", "1") == "1"
                ? serve::FeedFaultSpec::Storm(feed_seed)
                : serve::FeedFaultSpec::Clean();
  double ms = 0.0;
  if (ParseDouble(Flag(flags, "deadline-ms", ""), &ms)) {
    sc.serve.deadline_ms = ms;
  }
  if (ParseDouble(Flag(flags, "watchdog-ms", ""), &ms)) {
    sc.serve.watchdog_timeout_ms = ms;
  }
  if (!ParseQuantizeFlag(flags, &sc.inference.quantize)) return 1;
  sc.checkpoint_root = Flag(flags, "checkpoint-dir", "");
  if (ParseInt64(Flag(flags, "checkpoint-every", ""), &value)) {
    sc.serve.checkpoint_every = value;
  }
  if (ParseInt64(Flag(flags, "anchors-per-tick", ""), &value) && value > 0) {
    sc.anchors_per_tick = static_cast<int>(value);
  }
  long max_ticks = 0;  // 0 = run the whole stream
  if (ParseInt64(Flag(flags, "ticks", ""), &value)) max_ticks = value;

  // --chaos names the fault kinds the seeded scheduler may inject;
  // unknown names are rejected after listing the valid set, matching the
  // --fault-kinds convention.
  unsigned chaos_kinds = 0;
  const std::string chaos_flag = Flag(flags, "chaos", "off");
  if (chaos_flag != "off") {
    auto parsed = chaos::ParseChaosKinds(chaos_flag);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad --chaos: %s (or: off)\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    chaos_kinds = parsed.value();
  }
  uint64_t chaos_seed = 2024;
  if (ParseInt64(Flag(flags, "chaos-seed", ""), &value)) {
    chaos_seed = static_cast<uint64_t>(value);
  }

  serve::ShardedService service(std::move(sc));
  std::unique_ptr<chaos::ChaosScheduler> scheduler;
  std::unique_ptr<chaos::ChaosDriver> driver;
  if (chaos_kinds != 0) {
    chaos::ChaosSpec cs = chaos::ChaosSpec::Storm(chaos_seed);
    cs.kinds = chaos_kinds;
    scheduler = std::make_unique<chaos::ChaosScheduler>(
        cs, service.num_shards(), service.replicas_per_shard());
    driver = std::make_unique<chaos::ChaosDriver>(&service, scheduler.get());
  }

  const int beta = service.config().beta;
  std::printf(
      "serving %d roads x %ld intervals over %d shards x %d replicas, "
      "warmup %ld, %s feed, chaos %s\n",
      spec.num_roads, service.truth().num_intervals(), shards, replicas,
      service.warmup_end(),
      Flag(flags, "storm", "1") == "1" ? "storm" : "clean",
      chaos_kinds == 0 ? "off"
                       : chaos::ChaosKindsToString(chaos_kinds).c_str());
  PrintDispatch(service.config().inference.quantize);

  std::vector<double> abs_err(static_cast<size_t>(shards), 0.0);
  std::vector<uint64_t> err_count(static_cast<size_t>(shards), 0);
  long ticks_run = 0;
  bool more = true;
  while (more) {
    if (driver) driver->Step(service.next_tick());
    more = service.RunTick();
    ++ticks_run;
    const auto& anchors = service.last_anchors();
    for (int s = 0; s < shards; ++s) {
      const int target = service.target_road(s);
      const auto& responses = service.last_responses(s);
      for (size_t i = 0; i < anchors.size(); ++i) {
        abs_err[static_cast<size_t>(s)] +=
            std::abs(responses[i].serve.kmh -
                     service.truth().Speed(target, anchors[i] + beta));
        ++err_count[static_cast<size_t>(s)];
      }
    }
    if (max_ticks > 0 && ticks_run >= max_ticks) break;
  }

  TablePrinter shard_table(
      {"shard", "target", "owned", "boundary", "live", "MAE km/h"});
  for (int s = 0; s < shards; ++s) {
    const auto& owned = service.partition().roads(s);
    int live = 0;
    for (int r = 0; r < replicas; ++r) {
      if (service.ReplicaAlive(s, r)) ++live;
    }
    shard_table.AddRow(
        {StrFormat("%d", s), StrFormat("%d", service.target_road(s)),
         StrFormat("%d..%d", owned.front(), owned.back()),
         StrFormat("%zu", service.partition().boundary(s).size()),
         StrFormat("%d/%d", live, replicas),
         err_count[static_cast<size_t>(s)] == 0
             ? std::string("-")
             : StrFormat("%.2f",
                         abs_err[static_cast<size_t>(s)] /
                             static_cast<double>(
                                 err_count[static_cast<size_t>(s)]))});
  }
  shard_table.Print();

  const serve::ShardedReport report = service.report();
  TablePrinter tier_table({"tier", "served", "share"});
  for (int tier = 0; tier < serve::kNumServeTiers; ++tier) {
    const uint64_t n = report.serve.tier_counts[tier];
    tier_table.AddRow(
        {serve::ServeTierName(static_cast<serve::ServeTier>(tier)),
         StrFormat("%llu", static_cast<unsigned long long>(n)),
         StrFormat("%.1f%%",
                   report.serve.requests == 0
                       ? 0.0
                       : 100.0 * static_cast<double>(n) /
                             static_cast<double>(report.serve.requests))});
  }
  tier_table.Print();
  std::printf(
      "availability %.4f (replica %.4f) over %llu routed anchors; "
      "%llu ladder answers\n",
      report.availability(), report.replica_availability(),
      static_cast<unsigned long long>(report.router.requests),
      static_cast<unsigned long long>(report.router.ladder_answers));
  std::printf(
      "router: %llu attempts, %llu retries, %llu failovers "
      "(p50 %.2fms p99 %.2fms), %llu quarantine skips\n",
      static_cast<unsigned long long>(report.router.attempts),
      static_cast<unsigned long long>(report.router.retries),
      static_cast<unsigned long long>(report.router.failovers),
      report.failover_p50_ms, report.failover_p99_ms,
      static_cast<unsigned long long>(report.router.quarantine_skips));
  std::printf(
      "exchange: %llu snapshots (%llu skipped), %llu records shipped, "
      "%llu epoch-lag serves, %llu stale-epoch full-tier serves\n",
      static_cast<unsigned long long>(report.exchange.snapshots_published),
      static_cast<unsigned long long>(report.exchange.publishes_skipped),
      static_cast<unsigned long long>(report.exchange.records_shipped),
      static_cast<unsigned long long>(report.exchange.epoch_lag_serves),
      static_cast<unsigned long long>(report.exchange.stale_epoch_serves));
  if (scheduler) {
    std::printf(
        "chaos: %llu kills, %llu restarts, %llu stalls, %llu partitions, "
        "%llu clock skews, %llu corruptions; %llu spared, %llu rejected\n",
        static_cast<unsigned long long>(report.kills),
        static_cast<unsigned long long>(report.restarts),
        static_cast<unsigned long long>(report.stalls),
        static_cast<unsigned long long>(report.partitions),
        static_cast<unsigned long long>(report.clock_skews),
        static_cast<unsigned long long>(report.checkpoint_corruptions),
        static_cast<unsigned long long>(scheduler->stats().spared),
        static_cast<unsigned long long>(driver->stats().rejected));
  }
  return 0;
}

// Parses one perturbation token of the --contexts mini-language:
//   clear-event[@B:E]   force the event flag to 0 over [B, E)
//   set-event[@B:E]     force the event flag to 1
//   rain+X / rain-X[@B:E]  add X mm of precipitation (clamped >= 0)
//   day=weekday|holiday|before-holiday|after-holiday|0..3
// Windows default to every interval.
bool ParsePerturbation(const std::string& token,
                       data::ContextPerturbation* p) {
  std::string body = Trim(token);
  if (body.empty()) return false;
  const size_t at = body.find('@');
  if (at != std::string::npos) {
    const auto range = Split(body.substr(at + 1), ':');
    int64_t begin = 0, end = 0;
    if (range.size() != 2 || !ParseInt64(range[0], &begin) ||
        !ParseInt64(range[1], &end)) {
      return false;
    }
    p->begin = begin;
    p->end = end;
    body = body.substr(0, at);
  }
  if (body == "clear-event") {
    p->kind = data::PerturbationKind::kClearEvent;
    return true;
  }
  if (body == "set-event") {
    p->kind = data::PerturbationKind::kSetEvent;
    return true;
  }
  if (StartsWith(body, "rain")) {
    double delta = 0.0;
    if (!ParseDouble(body.substr(4), &delta)) return false;
    p->kind = data::PerturbationKind::kRainDelta;
    p->value = static_cast<float>(delta);
    return true;
  }
  if (StartsWith(body, "day=")) {
    const std::string name = body.substr(4);
    static const char* kNames[] = {"weekday", "holiday", "before-holiday",
                                   "after-holiday"};
    p->kind = data::PerturbationKind::kDayTypeOverride;
    for (int i = 0; i < 4; ++i) {
      if (name == kNames[i]) {
        p->value = static_cast<float>(i);
        return true;
      }
    }
    int64_t index = 0;
    if (ParseInt64(name, &index) && index >= 0 && index <= 3) {
      p->value = static_cast<float>(index);
      return true;
    }
    return false;
  }
  return false;
}

// One context = comma-separated perturbations (applied in order; last
// writer wins on overlap).
bool ParseContextSpec(const std::string& text, data::ContextSpec* spec) {
  for (const std::string& token : Split(text, ',')) {
    data::ContextPerturbation p;
    if (!ParsePerturbation(token, &p)) {
      std::fprintf(stderr,
                   "bad perturbation: %s (valid: clear-event, set-event, "
                   "rain+X, rain-X, day=weekday|holiday|before-holiday|"
                   "after-holiday, each with optional @begin:end)\n",
                   Trim(token).c_str());
      return false;
    }
    spec->perturbations.push_back(p);
  }
  return !spec->perturbations.empty();
}

// Counterfactual what-if fan-out: trains a small model, registers the K
// contexts parsed from --contexts (';'-separated), and answers one
// heterogeneous (anchor, context) batch through the runtime — per-context
// prediction plus delta vs the base context, in one batched forward pass.
int Whatif(const std::map<std::string, std::string>& flags) {
  traffic::DatasetSpec spec;
  spec.num_days = 10;
  spec.num_roads = 5;
  spec.hyundai_calendar = false;
  int64_t value = 0;
  if (ParseInt64(Flag(flags, "days", ""), &value)) {
    spec.num_days = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "roads", ""), &value)) {
    spec.num_roads = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "seed", ""), &value)) {
    spec.seed = static_cast<uint64_t>(value);
  }
  Session session;
  session.dataset = traffic::GenerateDataset(spec);
  size_t divisor = 16;
  if (ParseInt64(Flag(flags, "divisor", ""), &value) && value > 0) {
    divisor = static_cast<size_t>(value);
  }
  const core::PredictorType type =
      ParsePredictor(Flag(flags, "predictor", "F"));
  session.config.predictor =
      divisor <= 1 ? core::PredictorHparams::Paper(type)
                   : core::PredictorHparams::Scaled(type, divisor);
  session.config.features = data::FeatureConfig::Both();
  session.config.features.num_adjacent =
      (session.dataset.num_roads() - 1) / 2;
  session.config.features.beta = 3;
  session.config.training.adversarial = false;
  if (ParseInt64(Flag(flags, "epochs", ""), &value)) {
    session.config.training.epochs = static_cast<int>(value);
  }
  if (!ParseQuantizeFlag(flags, &session.config.inference.quantize)) return 1;
  session.split = data::MakeSplit(session.dataset, 12, 3, 0.2,
                                  data::SplitStrategy::kBlockedByDay, 42);

  core::ApotsModel model(&session.dataset, session.config);
  PrintDispatch(session.config.inference.quantize);
  std::printf("training %s on %zu anchors (%zu weights)...\n",
              session.config.Tag().c_str(), session.split.train.size(),
              model.NumWeights());
  model.Train(session.split.train);

  long anchor = session.split.test.empty()
                    ? 12
                    : session.split.test[session.split.test.size() / 2];
  if (ParseInt64(Flag(flags, "anchor", ""), &value)) anchor = value;

  const std::string contexts_flag =
      Flag(flags, "contexts", "clear-event;set-event;rain+10;day=holiday");
  std::vector<std::string> context_texts;
  for (const std::string& text : Split(contexts_flag, ';')) {
    if (!Trim(text).empty()) context_texts.push_back(Trim(text));
  }
  if (context_texts.empty()) {
    std::fprintf(stderr, "--contexts parsed to zero contexts\n");
    return 1;
  }

  data::ContextTable table;
  for (size_t k = 0; k < context_texts.size(); ++k) {
    data::ContextSpec context;
    if (!ParseContextSpec(context_texts[k], &context)) return 1;
    const Status st = table.Register(k + 1, std::move(context));
    if (!st.ok()) {
      std::fprintf(stderr, "register context %zu failed: %s\n", k + 1,
                   st.ToString().c_str());
      return 1;
    }
  }
  model.SetContextTable(&table);

  // One heterogeneous batch: base first, then every counterfactual of the
  // same anchor — they share every untouched feature column in the cache.
  std::vector<core::WorkItem> items;
  items.push_back({anchor, 0});
  for (size_t k = 0; k < context_texts.size(); ++k) {
    items.push_back({anchor, k + 1});
  }
  const std::vector<double> kmh = model.PredictKmhItems(items);

  const std::vector<double> truth = model.TrueKmh({anchor});
  std::printf("anchor %ld (true %.2f km/h), %zu contexts in one batch\n",
              anchor, truth.empty() ? 0.0 : truth[0], context_texts.size());
  TablePrinter out({"context", "spec", "pred km/h", "delta vs base"});
  out.AddRow({"base", "live stream", FormatMetric(kmh[0]), "-"});
  for (size_t k = 0; k < context_texts.size(); ++k) {
    out.AddRow({StrFormat("%zu", k + 1), context_texts[k],
                FormatMetric(kmh[k + 1]),
                StrFormat("%+.2f", kmh[k + 1] - kmh[0])});
  }
  out.Print();

  const auto stats = model.inference_runtime().feature_cache()->stats();
  std::printf(
      "feature cache: %zu hits, %zu misses (%.0f%% hit rate); "
      "%llu unknown-context items\n",
      stats.hits, stats.misses,
      stats.hits + stats.misses == 0
          ? 0.0
          : 100.0 * static_cast<double>(stats.hits) /
                static_cast<double>(stats.hits + stats.misses),
      static_cast<unsigned long long>(
          model.inference_runtime().unknown_context_items()));
  return 0;
}

// Online-serving simulation: streams a synthetic corridor through the
// delivery-fault model into the supervisor stack and reports per-tier
// volume and accuracy, plus ingestion and checkpoint health.
int Serve(const std::map<std::string, std::string>& flags) {
  // --shards/--replicas/--chaos select the sharded serving plane; the
  // classic single-stack simulation remains the default.
  int64_t value = 0;
  int shards = 1;
  int replicas = 1;
  const std::string shards_flag = Flag(flags, "shards", "");
  if (!shards_flag.empty()) {
    if (!ParseInt64(shards_flag, &value) || value < 1) {
      std::fprintf(stderr, "bad --shards: %s (valid: integer >= 1)\n",
                   shards_flag.c_str());
      return 1;
    }
    shards = static_cast<int>(value);
  }
  const std::string replicas_flag = Flag(flags, "replicas", "");
  if (!replicas_flag.empty()) {
    if (!ParseInt64(replicas_flag, &value) || value < 1) {
      std::fprintf(stderr, "bad --replicas: %s (valid: integer >= 1)\n",
                   replicas_flag.c_str());
      return 1;
    }
    replicas = static_cast<int>(value);
  }
  if (shards > 1 || replicas > 1 || Flag(flags, "chaos", "off") != "off") {
    return ServeSharded(flags, shards, replicas);
  }

  serve::HarnessConfig hc;
  traffic::DatasetSpec spec;
  spec.num_days = 7;
  spec.num_roads = 5;
  spec.hyundai_calendar = false;
  if (ParseInt64(Flag(flags, "days", ""), &value)) {
    spec.num_days = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "roads", ""), &value)) {
    spec.num_roads = static_cast<int>(value);
  }
  if (ParseInt64(Flag(flags, "seed", ""), &value)) {
    spec.seed = static_cast<uint64_t>(value);
  }
  hc.spec = spec;
  double warmup = 0.5;
  if (ParseDouble(Flag(flags, "warmup", ""), &warmup)) {
    hc.warmup_fraction = warmup;
  }
  hc.predictor = ParsePredictor(Flag(flags, "predictor", "F"));
  if (ParseInt64(Flag(flags, "divisor", ""), &value) && value > 0) {
    hc.width_divisor = static_cast<size_t>(value);
  }
  if (ParseInt64(Flag(flags, "epochs", ""), &value)) {
    hc.train_epochs = static_cast<int>(value);
  }
  uint64_t feed_seed = 99;
  if (ParseInt64(Flag(flags, "feed-seed", ""), &value)) {
    feed_seed = static_cast<uint64_t>(value);
  }
  hc.feed = Flag(flags, "storm", "1") == "1"
                ? serve::FeedFaultSpec::Storm(feed_seed)
                : serve::FeedFaultSpec::Clean();
  double ms = 0.0;
  if (ParseDouble(Flag(flags, "deadline-ms", ""), &ms)) {
    hc.serve.deadline_ms = ms;
  }
  if (ParseDouble(Flag(flags, "watchdog-ms", ""), &ms)) {
    hc.serve.watchdog_timeout_ms = ms;
  }
  if (!ParseQuantizeFlag(flags, &hc.inference.quantize)) return 1;
  hc.serve.checkpoint_dir = Flag(flags, "checkpoint-dir", "");
  if (ParseInt64(Flag(flags, "checkpoint-every", ""), &value)) {
    hc.serve.checkpoint_every = value;
  }
  if (ParseInt64(Flag(flags, "anchors-per-tick", ""), &value) && value > 0) {
    hc.anchors_per_tick = static_cast<int>(value);
  }
  long kill_at = 0;  // ticks into the stream; 0 = never
  if (ParseInt64(Flag(flags, "kill-at", ""), &value)) kill_at = value;
  long max_ticks = 0;  // 0 = run the whole stream
  if (ParseInt64(Flag(flags, "ticks", ""), &value)) max_ticks = value;

  const bool attack_on = Flag(flags, "attack", "0") == "1";
  if (attack_on) {
    hc.attack.enabled = true;
    hc.feed.poison = true;
    hc.attack.use_spsa = Flag(flags, "attack-method", "pgd") == "spsa";
    hc.attack.attack = ParseAttackConfig(flags, "attack-steps");
    // A poisoned feed needs trained weights to aim at.
    if (hc.train_epochs <= 0) hc.train_epochs = 2;
  }

  // Front-door mode: tick anchors flow through the concurrent request
  // path (bounded MPSC queue, admission control, coalescing, deadlines)
  // instead of calling the supervisor inline.
  const bool frontend_on = Flag(flags, "frontend", "0") == "1";
  serve::FrontendConfig fc;
  if (ParseInt64(Flag(flags, "frontend-queue", ""), &value) && value > 0) {
    fc.queue_capacity = static_cast<size_t>(value);
  }
  if (ParseInt64(Flag(flags, "frontend-batch", ""), &value) && value > 0) {
    fc.max_batch = static_cast<size_t>(value);
  }
  if (ParseDouble(Flag(flags, "frontend-deadline-ms", ""), &ms)) {
    fc.default_deadline_ms = ms;
  }

  serve::SimulationHarness harness(std::move(hc));
  if (frontend_on) harness.EnableFrontend(fc);
  const int target = harness.target_road();
  const int beta = harness.model().assembler().beta();
  std::printf("serving %d roads x %ld intervals, warmup %ld, %s feed\n",
              spec.num_roads, harness.truth().num_intervals(),
              harness.warmup_end(),
              Flag(flags, "storm", "1") == "1" ? "storm" : "clean");
  PrintDispatch(harness.model().config().inference.quantize);

  double abs_err[serve::kNumServeTiers] = {0, 0, 0, 0};
  uint64_t err_count[serve::kNumServeTiers] = {0, 0, 0, 0};
  long ticks_run = 0;
  bool more = true;
  while (more) {
    more = harness.RunTick();
    ++ticks_run;
    const auto& anchors = harness.last_anchors();
    const auto& responses = harness.last_responses();
    for (size_t i = 0; i < anchors.size(); ++i) {
      const int tier = static_cast<int>(responses[i].tier);
      abs_err[tier] += std::abs(
          responses[i].kmh -
          harness.truth().Speed(target, anchors[i] + beta));
      ++err_count[tier];
    }
    if (kill_at > 0 && ticks_run == kill_at) {
      auto recovered = harness.KillAndRecover(spec.seed + 1);
      if (recovered.ok()) {
        std::printf("killed at tick %ld; recovered generation %llu "
                    "(watermark %ld)%s\n",
                    ticks_run,
                    static_cast<unsigned long long>(
                        recovered.value().generation),
                    harness.ingestor().watermark(),
                    recovered.value().fell_back() ? " after fallback" : "");
      } else {
        std::printf("killed at tick %ld; recovery failed: %s\n", ticks_run,
                    recovered.status().ToString().c_str());
      }
    }
    if (max_ticks > 0 && ticks_run >= max_ticks) break;
  }

  const serve::ServeReport report = harness.report();
  TablePrinter table({"tier", "served", "share", "MAE km/h"});
  for (int tier = 0; tier < serve::kNumServeTiers; ++tier) {
    const uint64_t n = report.tier_counts[tier];
    table.AddRow(
        {serve::ServeTierName(static_cast<serve::ServeTier>(tier)),
         StrFormat("%llu", static_cast<unsigned long long>(n)),
         StrFormat("%.1f%%", report.requests == 0
                                 ? 0.0
                                 : 100.0 * static_cast<double>(n) /
                                       static_cast<double>(report.requests)),
         err_count[tier] == 0
             ? std::string("-")
             : StrFormat("%.2f", abs_err[tier] /
                                     static_cast<double>(err_count[tier]))});
  }
  table.Print();
  const auto& ingest = harness.ingestor().stats();
  const auto& feed = harness.feed().stats();
  std::printf(
      "availability %.4f over %llu requests (%llu failures); "
      "max staleness %ld\n",
      report.availability(),
      static_cast<unsigned long long>(report.requests),
      static_cast<unsigned long long>(report.failures),
      report.max_staleness);
  std::printf(
      "feed: %llu generated, %llu delayed, %llu dup, %llu dropped, "
      "%llu torn ticks\n",
      static_cast<unsigned long long>(feed.generated),
      static_cast<unsigned long long>(feed.delayed),
      static_cast<unsigned long long>(feed.duplicated),
      static_cast<unsigned long long>(feed.dropped),
      static_cast<unsigned long long>(feed.torn_ticks));
  std::printf(
      "ingest: %llu applied (%llu late), %llu dup, %llu rejected, "
      "%llu imputed, %llu cache invalidations\n",
      static_cast<unsigned long long>(ingest.applied),
      static_cast<unsigned long long>(ingest.late),
      static_cast<unsigned long long>(ingest.duplicates),
      static_cast<unsigned long long>(ingest.rejected),
      static_cast<unsigned long long>(ingest.imputed),
      static_cast<unsigned long long>(ingest.cache_invalidations));
  std::printf(
      "protection: %llu deadline misses, %llu degraded, %llu watchdog "
      "trips, %llu checkpoints\n",
      static_cast<unsigned long long>(report.deadline_misses),
      static_cast<unsigned long long>(report.deadline_degraded),
      static_cast<unsigned long long>(report.watchdog_trips),
      static_cast<unsigned long long>(report.checkpoints_written));
  if (frontend_on && harness.frontend() != nullptr) {
    const serve::FrontendStats fs = harness.frontend()->stats();
    std::printf(
        "frontend: %llu submitted, %llu served, %llu coalesced, "
        "%llu shed (overload %llu, deadline %llu), max queue depth %llu, "
        "%llu inference calls\n",
        static_cast<unsigned long long>(fs.submitted),
        static_cast<unsigned long long>(fs.served),
        static_cast<unsigned long long>(fs.coalesce_hits),
        static_cast<unsigned long long>(fs.sheds()),
        static_cast<unsigned long long>(fs.shed_overload),
        static_cast<unsigned long long>(fs.shed_deadline),
        static_cast<unsigned long long>(fs.max_queue_depth),
        static_cast<unsigned long long>(fs.inference_calls));
  }
  if (attack_on) {
    const auto& detector = *harness.detector();
    std::string flagged;
    for (const int road : detector.FlaggedRoads()) {
      if (!flagged.empty()) flagged += ",";
      flagged += StrFormat("%d", road);
    }
    std::printf(
        "attack: %llu readings poisoned (max|delta| %.2f km/h); detector "
        "scored %llu records, %llu anomalous, flagged roads [%s]\n",
        static_cast<unsigned long long>(feed.poisoned),
        harness.attack_plan().MaxAbsDelta(),
        static_cast<unsigned long long>(detector.stats().observed),
        static_cast<unsigned long long>(detector.stats().anomalous),
        flagged.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: apots_cli "
      "<generate|train|evaluate|robustness|serve|attack|whatif>"
      " [--flag value]\n"
      "  generate --out d.csv [--days N] [--roads N] [--seed S]\n"
      "  train    --data d.csv [--model m.bin] [--predictor F|L|C|H]\n"
      "           [--adversarial 0|1] [--epochs N] [--divisor N]\n"
      "           [--guard 0|1]\n"
      "  evaluate --data d.csv --model m.bin [same model flags]\n"
      "  robustness [--data d.csv | --days N --roads N --seed S]\n"
      "           [--rates 0,0.05,0.15,0.3] [--predictor F|L|C|H]\n"
      "           [--epochs N] [--divisor N] [--adversarial 0|1]\n"
      "           [--fault-seed S] [--fault-kinds drop,stuck,noise,outage]\n"
      "  train/evaluate also take --fault-rate R --fault-seed S\n"
      "           --fault-kinds K to corrupt + repair the dataset first\n"
      "  serve    [--days N] [--roads N] [--seed S] [--warmup F]\n"
      "           [--predictor F|L|C|H] [--epochs N] [--divisor N]\n"
      "           [--storm 0|1] [--feed-seed S] [--deadline-ms MS]\n"
      "           [--watchdog-ms MS] [--checkpoint-dir D]\n"
      "           [--checkpoint-every N] [--kill-at TICK] [--ticks N]\n"
      "           [--anchors-per-tick N] [--attack 0|1]\n"
      "           [--shards N] [--replicas R] [--chaos off|K] [--chaos-seed S]\n"
      "           (K from kill,stall,partition,skew,corrupt or all;\n"
      "           --shards/--replicas/--chaos run the sharded plane)\n"
      "           [--frontend 0|1] [--frontend-queue N]\n"
      "           [--frontend-batch N] [--frontend-deadline-ms MS]\n"
      "           [--attack-method pgd|spsa] [--eps-kmh E]\n"
      "           [--smooth-kmh S] [--attack-steps N]\n"
      "  attack   [--days N] [--roads N] [--seed S] [--predictor F|L|C|H]\n"
      "           [--epochs N] [--divisor N] [--method pgd|spsa]\n"
      "           [--eps-kmh E] [--smooth-kmh S] [--steps N]\n"
      "           [--spsa-samples N] [--attack-seed S] [--defend 0|1]\n"
      "           [--defense-rounds N] [--finetune-epochs N]\n"
      "  whatif   [--days N] [--roads N] [--seed S] [--predictor F|L|C|H]\n"
      "           [--epochs N] [--divisor N] [--anchor A]\n"
      "           [--contexts \"SPEC;SPEC;...\"] where each SPEC is a\n"
      "           comma list of clear-event | set-event | rain+X | rain-X\n"
      "           | day=weekday|holiday|before-holiday|after-holiday,\n"
      "           each with an optional @begin:end interval window\n"
      "  every command also takes --metrics-json PATH (dump the metrics\n"
      "           registry as JSON on exit) and --trace PATH (record\n"
      "           chrome://tracing spans; open the file in a trace viewer)\n"
      "  model commands also take --kernel-mode reference|blocked|simd\n"
      "           (matmul dispatch; simd picks the best ISA at runtime)\n"
      "           and --quantize off|fp16|int8 (inference weight\n"
      "           precision; serve/attack print the dispatched kernel,\n"
      "           ISA, and precision)\n");
  return 2;
}

// Writes the metrics registry and/or the trace ring to the paths named by
// --metrics-json / --trace. Failures demote the exit code to 1 so scripts
// notice the missing artifact, but never mask a command's own failure.
int EmitObservability(const std::map<std::string, std::string>& flags,
                      int rc) {
  const std::string metrics_path = Flag(flags, "metrics-json", "");
  if (!metrics_path.empty()) {
    if (obs::MetricsRegistry::Default().WriteJson(metrics_path)) {
      std::printf("wrote metrics to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_path.c_str());
      if (rc == 0) rc = 1;
    }
  }
  const std::string trace_path = Flag(flags, "trace", "");
  if (!trace_path.empty()) {
    if (obs::TraceRecorder::Default().WriteJson(trace_path)) {
      std::printf("wrote %zu trace events to %s\n",
                  obs::TraceRecorder::Default().EventCount(),
                  trace_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write trace to %s\n", trace_path.c_str());
      if (rc == 0) rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (!Flag(flags, "trace", "").empty()) {
    obs::TraceRecorder::Default().Enable({});
  }
  if (!ApplyKernelModeFlag(flags)) return 1;
  int rc = -1;
  if (command == "generate") rc = Generate(flags);
  else if (command == "train") rc = Train(flags);
  else if (command == "evaluate") rc = Evaluate(flags);
  else if (command == "robustness") rc = Robustness(flags);
  else if (command == "serve") rc = Serve(flags);
  else if (command == "attack") rc = Attack(flags);
  else if (command == "whatif") rc = Whatif(flags);
  if (rc < 0) return Usage();
  return EmitObservability(flags, rc);
}
