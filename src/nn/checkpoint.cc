#include "nn/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "nn/serialize.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace apots::nn {

namespace fs = std::filesystem;

namespace {

constexpr const char* kPrefix = "ckpt_";
constexpr const char* kSuffix = ".apot";

/// Parses "ckpt_<digits>.apot" into the generation; false for other names.
bool ParseGeneration(const std::string& filename, uint64_t* generation) {
  const size_t prefix_len = std::strlen(kPrefix);
  const size_t suffix_len = std::strlen(kSuffix);
  if (filename.size() <= prefix_len + suffix_len) return false;
  if (filename.compare(0, prefix_len, kPrefix) != 0) return false;
  if (filename.compare(filename.size() - suffix_len, suffix_len, kSuffix) !=
      0) {
    return false;
  }
  const std::string digits =
      filename.substr(prefix_len, filename.size() - prefix_len - suffix_len);
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = value;
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir, int keep_generations)
    : dir_(std::move(dir)), keep_(std::max(1, keep_generations)) {}

std::string CheckpointStore::GenerationPath(uint64_t generation) const {
  return (fs::path(dir_) /
          StrFormat("%s%08llu%s", kPrefix,
                    static_cast<unsigned long long>(generation), kSuffix))
      .string();
}

std::vector<uint64_t> CheckpointStore::ListGenerations() const {
  std::vector<uint64_t> generations;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint64_t generation = 0;
    if (ParseGeneration(entry.path().filename().string(), &generation)) {
      generations.push_back(generation);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

uint64_t CheckpointStore::LatestGeneration() const {
  const std::vector<uint64_t> generations = ListGenerations();
  return generations.empty() ? 0 : generations.back();
}

Result<uint64_t> CheckpointStore::Save(const std::vector<Parameter*>& params,
                                       const std::string& aux) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot create checkpoint dir %s: %s",
                                     dir_.c_str(), ec.message().c_str()));
  }
  const uint64_t generation = LatestGeneration() + 1;
  APOTS_RETURN_IF_ERROR(
      SaveParameters(params, GenerationPath(generation), aux));

  // Prune: keep the newest `keep_` generations. A prune failure is not a
  // save failure — the new checkpoint is already durable.
  const std::vector<uint64_t> generations = ListGenerations();
  if (generations.size() > static_cast<size_t>(keep_)) {
    const size_t excess = generations.size() - static_cast<size_t>(keep_);
    for (size_t i = 0; i < excess; ++i) {
      std::error_code rm_ec;
      fs::remove(GenerationPath(generations[i]), rm_ec);
      if (rm_ec) {
        APOTS_LOG(Warning) << "cannot prune checkpoint generation "
                           << generations[i] << ": " << rm_ec.message();
      }
    }
  }
  return generation;
}

Result<CheckpointStore::RecoverInfo> CheckpointStore::Recover(
    const std::vector<Parameter*>& params) const {
  const std::vector<uint64_t> generations = ListGenerations();
  if (generations.empty()) {
    return Status::NotFound("no checkpoint in " + dir_);
  }
  RecoverInfo info;
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string path = GenerationPath(*it);
    std::string aux;
    const Status status = LoadParameters(params, path, &aux);
    if (status.ok()) {
      info.generation = *it;
      info.aux = std::move(aux);
      return info;
    }
    // LoadParameters validates before writing, so `params` is untouched
    // and the previous generation is a safe fallback.
    APOTS_LOG(Warning) << "checkpoint " << path
                       << " unusable, falling back a generation: "
                       << status.ToString();
    info.skipped.push_back(path + ": " + status.ToString());
  }
  return Status::IoError(StrFormat(
      "all %zu retained checkpoint generations in %s are corrupt",
      generations.size(), dir_.c_str()));
}

}  // namespace apots::nn
