#include "nn/sequential.h"

namespace apots::nn {

Layer* Sequential::Add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return layers_.back().get();
}

Tensor Sequential::Forward(const Tensor& input, bool training) {
  Tensor current = input;
  for (auto& layer : layers_) {
    current = layer->Forward(current, training);
  }
  return current;
}

const Tensor* Sequential::Forward(const Tensor& input, bool training,
                                  tensor::Workspace* ws) {
  const Tensor* current = &input;
  for (auto& layer : layers_) {
    current = layer->Forward(*current, training, ws);
  }
  return current;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor current = grad_output;
  for (size_t i = layers_.size(); i-- > 0;) {
    current = layers_[i]->Backward(current);
  }
  return current;
}

void Sequential::PrepareQuantized(tensor::QuantMode mode) {
  for (auto& layer : layers_) layer->PrepareQuantized(mode);
}

std::vector<Parameter*> Sequential::Parameters() {
  std::vector<Parameter*> params;
  for (auto& layer : layers_) {
    for (Parameter* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::string Sequential::Name() const {
  std::string out = "Sequential[";
  for (size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) out += ", ";
    out += layers_[i]->Name();
  }
  out += "]";
  return out;
}

}  // namespace apots::nn
