#include "nn/gradient_check.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace apots::nn {

namespace {

// Weighted sum of a forward pass (the scalar "loss" used by the checker).
double WeightedSum(const Tensor& output, const Tensor& weights) {
  APOTS_CHECK(output.SameShape(weights));
  double acc = 0.0;
  for (size_t i = 0; i < output.size(); ++i) {
    acc += static_cast<double>(output[i]) * weights[i];
  }
  return acc;
}

void Accumulate(GradCheckResult* result, double analytic, double numeric) {
  const double abs_err = std::fabs(analytic - numeric);
  const double denom =
      std::max(1e-4, std::max(std::fabs(analytic), std::fabs(numeric)));
  result->max_abs_error = std::max(result->max_abs_error, abs_err);
  result->max_rel_error = std::max(result->max_rel_error, abs_err / denom);
  ++result->checked;
}

}  // namespace

GradCheckResult CheckLayerGradients(Layer* layer, const Tensor& input,
                                    const Tensor& loss_weights,
                                    double epsilon, size_t stride) {
  GradCheckResult result;
  if (stride == 0) stride = 1;

  // Analytic pass: forward (training mode off so dropout is identity),
  // backward with dL/dout = loss_weights.
  for (Parameter* p : layer->Parameters()) p->ZeroGrad();
  Tensor output = layer->Forward(input, /*training=*/false);
  APOTS_CHECK(output.SameShape(loss_weights));
  Tensor grad_input = layer->Backward(loss_weights);
  APOTS_CHECK(grad_input.SameShape(input));

  // Numeric input gradient.
  Tensor perturbed = input;
  for (size_t i = 0; i < input.size(); i += stride) {
    const float saved = perturbed[i];
    perturbed[i] = saved + static_cast<float>(epsilon);
    const double plus =
        WeightedSum(layer->Forward(perturbed, false), loss_weights);
    perturbed[i] = saved - static_cast<float>(epsilon);
    const double minus =
        WeightedSum(layer->Forward(perturbed, false), loss_weights);
    perturbed[i] = saved;
    Accumulate(&result, grad_input[i], (plus - minus) / (2.0 * epsilon));
  }

  // Numeric parameter gradients. Note: Forward above overwrote layer
  // caches, but parameter grads were accumulated before any perturbation.
  for (Parameter* p : layer->Parameters()) {
    for (size_t i = 0; i < p->value.size(); i += stride) {
      const float saved = p->value[i];
      p->value[i] = saved + static_cast<float>(epsilon);
      const double plus =
          WeightedSum(layer->Forward(input, false), loss_weights);
      p->value[i] = saved - static_cast<float>(epsilon);
      const double minus =
          WeightedSum(layer->Forward(input, false), loss_weights);
      p->value[i] = saved;
      Accumulate(&result, p->grad[i], (plus - minus) / (2.0 * epsilon));
    }
  }
  return result;
}

GradCheckResult CheckFunctionGradient(
    const std::function<double(const Tensor&)>& f, const Tensor& point,
    const Tensor& analytic, double epsilon, size_t stride) {
  APOTS_CHECK(point.SameShape(analytic));
  GradCheckResult result;
  if (stride == 0) stride = 1;
  Tensor perturbed = point;
  for (size_t i = 0; i < point.size(); i += stride) {
    const float saved = perturbed[i];
    perturbed[i] = saved + static_cast<float>(epsilon);
    const double plus = f(perturbed);
    perturbed[i] = saved - static_cast<float>(epsilon);
    const double minus = f(perturbed);
    perturbed[i] = saved;
    Accumulate(&result, analytic[i], (plus - minus) / (2.0 * epsilon));
  }
  return result;
}

}  // namespace apots::nn
