#include "nn/conv2d.h"

#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace apots::nn {

namespace ops = apots::tensor;

Conv2d::Conv2d(size_t in_channels, size_t out_channels, size_t kh, size_t kw,
               size_t pad, apots::Rng* rng, Init init)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kh_(kh),
      kw_(kw),
      pad_(pad),
      weight_("conv.weight", Tensor({out_channels, in_channels * kh * kw})),
      bias_("conv.bias", Tensor({out_channels})) {
  APOTS_CHECK_GT(kh, 0u);
  APOTS_CHECK_GT(kw, 0u);
  Initialize(&weight_.value, init, in_channels * kh * kw,
             out_channels * kh * kw, rng);
}

Tensor Conv2d::Forward(const Tensor& input, bool training) {
  APOTS_CHECK_EQ(input.rank(), 4u);
  APOTS_CHECK_EQ(input.dim(1), in_channels_);
  const size_t batch = input.dim(0);
  const size_t height = input.dim(2);
  const size_t width = input.dim(3);
  const size_t out_h = height + 2 * pad_ - kh_ + 1;
  const size_t out_w = width + 2 * pad_ - kw_ + 1;
  cached_height_ = height;
  cached_width_ = width;
  cached_columns_.clear();
  cached_columns_.reserve(batch);

  Tensor output({batch, out_channels_, out_h, out_w});
  const size_t sample_in_size = in_channels_ * height * width;
  const size_t sample_out_size = out_channels_ * out_h * out_w;
  for (size_t n = 0; n < batch; ++n) {
    // View sample n as a [C,H,W] tensor (copy; inputs are small here).
    Tensor sample({in_channels_, height, width});
    std::copy(input.data() + n * sample_in_size,
              input.data() + (n + 1) * sample_in_size, sample.data());
    Tensor columns = ops::Im2Col(sample, kh_, kw_, pad_);
    Tensor out_mat = ops::Matmul(weight_.value, columns);  // [OC, oh*ow]
    // Add bias per output channel.
    for (size_t oc = 0; oc < out_channels_; ++oc) {
      float* row = out_mat.data() + oc * out_h * out_w;
      const float b = bias_.value[oc];
      for (size_t i = 0; i < out_h * out_w; ++i) row[i] += b;
    }
    std::copy(out_mat.data(), out_mat.data() + sample_out_size,
              output.data() + n * sample_out_size);
    cached_columns_.push_back(std::move(columns));
  }
  return output;
}

const Tensor* Conv2d::Forward(const Tensor& input, bool training,
                              tensor::Workspace* ws) {
  if (training) return Layer::Forward(input, training, ws);
  APOTS_CHECK_EQ(input.rank(), 4u);
  APOTS_CHECK_EQ(input.dim(1), in_channels_);
  const size_t batch = input.dim(0);
  const size_t height = input.dim(2);
  const size_t width = input.dim(3);
  const size_t out_h = height + 2 * pad_ - kh_ + 1;
  const size_t out_w = width + 2 * pad_ - kw_ + 1;

  Tensor* output = ws->Acquire({batch, out_channels_, out_h, out_w});
  // Per-sample scratch reused across the batch; no column caching (that is
  // backward-only state) and no member writes, so inference is reentrant.
  Tensor* sample = ws->Acquire({in_channels_, height, width});
  Tensor* columns = ws->Acquire({in_channels_ * kh_ * kw_, out_h * out_w});
  Tensor* out_mat = ws->Acquire({out_channels_, out_h * out_w});
  const size_t sample_in_size = in_channels_ * height * width;
  const size_t sample_out_size = out_channels_ * out_h * out_w;
  for (size_t n = 0; n < batch; ++n) {
    std::copy(input.data() + n * sample_in_size,
              input.data() + (n + 1) * sample_in_size, sample->data());
    ops::Im2ColInto(*sample, kh_, kw_, pad_, columns);
    ops::MatmulInto(weight_.value, *columns, out_mat);
    for (size_t oc = 0; oc < out_channels_; ++oc) {
      float* row = out_mat->data() + oc * out_h * out_w;
      const float b = bias_.value[oc];
      for (size_t i = 0; i < out_h * out_w; ++i) row[i] += b;
    }
    std::copy(out_mat->data(), out_mat->data() + sample_out_size,
              output->data() + n * sample_out_size);
  }
  return output;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  APOTS_CHECK_EQ(grad_output.rank(), 4u);
  const size_t batch = grad_output.dim(0);
  APOTS_CHECK_EQ(batch, cached_columns_.size());
  APOTS_CHECK_EQ(grad_output.dim(1), out_channels_);
  const size_t out_h = grad_output.dim(2);
  const size_t out_w = grad_output.dim(3);
  const size_t sample_out_size = out_channels_ * out_h * out_w;
  const size_t sample_in_size = in_channels_ * cached_height_ * cached_width_;

  Tensor grad_input({batch, in_channels_, cached_height_, cached_width_});
  for (size_t n = 0; n < batch; ++n) {
    Tensor grad_mat({out_channels_, out_h * out_w});
    std::copy(grad_output.data() + n * sample_out_size,
              grad_output.data() + (n + 1) * sample_out_size,
              grad_mat.data());
    // dW += dY * columns^T ; db += row sums of dY.
    ops::AddInPlace(&weight_.grad,
                    ops::MatmulTransposeB(grad_mat, cached_columns_[n]));
    for (size_t oc = 0; oc < out_channels_; ++oc) {
      const float* row = grad_mat.data() + oc * out_h * out_w;
      float acc = 0.0f;
      for (size_t i = 0; i < out_h * out_w; ++i) acc += row[i];
      bias_.grad[oc] += acc;
    }
    // dColumns = W^T dY, then scatter back to image space.
    Tensor grad_columns = ops::MatmulTransposeA(weight_.value, grad_mat);
    Tensor grad_sample = ops::Col2Im(grad_columns, in_channels_,
                                     cached_height_, cached_width_, kh_, kw_,
                                     pad_);
    std::copy(grad_sample.data(), grad_sample.data() + sample_in_size,
              grad_input.data() + n * sample_in_size);
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::Parameters() { return {&weight_, &bias_}; }

std::string Conv2d::Name() const {
  return apots::StrFormat("Conv2d(%zu -> %zu, %zux%zu, pad %zu)",
                          in_channels_, out_channels_, kh_, kw_, pad_);
}

}  // namespace apots::nn
