#ifndef APOTS_NN_LSTM_H_
#define APOTS_NN_LSTM_H_

#include <string>
#include <vector>

#include "nn/initializer.h"
#include "nn/module.h"
#include "util/rng.h"

namespace apots::nn {

/// Single-layer LSTM (Hochreiter & Schmidhuber '97) with full
/// backpropagation through time. Input is [batch, time, features]; output
/// is [batch, time, hidden] when `return_sequences` (for stacking LSTM
/// layers) or [batch, hidden] (the last hidden state) otherwise.
///
/// Gates are packed in one [*, 4*hidden] matrix in the order
/// input / forget / candidate / output. The forget-gate bias is initialized
/// to 1, the standard trick for gradient flow early in training.
class Lstm : public Layer {
 public:
  Lstm(size_t input_size, size_t hidden_size, bool return_sequences,
       apots::Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  const Tensor* Forward(const Tensor& input, bool training,
                        tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  void PrepareQuantized(tensor::QuantMode mode) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

  size_t hidden_size() const { return hidden_size_; }

 private:
  size_t input_size_;
  size_t hidden_size_;
  bool return_sequences_;

  Parameter weight_x_;  ///< [input, 4*hidden]
  Parameter weight_h_;  ///< [hidden, 4*hidden]
  Parameter bias_;      ///< [4*hidden]
  // Packed gate-matmul weights for reduced-precision inference; consulted
  // only by the workspace inference Forward (see Layer::PrepareQuantized).
  tensor::QuantMode quant_mode_ = tensor::QuantMode::kOff;
  tensor::Int8Matrix int8_wx_, int8_wh_;
  tensor::Fp16Matrix fp16_wx_, fp16_wh_;

  // Per-timestep caches for BPTT.
  struct StepCache {
    Tensor x;        ///< [batch, input]
    Tensor h_prev;   ///< [batch, hidden]
    Tensor c_prev;   ///< [batch, hidden]
    Tensor gates;    ///< [batch, 4*hidden], post-activation (i,f,g,o)
    Tensor c;        ///< [batch, hidden]
    Tensor tanh_c;   ///< [batch, hidden]
  };
  std::vector<StepCache> steps_;
  size_t cached_batch_ = 0;
  size_t cached_time_ = 0;
};

}  // namespace apots::nn

#endif  // APOTS_NN_LSTM_H_
