#include "nn/optimizer.h"

#include <cmath>

namespace apots::nn {

void Optimizer::StepAndZero(const std::vector<Parameter*>& params) {
  Step(params);
  ZeroAllGrads(params);
}

Sgd::Sgd(float learning_rate, float momentum)
    : Optimizer(learning_rate), momentum_(momentum) {}

void Sgd::Step(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) {
    if (momentum_ == 0.0f) {
      float* w = p->value.data();
      const float* g = p->grad.data();
      for (size_t i = 0; i < p->value.size(); ++i) {
        w[i] -= learning_rate_ * g[i];
      }
      continue;
    }
    auto [it, inserted] = velocity_.try_emplace(p, Tensor(p->value.shape()));
    Tensor& vel = it->second;
    float* v = vel.data();
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->value.size(); ++i) {
      v[i] = momentum_ * v[i] + g[i];
      w[i] -= learning_rate_ * v[i];
    }
  }
}

Adam::Adam(float learning_rate, float beta1, float beta2, float epsilon)
    : Optimizer(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {}

void Adam::Step(const std::vector<Parameter*>& params) {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (Parameter* p : params) {
    auto [it, inserted] = moments_.try_emplace(
        p, Moments{Tensor(p->value.shape()), Tensor(p->value.shape())});
    Moments& mom = it->second;
    float* m = mom.m.data();
    float* v = mom.v.data();
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->value.size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float m_hat = m[i] / bias1;
      const float v_hat = v[i] / bias2;
      w[i] -= learning_rate_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }
}

}  // namespace apots::nn
