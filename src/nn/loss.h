#ifndef APOTS_NN_LOSS_H_
#define APOTS_NN_LOSS_H_

#include "nn/module.h"

namespace apots::nn {

/// Result of a loss evaluation: scalar value plus gradient w.r.t. the
/// prediction, already averaged the same way the value is.
struct LossResult {
  float value = 0.0f;
  Tensor grad;
};

/// Mean squared error over all elements: mean((pred - target)^2).
LossResult MseLoss(const Tensor& prediction, const Tensor& target);

/// Binary cross-entropy on raw logits (numerically stable):
/// mean over elements of  max(z,0) - z*y + log(1 + exp(-|z|)).
/// Used for the discriminator and for the adversarial term of J_P.
LossResult BceWithLogitsLoss(const Tensor& logits, const Tensor& target);

/// The predictor's adversarial term log(1 - D(fake)) from Eq. 1, expressed
/// on logits. Minimizing this pushes D(fake) toward 1. We use the
/// non-saturating form -log(D(fake)) (the standard GAN practice, identical
/// fixed point), i.e. BCE against target 1.
LossResult AdversarialGeneratorLoss(const Tensor& fake_logits);

/// Mean absolute error (used for reporting, with subgradient at 0).
LossResult MaeLoss(const Tensor& prediction, const Tensor& target);

}  // namespace apots::nn

#endif  // APOTS_NN_LOSS_H_
