#include "nn/loss.h"

#include <cmath>

#include "nn/activations.h"
#include "tensor/tensor_ops.h"

namespace apots::nn {

LossResult MseLoss(const Tensor& prediction, const Tensor& target) {
  APOTS_CHECK(prediction.SameShape(target));
  APOTS_CHECK_GT(prediction.size(), 0u);
  LossResult result;
  result.grad = Tensor(prediction.shape());
  const float* pp = prediction.data();
  const float* pt = target.data();
  float* pg = result.grad.data();
  const float inv_n = 1.0f / static_cast<float>(prediction.size());
  double acc = 0.0;
  for (size_t i = 0; i < prediction.size(); ++i) {
    const float diff = pp[i] - pt[i];
    acc += static_cast<double>(diff) * diff;
    pg[i] = 2.0f * diff * inv_n;
  }
  result.value = static_cast<float>(acc * inv_n);
  return result;
}

LossResult BceWithLogitsLoss(const Tensor& logits, const Tensor& target) {
  APOTS_CHECK(logits.SameShape(target));
  APOTS_CHECK_GT(logits.size(), 0u);
  LossResult result;
  result.grad = Tensor(logits.shape());
  const float* pz = logits.data();
  const float* py = target.data();
  float* pg = result.grad.data();
  const float inv_n = 1.0f / static_cast<float>(logits.size());
  double acc = 0.0;
  for (size_t i = 0; i < logits.size(); ++i) {
    const float z = pz[i];
    const float y = py[i];
    // Stable: max(z,0) - z*y + log(1+exp(-|z|)).
    acc += std::max(z, 0.0f) - z * y + std::log1p(std::exp(-std::fabs(z)));
    pg[i] = (SigmoidScalar(z) - y) * inv_n;
  }
  result.value = static_cast<float>(acc * inv_n);
  return result;
}

LossResult AdversarialGeneratorLoss(const Tensor& fake_logits) {
  Tensor ones = Tensor::Full(fake_logits.shape(), 1.0f);
  return BceWithLogitsLoss(fake_logits, ones);
}

LossResult MaeLoss(const Tensor& prediction, const Tensor& target) {
  APOTS_CHECK(prediction.SameShape(target));
  APOTS_CHECK_GT(prediction.size(), 0u);
  LossResult result;
  result.grad = Tensor(prediction.shape());
  const float* pp = prediction.data();
  const float* pt = target.data();
  float* pg = result.grad.data();
  const float inv_n = 1.0f / static_cast<float>(prediction.size());
  double acc = 0.0;
  for (size_t i = 0; i < prediction.size(); ++i) {
    const float diff = pp[i] - pt[i];
    acc += std::fabs(diff);
    pg[i] = (diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f)) * inv_n;
  }
  result.value = static_cast<float>(acc * inv_n);
  return result;
}

}  // namespace apots::nn
