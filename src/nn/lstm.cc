#include "nn/lstm.h"

#include <cmath>

#include "nn/activations.h"
#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace apots::nn {

namespace ops = apots::tensor;

Lstm::Lstm(size_t input_size, size_t hidden_size, bool return_sequences,
           apots::Rng* rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      return_sequences_(return_sequences),
      weight_x_("lstm.weight_x", Tensor({input_size, 4 * hidden_size})),
      weight_h_("lstm.weight_h", Tensor({hidden_size, 4 * hidden_size})),
      bias_("lstm.bias", Tensor({4 * hidden_size})) {
  Initialize(&weight_x_.value, Init::kXavierUniform, input_size,
             4 * hidden_size, rng);
  Initialize(&weight_h_.value, Init::kOrthogonalish, hidden_size,
             4 * hidden_size, rng);
  // Forget-gate bias = 1 (slots [hidden, 2*hidden)).
  for (size_t j = hidden_size; j < 2 * hidden_size; ++j) {
    bias_.value[j] = 1.0f;
  }
}

Tensor Lstm::Forward(const Tensor& input, bool training) {
  APOTS_CHECK_EQ(input.rank(), 3u);
  APOTS_CHECK_EQ(input.dim(2), input_size_);
  const size_t batch = input.dim(0);
  const size_t time = input.dim(1);
  cached_batch_ = batch;
  cached_time_ = time;
  steps_.clear();
  steps_.reserve(time);

  Tensor h = Tensor::Zeros({batch, hidden_size_});
  Tensor c = Tensor::Zeros({batch, hidden_size_});
  Tensor sequence_out;
  if (return_sequences_) {
    sequence_out = Tensor({batch, time, hidden_size_});
  }

  for (size_t t = 0; t < time; ++t) {
    StepCache step;
    step.h_prev = h;
    step.c_prev = c;
    // Slice x_t: [batch, input].
    step.x = Tensor({batch, input_size_});
    for (size_t n = 0; n < batch; ++n) {
      const float* src = input.data() + (n * time + t) * input_size_;
      std::copy(src, src + input_size_, step.x.data() + n * input_size_);
    }

    Tensor gates = ops::Matmul(step.x, weight_x_.value);
    ops::AddInPlace(&gates, ops::Matmul(h, weight_h_.value));
    ops::AddRowBias(&gates, bias_.value);

    // Activate in place: [i | f | g | o].
    const size_t H = hidden_size_;
    Tensor new_c({batch, H});
    Tensor new_h({batch, H});
    Tensor tanh_c({batch, H});
    for (size_t n = 0; n < batch; ++n) {
      float* g_row = gates.data() + n * 4 * H;
      const float* cp = step.c_prev.data() + n * H;
      float* nc = new_c.data() + n * H;
      float* nh = new_h.data() + n * H;
      float* tc = tanh_c.data() + n * H;
      for (size_t j = 0; j < H; ++j) {
        const float i_gate = SigmoidScalar(g_row[j]);
        const float f_gate = SigmoidScalar(g_row[H + j]);
        const float g_cand = TanhScalar(g_row[2 * H + j]);
        const float o_gate = SigmoidScalar(g_row[3 * H + j]);
        g_row[j] = i_gate;
        g_row[H + j] = f_gate;
        g_row[2 * H + j] = g_cand;
        g_row[3 * H + j] = o_gate;
        nc[j] = f_gate * cp[j] + i_gate * g_cand;
        tc[j] = TanhScalar(nc[j]);
        nh[j] = o_gate * tc[j];
      }
    }
    step.gates = std::move(gates);
    step.c = new_c;
    step.tanh_c = std::move(tanh_c);
    c = std::move(new_c);
    h = std::move(new_h);

    if (return_sequences_) {
      for (size_t n = 0; n < batch; ++n) {
        std::copy(h.data() + n * hidden_size_,
                  h.data() + (n + 1) * hidden_size_,
                  sequence_out.data() + (n * time + t) * hidden_size_);
      }
    }
    steps_.push_back(std::move(step));
  }
  return return_sequences_ ? sequence_out : h;
}

const Tensor* Lstm::Forward(const Tensor& input, bool training,
                            tensor::Workspace* ws) {
  if (training) return Layer::Forward(input, training, ws);
  APOTS_CHECK_EQ(input.rank(), 3u);
  APOTS_CHECK_EQ(input.dim(2), input_size_);
  const size_t batch = input.dim(0);
  const size_t time = input.dim(1);
  const size_t H = hidden_size_;

  // All state lives in the arena: no StepCache (backward-only) and no
  // member writes, so concurrent inference forwards are safe. The scalar
  // recurrence below performs exactly the operations of the allocating
  // Forward in the same order, so results are bitwise identical.
  Tensor* h = ws->Acquire({batch, H});
  Tensor* c = ws->Acquire({batch, H});
  h->Fill(0.0f);
  c->Fill(0.0f);
  Tensor* x_t = ws->Acquire({batch, input_size_});
  Tensor* gates = ws->Acquire({batch, 4 * H});
  Tensor* gates_h = ws->Acquire({batch, 4 * H});
  Tensor* sequence_out =
      return_sequences_ ? ws->Acquire({batch, time, H}) : nullptr;

  for (size_t t = 0; t < time; ++t) {
    // Slice x_t: [batch, input].
    for (size_t n = 0; n < batch; ++n) {
      const float* src = input.data() + (n * time + t) * input_size_;
      std::copy(src, src + input_size_, x_t->data() + n * input_size_);
    }
    switch (quant_mode_) {
      case tensor::QuantMode::kInt8:
        ops::Int8MatmulInto(*x_t, int8_wx_, gates, ws);
        ops::Int8MatmulInto(*h, int8_wh_, gates_h, ws);
        break;
      case tensor::QuantMode::kFp16:
        ops::Fp16MatmulInto(*x_t, fp16_wx_, gates);
        ops::Fp16MatmulInto(*h, fp16_wh_, gates_h);
        break;
      case tensor::QuantMode::kOff:
        ops::MatmulInto(*x_t, weight_x_.value, gates);
        ops::MatmulInto(*h, weight_h_.value, gates_h);
        break;
    }
    ops::AddInPlace(gates, *gates_h);
    ops::AddRowBias(gates, bias_.value);

    // Activate and update h/c in place: [i | f | g | o].
    for (size_t n = 0; n < batch; ++n) {
      float* g_row = gates->data() + n * 4 * H;
      float* c_row = c->data() + n * H;
      float* h_row = h->data() + n * H;
      for (size_t j = 0; j < H; ++j) {
        const float i_gate = SigmoidScalar(g_row[j]);
        const float f_gate = SigmoidScalar(g_row[H + j]);
        const float g_cand = TanhScalar(g_row[2 * H + j]);
        const float o_gate = SigmoidScalar(g_row[3 * H + j]);
        const float new_c = f_gate * c_row[j] + i_gate * g_cand;
        c_row[j] = new_c;
        h_row[j] = o_gate * TanhScalar(new_c);
      }
    }
    if (return_sequences_) {
      for (size_t n = 0; n < batch; ++n) {
        std::copy(h->data() + n * H, h->data() + (n + 1) * H,
                  sequence_out->data() + (n * time + t) * H);
      }
    }
  }
  return return_sequences_ ? sequence_out : h;
}

void Lstm::PrepareQuantized(tensor::QuantMode mode) {
  quant_mode_ = mode;
  const bool int8 = mode == tensor::QuantMode::kInt8;
  const bool fp16 = mode == tensor::QuantMode::kFp16;
  int8_wx_ = int8 ? ops::PackInt8Weights(weight_x_.value)
                  : tensor::Int8Matrix{};
  int8_wh_ = int8 ? ops::PackInt8Weights(weight_h_.value)
                  : tensor::Int8Matrix{};
  fp16_wx_ = fp16 ? ops::PackFp16Weights(weight_x_.value)
                  : tensor::Fp16Matrix{};
  fp16_wh_ = fp16 ? ops::PackFp16Weights(weight_h_.value)
                  : tensor::Fp16Matrix{};
}

Tensor Lstm::Backward(const Tensor& grad_output) {
  const size_t batch = cached_batch_;
  const size_t time = cached_time_;
  const size_t H = hidden_size_;
  if (return_sequences_) {
    APOTS_CHECK_EQ(grad_output.rank(), 3u);
    APOTS_CHECK_EQ(grad_output.dim(1), time);
  } else {
    APOTS_CHECK_EQ(grad_output.rank(), 2u);
    APOTS_CHECK_EQ(grad_output.dim(1), H);
  }

  Tensor grad_input({batch, time, input_size_});
  Tensor dh_next = Tensor::Zeros({batch, H});
  Tensor dc_next = Tensor::Zeros({batch, H});

  for (size_t t = time; t-- > 0;) {
    const StepCache& step = steps_[t];
    // dh at this step = incoming-from-future + slice of grad_output.
    Tensor dh = dh_next;
    if (return_sequences_) {
      for (size_t n = 0; n < batch; ++n) {
        const float* src = grad_output.data() + (n * time + t) * H;
        float* dst = dh.data() + n * H;
        for (size_t j = 0; j < H; ++j) dst[j] += src[j];
      }
    } else if (t == time - 1) {
      ops::AddInPlace(&dh, grad_output);
    }

    // Gate-level gradients, pre-activation: [batch, 4H].
    Tensor dgates({batch, 4 * H});
    Tensor dc_prev({batch, H});
    for (size_t n = 0; n < batch; ++n) {
      const float* g_row = step.gates.data() + n * 4 * H;
      const float* tc = step.tanh_c.data() + n * H;
      const float* cp = step.c_prev.data() + n * H;
      const float* dh_row = dh.data() + n * H;
      const float* dcn = dc_next.data() + n * H;
      float* dg = dgates.data() + n * 4 * H;
      float* dcp = dc_prev.data() + n * H;
      for (size_t j = 0; j < H; ++j) {
        const float i_gate = g_row[j];
        const float f_gate = g_row[H + j];
        const float g_cand = g_row[2 * H + j];
        const float o_gate = g_row[3 * H + j];
        // dc = dh * o * (1 - tanh(c)^2) + dc_from_future.
        const float dc = dh_row[j] * o_gate * (1.0f - tc[j] * tc[j]) + dcn[j];
        const float do_gate = dh_row[j] * tc[j];
        const float di = dc * g_cand;
        const float df = dc * cp[j];
        const float dg_cand = dc * i_gate;
        dcp[j] = dc * f_gate;
        // Through the activations to pre-activation space.
        dg[j] = di * i_gate * (1.0f - i_gate);
        dg[H + j] = df * f_gate * (1.0f - f_gate);
        dg[2 * H + j] = dg_cand * (1.0f - g_cand * g_cand);
        dg[3 * H + j] = do_gate * o_gate * (1.0f - o_gate);
      }
    }

    // Parameter gradients.
    ops::AddInPlace(&weight_x_.grad, ops::MatmulTransposeA(step.x, dgates));
    ops::AddInPlace(&weight_h_.grad,
                    ops::MatmulTransposeA(step.h_prev, dgates));
    ops::AddInPlace(&bias_.grad, ops::SumRows(dgates));

    // Input and recurrent gradients.
    Tensor dx = ops::MatmulTransposeB(dgates, weight_x_.value);
    for (size_t n = 0; n < batch; ++n) {
      std::copy(dx.data() + n * input_size_, dx.data() + (n + 1) * input_size_,
                grad_input.data() + (n * time + t) * input_size_);
    }
    dh_next = ops::MatmulTransposeB(dgates, weight_h_.value);
    dc_next = std::move(dc_prev);
  }
  return grad_input;
}

std::vector<Parameter*> Lstm::Parameters() {
  return {&weight_x_, &weight_h_, &bias_};
}

std::string Lstm::Name() const {
  return apots::StrFormat("Lstm(%zu -> %zu%s)", input_size_, hidden_size_,
                          return_sequences_ ? ", seq" : "");
}

}  // namespace apots::nn
