#include "nn/flatten.h"

namespace apots::nn {

Tensor Flatten::Forward(const Tensor& input, bool training) {
  APOTS_CHECK_GE(input.rank(), 2u);
  cached_shape_ = input.shape();
  const size_t batch = input.dim(0);
  return input.Reshape({batch, input.size() / batch});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshape(cached_shape_);
}

}  // namespace apots::nn
