#include "nn/flatten.h"

#include <algorithm>

namespace apots::nn {

Tensor Flatten::Forward(const Tensor& input, bool training) {
  APOTS_CHECK_GE(input.rank(), 2u);
  cached_shape_ = input.shape();
  const size_t batch = input.dim(0);
  return input.Reshape({batch, input.size() / batch});
}

const Tensor* Flatten::Forward(const Tensor& input, bool training,
                               tensor::Workspace* ws) {
  if (training) return Layer::Forward(input, training, ws);
  APOTS_CHECK_GE(input.rank(), 2u);
  const size_t batch = input.dim(0);
  Tensor* out = ws->Acquire({batch, input.size() / batch});
  std::copy(input.data(), input.data() + input.size(), out->data());
  return out;
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  return grad_output.Reshape(cached_shape_);
}

}  // namespace apots::nn
