#include "nn/module.h"

#include <cmath>

namespace apots::nn {

const Tensor* Layer::Forward(const Tensor& input, bool training,
                             tensor::Workspace* ws) {
  return ws->Materialize(Forward(input, training));
}

void ZeroAllGrads(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->ZeroGrad();
}

size_t CountWeights(const std::vector<Parameter*>& params) {
  size_t n = 0;
  for (const Parameter* p : params) n += p->value.size();
  return n;
}

double GradNorm(const std::vector<Parameter*>& params) {
  double sum_sq = 0.0;
  for (const Parameter* p : params) {
    const float* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i) {
      sum_sq += static_cast<double>(g[i]) * g[i];
    }
  }
  return std::sqrt(sum_sq);
}

void ClipGradNorm(const std::vector<Parameter*>& params, double max_norm) {
  const double norm = GradNorm(params);
  if (norm <= max_norm || norm == 0.0) return;
  const float scale = static_cast<float>(max_norm / norm);
  for (Parameter* p : params) {
    float* g = p->grad.data();
    for (size_t i = 0; i < p->grad.size(); ++i) g[i] *= scale;
  }
}

}  // namespace apots::nn
