#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/string_util.h"

namespace apots::nn {

namespace {

constexpr char kMagic[5] = {'A', 'P', 'O', 'T', '1'};

template <typename T>
void WritePod(std::ofstream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint64_t>(out, params.size());
  for (const Parameter* p : params) {
    WritePod<uint64_t>(out, p->name.size());
    out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WritePod<uint64_t>(out, p->value.rank());
    for (size_t d : p->value.shape()) WritePod<uint64_t>(out, d);
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  out.close();
  if (!out) return Status::IoError("failed writing: " + path);
  return Status::Ok();
}

Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad magic in parameter file: " + path);
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated file: " + path);
  if (count != params.size()) {
    return Status::InvalidArgument(
        StrFormat("parameter count mismatch: file has %llu, model has %zu",
                  static_cast<unsigned long long>(count), params.size()));
  }
  for (Parameter* p : params) {
    uint64_t name_len = 0;
    if (!ReadPod(in, &name_len)) return Status::IoError("truncated name len");
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in) return Status::IoError("truncated name");
    if (name != p->name) {
      return Status::InvalidArgument(
          StrFormat("parameter name mismatch: file '%s' vs model '%s'",
                    name.c_str(), p->name.c_str()));
    }
    uint64_t rank = 0;
    if (!ReadPod(in, &rank)) return Status::IoError("truncated rank");
    std::vector<size_t> shape(rank);
    for (uint64_t i = 0; i < rank; ++i) {
      uint64_t dim = 0;
      if (!ReadPod(in, &dim)) return Status::IoError("truncated shape");
      shape[i] = static_cast<size_t>(dim);
    }
    if (shape != p->value.shape()) {
      return Status::InvalidArgument("parameter shape mismatch for " +
                                     p->name);
    }
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!in) return Status::IoError("truncated payload for " + p->name);
  }
  return Status::Ok();
}

}  // namespace apots::nn
