#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "util/crc32.h"
#include "util/string_util.h"

namespace apots::nn {

namespace {

constexpr char kMagicV1[5] = {'A', 'P', 'O', 'T', '1'};
constexpr char kMagicV2[5] = {'A', 'P', 'O', 'T', '2'};
// A parameter tensor in this library is at most rank 4; anything larger in
// a file is corruption, not a model.
constexpr uint64_t kMaxRank = 8;

template <typename T>
void AppendPod(std::string* out, T value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounds-checked cursor over an in-memory file image. Every read reports
/// a descriptive Status instead of running off the end, so truncated files
/// fail cleanly whichever field the truncation lands in.
class BufferReader {
 public:
  BufferReader(const std::string& buffer, size_t limit)
      : data_(buffer.data()), limit_(limit) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return limit_ - pos_; }

  template <typename T>
  Status ReadPod(T* value, const char* what) {
    if (remaining() < sizeof(T)) {
      return Status::IoError(StrFormat(
          "truncated file: %s needs %zu bytes, %zu left", what, sizeof(T),
          remaining()));
    }
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return Status::Ok();
  }

  Status ReadBytes(void* dst, size_t size, const char* what) {
    if (remaining() < size) {
      return Status::IoError(StrFormat(
          "truncated file: %s needs %zu bytes, %zu left", what, size,
          remaining()));
    }
    std::memcpy(dst, data_ + pos_, size);
    pos_ += size;
    return Status::Ok();
  }

  Status Skip(size_t size, const char* what) {
    if (remaining() < size) {
      return Status::IoError(StrFormat(
          "truncated file: %s needs %zu bytes, %zu left", what, size,
          remaining()));
    }
    pos_ += size;
    return Status::Ok();
  }

 private:
  const char* data_;
  size_t limit_;
  size_t pos_ = 0;
};

/// One parsed parameter record; payload stays in the file image until the
/// whole file has been validated (all-or-nothing load contract).
struct ParamRecord {
  std::string name;
  std::vector<size_t> shape;
  size_t payload_offset = 0;
  size_t payload_floats = 0;
};

std::string ShapeToString(const std::vector<size_t>& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += ", ";
    out += StrFormat("%zu", shape[i]);
  }
  return out + "]";
}

Status ParseRecords(BufferReader* reader, size_t count,
                    std::vector<ParamRecord>* records) {
  records->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ParamRecord record;
    uint64_t name_len = 0;
    APOTS_RETURN_IF_ERROR(reader->ReadPod(&name_len, "parameter name length"));
    if (name_len > reader->remaining()) {
      return Status::IoError(StrFormat(
          "corrupt name length %llu with %zu bytes left",
          static_cast<unsigned long long>(name_len), reader->remaining()));
    }
    record.name.resize(static_cast<size_t>(name_len));
    APOTS_RETURN_IF_ERROR(
        reader->ReadBytes(record.name.data(), record.name.size(),
                          "parameter name"));
    uint64_t rank = 0;
    APOTS_RETURN_IF_ERROR(reader->ReadPod(&rank, "parameter rank"));
    if (rank > kMaxRank) {
      return Status::IoError(StrFormat(
          "corrupt rank %llu for parameter '%s'",
          static_cast<unsigned long long>(rank), record.name.c_str()));
    }
    size_t floats = 1;
    for (uint64_t d = 0; d < rank; ++d) {
      uint64_t dim = 0;
      APOTS_RETURN_IF_ERROR(reader->ReadPod(&dim, "parameter shape"));
      if (dim != 0 && floats > reader->remaining() / dim) {
        return Status::IoError(StrFormat(
            "corrupt shape for parameter '%s': payload exceeds file",
            record.name.c_str()));
      }
      record.shape.push_back(static_cast<size_t>(dim));
      floats *= static_cast<size_t>(dim);
    }
    record.payload_floats = floats;
    record.payload_offset = reader->position();
    APOTS_RETURN_IF_ERROR(
        reader->Skip(floats * sizeof(float), "parameter payload"));
    records->push_back(std::move(record));
  }
  return Status::Ok();
}

Status ValidateAgainstModel(const std::vector<Parameter*>& params,
                            const std::vector<ParamRecord>& records) {
  if (records.size() != params.size()) {
    return Status::InvalidArgument(
        StrFormat("parameter count mismatch: file has %zu, model has %zu",
                  records.size(), params.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (records[i].name != params[i]->name) {
      return Status::InvalidArgument(
          StrFormat("parameter name mismatch: file '%s' vs model '%s'",
                    records[i].name.c_str(), params[i]->name.c_str()));
    }
    if (records[i].shape != params[i]->value.shape()) {
      return Status::InvalidArgument(StrFormat(
          "parameter shape mismatch for '%s': file %s vs model %s",
          params[i]->name.c_str(), ShapeToString(records[i].shape).c_str(),
          params[i]->value.ShapeString().c_str()));
    }
  }
  return Status::Ok();
}

void CopyPayloads(const std::vector<Parameter*>& params,
                  const std::vector<ParamRecord>& records,
                  const std::string& buffer) {
  for (size_t i = 0; i < params.size(); ++i) {
    std::memcpy(params[i]->value.data(),
                buffer.data() + records[i].payload_offset,
                records[i].payload_floats * sizeof(float));
  }
}

}  // namespace

Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path, const std::string& aux) {
  std::string buffer;
  buffer.append(kMagicV2, sizeof(kMagicV2));
  AppendPod<uint64_t>(&buffer, params.size());
  for (const Parameter* p : params) {
    AppendPod<uint64_t>(&buffer, p->name.size());
    buffer.append(p->name.data(), p->name.size());
    AppendPod<uint64_t>(&buffer, p->value.rank());
    for (size_t d : p->value.shape()) AppendPod<uint64_t>(&buffer, d);
    buffer.append(reinterpret_cast<const char*>(p->value.data()),
                  p->value.size() * sizeof(float));
  }
  AppendPod<uint64_t>(&buffer, aux.size());
  buffer.append(aux);
  AppendPod<uint32_t>(&buffer, Crc32(buffer.data(), buffer.size()));

  // Temp-file + rename: the final path only ever holds a complete,
  // checksummed image. rename(2) within one directory is atomic on POSIX.
  const std::string temp = path + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open for writing: " + temp);
    out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    out.close();
    if (!out) {
      std::remove(temp.c_str());
      return Status::IoError("failed writing: " + temp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::remove(temp.c_str());
    return Status::IoError(StrFormat("cannot rename %s to %s: %s",
                                     temp.c_str(), path.c_str(),
                                     ec.message().c_str()));
  }
  return Status::Ok();
}

Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path, std::string* aux) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::string buffer((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  in.close();

  if (buffer.size() < sizeof(kMagicV2)) {
    return Status::InvalidArgument("file too short for a magic: " + path);
  }
  const bool v2 = std::memcmp(buffer.data(), kMagicV2, sizeof(kMagicV2)) == 0;
  const bool v1 = std::memcmp(buffer.data(), kMagicV1, sizeof(kMagicV1)) == 0;
  if (!v2 && !v1) {
    return Status::InvalidArgument("bad magic in parameter file: " + path);
  }

  size_t body_end = buffer.size();
  if (v2) {
    if (buffer.size() < sizeof(kMagicV2) + sizeof(uint32_t)) {
      return Status::IoError("truncated file (no checksum footer): " + path);
    }
    body_end = buffer.size() - sizeof(uint32_t);
    uint32_t stored = 0;
    std::memcpy(&stored, buffer.data() + body_end, sizeof(stored));
    const uint32_t computed = Crc32(buffer.data(), body_end);
    if (stored != computed) {
      return Status::IoError(StrFormat(
          "checksum mismatch in %s: stored %08x, computed %08x (file "
          "truncated or corrupted)",
          path.c_str(), stored, computed));
    }
  }

  BufferReader reader(buffer, body_end);
  char magic[sizeof(kMagicV2)];
  APOTS_RETURN_IF_ERROR(reader.ReadBytes(magic, sizeof(magic), "magic"));
  uint64_t count = 0;
  APOTS_RETURN_IF_ERROR(reader.ReadPod(&count, "parameter count"));
  if (count > body_end) {  // structurally impossible; corrupt count field
    return Status::IoError(StrFormat(
        "corrupt parameter count %llu in %s",
        static_cast<unsigned long long>(count), path.c_str()));
  }

  std::vector<ParamRecord> records;
  APOTS_RETURN_IF_ERROR(
      ParseRecords(&reader, static_cast<size_t>(count), &records));

  std::string stored_aux;
  if (v2) {
    uint64_t aux_len = 0;
    APOTS_RETURN_IF_ERROR(reader.ReadPod(&aux_len, "aux blob length"));
    if (aux_len > reader.remaining()) {
      return Status::IoError(StrFormat(
          "corrupt aux length %llu with %zu bytes left",
          static_cast<unsigned long long>(aux_len), reader.remaining()));
    }
    stored_aux.resize(static_cast<size_t>(aux_len));
    APOTS_RETURN_IF_ERROR(
        reader.ReadBytes(stored_aux.data(), stored_aux.size(), "aux blob"));
    if (reader.remaining() != 0) {
      return Status::IoError(StrFormat(
          "trailing %zu unexpected bytes in %s", reader.remaining(),
          path.c_str()));
    }
  }

  // Validate everything before writing anything: a failed load must leave
  // the model exactly as it was (the checkpoint-fallback path depends on
  // this).
  APOTS_RETURN_IF_ERROR(ValidateAgainstModel(params, records));
  CopyPayloads(params, records, buffer);
  if (aux != nullptr) *aux = std::move(stored_aux);
  return Status::Ok();
}

}  // namespace apots::nn
