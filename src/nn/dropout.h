#ifndef APOTS_NN_DROPOUT_H_
#define APOTS_NN_DROPOUT_H_

#include <string>

#include "nn/module.h"
#include "util/rng.h"

namespace apots::nn {

/// Inverted dropout: during training each unit is zeroed with probability
/// `rate` and survivors are scaled by 1/(1-rate); at inference it is the
/// identity. The RNG is owned by the caller so whole-model determinism is
/// controlled from one seed.
class Dropout : public Layer {
 public:
  Dropout(float rate, apots::Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  const Tensor* Forward(const Tensor& input, bool training,
                        tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;

 private:
  float rate_;
  apots::Rng* rng_;  // not owned
  Tensor mask_;
  bool mask_valid_ = false;
};

}  // namespace apots::nn

#endif  // APOTS_NN_DROPOUT_H_
