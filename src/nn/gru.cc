#include "nn/gru.h"

#include <cmath>

#include "nn/activations.h"
#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace apots::nn {

namespace ops = apots::tensor;

namespace {

// Extracts columns [block*width, (block+1)*width) of a packed [rows, 3W]
// matrix into a [rows, width] tensor.
Tensor SliceBlock(const Tensor& packed, size_t block, size_t width) {
  const size_t rows = packed.rows();
  Tensor out({rows, width});
  for (size_t i = 0; i < rows; ++i) {
    const float* src = packed.data() + i * packed.cols() + block * width;
    std::copy(src, src + width, out.data() + i * width);
  }
  return out;
}

// Adds a [rows, width] tensor into block `block` of a packed [rows, 3W]
// accumulator.
void AddBlock(Tensor* packed, size_t block, size_t width,
              const Tensor& value) {
  const size_t rows = packed->rows();
  for (size_t i = 0; i < rows; ++i) {
    float* dst = packed->data() + i * packed->cols() + block * width;
    const float* src = value.data() + i * width;
    for (size_t j = 0; j < width; ++j) dst[j] += src[j];
  }
}

}  // namespace

Gru::Gru(size_t input_size, size_t hidden_size, bool return_sequences,
         apots::Rng* rng)
    : input_size_(input_size),
      hidden_size_(hidden_size),
      return_sequences_(return_sequences),
      weight_x_("gru.weight_x", Tensor({input_size, 3 * hidden_size})),
      weight_h_("gru.weight_h", Tensor({hidden_size, 3 * hidden_size})),
      bias_("gru.bias", Tensor({3 * hidden_size})) {
  Initialize(&weight_x_.value, Init::kXavierUniform, input_size,
             3 * hidden_size, rng);
  Initialize(&weight_h_.value, Init::kOrthogonalish, hidden_size,
             3 * hidden_size, rng);
}

Tensor Gru::Forward(const Tensor& input, bool training) {
  APOTS_CHECK_EQ(input.rank(), 3u);
  APOTS_CHECK_EQ(input.dim(2), input_size_);
  const size_t batch = input.dim(0);
  const size_t time = input.dim(1);
  const size_t H = hidden_size_;
  cached_batch_ = batch;
  cached_time_ = time;
  steps_.clear();
  steps_.reserve(time);

  const Tensor wh_r = SliceBlock(weight_h_.value, 0, H);
  const Tensor wh_z = SliceBlock(weight_h_.value, 1, H);
  const Tensor wh_c = SliceBlock(weight_h_.value, 2, H);

  Tensor h = Tensor::Zeros({batch, H});
  Tensor sequence_out;
  if (return_sequences_) sequence_out = Tensor({batch, time, H});

  for (size_t t = 0; t < time; ++t) {
    StepCache step;
    step.h_prev = h;
    step.x = Tensor({batch, input_size_});
    for (size_t n = 0; n < batch; ++n) {
      const float* src = input.data() + (n * time + t) * input_size_;
      std::copy(src, src + input_size_, step.x.data() + n * input_size_);
    }

    Tensor xw = ops::Matmul(step.x, weight_x_.value);  // [batch, 3H]
    ops::AddRowBias(&xw, bias_.value);
    const Tensor hw_r = ops::Matmul(h, wh_r);
    const Tensor hw_z = ops::Matmul(h, wh_z);

    step.r = Tensor({batch, H});
    step.z = Tensor({batch, H});
    for (size_t n = 0; n < batch; ++n) {
      const float* xw_row = xw.data() + n * 3 * H;
      for (size_t j = 0; j < H; ++j) {
        step.r.At(n, j) = SigmoidScalar(xw_row[j] + hw_r.At(n, j));
        step.z.At(n, j) = SigmoidScalar(xw_row[H + j] + hw_z.At(n, j));
      }
    }
    step.rh_prev = ops::Mul(step.r, step.h_prev);
    const Tensor hw_c = ops::Matmul(step.rh_prev, wh_c);
    step.h_tilde = Tensor({batch, H});
    Tensor new_h({batch, H});
    for (size_t n = 0; n < batch; ++n) {
      const float* xw_row = xw.data() + n * 3 * H;
      for (size_t j = 0; j < H; ++j) {
        const float cand = TanhScalar(xw_row[2 * H + j] + hw_c.At(n, j));
        step.h_tilde.At(n, j) = cand;
        const float z = step.z.At(n, j);
        new_h.At(n, j) =
            (1.0f - z) * step.h_prev.At(n, j) + z * cand;
      }
    }
    h = new_h;
    if (return_sequences_) {
      for (size_t n = 0; n < batch; ++n) {
        std::copy(h.data() + n * H, h.data() + (n + 1) * H,
                  sequence_out.data() + (n * time + t) * H);
      }
    }
    steps_.push_back(std::move(step));
  }
  return return_sequences_ ? sequence_out : h;
}

Tensor Gru::Backward(const Tensor& grad_output) {
  const size_t batch = cached_batch_;
  const size_t time = cached_time_;
  const size_t H = hidden_size_;

  const Tensor wh_r = SliceBlock(weight_h_.value, 0, H);
  const Tensor wh_z = SliceBlock(weight_h_.value, 1, H);
  const Tensor wh_c = SliceBlock(weight_h_.value, 2, H);
  const Tensor wx_r = SliceBlock(weight_x_.value, 0, H);
  const Tensor wx_z = SliceBlock(weight_x_.value, 1, H);
  const Tensor wx_c = SliceBlock(weight_x_.value, 2, H);

  Tensor grad_input({batch, time, input_size_});
  Tensor dh_next = Tensor::Zeros({batch, H});

  for (size_t t = time; t-- > 0;) {
    const StepCache& step = steps_[t];
    Tensor dh = dh_next;
    if (return_sequences_) {
      for (size_t n = 0; n < batch; ++n) {
        const float* src = grad_output.data() + (n * time + t) * H;
        float* dst = dh.data() + n * H;
        for (size_t j = 0; j < H; ++j) dst[j] += src[j];
      }
    } else if (t == time - 1) {
      ops::AddInPlace(&dh, grad_output);
    }

    // Pre-activation gate gradients.
    Tensor dpre_r({batch, H}), dpre_z({batch, H}), dpre_c({batch, H});
    Tensor dh_prev({batch, H});
    for (size_t n = 0; n < batch; ++n) {
      for (size_t j = 0; j < H; ++j) {
        const float z = step.z.At(n, j);
        const float cand = step.h_tilde.At(n, j);
        const float hp = step.h_prev.At(n, j);
        const float dh_nj = dh.At(n, j);
        const float dz = dh_nj * (cand - hp);
        const float dcand = dh_nj * z;
        dh_prev.At(n, j) = dh_nj * (1.0f - z);
        dpre_z.At(n, j) = dz * z * (1.0f - z);
        dpre_c.At(n, j) = dcand * (1.0f - cand * cand);
      }
    }
    // Candidate path: d(rh) = dpre_c Wh_c^T.
    const Tensor drh = ops::MatmulTransposeB(dpre_c, wh_c);
    for (size_t n = 0; n < batch; ++n) {
      for (size_t j = 0; j < H; ++j) {
        const float r = step.r.At(n, j);
        const float hp = step.h_prev.At(n, j);
        const float dr = drh.At(n, j) * hp;
        dh_prev.At(n, j) += drh.At(n, j) * r;
        dpre_r.At(n, j) = dr * r * (1.0f - r);
      }
    }

    // Parameter gradients (packed accumulators).
    AddBlock(&weight_x_.grad, 0, H, ops::MatmulTransposeA(step.x, dpre_r));
    AddBlock(&weight_x_.grad, 1, H, ops::MatmulTransposeA(step.x, dpre_z));
    AddBlock(&weight_x_.grad, 2, H, ops::MatmulTransposeA(step.x, dpre_c));
    AddBlock(&weight_h_.grad, 0, H,
             ops::MatmulTransposeA(step.h_prev, dpre_r));
    AddBlock(&weight_h_.grad, 1, H,
             ops::MatmulTransposeA(step.h_prev, dpre_z));
    AddBlock(&weight_h_.grad, 2, H,
             ops::MatmulTransposeA(step.rh_prev, dpre_c));
    const Tensor db_r = ops::SumRows(dpre_r);
    const Tensor db_z = ops::SumRows(dpre_z);
    const Tensor db_c = ops::SumRows(dpre_c);
    for (size_t j = 0; j < H; ++j) {
      bias_.grad[j] += db_r[j];
      bias_.grad[H + j] += db_z[j];
      bias_.grad[2 * H + j] += db_c[j];
    }

    // Input gradient.
    Tensor dx = ops::MatmulTransposeB(dpre_r, wx_r);
    ops::AddInPlace(&dx, ops::MatmulTransposeB(dpre_z, wx_z));
    ops::AddInPlace(&dx, ops::MatmulTransposeB(dpre_c, wx_c));
    for (size_t n = 0; n < batch; ++n) {
      std::copy(dx.data() + n * input_size_,
                dx.data() + (n + 1) * input_size_,
                grad_input.data() + (n * time + t) * input_size_);
    }

    // Recurrent gradient.
    ops::AddInPlace(&dh_prev, ops::MatmulTransposeB(dpre_r, wh_r));
    ops::AddInPlace(&dh_prev, ops::MatmulTransposeB(dpre_z, wh_z));
    dh_next = std::move(dh_prev);
  }
  return grad_input;
}

std::vector<Parameter*> Gru::Parameters() {
  return {&weight_x_, &weight_h_, &bias_};
}

std::string Gru::Name() const {
  return apots::StrFormat("Gru(%zu -> %zu%s)", input_size_, hidden_size_,
                          return_sequences_ ? ", seq" : "");
}

}  // namespace apots::nn
