#include "nn/dense.h"

#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace apots::nn {

using apots::tensor::Tensor;

Dense::Dense(size_t in_features, size_t out_features, apots::Rng* rng,
             Init init)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("dense.weight", Tensor({in_features, out_features})),
      bias_("dense.bias", Tensor({out_features})) {
  Initialize(&weight_.value, init, in_features, out_features, rng);
  // Bias starts at zero regardless of scheme.
}

Tensor Dense::Forward(const Tensor& input, bool training) {
  APOTS_CHECK_EQ(input.rank(), 2u);
  APOTS_CHECK_EQ(input.cols(), in_features_);
  cached_input_ = input;
  Tensor out = apots::tensor::Matmul(input, weight_.value);
  apots::tensor::AddRowBias(&out, bias_.value);
  return out;
}

const Tensor* Dense::Forward(const Tensor& input, bool training,
                             tensor::Workspace* ws) {
  if (training) return Layer::Forward(input, training, ws);
  APOTS_CHECK_EQ(input.rank(), 2u);
  APOTS_CHECK_EQ(input.cols(), in_features_);
  Tensor* out = ws->Acquire({input.rows(), out_features_});
  switch (quant_mode_) {
    case tensor::QuantMode::kInt8:
      apots::tensor::Int8MatmulInto(input, int8_weight_, out, ws);
      break;
    case tensor::QuantMode::kFp16:
      apots::tensor::Fp16MatmulInto(input, fp16_weight_, out);
      break;
    case tensor::QuantMode::kOff:
      apots::tensor::MatmulInto(input, weight_.value, out);
      break;
  }
  apots::tensor::AddRowBias(out, bias_.value);
  return out;
}

void Dense::PrepareQuantized(tensor::QuantMode mode) {
  quant_mode_ = mode;
  int8_weight_ = mode == tensor::QuantMode::kInt8
                     ? apots::tensor::PackInt8Weights(weight_.value)
                     : tensor::Int8Matrix{};
  fp16_weight_ = mode == tensor::QuantMode::kFp16
                     ? apots::tensor::PackFp16Weights(weight_.value)
                     : tensor::Fp16Matrix{};
}

Tensor Dense::Backward(const Tensor& grad_output) {
  APOTS_CHECK_EQ(grad_output.rank(), 2u);
  APOTS_CHECK_EQ(grad_output.cols(), out_features_);
  APOTS_CHECK_EQ(grad_output.rows(), cached_input_.rows());
  // dW = x^T dy ; db = column sums of dy ; dx = dy W^T.
  apots::tensor::AddInPlace(
      &weight_.grad,
      apots::tensor::MatmulTransposeA(cached_input_, grad_output));
  apots::tensor::AddInPlace(&bias_.grad,
                            apots::tensor::SumRows(grad_output));
  return apots::tensor::MatmulTransposeB(grad_output, weight_.value);
}

std::vector<Parameter*> Dense::Parameters() { return {&weight_, &bias_}; }

std::string Dense::Name() const {
  return apots::StrFormat("Dense(%zu -> %zu)", in_features_, out_features_);
}

}  // namespace apots::nn
