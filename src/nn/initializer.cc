#include "nn/initializer.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace apots::nn {

void Initialize(apots::tensor::Tensor* t, Init scheme, size_t fan_in,
                size_t fan_out, apots::Rng* rng) {
  switch (scheme) {
    case Init::kZeros:
      t->Fill(0.0f);
      return;
    case Init::kXavierUniform: {
      const float limit =
          std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
      apots::tensor::FillUniform(t, rng, -limit, limit);
      return;
    }
    case Init::kHeNormal: {
      const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
      apots::tensor::FillNormal(t, rng, 0.0f, stddev);
      return;
    }
    case Init::kOrthogonalish: {
      // A cheap stand-in for orthogonal init: normal with variance 1/fan_in,
      // which keeps recurrent activations near unit scale at the sequence
      // lengths used here (alpha = 12).
      const float stddev = std::sqrt(1.0f / static_cast<float>(fan_in));
      apots::tensor::FillNormal(t, rng, 0.0f, stddev);
      return;
    }
  }
}

}  // namespace apots::nn
