#ifndef APOTS_NN_INITIALIZER_H_
#define APOTS_NN_INITIALIZER_H_

#include "tensor/tensor.h"
#include "util/rng.h"

namespace apots::nn {

/// Weight initialization schemes.
enum class Init {
  kZeros,
  kXavierUniform,  ///< Glorot: U(-sqrt(6/(fan_in+fan_out)), +)
  kHeNormal,       ///< Kaiming: N(0, sqrt(2/fan_in)) — for ReLU stacks
  kOrthogonalish,  ///< scaled normal used for recurrent kernels
};

/// Initializes `t` in place. `fan_in`/`fan_out` describe the layer's
/// connectivity (for Dense: input/output width; for Conv2d:
/// in_channels*kh*kw / out_channels*kh*kw).
void Initialize(apots::tensor::Tensor* t, Init scheme, size_t fan_in,
                size_t fan_out, apots::Rng* rng);

}  // namespace apots::nn

#endif  // APOTS_NN_INITIALIZER_H_
