#ifndef APOTS_NN_GRADIENT_CHECK_H_
#define APOTS_NN_GRADIENT_CHECK_H_

#include <functional>

#include "nn/module.h"

namespace apots::nn {

/// Result of a finite-difference gradient check.
struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  size_t checked = 0;
};

/// Verifies `layer`'s input gradient and parameter gradients against
/// central finite differences of the scalar loss
///   L = sum(weights * layer.Forward(input)),
/// where `loss_weights` is a fixed random weighting so every output element
/// contributes. `epsilon` is the perturbation; `stride` checks every k-th
/// element to bound cost on larger layers.
GradCheckResult CheckLayerGradients(Layer* layer, const Tensor& input,
                                    const Tensor& loss_weights,
                                    double epsilon = 1e-3, size_t stride = 1);

/// Checks an arbitrary scalar function's analytic gradient at `point`.
/// `f` returns the loss; `analytic` is the claimed dL/dpoint.
GradCheckResult CheckFunctionGradient(
    const std::function<double(const Tensor&)>& f, const Tensor& point,
    const Tensor& analytic, double epsilon = 1e-3, size_t stride = 1);

}  // namespace apots::nn

#endif  // APOTS_NN_GRADIENT_CHECK_H_
