#ifndef APOTS_NN_MODULE_H_
#define APOTS_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/quant.h"
#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace apots::nn {

using apots::tensor::Tensor;

/// A trainable weight: value plus accumulated gradient of the same shape.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter() = default;
  Parameter(std::string name_in, Tensor value_in)
      : name(std::move(name_in)),
        value(std::move(value_in)),
        grad(Tensor::Zeros(value.shape())) {}

  /// Clears the accumulated gradient.
  void ZeroGrad() { grad.Fill(0.0f); }
};

/// Base class for differentiable layers. Layers are stateful across a
/// Forward/Backward pair: Forward caches whatever Backward needs, Backward
/// consumes the cache, accumulates parameter gradients, and returns the
/// gradient with respect to the layer input.
///
/// Batch conventions: Dense-style layers take [batch, features]; Conv2d
/// takes [batch, channels, height, width]; Lstm takes
/// [batch, time, features].
class Layer {
 public:
  virtual ~Layer() = default;

  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output. `training` toggles train-only behaviour
  /// (e.g. dropout).
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  /// Workspace variant: borrows the output (and any scratch) from `ws`
  /// instead of allocating, and — when `training` is false — must not
  /// mutate layer state, so concurrent inference forwards on a shared
  /// layer are safe. Bitwise identical to the allocating Forward. The
  /// returned pointer lives until `ws->Reset()`; it may alias `&input`
  /// for identity layers. The default implementation materializes the
  /// allocating Forward into the arena; layers on the inference hot path
  /// override it with a zero-allocation body.
  virtual const Tensor* Forward(const Tensor& input, bool training,
                                tensor::Workspace* ws);

  /// Backpropagates `grad_output` (gradient of the loss w.r.t. this layer's
  /// output), accumulating into parameter grads, and returns the gradient
  /// w.r.t. the layer's input. Must be called after a matching Forward.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Packs this layer's frozen weights for reduced-precision inference
  /// (tensor::QuantMode). Only the workspace inference Forward consults the
  /// packed weights; training and the allocating Forward always run fp32,
  /// so gradients are unaffected. The packed copy snapshots the weights at
  /// call time — call again after any weight mutation, or with kOff to
  /// drop the packed copy and return to exact fp32 inference. Default:
  /// no-op (layers without matmul weights have nothing to quantize).
  virtual void PrepareQuantized(tensor::QuantMode mode) { (void)mode; }

  /// Trainable parameters (empty for stateless layers). Pointers remain
  /// valid for the layer's lifetime.
  virtual std::vector<Parameter*> Parameters() { return {}; }

  /// Short human-readable layer description.
  virtual std::string Name() const = 0;

 protected:
  Layer() = default;
};

/// Zeroes the gradients of all `params`.
void ZeroAllGrads(const std::vector<Parameter*>& params);

/// Total number of scalar weights across `params`.
size_t CountWeights(const std::vector<Parameter*>& params);

/// Global L2 norm of all gradients (diagnostic / clipping input).
double GradNorm(const std::vector<Parameter*>& params);

/// Scales gradients so their global L2 norm is at most `max_norm`.
void ClipGradNorm(const std::vector<Parameter*>& params, double max_norm);

}  // namespace apots::nn

#endif  // APOTS_NN_MODULE_H_
