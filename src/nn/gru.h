#ifndef APOTS_NN_GRU_H_
#define APOTS_NN_GRU_H_

#include <string>
#include <vector>

#include "nn/initializer.h"
#include "nn/module.h"
#include "util/rng.h"

namespace apots::nn {

/// Gated recurrent unit (Cho et al. 2014) with full backpropagation
/// through time — provided as the natural drop-in alternative to Lstm for
/// the paper's future-work comparisons. Input [batch, time, features];
/// output [batch, time, hidden] with `return_sequences`, else
/// [batch, hidden].
///
/// Gate layout in the packed matrices: reset | update | candidate.
/// Update convention: h_t = (1 - z) * h_{t-1} + z * h_tilde.
class Gru : public Layer {
 public:
  Gru(size_t input_size, size_t hidden_size, bool return_sequences,
      apots::Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

  size_t hidden_size() const { return hidden_size_; }

 private:
  size_t input_size_;
  size_t hidden_size_;
  bool return_sequences_;

  Parameter weight_x_;  ///< [input, 3*hidden]
  Parameter weight_h_;  ///< [hidden, 3*hidden]
  Parameter bias_;      ///< [3*hidden]

  struct StepCache {
    Tensor x;         ///< [batch, input]
    Tensor h_prev;    ///< [batch, hidden]
    Tensor r;         ///< reset gate, post-sigmoid
    Tensor z;         ///< update gate, post-sigmoid
    Tensor h_tilde;   ///< candidate, post-tanh
    Tensor rh_prev;   ///< r * h_prev (input to the candidate's W_h term)
  };
  std::vector<StepCache> steps_;
  size_t cached_batch_ = 0;
  size_t cached_time_ = 0;
};

}  // namespace apots::nn

#endif  // APOTS_NN_GRU_H_
