#ifndef APOTS_NN_CONV2D_H_
#define APOTS_NN_CONV2D_H_

#include <string>
#include <vector>

#include "nn/initializer.h"
#include "nn/module.h"
#include "util/rng.h"

namespace apots::nn {

/// 2-D convolution, stride 1, symmetric zero padding, implemented via
/// im2col + matmul. Input [batch, in_channels, height, width], output
/// [batch, out_channels, out_h, out_w] with out_h = height + 2*pad - kh + 1.
/// With pad = kh/2 (odd kernels) the spatial size is preserved ("same"),
/// which is how the APOTS CNN keeps the (2m+1) x alpha speed matrix shape
/// through its 3x3 / 1x1 / 3x3 stack.
class Conv2d : public Layer {
 public:
  Conv2d(size_t in_channels, size_t out_channels, size_t kh, size_t kw,
         size_t pad, apots::Rng* rng, Init init = Init::kHeNormal);

  Tensor Forward(const Tensor& input, bool training) override;
  const Tensor* Forward(const Tensor& input, bool training,
                        tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

  size_t out_channels() const { return out_channels_; }

 private:
  size_t in_channels_;
  size_t out_channels_;
  size_t kh_;
  size_t kw_;
  size_t pad_;
  // Weight is stored as [out_channels, in_channels*kh*kw] so forward is a
  // single matmul against the im2col matrix.
  Parameter weight_;
  Parameter bias_;
  // Per-sample im2col matrices cached for backward.
  std::vector<Tensor> cached_columns_;
  size_t cached_height_ = 0;
  size_t cached_width_ = 0;
};

}  // namespace apots::nn

#endif  // APOTS_NN_CONV2D_H_
