#include "nn/activations.h"

#include <cmath>

#include "util/string_util.h"

namespace apots::nn {

float SigmoidScalar(float x) {
  // Numerically stable piecewise form.
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

float TanhScalar(float x) { return std::tanh(x); }

Tensor Relu::Forward(const Tensor& input, bool training) {
  cached_input_ = input;
  Tensor out = input;
  float* p = out.data();
  for (size_t i = 0; i < out.size(); ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
  return out;
}

const Tensor* Relu::Forward(const Tensor& input, bool training,
                            tensor::Workspace* ws) {
  if (training) return Layer::Forward(input, training, ws);
  Tensor* out = ws->Acquire(input.shape());
  const float* px = input.data();
  float* p = out->data();
  for (size_t i = 0; i < out->size(); ++i) p[i] = px[i] > 0.0f ? px[i] : 0.0f;
  return out;
}

Tensor Relu::Backward(const Tensor& grad_output) {
  APOTS_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad = grad_output;
  float* pg = grad.data();
  const float* px = cached_input_.data();
  for (size_t i = 0; i < grad.size(); ++i) {
    if (px[i] <= 0.0f) pg[i] = 0.0f;
  }
  return grad;
}

Tensor LeakyRelu::Forward(const Tensor& input, bool training) {
  cached_input_ = input;
  Tensor out = input;
  float* p = out.data();
  for (size_t i = 0; i < out.size(); ++i) {
    if (p[i] < 0.0f) p[i] *= slope_;
  }
  return out;
}

Tensor LeakyRelu::Backward(const Tensor& grad_output) {
  APOTS_CHECK(grad_output.SameShape(cached_input_));
  Tensor grad = grad_output;
  float* pg = grad.data();
  const float* px = cached_input_.data();
  for (size_t i = 0; i < grad.size(); ++i) {
    if (px[i] < 0.0f) pg[i] *= slope_;
  }
  return grad;
}

std::string LeakyRelu::Name() const {
  return apots::StrFormat("LeakyRelu(%.2f)", static_cast<double>(slope_));
}

Tensor Sigmoid::Forward(const Tensor& input, bool training) {
  Tensor out = input;
  float* p = out.data();
  for (size_t i = 0; i < out.size(); ++i) p[i] = SigmoidScalar(p[i]);
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  APOTS_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad = grad_output;
  float* pg = grad.data();
  const float* py = cached_output_.data();
  for (size_t i = 0; i < grad.size(); ++i) pg[i] *= py[i] * (1.0f - py[i]);
  return grad;
}

Tensor Tanh::Forward(const Tensor& input, bool training) {
  Tensor out = input;
  float* p = out.data();
  for (size_t i = 0; i < out.size(); ++i) p[i] = std::tanh(p[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  APOTS_CHECK(grad_output.SameShape(cached_output_));
  Tensor grad = grad_output;
  float* pg = grad.data();
  const float* py = cached_output_.data();
  for (size_t i = 0; i < grad.size(); ++i) pg[i] *= 1.0f - py[i] * py[i];
  return grad;
}

}  // namespace apots::nn
