#ifndef APOTS_NN_OPTIMIZER_H_
#define APOTS_NN_OPTIMIZER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "nn/module.h"

namespace apots::nn {

/// Base optimizer interface: applies a step from accumulated gradients,
/// then the caller zeroes the grads (or uses StepAndZero).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Updates every parameter in `params` from its `grad`.
  virtual void Step(const std::vector<Parameter*>& params) = 0;

  /// Step followed by ZeroAllGrads.
  void StepAndZero(const std::vector<Parameter*>& params);

  /// Discards accumulated optimizer state (moments/velocity). Used when
  /// training rolls back to a checkpoint: stale moments describe the
  /// diverged trajectory, not the restored weights.
  virtual void ResetState() {}

  float learning_rate() const { return learning_rate_; }
  void set_learning_rate(float lr) { learning_rate_ = lr; }

 protected:
  explicit Optimizer(float learning_rate) : learning_rate_(learning_rate) {}

  float learning_rate_;
};

/// Stochastic gradient descent with classical momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float learning_rate, float momentum = 0.0f);

  void Step(const std::vector<Parameter*>& params) override;
  void ResetState() override { velocity_.clear(); }

 private:
  float momentum_;
  std::unordered_map<Parameter*, Tensor> velocity_;
};

/// Adam (Kingma & Ba). Per-parameter first/second moment state keyed by
/// parameter pointer; the step counter is global to the optimizer.
class Adam : public Optimizer {
 public:
  explicit Adam(float learning_rate, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f);

  void Step(const std::vector<Parameter*>& params) override;
  void ResetState() override {
    moments_.clear();
    step_count_ = 0;
  }

 private:
  struct Moments {
    Tensor m;
    Tensor v;
  };
  float beta1_;
  float beta2_;
  float epsilon_;
  int64_t step_count_ = 0;
  std::unordered_map<Parameter*, Moments> moments_;
};

}  // namespace apots::nn

#endif  // APOTS_NN_OPTIMIZER_H_
