#ifndef APOTS_NN_ACTIVATIONS_H_
#define APOTS_NN_ACTIVATIONS_H_

#include <string>

#include "nn/module.h"

namespace apots::nn {

/// Rectified linear unit, elementwise max(0, x).
class Relu : public Layer {
 public:
  Relu() = default;
  Tensor Forward(const Tensor& input, bool training) override;
  const Tensor* Forward(const Tensor& input, bool training,
                        tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Relu"; }

 private:
  Tensor cached_input_;
};

/// Leaky ReLU with configurable negative slope (default 0.2, the usual GAN
/// discriminator choice).
class LeakyRelu : public Layer {
 public:
  explicit LeakyRelu(float slope = 0.2f) : slope_(slope) {}
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override;

 private:
  float slope_;
  Tensor cached_input_;
};

/// Logistic sigmoid, elementwise 1 / (1 + exp(-x)).
class Sigmoid : public Layer {
 public:
  Sigmoid() = default;
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

/// Hyperbolic tangent.
class Tanh : public Layer {
 public:
  Tanh() = default;
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

/// Scalar math shared with the LSTM cell.
float SigmoidScalar(float x);
float TanhScalar(float x);

}  // namespace apots::nn

#endif  // APOTS_NN_ACTIVATIONS_H_
