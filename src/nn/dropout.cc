#include "nn/dropout.h"

#include "tensor/tensor_ops.h"
#include "util/string_util.h"

namespace apots::nn {

Dropout::Dropout(float rate, apots::Rng* rng) : rate_(rate), rng_(rng) {
  APOTS_CHECK_GE(rate, 0.0f);
  APOTS_CHECK_LT(rate, 1.0f);
  APOTS_CHECK(rng != nullptr);
}

Tensor Dropout::Forward(const Tensor& input, bool training) {
  if (!training || rate_ == 0.0f) {
    mask_valid_ = false;
    return input;
  }
  const float keep = 1.0f - rate_;
  mask_ = Tensor(input.shape());
  float* pm = mask_.data();
  for (size_t i = 0; i < mask_.size(); ++i) {
    pm[i] = rng_->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  mask_valid_ = true;
  return apots::tensor::Mul(input, mask_);
}

const Tensor* Dropout::Forward(const Tensor& input, bool training,
                               tensor::Workspace* ws) {
  if (training) return Layer::Forward(input, training, ws);
  // Inference dropout is the identity: pass the input through without
  // copying or touching mask_valid_ (concurrent forwards share this layer).
  return &input;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (!mask_valid_) return grad_output;
  APOTS_CHECK(grad_output.SameShape(mask_));
  return apots::tensor::Mul(grad_output, mask_);
}

std::string Dropout::Name() const {
  return apots::StrFormat("Dropout(%.2f)", static_cast<double>(rate_));
}

}  // namespace apots::nn
