#ifndef APOTS_NN_SERIALIZE_H_
#define APOTS_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace apots::nn {

/// Writes all parameter tensors to a binary file. Format: magic "APOT1",
/// parameter count, then per parameter: name length+bytes, rank, dims,
/// float32 payload. Load requires identical names and shapes (i.e. the
/// model must be constructed with the same architecture first).
Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

/// Loads parameters saved by SaveParameters into an equally-shaped model.
Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path);

}  // namespace apots::nn

#endif  // APOTS_NN_SERIALIZE_H_
