#ifndef APOTS_NN_SERIALIZE_H_
#define APOTS_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace apots::nn {

/// Writes all parameter tensors to a binary file, crash-safely.
///
/// Format v2 (magic "APOT2"): parameter count, then per parameter
/// name length+bytes, rank, dims, float32 payload; then an opaque `aux`
/// blob (length+bytes) for caller state (e.g. a serving watermark), and
/// finally a CRC32 footer over every preceding byte. The file is written
/// to `path + ".tmp"` and atomically renamed into place, so a crash mid-
/// write never leaves a half-written file at `path` and readers observe
/// either the old generation or the new one, never a torn mix.
Status SaveParameters(const std::vector<Parameter*>& params,
                      const std::string& path,
                      const std::string& aux = std::string());

/// Loads parameters saved by SaveParameters into an equally-shaped model
/// (identical parameter names and shapes; construct the architecture
/// first). Reads both the current "APOT2" format (CRC-verified: a
/// truncated or bit-flipped file fails with a descriptive Status before
/// any parameter is touched) and the legacy "APOT1" format (no checksum;
/// structural bounds checks only). The load is all-or-nothing: every
/// record is validated against the model before the first write, so a
/// failed load never leaves `params` partially overwritten. When `aux` is
/// non-null it receives the stored aux blob (empty for APOT1 files).
Status LoadParameters(const std::vector<Parameter*>& params,
                      const std::string& path, std::string* aux = nullptr);

}  // namespace apots::nn

#endif  // APOTS_NN_SERIALIZE_H_
