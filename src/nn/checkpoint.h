#ifndef APOTS_NN_CHECKPOINT_H_
#define APOTS_NN_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"
#include "util/status.h"

namespace apots::nn {

/// Generation-retained, crash-safe checkpoint directory.
///
/// Each Save writes `ckpt_<generation>.apot` (SaveParameters: atomic
/// temp-file + rename, CRC32 footer) with a monotonically increasing
/// generation number, then prunes all but the newest `keep_generations`
/// files. Recover walks generations newest-first and restores the first
/// one that loads cleanly — a checkpoint torn by a crash or corrupted on
/// disk is skipped (and reported) instead of poisoning the model, which is
/// the property the serving supervisor's kill-and-restore path depends on.
///
/// Not internally synchronized: callers serialize Save/Recover themselves
/// (the supervisor checkpoints from its serving thread only).
class CheckpointStore {
 public:
  /// `dir` is created on first Save if missing. `keep_generations` >= 1.
  CheckpointStore(std::string dir, int keep_generations = 3);

  struct RecoverInfo {
    uint64_t generation = 0;  ///< the generation actually restored
    std::string aux;          ///< aux blob stored with that generation
    /// "path: error" for every newer generation that failed to load.
    std::vector<std::string> skipped;
    bool fell_back() const { return !skipped.empty(); }
  };

  /// Writes generation latest+1 and prunes old generations. Returns the
  /// new generation number.
  Result<uint64_t> Save(const std::vector<Parameter*>& params,
                        const std::string& aux = std::string());

  /// Restores the newest loadable generation into `params` (all-or-
  /// nothing per generation, see LoadParameters). Fails with NotFound
  /// when the directory holds no checkpoint and IoError when every
  /// retained generation is corrupt.
  Result<RecoverInfo> Recover(const std::vector<Parameter*>& params) const;

  /// Generations currently on disk, ascending. Empty on a fresh/missing
  /// directory.
  std::vector<uint64_t> ListGenerations() const;

  /// Newest generation on disk, 0 when none.
  uint64_t LatestGeneration() const;

  /// Path of `generation`'s file (whether or not it exists).
  std::string GenerationPath(uint64_t generation) const;

  const std::string& dir() const { return dir_; }
  int keep_generations() const { return keep_; }

 private:
  std::string dir_;
  int keep_;
};

}  // namespace apots::nn

#endif  // APOTS_NN_CHECKPOINT_H_
