#ifndef APOTS_NN_SEQUENTIAL_H_
#define APOTS_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace apots::nn {

/// An ordered stack of layers executed front-to-back in Forward and
/// back-to-front in Backward. Owns its layers.
class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer (takes ownership). Returns a raw observer pointer.
  Layer* Add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs L in place.
  template <typename L, typename... Args>
  L* Emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L* raw = layer.get();
    Add(std::move(layer));
    return raw;
  }

  Tensor Forward(const Tensor& input, bool training) override;
  const Tensor* Forward(const Tensor& input, bool training,
                        tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  void PrepareQuantized(tensor::QuantMode mode) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

  size_t NumLayers() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace apots::nn

#endif  // APOTS_NN_SEQUENTIAL_H_
