#ifndef APOTS_NN_FLATTEN_H_
#define APOTS_NN_FLATTEN_H_

#include <string>

#include "nn/module.h"

namespace apots::nn {

/// Reshapes [batch, d1, d2, ...] to [batch, d1*d2*...]; the gradient is the
/// inverse reshape. Used to bridge Conv2d output into Dense layers.
class Flatten : public Layer {
 public:
  Flatten() = default;

  Tensor Forward(const Tensor& input, bool training) override;
  const Tensor* Forward(const Tensor& input, bool training,
                        tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string Name() const override { return "Flatten"; }

 private:
  std::vector<size_t> cached_shape_;
};

}  // namespace apots::nn

#endif  // APOTS_NN_FLATTEN_H_
