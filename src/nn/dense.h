#ifndef APOTS_NN_DENSE_H_
#define APOTS_NN_DENSE_H_

#include <string>
#include <vector>

#include "nn/initializer.h"
#include "nn/module.h"
#include "util/rng.h"

namespace apots::nn {

/// Fully connected layer: y = x W + b with x of shape [batch, in_features],
/// W of shape [in_features, out_features], b of length out_features.
class Dense : public Layer {
 public:
  Dense(size_t in_features, size_t out_features, apots::Rng* rng,
        Init init = Init::kXavierUniform);

  Tensor Forward(const Tensor& input, bool training) override;
  const Tensor* Forward(const Tensor& input, bool training,
                        tensor::Workspace* ws) override;
  Tensor Backward(const Tensor& grad_output) override;
  void PrepareQuantized(tensor::QuantMode mode) override;
  std::vector<Parameter*> Parameters() override;
  std::string Name() const override;

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }

 private:
  size_t in_features_;
  size_t out_features_;
  Parameter weight_;
  Parameter bias_;
  Tensor cached_input_;
  // Packed weight copies for reduced-precision inference; consulted only
  // by the workspace inference Forward (see Layer::PrepareQuantized).
  tensor::QuantMode quant_mode_ = tensor::QuantMode::kOff;
  tensor::Int8Matrix int8_weight_;
  tensor::Fp16Matrix fp16_weight_;
};

}  // namespace apots::nn

#endif  // APOTS_NN_DENSE_H_
